//! Cross-crate integration tests: the full MrMC-MinH system from
//! simulated FASTA to evaluated clusterings, through both the native
//! API and the Pig script path.

use std::collections::HashMap;
use std::sync::Arc;

use mrmc::{algorithm3_script, register_mrmc_udfs, Mode, MrMcConfig, MrMcMinH};
use mrmc_minh_suite::baselines::{CdHitLike, Clusterer, DoturLike, McLsh};
use mrmc_minh_suite::cluster::Linkage;
use mrmc_minh_suite::mapreduce::dfs::{Dfs, DfsConfig};
use mrmc_minh_suite::metrics::{
    adjusted_rand_index, weighted_accuracy, weighted_similarity, SimilarityOptions,
};
use mrmc_minh_suite::pig::{parse_script, PigRunner, UdfRegistry};
use mrmc_minh_suite::seqio::write_fasta;
use mrmc_minh_suite::simulate::{
    environmental_samples, huse_16s, whole_metagenome_samples, ErrorModel,
};

/// The headline Table III comparison at miniature scale: hierarchical
/// and greedy must both recover an order-level 2-species sample well,
/// and hierarchical must not lose to greedy.
#[test]
fn whole_metagenome_hierarchical_vs_greedy() {
    let cfg = whole_metagenome_samples()
        .into_iter()
        .find(|s| s.sid == "S8")
        .expect("S8 exists");
    let dataset = cfg.generate(0.004, ErrorModel::with_total_rate(0.002), 3);
    let truth = dataset.labels.as_ref().expect("labeled");
    let theta = mrmc::suggest_theta(&dataset.reads, &MrMcConfig::whole_metagenome(), 80);

    let run = |mode| {
        MrMcMinH::new(MrMcConfig {
            theta,
            mode,
            ..MrMcConfig::whole_metagenome()
        })
        .run(&dataset.reads)
        .expect("run")
    };
    let hier = run(Mode::Hierarchical);
    let greedy = run(Mode::Greedy);

    let acc_h = weighted_accuracy(&hier.assignment, truth, 2).expect("clusters exist");
    let acc_g = weighted_accuracy(&greedy.assignment, truth, 2).expect("clusters exist");
    assert!(acc_h > 90.0, "hierarchical accuracy {acc_h}");
    assert!(acc_g > 80.0, "greedy accuracy {acc_g}");
    assert!(
        acc_h >= acc_g - 5.0,
        "hierarchical ({acc_h}) should not lose to greedy ({acc_g}) by much"
    );
}

/// 16S regime: MrMC-MinH^h must track DOTUR (the alignment gold
/// standard) on cluster structure while being far faster — the
/// headline claim of Table V.
#[test]
fn sixteen_s_mrmc_tracks_dotur() {
    let cfg = environmental_samples()[0]; // 53R
    let dataset = cfg.generate(0.02, 5);
    let theta = 0.95;

    let t_mrmc = std::time::Instant::now();
    let mrmc_h = MrMcMinH::new(MrMcConfig {
        theta,
        mode: Mode::Hierarchical,
        ..MrMcConfig::sixteen_s()
    })
    .run(&dataset.reads)
    .expect("run")
    .assignment;
    let mrmc_secs = t_mrmc.elapsed().as_secs_f64();

    let t_dotur = std::time::Instant::now();
    let dotur = DoturLike { theta }.cluster(&dataset.reads);
    let dotur_secs = t_dotur.elapsed().as_secs_f64();
    let cdhit = CdHitLike {
        theta,
        ..Default::default()
    }
    .cluster(&dataset.reads);

    let (m, d, c) = (
        mrmc_h.num_clusters_at_least(2) as f64,
        dotur.num_clusters_at_least(2) as f64,
        cdhit.num_clusters_at_least(2) as f64,
    );
    // Table V shape: counts comparable across methods (within 25%).
    assert!((m - d).abs() / d < 0.25, "mrmc {m} vs dotur {d}");
    assert!((c - d).abs() / d < 0.25, "cdhit {c} vs dotur {d}");
    // The headline: all-pairs alignment is orders of magnitude slower
    // than the minhash pipeline (paper: 5129 s vs 8.4 s on 53R).
    assert!(
        dotur_secs > mrmc_secs * 5.0,
        "dotur {dotur_secs:.2}s vs mrmc {mrmc_secs:.2}s"
    );

    // And they agree pairwise (high ARI) with each other.
    let ari = adjusted_rand_index(&mrmc_h, dotur.labels());
    assert!(ari > 0.7, "ARI(mrmc, dotur) = {ari}");
}

/// Huse benchmark: MrMC and MC-LSH cluster counts land near the
/// 43-genome ground truth (Table IV's bold-value shape), with
/// singleton error-reads excluded like the paper's size floor.
#[test]
fn huse_cluster_counts() {
    let dataset = huse_16s(0.03, 0.0008, 9); // ~276 reads
    let theta = 0.95;
    let mrmc_h = MrMcMinH::new(MrMcConfig {
        theta,
        mode: Mode::Hierarchical,
        ..MrMcConfig::sixteen_s()
    })
    .run(&dataset.reads)
    .expect("run")
    .assignment;
    let mclsh = McLsh {
        theta,
        ..Default::default()
    }
    .cluster(&dataset.reads);

    let truth_k = 43.0;
    let err = |n: usize| ((n as f64) - truth_k).abs() / truth_k;
    assert!(
        err(mrmc_h.num_clusters_at_least(2)) < 0.30,
        "mrmc count {} vs truth 43",
        mrmc_h.num_clusters_at_least(2)
    );
    assert!(
        err(mclsh.num_clusters_at_least(2)) < 0.30,
        "mc-lsh count {} vs truth 43",
        mclsh.num_clusters_at_least(2)
    );
    // Clusters are pure: each should be dominated by one reference.
    let truth = dataset.labels.as_ref().expect("labeled");
    let acc = weighted_accuracy(&mrmc_h, truth, 2).expect("clusters exist");
    assert!(acc > 95.0, "accuracy {acc}");
}

/// The Pig path and the native path must produce the same flat
/// clustering for the hierarchical variant (same k, hashes via
/// different-but-equivalent machinery, same linkage/θ).
#[test]
fn pig_script_end_to_end_agrees_with_native_shape() {
    let cfg = whole_metagenome_samples()
        .into_iter()
        .find(|s| s.sid == "S8")
        .expect("S8 exists");
    let dataset = cfg.generate(0.001, ErrorModel::perfect(), 11); // 50 reads
                                                                  // θ must be chosen on the Pig family's similarity scale (see
                                                                  // mrmc::udfs::suggest_theta_pig).
    let theta = mrmc::udfs::suggest_theta_pig(&dataset.reads, 5, 64, 1_048_583, 50);
    let mut fasta = Vec::new();
    write_fasta(&mut fasta, &dataset.reads, 0).expect("serialize");

    let dfs = Arc::new(
        Dfs::new(DfsConfig {
            block_size: 16 * 1024,
            replication: 1,
            nodes: 2,
        })
        .expect("config"),
    );
    dfs.put("/in.fa", fasta, false).expect("stage");

    let mut params = HashMap::new();
    for (k, v) in [
        ("INPUT", "/in.fa"),
        ("KMER", "5"),
        ("NUMHASH", "64"),
        ("DIV", "1048583"),
        ("LINK", "average"),
        ("OUTPUT1", "/out/h"),
        ("OUTPUT2", "/out/g"),
    ] {
        params.insert(k.to_string(), v.to_string());
    }
    params.insert("CUTOFF".to_string(), format!("{theta}"));
    let script = parse_script(algorithm3_script(), &params).expect("parse");
    let mut registry = UdfRegistry::with_builtins();
    register_mrmc_udfs(&mut registry);
    let report = PigRunner::new(Arc::clone(&dfs), registry)
        .run(&script)
        .expect("run");
    assert_eq!(report.stored.len(), 2);

    // Both outputs cover every read exactly once.
    for path in &report.stored {
        let text = String::from_utf8(dfs.read(path).expect("read").to_vec()).unwrap();
        assert_eq!(text.lines().count(), dataset.reads.len(), "{path}");
        let truth = dataset.labels.as_ref().unwrap();
        // Parse labels back, check ARI against ground truth is strong
        // (perfect reads, order-level separation).
        let mut by_id: HashMap<String, usize> = HashMap::new();
        for line in text.lines() {
            let inner = line.trim_start_matches('(').trim_end_matches(')');
            let (id, label) = inner.split_once(',').expect("two fields");
            by_id.insert(id.to_string(), label.parse().expect("int label"));
        }
        let labels: Vec<usize> = dataset.reads.iter().map(|r| by_id[&r.id]).collect();
        let assignment = mrmc_minh_suite::cluster::ClusterAssignment::from_labels(labels);
        let ari = adjusted_rand_index(&assignment, truth);
        assert!(ari > 0.8, "{path}: ARI {ari}");
    }
}

/// Complete-linkage invariant on real pipeline output: every
/// within-cluster sketch pair clears θ.
#[test]
fn complete_linkage_invariant_via_pipeline() {
    let cfg = whole_metagenome_samples()
        .into_iter()
        .find(|s| s.sid == "S10")
        .expect("S10 exists");
    let dataset = cfg.generate(0.002, ErrorModel::with_total_rate(0.002), 2);
    let theta = 0.5;
    let config = MrMcConfig {
        theta,
        mode: Mode::Hierarchical,
        linkage: Linkage::Complete,
        num_hashes: 64,
        ..MrMcConfig::whole_metagenome()
    };
    let result = MrMcMinH::new(config).run(&dataset.reads).expect("run");

    // Recompute sketches independently and verify the guarantee.
    let hasher = mrmc_minh_suite::minhash::MinHasher::for_kmer_size(
        config.kmer,
        config.num_hashes,
        config.seed,
    );
    let sketches: Vec<_> = dataset
        .reads
        .iter()
        .map(|r| hasher.sketch_sequence(&r.seq).expect("sketch"))
        .collect();
    for i in 0..sketches.len() {
        for j in (i + 1)..sketches.len() {
            if result.assignment.label(i) == result.assignment.label(j) {
                let s = mrmc_minh_suite::minhash::positional_similarity(&sketches[i], &sketches[j]);
                assert!(
                    s >= theta - 1e-9,
                    "pair ({i},{j}) similarity {s} below θ inside one cluster"
                );
            }
        }
    }
}

/// W.Sim is computable and sane on pipeline output (the metric the
/// paper reports in every table).
#[test]
fn wsim_metric_on_pipeline_output() {
    let cfg = whole_metagenome_samples()
        .into_iter()
        .find(|s| s.sid == "S1")
        .expect("S1 exists");
    let dataset = cfg.generate(0.004, ErrorModel::with_total_rate(0.002), 8);
    let theta = mrmc::suggest_theta(&dataset.reads, &MrMcConfig::whole_metagenome(), 60);
    let result = MrMcMinH::new(MrMcConfig {
        theta,
        ..MrMcConfig::whole_metagenome()
    })
    .run(&dataset.reads)
    .expect("run");
    let wsim = weighted_similarity(
        &result.assignment,
        &dataset.reads,
        &SimilarityOptions {
            max_pairs_per_cluster: 40,
            ..Default::default()
        },
    )
    .expect("clusters exist");
    // Shotgun reads from disjoint loci: the paper's Table III W.Sim
    // sits in the 50–61% band; ours must land in the same regime.
    assert!((45.0..70.0).contains(&wsim), "W.Sim {wsim}");
}
