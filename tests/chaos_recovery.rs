//! The chaos acceptance tests: under any single injected node failure
//! or up to two injected task panics per stage, the MrMC-MinH pipeline
//! must complete with **bit-identical** clustering output, and an
//! identical [`FaultPlan`] must yield identical recovery counters on
//! every run.

use mrmc::{Mode, MrMcConfig, MrMcMinH, MrMcResult};
use mrmc_mapreduce::chaos::{FaultPlan, Phase, RecoveryCounters};
use mrmc_seqio::SeqRecord;
use mrmc_simulate::{CommunitySpec, ErrorModel, ReadSimulator, SpeciesSpec, TaxRank};

fn two_species(n: usize, seed: u64) -> Vec<SeqRecord> {
    let spec = CommunitySpec {
        species: vec![
            SpeciesSpec {
                name: "a".into(),
                gc: 0.40,
                abundance: 1.0,
            },
            SpeciesSpec {
                name: "b".into(),
                gc: 0.60,
                abundance: 1.0,
            },
        ],
        rank: TaxRank::Phylum,
        genome_len: 50_000,
    };
    let sim = ReadSimulator::new(800, ErrorModel::with_total_rate(0.002));
    spec.generate("chaos", n, &sim, seed).reads
}

fn runner() -> MrMcMinH {
    MrMcMinH::new(MrMcConfig {
        kmer: 5,
        num_hashes: 64,
        theta: 0.55,
        mode: Mode::Hierarchical,
        map_tasks: 4,
        ..Default::default()
    })
}

fn assert_identical(chaotic: &MrMcResult, clean: &MrMcResult) {
    assert_eq!(
        chaotic.assignment, clean.assignment,
        "cluster labels drifted"
    );
    assert_eq!(chaotic.dendrogram, clean.dendrogram, "dendrogram drifted");
}

#[test]
fn single_node_death_yields_identical_clustering() {
    let reads = two_species(40, 11);
    let r = runner();
    let clean = r.run(&reads).unwrap();
    // A node death in either stage (job 0 = sketch, job 1 = similarity)
    // must be absorbed by map re-execution. Tasks are placed on node
    // `task % nodes`, so with 4 map tasks only nodes 0–3 hold outputs.
    for (job, node) in [(0usize, 2usize), (1, 1)] {
        let inj = FaultPlan::new().node_death_after_map(job, node).injector();
        let chaotic = r.run_with_injector(&reads, &inj).unwrap();
        assert_identical(&chaotic, &clean);
        assert!(
            chaotic.recovery().maps_reexecuted_node_loss >= 1,
            "node death in job {job} left no re-execution trace"
        );
    }
}

#[test]
fn two_panics_per_stage_yield_identical_clustering() {
    let reads = two_species(40, 12);
    let r = runner();
    let clean = r.run(&reads).unwrap();
    let inj = FaultPlan::new()
        .task_panic(0, Phase::Map, 0, 2)
        .task_panic(0, Phase::Map, 3, 1)
        .task_panic(1, Phase::Map, 1, 2)
        .task_panic(1, Phase::Map, 2, 2)
        .injector();
    let chaotic = r.run_with_injector(&reads, &inj).unwrap();
    assert_identical(&chaotic, &clean);
    // 2 + 1 + 2 + 2 failed attempts, each retried.
    assert_eq!(chaotic.recovery().tasks_retried, 7);
    assert!(clean.recovery().is_clean());
}

#[test]
fn straggler_speculation_yields_identical_clustering() {
    let reads = two_species(40, 13);
    let r = runner();
    let clean = r.run(&reads).unwrap();
    let inj = FaultPlan::new()
        .task_slowdown(0, Phase::Map, 2, 25)
        .injector();
    let chaotic = r.run_with_injector(&reads, &inj).unwrap();
    assert_identical(&chaotic, &clean);
    assert_eq!(chaotic.recovery().speculative_wins, 1);
}

#[test]
fn identical_plan_gives_identical_counters_across_runs() {
    let reads = two_species(40, 14);
    let r = runner();
    let plan = FaultPlan::new()
        .task_panic(0, Phase::Map, 1, 2)
        .task_slowdown(1, Phase::Map, 0, 15)
        .node_death_after_map(0, 2)
        .node_death_after_map(1, 6);
    let mut ledgers: Vec<RecoveryCounters> = Vec::new();
    let mut outputs = Vec::new();
    for _ in 0..3 {
        let run = r
            .run_with_injector(&reads, &plan.clone().injector())
            .unwrap();
        ledgers.push(run.recovery());
        outputs.push(run.assignment);
    }
    assert!(
        ledgers.windows(2).all(|w| w[0] == w[1]),
        "recovery ledgers diverged across identical plans: {ledgers:?}"
    );
    assert!(outputs.windows(2).all(|w| w[0] == w[1]));
    assert!(ledgers[0].total_events() > 0, "plan injected nothing");
}
