//! Integration: the FASTQ ingestion path — parse, quality-trim,
//! cluster — covering the "second/third-generation data" claim of the
//! paper's conclusion.

use mrmc::{MrMcConfig, MrMcMinH};
use mrmc_minh_suite::metrics::weighted_accuracy;
use mrmc_minh_suite::seqio::{read_fastq_bytes, write_fastq, FastqRecord, SeqRecord};
use mrmc_minh_suite::simulate::{CommunitySpec, ErrorModel, ReadSimulator, SpeciesSpec, TaxRank};

/// Wrap simulated reads as FASTQ with high-quality bodies and a
/// low-quality 3' tail of `tail` bases.
fn to_fastq(reads: &[SeqRecord], tail: usize) -> Vec<FastqRecord> {
    reads
        .iter()
        .map(|r| {
            let n = r.seq.len();
            let good = n.saturating_sub(tail);
            let mut qual = vec![b'I'; good]; // Q40
            qual.extend(vec![b'!'; n - good]); // Q0 tail
            FastqRecord {
                record: r.clone(),
                qual,
            }
        })
        .collect()
}

#[test]
fn fastq_round_trip_trim_and_cluster() {
    let spec = CommunitySpec {
        species: vec![
            SpeciesSpec {
                name: "a".into(),
                gc: 0.40,
                abundance: 1.0,
            },
            SpeciesSpec {
                name: "b".into(),
                gc: 0.60,
                abundance: 1.0,
            },
        ],
        rank: TaxRank::Phylum,
        genome_len: 50_000,
    };
    let sim = ReadSimulator::new(820, ErrorModel::with_total_rate(0.002));
    let dataset = spec.generate("fq", 60, &sim, 17);
    let truth = dataset.labels.as_ref().expect("labeled");

    // Serialize as FASTQ with 20 junk bases of Q0 tail, round-trip,
    // then trim the tails back off.
    let fastq = to_fastq(&dataset.reads, 20);
    let mut bytes = Vec::new();
    write_fastq(&mut bytes, &fastq).expect("serialize");
    let parsed = read_fastq_bytes(&bytes).expect("parse");
    assert_eq!(parsed.len(), dataset.len());

    let trimmed: Vec<SeqRecord> = parsed
        .iter()
        .map(|r| r.quality_trim(10, 20.0).record)
        .collect();
    // Tails are gone, bodies intact.
    for (t, orig) in trimmed.iter().zip(&dataset.reads) {
        assert!(
            t.len() >= orig.len() - 30,
            "over-trimmed: {} vs {}",
            t.len(),
            orig.len()
        );
        assert!(
            t.len() <= orig.len() - 11,
            "under-trimmed: {} vs {}",
            t.len(),
            orig.len()
        );
        assert_eq!(&t.seq[..], &orig.seq[..t.len()]);
    }

    // The trimmed reads cluster as well as the originals.
    let theta = mrmc::suggest_theta(&trimmed, &MrMcConfig::whole_metagenome(), 50);
    let result = MrMcMinH::new(MrMcConfig {
        theta,
        num_hashes: 64,
        ..MrMcConfig::whole_metagenome()
    })
    .run(&trimmed)
    .expect("run");
    let acc = weighted_accuracy(&result.assignment, truth, 2).expect("clusters");
    assert!(acc > 90.0, "accuracy {acc}");
}

#[test]
fn diversity_metrics_on_pipeline_output() {
    use mrmc_minh_suite::metrics::{diversity, rarefaction};
    use mrmc_minh_suite::simulate::environmental_samples;

    let cfg = environmental_samples()[4]; // sample "137"
    let dataset = cfg.generate(0.02, 23);
    let result = MrMcMinH::new(MrMcConfig {
        theta: 0.95,
        ..MrMcConfig::sixteen_s()
    })
    .run(&dataset.reads)
    .expect("run");

    let d = diversity(&result.assignment);
    let true_richness = dataset
        .labels
        .as_ref()
        .map(|l| {
            let mut v = l.clone();
            v.sort_unstable();
            v.dedup();
            v.len()
        })
        .expect("labeled");
    // Observed OTUs bracket the truth loosely (singleton errors add,
    // rare species missing from the sample subtract) and Chao1 is at
    // least the observed count.
    assert!(d.observed > 0);
    assert!(d.chao1 >= d.observed as f64);
    assert!(
        (d.observed as f64) < 3.0 * true_richness as f64,
        "observed {} vs truth {true_richness}",
        d.observed
    );
    // Rarefaction sanity on real output.
    let half = rarefaction(&result.assignment, dataset.len() / 2);
    let full = rarefaction(&result.assignment, dataset.len());
    assert!(half < full);
    assert!((full - d.observed as f64).abs() < 1e-6);
    // Shannon/Simpson defined and bounded.
    assert!(d.shannon >= 0.0);
    assert!((0.0..=1.0).contains(&d.simpson));
}
