//! A miniature of the paper's Figure 2: simulated-cluster runtime of
//! the hierarchical pipeline vs. node count and input size.
//!
//! Kernel costs are measured on this machine, then list-scheduled onto
//! a virtual 2–12-node EMR-style cluster (see DESIGN.md §2 for the
//! substitution rationale).
//!
//! ```sh
//! cargo run --release --example scaling
//! ```

use mrmc::{CostCalibration, MrMcConfig};
use mrmc_minh_suite::mapreduce::JobCostModel;

fn main() {
    let config = MrMcConfig::whole_metagenome();
    println!(
        "calibrating kernel costs (k = {}, {} hashes)...",
        config.kmer, config.num_hashes
    );
    let calibration = CostCalibration::measure(&config, 1000);
    println!(
        "  sketch: {:.1} µs/read, similarity: {:.2} µs/pair\n",
        calibration.sketch_per_read * 1e6,
        calibration.sim_per_pair * 1e6
    );

    let model = JobCostModel::default();
    let nodes = [2usize, 4, 6, 8, 10, 12];
    let read_counts = [1_000u64, 10_000, 100_000, 1_000_000, 10_000_000];

    print!("{:>12}", "reads\\nodes");
    for n in nodes {
        print!("{n:>10}");
    }
    println!();
    for reads in read_counts {
        print!("{reads:>12}");
        for n in nodes {
            let minutes = calibration.simulate(reads, n, &model) / 60.0;
            print!("{minutes:>9.1}m");
        }
        println!();
    }
    println!("\n(large inputs speed up with nodes; the 1000-read row is flat — Figure 2's shape)");
}
