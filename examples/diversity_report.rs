//! Species-diversity estimation from a clustering — the paper's
//! motivation (§I): "successful grouping of sequence reads … allows
//! computation of species diversity metrics".
//!
//! ```sh
//! cargo run --release --example diversity_report -- [SID] [scale]
//! ```

use mrmc::{MrMcConfig, MrMcMinH};
use mrmc_minh_suite::metrics::{diversity, rarefaction};
use mrmc_minh_suite::simulate::environmental_samples;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let sid = args.get(1).map(String::as_str).unwrap_or("115R");
    let scale: f64 = args
        .get(2)
        .map(|s| s.parse().expect("scale must be a number in (0,1]"))
        .unwrap_or(0.05);

    let cfg = environmental_samples()
        .into_iter()
        .find(|s| s.sid == sid)
        .unwrap_or_else(|| panic!("unknown sample {sid}"));
    let dataset = cfg.generate(scale, 31);
    let true_richness = dataset
        .labels
        .as_ref()
        .map(|l| {
            let mut v = l.clone();
            v.sort_unstable();
            v.dedup();
            v.len()
        })
        .expect("simulated samples carry ground truth");

    println!(
        "sample {sid} ({}): {} reads at scale {scale}, {} species actually sampled\n",
        cfg.site,
        dataset.len(),
        true_richness
    );

    let result = MrMcMinH::new(MrMcConfig {
        theta: 0.95,
        ..MrMcConfig::sixteen_s()
    })
    .run(&dataset.reads)
    .expect("run");

    let d = diversity(&result.assignment);
    println!("diversity indices over MrMC-MinH^h OTUs:");
    println!("  observed OTUs      {:>10}", d.observed);
    println!("  Chao1 richness     {:>10.1}", d.chao1);
    println!("  Shannon (nats)     {:>10.3}", d.shannon);
    println!("  Simpson (1 - Σp²)  {:>10.3}", d.simpson);
    println!("  singletons f1      {:>10}", d.singletons);
    println!("  doubletons f2      {:>10}", d.doubletons);
    println!("  ground-truth richness {:>7}\n", true_richness);

    println!("rarefaction curve (expected OTUs in a subsample):");
    println!("{:>10} {:>12}", "reads", "E[OTUs]");
    let n = dataset.len();
    for frac in [0.1, 0.25, 0.5, 0.75, 1.0] {
        let m = ((n as f64) * frac) as usize;
        println!("{:>10} {:>12.1}", m, rarefaction(&result.assignment, m));
    }
    println!(
        "\n(A still-rising curve at full depth = the sample has not saturated the\n\
         community's diversity — the Sogin 'rare biosphere' signature.)"
    );
}
