//! A miniature of the paper's Table V study: one 16S environmental
//! sample, all eight methods.
//!
//! ```sh
//! cargo run --release --example environmental_16s -- [SID] [scale]
//! # e.g.
//! cargo run --release --example environmental_16s -- 55R 0.02
//! ```

use std::time::Instant;

use mrmc::{Mode, MrMcConfig, MrMcMinH};
use mrmc_minh_suite::baselines::{
    CdHitLike, Clusterer, DoturLike, EspritLike, McLsh, MothurLike, UclustLike,
};
use mrmc_minh_suite::cluster::ClusterAssignment;
use mrmc_minh_suite::metrics::{weighted_similarity, SimilarityOptions};
use mrmc_minh_suite::simulate::environmental_samples;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let sid = args.get(1).map(String::as_str).unwrap_or("53R");
    let scale: f64 = args
        .get(2)
        .map(|s| s.parse().expect("scale must be a number in (0,1]"))
        .unwrap_or(0.02);

    let config = environmental_samples()
        .into_iter()
        .find(|s| s.sid == sid)
        .unwrap_or_else(|| panic!("unknown sample {sid}"));
    let dataset = config.generate(scale, 13);
    println!(
        "sample {sid} ({}, {} m, {} °C): {} reads at scale {scale}\n",
        config.site,
        config.depth_m,
        config.temp_c,
        dataset.len()
    );

    // Table V settings: k = 15, 50 hash functions, θ = 0.95.
    let theta = 0.95;
    let sim_opts = SimilarityOptions {
        max_pairs_per_cluster: 50,
        ..Default::default()
    };
    println!(
        "{:<14} {:>9} {:>8} {:>10}",
        "method", "#cluster", "W.Sim", "time"
    );

    let run = |name: &str, f: &dyn Fn() -> ClusterAssignment| {
        let t = Instant::now();
        let assignment = f();
        let secs = t.elapsed().as_secs_f64();
        let sim = weighted_similarity(&assignment, &dataset.reads, &sim_opts)
            .map(|s| format!("{s:>7.2}%"))
            .unwrap_or_else(|| "      -".into());
        println!(
            "{:<14} {:>9} {} {:>9.2}s",
            name,
            assignment.num_clusters(),
            sim,
            secs
        );
    };

    let mrmc_cfg = |mode| MrMcConfig {
        theta,
        mode,
        ..MrMcConfig::sixteen_s()
    };
    run("MrMC-MinH^h", &|| {
        MrMcMinH::new(mrmc_cfg(Mode::Hierarchical))
            .run(&dataset.reads)
            .expect("run")
            .assignment
    });
    run("MrMC-MinH^g", &|| {
        MrMcMinH::new(mrmc_cfg(Mode::Greedy))
            .run(&dataset.reads)
            .expect("run")
            .assignment
    });
    run("MC-LSH", &|| {
        McLsh {
            theta,
            ..Default::default()
        }
        .cluster(&dataset.reads)
    });
    run("UCLUST", &|| {
        UclustLike {
            theta,
            ..Default::default()
        }
        .cluster(&dataset.reads)
    });
    run("CD-HIT", &|| {
        CdHitLike {
            theta,
            ..Default::default()
        }
        .cluster(&dataset.reads)
    });
    run("ESPRIT", &|| {
        EspritLike {
            theta,
            ..Default::default()
        }
        .cluster(&dataset.reads)
    });
    run("DOTUR", &|| DoturLike { theta }.cluster(&dataset.reads));
    run("Mothur", &|| MothurLike { theta }.cluster(&dataset.reads));

    println!("\n(the paper's Table V shape: MrMC-MinH^h tracks DOTUR/Mothur quality at a fraction of their time; CD-HIT under-clusters)");
}
