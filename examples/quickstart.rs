//! Quickstart: cluster a small simulated metagenome with both
//! MrMC-MinH variants and score them against ground truth.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use mrmc::{Mode, MrMcConfig, MrMcMinH};
use mrmc_minh_suite::metrics::{weighted_accuracy, weighted_similarity, SimilarityOptions};
use mrmc_minh_suite::simulate::{CommunitySpec, ErrorModel, ReadSimulator, SpeciesSpec, TaxRank};

fn main() {
    // A 3-species community at order-level separation, 1 000 bp reads
    // — a miniature of the paper's Table II samples.
    let community = CommunitySpec {
        species: vec![
            SpeciesSpec {
                name: "Gluconobacter oxydans".into(),
                gc: 0.61,
                abundance: 1.0,
            },
            SpeciesSpec {
                name: "Rhodospirillum rubrum".into(),
                gc: 0.65,
                abundance: 1.0,
            },
            SpeciesSpec {
                name: "Bacillus anthracis".into(),
                gc: 0.35,
                abundance: 2.0,
            },
        ],
        rank: TaxRank::Order,
        genome_len: 120_000,
    };
    let simulator = ReadSimulator::new(1000, ErrorModel::with_total_rate(0.002));
    let dataset = community.generate("quickstart", 400, &simulator, 42);
    let truth = dataset.labels.as_ref().expect("simulated data is labeled");
    println!(
        "dataset: {} reads, {} species, 1000 bp reads\n",
        dataset.len(),
        dataset.species.len()
    );

    println!(
        "{:<28} {:>9} {:>8} {:>8} {:>9}",
        "algorithm", "#cluster", "W.Acc", "W.Sim", "time"
    );
    for (label, mode) in [
        ("MrMC-MinH^h (hierarchical)", Mode::Hierarchical),
        ("MrMC-MinH^g (greedy)", Mode::Greedy),
    ] {
        let theta = mrmc::suggest_theta(&dataset.reads, &MrMcConfig::whole_metagenome(), 80);
        let config = MrMcConfig {
            theta,
            mode,
            ..MrMcConfig::whole_metagenome()
        };
        let result = MrMcMinH::new(config).run(&dataset.reads).expect("run");
        let acc = weighted_accuracy(&result.assignment, truth, 1).unwrap_or(0.0);
        let sim = weighted_similarity(
            &result.assignment,
            &dataset.reads,
            &SimilarityOptions {
                max_pairs_per_cluster: 50,
                ..Default::default()
            },
        )
        .unwrap_or(0.0);
        println!(
            "{:<28} {:>9} {:>7.2}% {:>7.2}% {:>8.2}s",
            label,
            result.num_clusters(),
            acc,
            sim,
            result.total_time.as_secs_f64()
        );
    }
    println!("\n(hierarchical should edge out greedy on W.Acc/W.Sim; greedy is faster)");
}
