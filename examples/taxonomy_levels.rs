//! Multi-level taxonomy from one run: the paper's "clustering results
//! at different hierarchical taxonomic levels are also produced by
//! setting similarity threshold" (§I) — one dendrogram, many cuts.
//!
//! ```sh
//! cargo run --release --example taxonomy_levels
//! ```

use mrmc::{Mode, MrMcConfig, MrMcMinH};
use mrmc_minh_suite::metrics::weighted_accuracy;
use mrmc_minh_suite::simulate::{CommunitySpec, ErrorModel, ReadSimulator, SpeciesSpec, TaxRank};

fn main() {
    // Four species in two genera: sp0/sp1 are close (one ancestral
    // composition), sp2/sp3 close, the two pairs far apart — so the
    // dendrogram has genuine structure at two scales.
    let community = CommunitySpec {
        species: (0..4)
            .map(|i| SpeciesSpec {
                name: format!("sp{i}"),
                gc: if i < 2 { 0.42 } else { 0.58 },
                abundance: 1.0,
            })
            .collect(),
        rank: TaxRank::Genus,
        genome_len: 120_000,
    };
    let simulator = ReadSimulator::new(1000, ErrorModel::with_total_rate(0.002));
    let dataset = community.generate("taxonomy", 240, &simulator, 21);
    let truth = dataset.labels.as_ref().expect("labeled");

    let theta = mrmc::suggest_theta(&dataset.reads, &MrMcConfig::whole_metagenome(), 80);
    let result = MrMcMinH::new(MrMcConfig {
        theta,
        mode: Mode::Hierarchical,
        ..MrMcConfig::whole_metagenome()
    })
    .run(&dataset.reads)
    .expect("run");

    println!(
        "one hierarchical run (θ = {theta:.2}): {} clusters, dendrogram with {} merges\n",
        result.num_clusters(),
        result
            .dendrogram
            .as_ref()
            .map(|d| d.merges.len())
            .unwrap_or(0)
    );

    // Sweep the cutoff over the same dendrogram — no recomputation.
    println!("{:>6} {:>10} {:>9}", "θ", "#cluster", "W.Acc");
    let thetas = [0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3, 0.2, 0.1];
    for (t, level) in thetas
        .iter()
        .zip(result.taxonomy_levels(&thetas).expect("hierarchical"))
    {
        let acc = weighted_accuracy(&level, truth, 1)
            .map(|a| format!("{a:.1}%"))
            .unwrap_or_else(|| "-".into());
        println!("{t:>6.2} {:>10} {:>9}", level.num_clusters(), acc);
    }
    println!(
        "\nEach row is a cut of the same tree: tight θ separates species, loose θ\n\
         merges them into genus-like groups — the taxonomy the paper's intro promises.\n\
         {} cluster representatives available via result.representatives().",
        result.representatives().len()
    );
}
