//! Run the paper's Algorithm 3 Pig script end-to-end: FASTA on the
//! DFS → parse → lower to Map-Reduce jobs → cluster labels on the DFS.
//!
//! ```sh
//! cargo run --release --example pig_pipeline
//! ```

use std::collections::HashMap;
use std::sync::Arc;

use mrmc::{algorithm3_script, register_mrmc_udfs};
use mrmc_minh_suite::mapreduce::dfs::{Dfs, DfsConfig};
use mrmc_minh_suite::mapreduce::{ClusterSpec, JobCostModel};
use mrmc_minh_suite::pig::{parse_script, PigRunner, UdfRegistry};
use mrmc_minh_suite::seqio::write_fasta;
use mrmc_minh_suite::simulate::{CommunitySpec, ErrorModel, ReadSimulator, SpeciesSpec, TaxRank};

fn main() {
    // 1. Simulate a small 2-species amplicon sample and stage it on
    //    the (simulated) HDFS.
    let community = CommunitySpec {
        species: vec![
            SpeciesSpec {
                name: "A".into(),
                gc: 0.45,
                abundance: 1.0,
            },
            SpeciesSpec {
                name: "B".into(),
                gc: 0.55,
                abundance: 1.0,
            },
        ],
        rank: TaxRank::Phylum,
        genome_len: 150,
    };
    let simulator = ReadSimulator::new(150, ErrorModel::with_total_rate(0.005));
    let dataset = community.generate("pig", 60, &simulator, 3);
    let mut fasta = Vec::new();
    write_fasta(&mut fasta, &dataset.reads, 0).expect("serialize FASTA");

    let dfs = Arc::new(
        Dfs::new(DfsConfig {
            block_size: 16 * 1024,
            replication: 2,
            nodes: 4,
        })
        .expect("valid DFS config"),
    );
    dfs.put("/data/reads.fa", fasta, false)
        .expect("stage input");
    println!(
        "staged {} reads on DFS ({} blocks)",
        dataset.len(),
        dfs.total_blocks()
    );

    // 2. Parameterize and parse the paper's script. θ is selected
    //    unsupervised on the Pig family's similarity scale.
    let theta = mrmc::udfs::suggest_theta_pig(&dataset.reads, 12, 64, 1_048_583, 60);
    println!("suggested CUTOFF = {theta:.3}");
    let mut params = HashMap::new();
    for (k, v) in [
        ("INPUT", "/data/reads.fa"),
        ("KMER", "12"),
        ("NUMHASH", "64"),
        ("DIV", "1048583"),
        ("LINK", "average"),
        ("OUTPUT1", "/out/hierarchical"),
        ("OUTPUT2", "/out/greedy"),
    ] {
        params.insert(k.to_string(), v.to_string());
    }
    params.insert("CUTOFF".to_string(), format!("{theta}"));
    let script = parse_script(algorithm3_script(), &params).expect("script parses");
    println!(
        "parsed Algorithm 3 script: {} statements",
        script.statements.len()
    );

    // 3. Execute on the Map-Reduce substrate.
    let mut registry = UdfRegistry::with_builtins();
    register_mrmc_udfs(&mut registry);
    let runner = PigRunner::new(Arc::clone(&dfs), registry);
    let report = runner.run(&script).expect("script runs");
    println!("stored outputs: {:?}", report.stored);

    // 4. Inspect results + the simulated cluster schedule.
    for path in &report.stored {
        let text = String::from_utf8(dfs.read(path).expect("readable").to_vec()).unwrap();
        let clusters: std::collections::HashSet<&str> = text
            .lines()
            .filter_map(|l| l.rsplit_once(',').map(|(_, c)| c.trim_end_matches(')')))
            .collect();
        println!(
            "  {path}: {} reads, {} clusters",
            text.lines().count(),
            clusters.len()
        );
    }

    println!("\nper-stage Map-Reduce statistics:");
    for stage in report.pipeline.stages() {
        println!(
            "  {:<28} {} map tasks, {} reduce tasks, {} shuffled pairs, {:.1} ms wall",
            stage.name,
            stage.map_stats.len(),
            stage.reduce_stats.len(),
            stage.shuffled_pairs,
            stage.wall.as_secs_f64() * 1e3,
        );
    }
    let model = JobCostModel::default();
    for nodes in [2usize, 8] {
        let total = report
            .pipeline
            .simulated_total(&ClusterSpec::m1_large(nodes), &model);
        println!("simulated wall-clock on {nodes:>2} EMR nodes: {total:.1}s");
    }
}
