//! A miniature of the paper's Table III study: one whole-metagenome
//! sample (default S1), three algorithms, four metrics.
//!
//! ```sh
//! cargo run --release --example whole_metagenome -- [SID] [scale]
//! # e.g.
//! cargo run --release --example whole_metagenome -- S10 0.02
//! ```

use std::time::Instant;

use mrmc::{Mode, MrMcConfig, MrMcMinH};
use mrmc_minh_suite::baselines::{Clusterer, MetaClusterLike};
use mrmc_minh_suite::metrics::{weighted_accuracy, weighted_similarity, SimilarityOptions};
use mrmc_minh_suite::simulate::{whole_metagenome_samples, ErrorModel};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let sid = args.get(1).map(String::as_str).unwrap_or("S1");
    let scale: f64 = args
        .get(2)
        .map(|s| s.parse().expect("scale must be a number in (0,1]"))
        .unwrap_or(0.01);

    let config = whole_metagenome_samples()
        .into_iter()
        .find(|s| s.sid == sid)
        .unwrap_or_else(|| panic!("unknown sample {sid} (use S1..S14 or R1)"));
    let dataset = config.generate(scale, ErrorModel::with_total_rate(0.002), 7);
    println!(
        "sample {sid}: {} reads (scale {scale}), {} species, taxonomic rank {:?}\n",
        dataset.len(),
        config.species.len(),
        config.rank
    );

    let sim_opts = SimilarityOptions {
        max_pairs_per_cluster: 100,
        ..Default::default()
    };
    println!(
        "{:<24} {:>9} {:>8} {:>8} {:>9}",
        "algorithm", "#cluster", "W.Acc", "W.Sim", "time"
    );

    // The paper's Table III uses k = 5 and 100 hash functions.
    for (label, mode) in [
        ("MrMC-MinH^h", Mode::Hierarchical),
        ("MrMC-MinH^g", Mode::Greedy),
    ] {
        let theta = mrmc::suggest_theta(&dataset.reads, &MrMcConfig::whole_metagenome(), 100);
        let cfg = MrMcConfig {
            theta,
            mode,
            ..MrMcConfig::whole_metagenome()
        };
        let result = MrMcMinH::new(cfg).run(&dataset.reads).expect("run");
        report(
            label,
            result.assignment.labels().to_vec(),
            &dataset,
            &sim_opts,
            result.total_time.as_secs_f64(),
        );
    }

    let t = Instant::now();
    let mc = MetaClusterLike::default().cluster(&dataset.reads);
    report(
        "MetaCluster",
        mc.labels().to_vec(),
        &dataset,
        &sim_opts,
        t.elapsed().as_secs_f64(),
    );
}

fn report(
    label: &str,
    labels: Vec<usize>,
    dataset: &mrmc_minh_suite::simulate::Dataset,
    sim_opts: &SimilarityOptions,
    seconds: f64,
) {
    let assignment = mrmc_minh_suite::cluster::ClusterAssignment::from_labels(labels);
    let acc = dataset
        .labels
        .as_ref()
        .and_then(|truth| weighted_accuracy(&assignment, truth, 1))
        .map(|a| format!("{a:>7.2}%"))
        .unwrap_or_else(|| "      -".to_string());
    let sim = weighted_similarity(&assignment, &dataset.reads, sim_opts)
        .map(|s| format!("{s:>7.2}%"))
        .unwrap_or_else(|| "      -".to_string());
    println!(
        "{:<24} {:>9} {} {} {:>8.2}s",
        label,
        assignment.num_clusters(),
        acc,
        sim,
        seconds
    );
}
