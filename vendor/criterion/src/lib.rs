//! Offline stand-in for `criterion` (subset).
//!
//! Implements the benchmark-definition API this workspace uses
//! (`benchmark_group`, `bench_function`, `BenchmarkId`, `Throughput`,
//! `criterion_group!`, `criterion_main!`) over a small wall-clock
//! harness: each benchmark is auto-calibrated to a per-sample duration,
//! run for `sample_size` samples, and reported as min/median/mean
//! nanoseconds per iteration on stdout. No statistics beyond that — the
//! point is relative comparisons (reference vs optimized kernels) in an
//! environment without registry access.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level harness state.
pub struct Criterion {
    sample_size: usize,
    /// Soft time budget per benchmark (calibration target).
    target: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 20,
            target: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(2);
        self
    }

    /// Soft per-benchmark time budget.
    pub fn measurement_time(mut self, t: Duration) -> Criterion {
        self.target = t;
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\ngroup {name}");
        BenchmarkGroup {
            criterion: self,
            name,
        }
    }

    /// Benchmark outside a group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.into().label;
        run_benchmark(&label, self.sample_size, self.target, f);
        self
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Record the per-iteration throughput unit (reported verbatim).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Override the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(2);
        self
    }

    /// Time a closure-driven benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        run_benchmark(&label, self.criterion.sample_size, self.criterion.target, f);
        self
    }

    /// Variant receiving an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Drives the timed iterations of one benchmark.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `iters` calls of `f`, keeping results alive via black_box.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, samples: usize, target: Duration, mut f: F) {
    // Calibrate: grow the iteration count until one sample costs ≥
    // target/samples (so short kernels still accumulate signal).
    let per_sample = target / samples as u32;
    let mut iters = 1u64;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= per_sample || iters >= 1 << 30 {
            break;
        }
        // Aim directly at the target with headroom, at least doubling.
        let scale = (per_sample.as_secs_f64() / b.elapsed.as_secs_f64().max(1e-9)).ceil();
        iters = (iters * 2).max((iters as f64 * scale) as u64).min(1 << 30);
    }
    let mut per_iter: Vec<f64> = (0..samples)
        .map(|_| {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            b.elapsed.as_secs_f64() * 1e9 / iters as f64
        })
        .collect();
    per_iter.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let min = per_iter[0];
    let median = per_iter[per_iter.len() / 2];
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    println!(
        "  {label:<56} min {:>12} | median {:>12} | mean {:>12}  ({iters} iters/sample, {samples} samples)",
        fmt_ns(min),
        fmt_ns(median),
        fmt_ns(mean),
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` labeling.
    pub fn new(function: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }

    /// Parameter-only labeling.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { label: s }
    }
}

/// Throughput annotation (accepted, reported implicitly via labels).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
    BytesDecimal(u64),
}

/// Re-export for `b.iter(|| black_box(...))` call styles.
pub use std::hint::black_box;

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
