//! Collection strategies: `vec` and `btree_set`.

use crate::strategy::Strategy;
use crate::TestRng;
use rand::Rng;
use std::collections::BTreeSet;

/// Accepted size specifications (`0..8`, `n..=n`, exact `n`).
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max_incl: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        rng.random_range(self.min..=self.max_incl)
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            min: r.start,
            max_incl: r.end - 1,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty collection size range");
        SizeRange {
            min: *r.start(),
            max_incl: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange {
            min: n,
            max_incl: n,
        }
    }
}

/// `Vec` of values from `element`, length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.sample(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// `BTreeSet` of values from `element` with cardinality drawn from
/// `size`. Duplicates are retried a bounded number of times, so the
/// minimum is honored whenever the element domain is large enough.
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let target = self.size.sample(rng);
        let mut set = BTreeSet::new();
        let mut attempts = 0usize;
        while set.len() < target && attempts < target * 10 + 16 {
            set.insert(self.element.generate(rng));
            attempts += 1;
        }
        set
    }
}
