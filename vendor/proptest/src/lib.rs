//! Offline stand-in for `proptest` (subset).
//!
//! Implements the property-testing surface this workspace uses:
//! the [`proptest!`] macro, [`Strategy`] with `prop_map` /
//! `prop_recursive`, [`any`], range and regex-subset string
//! strategies, [`collection::vec`] / [`collection::btree_set`],
//! [`sample::select`], [`Just`], [`prop_oneof!`], and the
//! `prop_assert*` macros.
//!
//! Differences from upstream: no shrinking (a failing case reports its
//! generated inputs verbatim), and no `.proptest-regressions`
//! persistence (runs are deterministic per test name, so a failure
//! reproduces by re-running the same binary; the committed regression
//! files are kept for upstream compatibility). Case count defaults to
//! 64 and follows `PROPTEST_CASES`.

use rand::SeedableRng;

pub mod collection;
pub mod sample;
pub mod strategy;
mod string;

pub use strategy::{any, Any, Arbitrary, BoxedStrategy, Just, Map, Strategy, Union};

/// The generator handed to strategies (deterministic per test + case).
pub type TestRng = rand::rngs::StdRng;

/// Number of cases per property (env `PROPTEST_CASES`, default 64).
pub fn cases() -> u64 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(64)
}

fn base_seed(name: &str) -> u64 {
    // FNV-1a over the test name: stable across runs and rustc versions,
    // so each property gets a fixed, reproducible stream.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Drive one property: `body` generates inputs from the given rng and
/// returns `Err((inputs_debug, panic_payload))` when the case fails.
#[doc(hidden)]
pub fn execute<F>(name: &str, body: F)
where
    F: Fn(&mut TestRng) -> Result<(), (String, Box<dyn std::any::Any + Send>)>,
{
    let n = cases();
    let base = base_seed(name);
    for case in 0..n {
        let mut rng = TestRng::seed_from_u64(base ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        if let Err((desc, payload)) = body(&mut rng) {
            eprintln!("[proptest] property '{name}' failed at case {case} of {n}");
            eprintln!("[proptest] inputs: {desc}");
            eprintln!("[proptest] runs are deterministic per test name; re-run to reproduce");
            std::panic::resume_unwind(payload);
        }
    }
}

/// `proptest! { #[test] fn prop(x in strategy, ...) { body } ... }`
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($pname:pat in $pstrat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::execute(stringify!($name), |__pt_rng| {
                    let __pt_vals = ( $( $crate::Strategy::generate(&($pstrat), __pt_rng), )+ );
                    let __pt_desc = format!("{:?}", __pt_vals);
                    match ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(move || {
                        let ( $($pname,)+ ) = __pt_vals;
                        $body
                    })) {
                        Ok(()) => Ok(()),
                        Err(payload) => Err((__pt_desc, payload)),
                    }
                });
            }
        )*
    };
}

/// Assertion macros: no shrinking here, so they are plain assertions
/// whose panics the runner catches and reports with the case inputs.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Uniform choice among strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![ $( $crate::Strategy::boxed($strategy) ),+ ])
    };
}

pub mod prelude {
    pub use crate::strategy::{any, Any, BoxedStrategy, Just, Strategy, Union};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}
