//! Core [`Strategy`] trait and the combinators the workspace uses.

use crate::TestRng;
use rand::Rng;
use std::rc::Rc;

/// A recipe for generating values of one type from a seeded rng.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values through `f`.
    fn prop_map<R, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> R,
    {
        Map { base: self, f }
    }

    /// Type-erase into a clonable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        let strategy = self;
        BoxedStrategy(Rc::new(move |rng| strategy.generate(rng)))
    }

    /// Build recursive values: `self` is the leaf strategy; `recurse`
    /// wraps an inner strategy into branch values. Depth is bounded by
    /// construction (each level mixes leaves back in), so generation
    /// always terminates regardless of branch fan-out.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut strategy = leaf.clone();
        for _ in 0..depth {
            let deeper = recurse(strategy).boxed();
            strategy = Union::new(vec![leaf.clone(), deeper]).boxed();
        }
        strategy
    }
}

/// Type-erased strategy handle (clonable, single-threaded).
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, F, R> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> R,
{
    type Value = R;
    fn generate(&self, rng: &mut TestRng) -> R {
        (self.f)(self.base.generate(rng))
    }
}

/// Uniform choice among same-valued strategies (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "Union requires at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.random_range(0..self.options.len());
        self.options[idx].generate(rng)
    }
}

/// Always produce a clone of one value.
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `any::<T>()` — the canonical full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

pub struct Any<T>(std::marker::PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Types with a full-domain generator. Integers draw uniform bit
/// patterns; floats mix uniform bit patterns (hitting NaN and both
/// infinities) with common special values so ordering code gets
/// exercised on the awkward cases.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => { $(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )* };
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        const SPECIALS: [f64; 10] = [
            0.0,
            -0.0,
            1.0,
            -1.0,
            f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::MIN,
            f64::MAX,
            f64::EPSILON,
        ];
        if rng.next_u64().is_multiple_of(8) {
            SPECIALS[rng.random_range(0..SPECIALS.len())]
        } else {
            f64::from_bits(rng.next_u64())
        }
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f64::arbitrary(rng) as f32
    }
}

macro_rules! range_strategy_int {
    ($($t:ty),*) => { $(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                // Differences of any two values of these types fit u64.
                let span = (self.end as i128 - self.start as i128) as u64;
                let off = rng.random_range(0..span);
                (self.start as i128 + off as i128) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Full 64-bit domain: every bit pattern is in range.
                    return rng.next_u64() as $t;
                }
                let off = rng.random_range(0..span as u64);
                (start as i128 + off as i128) as $t
            }
        }
    )* };
}

range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let unit: f64 = rng.random();
        let v = self.start + (self.end - self.start) * unit;
        // Guard the half-open bound against floating-point rounding.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl Strategy for std::ops::RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty range strategy");
        let unit: f64 = rng.random();
        (start + (end - start) * unit).min(end)
    }
}

/// String literals are regex-subset patterns (see [`crate::string`]).
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::from_pattern(self, rng)
    }
}
