//! Sampling strategies: uniform choice from a fixed list.

use crate::strategy::Strategy;
use crate::TestRng;
use rand::Rng;

/// Uniformly pick one of `options` per generated value.
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select requires at least one option");
    Select { options }
}

pub struct Select<T> {
    options: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.random_range(0..self.options.len());
        self.options[idx].clone()
    }
}
