//! Regex-subset string generation for `&str` strategies.
//!
//! Supports the pattern shapes used in this workspace's property
//! tests: literal characters, character classes with ranges
//! (`[A-Za-z0-9_.:-]`, `[ -~\n]`), and quantifiers `{m}`, `{m,n}`,
//! `?`, `*`, `+`. This is a generator, not a matcher — unsupported
//! syntax panics rather than silently producing wrong strings.

use crate::TestRng;
use rand::Rng;

/// One pattern element: a weighted set of char ranges + repeat bounds.
struct Piece {
    /// Inclusive char ranges; a literal is a single-char range.
    ranges: Vec<(u32, u32)>,
    min: usize,
    max: usize,
}

impl Piece {
    fn width(&self) -> u64 {
        self.ranges
            .iter()
            .map(|&(lo, hi)| (hi - lo + 1) as u64)
            .sum()
    }
}

pub(crate) fn from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let pieces = parse(pattern);
    let mut out = String::new();
    for piece in &pieces {
        let reps = rng.random_range(piece.min..=piece.max);
        let width = piece.width();
        for _ in 0..reps {
            let mut idx = rng.random_range(0..width);
            for &(lo, hi) in &piece.ranges {
                let span = (hi - lo + 1) as u64;
                if idx < span {
                    out.push(char::from_u32(lo + idx as u32).expect("valid char range"));
                    break;
                }
                idx -= span;
            }
        }
    }
    out
}

fn parse(pattern: &str) -> Vec<Piece> {
    let mut chars = pattern.chars().peekable();
    let mut pieces = Vec::new();
    while let Some(c) = chars.next() {
        let ranges = match c {
            '[' => parse_class(&mut chars, pattern),
            '\\' => {
                let e = unescape(chars.next().unwrap_or_else(|| unsupported(pattern)));
                vec![(e as u32, e as u32)]
            }
            '(' | ')' | '|' | '^' | '$' => unsupported(pattern),
            _ => vec![(c as u32, c as u32)],
        };
        let (min, max) = parse_quantifier(&mut chars, pattern);
        pieces.push(Piece { ranges, min, max });
    }
    pieces
}

fn parse_class(
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
    pattern: &str,
) -> Vec<(u32, u32)> {
    // Collect the raw class members first, then resolve `a-z` ranges;
    // this keeps a trailing `-` literal, as in `[A-Za-z0-9_.:-]`.
    let mut members = Vec::new();
    loop {
        match chars.next() {
            Some(']') => break,
            Some('\\') => members.push(unescape(
                chars.next().unwrap_or_else(|| unsupported(pattern)),
            )),
            Some(c) => members.push(c),
            None => unsupported(pattern),
        }
    }
    let mut ranges = Vec::new();
    let mut i = 0;
    while i < members.len() {
        if i + 2 < members.len() && members[i + 1] == '-' {
            let (lo, hi) = (members[i] as u32, members[i + 2] as u32);
            assert!(lo <= hi, "inverted class range in pattern {pattern:?}");
            ranges.push((lo, hi));
            i += 3;
        } else {
            let c = members[i] as u32;
            ranges.push((c, c));
            i += 1;
        }
    }
    assert!(
        !ranges.is_empty(),
        "empty character class in pattern {pattern:?}"
    );
    ranges
}

fn parse_quantifier(
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
    pattern: &str,
) -> (usize, usize) {
    match chars.peek() {
        Some('{') => {
            chars.next();
            let mut body = String::new();
            loop {
                match chars.next() {
                    Some('}') => break,
                    Some(c) => body.push(c),
                    None => unsupported(pattern),
                }
            }
            let parts: Vec<&str> = body.split(',').collect();
            let parse_n = |s: &str| {
                s.trim()
                    .parse::<usize>()
                    .unwrap_or_else(|_| unsupported(pattern))
            };
            match parts.as_slice() {
                [n] => {
                    let n = parse_n(n);
                    (n, n)
                }
                [lo, hi] => (parse_n(lo), parse_n(hi)),
                _ => unsupported(pattern),
            }
        }
        Some('?') => {
            chars.next();
            (0, 1)
        }
        Some('*') => {
            chars.next();
            (0, 8)
        }
        Some('+') => {
            chars.next();
            (1, 8)
        }
        _ => (1, 1),
    }
}

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        '0' => '\0',
        other => other,
    }
}

fn unsupported(pattern: &str) -> ! {
    panic!("unsupported regex pattern for offline proptest stand-in: {pattern:?}")
}
