//! Offline stand-in for `parking_lot` (subset).
//!
//! Thin wrappers over `std::sync` primitives exposing parking_lot's
//! non-poisoning API: `lock()`, `read()`, `write()` return guards
//! directly. A panicked holder aborts the invariant-checking that
//! poisoning would provide — matching parking_lot semantics, where a
//! lock simply unlocks on unwind.

use std::sync::{
    Mutex as StdMutex, MutexGuard, RwLock as StdRwLock, RwLockReadGuard, RwLockWriteGuard,
};

/// A mutex whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Mutex<T> {
        Mutex(StdMutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader–writer lock whose guards never report poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(StdRwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> RwLock<T> {
        RwLock(StdRwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
