//! Offline stand-in for the `rand` crate (0.9 API surface, subset).
//!
//! This build environment has no registry access, so the workspace
//! vendors the small part of `rand` it actually uses: [`rngs::StdRng`]
//! seeded via [`SeedableRng::seed_from_u64`], and the [`Rng`] methods
//! `random::<T>()` and `random_range(range)`. The generator is
//! xoshiro256++ (Blackman–Vigna) seeded through SplitMix64 — not the
//! ChaCha12 of upstream `StdRng`, so *draw sequences differ from
//! upstream rand*; nothing in this workspace depends on the exact
//! stream, only on determinism per seed and statistical quality.

/// Seedable generators (subset: construction from a `u64`).
pub trait SeedableRng: Sized {
    /// Deterministically derive a full generator state from one word.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The user-facing random-value API (subset).
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniformly random value of `T` (`f64` in `[0,1)`, `bool` fair
    /// coin, integers over their full range).
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniform value in `range` (half-open or inclusive integer
    /// ranges). Panics on an empty range.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

/// Types producible by [`Rng::random`].
pub trait Standard: Sized {
    fn sample<R: Rng>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: Rng>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: Rng>(rng: &mut R) -> bool {
        rng.next_u64() >> 63 == 1
    }
}

impl Standard for f64 {
    fn sample<R: Rng>(rng: &mut R) -> f64 {
        // 53 high bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: Rng>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::random_range`].
pub trait SampleRange<T> {
    fn sample_from<R: Rng>(self, rng: &mut R) -> T;
}

/// Uniform draw from `[0, span)` via Lemire's multiply-shift (with a
/// rejection loop, so the draw is exactly uniform).
fn uniform_below<R: Rng>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Rejection zone: values below `2^64 mod span` would be biased.
    let zone = span.wrapping_neg() % span;
    loop {
        let x = rng.next_u64();
        let m = x as u128 * span as u128;
        if (m as u64) >= zone {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Full-width range: every bit pattern is valid.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_below(rng, span as u64) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u: f64 = Standard::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The standard generator: xoshiro256++ seeded via SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let (va, vb, vc): (Vec<u64>, Vec<u64>, Vec<u64>) = (
            (0..8).map(|_| a.next_u64()).collect(),
            (0..8).map(|_| b.next_u64()).collect(),
            (0..8).map(|_| c.next_u64()).collect(),
        );
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = r.random_range(3u64..17);
            assert!((3..17).contains(&x));
            let y = r.random_range(0usize..=4);
            assert!(y <= 4);
            let f = r.random::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn unit_interval_roughly_uniform() {
        let mut r = StdRng::seed_from_u64(2);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| r.random::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut r = StdRng::seed_from_u64(0);
        r.random_range(5u32..5);
    }
}
