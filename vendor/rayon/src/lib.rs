//! Offline stand-in for `rayon` (subset).
//!
//! Exposes the `par_iter()` / `into_par_iter()` entry points and the
//! adapters this workspace uses (`map`, `for_each`, `collect`, `sum`).
//! Work is executed eagerly on `std::thread::scope` workers when the
//! machine has more than one core and the job is large enough to
//! amortize thread spawn; otherwise it runs inline. Output order always
//! matches input order, so results are bit-identical to a sequential
//! run — the property the similarity-matrix builder relies on.

/// Number of worker threads for parallel execution.
fn workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Below this many items, thread spawn costs more than it saves.
const PAR_THRESHOLD: usize = 64;

/// Run `f` over `items`, returning results in input order. Spawns
/// scoped threads over contiguous chunks when worthwhile.
fn run_ordered<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let threads = workers().min(n.max(1));
    if threads <= 1 || n < PAR_THRESHOLD {
        return items.into_iter().map(f).collect();
    }
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
    let chunk_len = n.div_ceil(threads);
    let mut items = items;
    // Split off from the back so each drain is O(chunk).
    while !items.is_empty() {
        let at = items.len().saturating_sub(chunk_len);
        chunks.push(items.split_off(at));
    }
    chunks.reverse();
    let mut out: Vec<Vec<R>> = Vec::new();
    std::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| s.spawn(|| chunk.into_iter().map(&f).collect::<Vec<R>>()))
            .collect();
        out = handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect();
    });
    out.into_iter().flatten().collect()
}

/// A materialized "parallel" iterator: items plus pending adapters are
/// applied on [`ParIter::for_each`] / [`ParIter::collect`] / terminal ops.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    pub fn map<R: Send, F>(self, f: F) -> ParIter<R>
    where
        F: Fn(T) -> R + Sync,
    {
        ParIter {
            items: run_ordered(self.items, f),
        }
    }

    pub fn filter<F>(self, f: F) -> ParIter<T>
    where
        F: Fn(&T) -> bool + Sync,
    {
        ParIter {
            items: self.items.into_iter().filter(|t| f(t)).collect(),
        }
    }

    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        run_ordered(self.items, f);
    }

    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }

    pub fn sum<S: std::iter::Sum<T>>(self) -> S {
        self.items.into_iter().sum()
    }

    pub fn count(self) -> usize {
        self.items.len()
    }
}

/// `vec.into_par_iter()` / owned containers.
pub trait IntoParallelIterator {
    type Item: Send;
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl<T: Send> IntoParallelIterator for ParIter<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        self
    }
}

/// `slice.par_iter()` — iterate references without consuming.
pub trait IntoParallelRefIterator<'a> {
    type Item: Send + 'a;
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParIter};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<usize> = (0..500).collect();
        let doubled: Vec<usize> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..500).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn for_each_with_mutable_slices() {
        let mut data = vec![0u32; 300];
        let parts: Vec<(usize, &mut [u32])> = data.chunks_mut(10).enumerate().collect();
        parts.into_par_iter().for_each(|(i, chunk)| {
            for (j, slot) in chunk.iter_mut().enumerate() {
                *slot = (i * 10 + j) as u32;
            }
        });
        assert_eq!(data, (0..300).collect::<Vec<u32>>());
    }

    #[test]
    fn sum_matches_sequential() {
        let v: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let s: f64 = v.par_iter().map(|&x| x).sum();
        assert_eq!(s, 4950.0);
    }
}
