//! Offline stand-in for the `bytes` crate (subset).
//!
//! [`Bytes`] is a cheaply cloneable, sliceable, immutable byte buffer:
//! an `Arc<[u8]>` plus a window. `clone` and `slice` are O(1) and share
//! the underlying allocation, which is the property
//! `mrmc_mapreduce::dfs` relies on for zero-copy block reads.

use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A shared immutable byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Wrap a static slice (no copy).
    pub fn from_static(bytes: &'static [u8]) -> Bytes {
        // Arc<[u8]> from a slice copies; acceptable for the stand-in —
        // semantics (shared immutability) are what matters here.
        Bytes::from(bytes.to_vec())
    }

    /// Copy an arbitrary slice into a new buffer.
    pub fn copy_from_slice(bytes: &[u8]) -> Bytes {
        Bytes::from(bytes.to_vec())
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// O(1) sub-window sharing the same allocation.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(
            lo <= hi && hi <= self.len(),
            "slice {lo}..{hi} out of bounds of {}",
            self.len()
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let data: Arc<[u8]> = v.into();
        let end = data.len();
        Bytes {
            data,
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes::from(v.to_vec())
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Bytes {
        Bytes::from(s.into_bytes())
    }
}

impl From<&str> for Bytes {
    fn from(s: &str) -> Bytes {
        Bytes::from(s.as_bytes().to_vec())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self[..] == other
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self[..].cmp(&other[..])
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self[..].hash(state);
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_shares_and_windows() {
        let b = Bytes::from(b"hello world".to_vec());
        let w = b.slice(6..);
        assert_eq!(w.as_ref(), b"world");
        assert_eq!(w.slice(1..3).as_ref(), b"or");
        assert_eq!(b.len(), 11);
    }

    #[test]
    fn equality_is_content_based() {
        let a = Bytes::from(b"xyz".to_vec());
        let b = Bytes::from_static(b"xyz");
        assert_eq!(a, b);
        assert_eq!(a, *b"xyz".as_slice());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn bad_slice_panics() {
        Bytes::from(b"ab".to_vec()).slice(0..3);
    }
}
