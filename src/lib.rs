//! Umbrella crate for the MrMC-MinH workspace.
//!
//! Re-exports every member crate so the workspace-level integration tests
//! and examples can use a single dependency root.

pub use mrmc;
pub use mrmc_align as align;
pub use mrmc_baselines as baselines;
pub use mrmc_cluster as cluster;
pub use mrmc_mapreduce as mapreduce;
pub use mrmc_metrics as metrics;
pub use mrmc_minhash as minhash;
pub use mrmc_pig as pig;
pub use mrmc_seqio as seqio;
pub use mrmc_server as server;
pub use mrmc_simulate as simulate;
