//! k-mer profile distances.
//!
//! ESPRIT's key trick (paper §II) is replacing the expensive global
//! alignment distance with a k-mer distance computed from word counts;
//! MetaCluster similarly clusters on k-mer frequency vectors with a
//! Spearman distance. Both live here.

use std::collections::HashMap;

/// A multiset of k-mer counts for one sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KmerProfile {
    /// k used to build the profile.
    pub k: usize,
    counts: HashMap<u64, u32>,
    total: u32,
}

impl KmerProfile {
    /// Build a profile from packed k-mers (as produced by
    /// `mrmc_seqio::KmerIter`).
    pub fn from_kmers(k: usize, kmers: impl IntoIterator<Item = u64>) -> KmerProfile {
        let mut counts: HashMap<u64, u32> = HashMap::new();
        let mut total = 0u32;
        for km in kmers {
            *counts.entry(km).or_insert(0) += 1;
            total += 1;
        }
        KmerProfile { k, counts, total }
    }

    /// Total k-mers (with multiplicity).
    pub fn total(&self) -> u32 {
        self.total
    }

    /// Number of distinct k-mers.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// Count of one k-mer.
    pub fn count(&self, kmer: u64) -> u32 {
        self.counts.get(&kmer).copied().unwrap_or(0)
    }

    /// Number of shared k-mers counted with multiplicity:
    /// Σ min(count_a, count_b).
    pub fn shared(&self, other: &KmerProfile) -> u32 {
        // Iterate over the smaller map.
        let (small, large) = if self.counts.len() <= other.counts.len() {
            (self, other)
        } else {
            (other, self)
        };
        small
            .counts
            .iter()
            .map(|(km, &c)| c.min(large.count(*km)))
            .sum()
    }

    /// Frequency vector over the full 4^k alphabet is huge for large k;
    /// expose the sparse counts for rank-based distances instead.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u32)> + '_ {
        self.counts.iter().map(|(&km, &c)| (km, c))
    }
}

/// ESPRIT-style k-mer distance between two profiles:
///
/// `d = 1 - shared / min(total_a, total_b)` — 0 for sequences with
/// identical k-mer multisets, 1 for disjoint ones. This correlates with
/// (and lower-bounds, for small k) the alignment distance, which is why
/// ESPRIT uses it as a cheap pre-filter.
pub fn kmer_distance(a: &KmerProfile, b: &KmerProfile) -> f64 {
    assert_eq!(a.k, b.k, "profiles built with different k");
    let denom = a.total.min(b.total);
    if denom == 0 {
        // Convention: two empty profiles are identical, otherwise maximal.
        return if a.total == b.total { 0.0 } else { 1.0 };
    }
    1.0 - f64::from(a.shared(b)) / f64::from(denom)
}

/// Spearman rank-correlation distance between two k-mer profiles over a
/// fixed small alphabet (MetaCluster uses k=4, 256 features).
///
/// Counts are ranked (average ranks for ties) and the distance is
/// `1 - ρ` scaled to `[0, 1]`, where ρ is the Spearman correlation of
/// the two rank vectors over all `4^k` features.
pub fn spearman_distance(a: &KmerProfile, b: &KmerProfile) -> f64 {
    assert_eq!(a.k, b.k, "profiles built with different k");
    assert!(a.k <= 8, "spearman_distance is for small k (≤ 8)");
    let n = 1usize << (2 * a.k);
    let va: Vec<f64> = (0..n as u64).map(|km| f64::from(a.count(km))).collect();
    let vb: Vec<f64> = (0..n as u64).map(|km| f64::from(b.count(km))).collect();
    let ra = average_ranks(&va);
    let rb = average_ranks(&vb);
    let rho = pearson(&ra, &rb);
    ((1.0 - rho) / 2.0).clamp(0.0, 1.0)
}

/// Precomputed, z-scored rank vector of a profile over the full
/// `4^k` feature space. Spearman distance between two profiles is then
/// a single dot product ([`spearman_from_ranks`]) — the representation
/// the MetaCluster-like baseline caches per read, since it evaluates
/// the same profiles against many partners.
pub fn rank_vector(profile: &KmerProfile) -> Vec<f64> {
    assert!(profile.k <= 8, "rank_vector is for small k (≤ 8)");
    let n = 1usize << (2 * profile.k);
    let counts: Vec<f64> = (0..n as u64)
        .map(|km| f64::from(profile.count(km)))
        .collect();
    let mut ranks = average_ranks(&counts);
    // z-score so Pearson reduces to a dot product / n.
    let nf = n as f64;
    let mean = ranks.iter().sum::<f64>() / nf;
    let var = ranks.iter().map(|r| (r - mean) * (r - mean)).sum::<f64>() / nf;
    let sd = var.sqrt();
    if sd == 0.0 {
        ranks.iter_mut().for_each(|r| *r = 0.0);
    } else {
        ranks.iter_mut().for_each(|r| *r = (*r - mean) / sd);
    }
    ranks
}

/// Spearman distance from two precomputed [`rank_vector`]s; equals
/// [`spearman_distance`] on the originating profiles.
pub fn spearman_from_ranks(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "rank vectors of different k");
    let n = a.len() as f64;
    let rho = a.iter().zip(b).map(|(x, y)| x * y).sum::<f64>() / n;
    // Degenerate (constant) vectors were zeroed: rho = 0 there.
    ((1.0 - rho) / 2.0).clamp(0.0, 1.0)
}

/// Average ranks (1-based) with ties receiving the mean of their span.
fn average_ranks(values: &[f64]) -> Vec<f64> {
    let mut order: Vec<usize> = (0..values.len()).collect();
    order.sort_by(|&i, &j| values[i].partial_cmp(&values[j]).expect("no NaN counts"));
    let mut ranks = vec![0.0; values.len()];
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && values[order[j + 1]] == values[order[i]] {
            j += 1;
        }
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &idx in &order[i..=j] {
            ranks[idx] = avg;
        }
        i = j + 1;
    }
    ranks
}

/// Pearson correlation; 0.0 when either vector is constant.
fn pearson(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len() as f64;
    let ma = a.iter().sum::<f64>() / n;
    let mb = b.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        cov += (x - ma) * (y - mb);
        va += (x - ma) * (x - ma);
        vb += (y - mb) * (y - mb);
    }
    if va == 0.0 || vb == 0.0 {
        0.0
    } else {
        cov / (va.sqrt() * vb.sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(k: usize, kmers: &[u64]) -> KmerProfile {
        KmerProfile::from_kmers(k, kmers.iter().copied())
    }

    #[test]
    fn identical_profiles_distance_zero() {
        let p = profile(2, &[0, 1, 2, 2, 3]);
        assert_eq!(kmer_distance(&p, &p), 0.0);
    }

    #[test]
    fn disjoint_profiles_distance_one() {
        let a = profile(2, &[0, 1]);
        let b = profile(2, &[2, 3]);
        assert_eq!(kmer_distance(&a, &b), 1.0);
    }

    #[test]
    fn shared_counts_multiplicity() {
        let a = profile(2, &[5, 5, 5, 7]);
        let b = profile(2, &[5, 5, 9]);
        assert_eq!(a.shared(&b), 2);
        // d = 1 - 2/min(4,3) = 1 - 2/3
        assert!((kmer_distance(&a, &b) - (1.0 - 2.0 / 3.0)).abs() < 1e-12);
    }

    #[test]
    fn empty_profiles() {
        let e = profile(2, &[]);
        let p = profile(2, &[1]);
        assert_eq!(kmer_distance(&e, &e), 0.0);
        assert_eq!(kmer_distance(&e, &p), 1.0);
    }

    #[test]
    #[should_panic(expected = "different k")]
    fn mismatched_k_panics() {
        let a = profile(2, &[0]);
        let b = profile(3, &[0]);
        kmer_distance(&a, &b);
    }

    #[test]
    fn spearman_identical_is_zero() {
        let p = profile(2, &[0, 1, 1, 2, 2, 2, 3]);
        assert!(spearman_distance(&p, &p) < 1e-9);
    }

    #[test]
    fn spearman_anticorrelated_near_one() {
        // Ranks reversed: counts (3,2,1,0) vs (0,1,2,3) over k=1 (4 features).
        let a = profile(1, &[0, 0, 0, 1, 1, 2]);
        let b = profile(1, &[3, 3, 3, 2, 2, 1]);
        let d = spearman_distance(&a, &b);
        assert!(d > 0.9, "distance {d}");
    }

    #[test]
    fn spearman_bounded() {
        let a = profile(2, &[0, 5, 9]);
        let b = profile(2, &[1, 6, 9, 9]);
        let d = spearman_distance(&a, &b);
        assert!((0.0..=1.0).contains(&d));
    }

    #[test]
    fn average_ranks_handle_ties() {
        let r = average_ranks(&[1.0, 1.0, 2.0]);
        assert_eq!(r, vec![1.5, 1.5, 3.0]);
    }

    #[test]
    fn rank_vector_path_matches_direct_spearman() {
        let a = profile(2, &[0, 5, 9, 9, 14]);
        let b = profile(2, &[1, 5, 5, 9]);
        let ra = rank_vector(&a);
        let rb = rank_vector(&b);
        let via_ranks = spearman_from_ranks(&ra, &rb);
        let direct = spearman_distance(&a, &b);
        assert!((via_ranks - direct).abs() < 1e-9, "{via_ranks} vs {direct}");
    }

    #[test]
    fn rank_vector_self_distance_zero() {
        let p = profile(2, &[0, 1, 1, 7]);
        let r = rank_vector(&p);
        assert!(spearman_from_ranks(&r, &r) < 1e-9);
    }
}
