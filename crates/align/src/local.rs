//! Smith–Waterman local alignment.
//!
//! The paper's metric section mentions local alignments as the
//! alternative to global ("local alignments find the best sub-regions
//! of similar characters"); we provide it for completeness and use it
//! in the UCLUST-like baseline's seed extension step.

use crate::global::{Alignment, AlignmentOp};
use crate::scoring::Scoring;

/// Result of a local alignment: the alignment plus where the aligned
/// region starts in each input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LocalAlignment {
    /// The aligned segment (ops never include leading/trailing gaps).
    pub alignment: Alignment,
    /// Start offset of the aligned region in the first sequence.
    pub start_a: usize,
    /// Start offset of the aligned region in the second sequence.
    pub start_b: usize,
}

/// Smith–Waterman with linear gaps and traceback of the best segment.
pub fn local_align(a: &[u8], b: &[u8], scoring: &Scoring) -> LocalAlignment {
    let (n, m) = (a.len(), b.len());
    let gap = scoring.gap_extend;
    let width = m + 1;

    const TB_STOP: u8 = 3;
    const TB_DIAG: u8 = 0;
    const TB_UP: u8 = 1;
    const TB_LEFT: u8 = 2;

    let mut prev = vec![0i32; width];
    let mut curr = vec![0i32; width];
    let mut tb = vec![TB_STOP; (n + 1) * width];

    let mut best = 0i32;
    let mut best_at = (0usize, 0usize);

    for i in 1..=n {
        let ai = a[i - 1];
        curr[0] = 0;
        for j in 1..=m {
            let diag = prev[j - 1] + scoring.substitution(ai, b[j - 1]);
            let up = prev[j] - gap;
            let left = curr[j - 1] - gap;
            let (mut val, mut dir) = if diag >= up && diag >= left {
                (diag, TB_DIAG)
            } else if up >= left {
                (up, TB_UP)
            } else {
                (left, TB_LEFT)
            };
            if val <= 0 {
                val = 0;
                dir = TB_STOP;
            }
            curr[j] = val;
            tb[i * width + j] = dir;
            if val > best {
                best = val;
                best_at = (i, j);
            }
        }
        std::mem::swap(&mut prev, &mut curr);
    }

    // Traceback from the best cell until a STOP.
    let (mut i, mut j) = best_at;
    let mut ops = Vec::new();
    while i > 0 && j > 0 {
        match tb[i * width + j] {
            TB_DIAG => {
                ops.push(if a[i - 1].eq_ignore_ascii_case(&b[j - 1]) {
                    AlignmentOp::Match
                } else {
                    AlignmentOp::Mismatch
                });
                i -= 1;
                j -= 1;
            }
            TB_UP => {
                ops.push(AlignmentOp::Delete);
                i -= 1;
            }
            TB_LEFT => {
                ops.push(AlignmentOp::Insert);
                j -= 1;
            }
            _ => break,
        }
    }
    ops.reverse();
    LocalAlignment {
        alignment: Alignment { score: best, ops },
        start_a: i,
        start_b: j,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s() -> Scoring {
        Scoring::dna_default()
    }

    #[test]
    fn finds_embedded_exact_match() {
        //          0123456789
        let a = b"TTTTACGTTT";
        let b = b"GGACGTGG";
        let res = local_align(a, b, &s());
        assert_eq!(res.alignment.score, 4);
        assert_eq!(res.alignment.matches(), 4);
        assert_eq!(res.start_a, 4); // "ACGT" begins at a[4]
        assert_eq!(res.start_b, 2); // and at b[2]
    }

    #[test]
    fn no_similarity_gives_short_or_empty_alignment() {
        let res = local_align(b"AAAA", b"CCCC", &s());
        assert_eq!(res.alignment.score, 0);
        assert!(res.alignment.is_empty());
    }

    #[test]
    fn local_never_negative() {
        let res = local_align(b"ACGT", b"TGCA", &s());
        assert!(res.alignment.score >= 0);
    }

    #[test]
    fn empty_inputs() {
        let res = local_align(b"", b"ACGT", &s());
        assert_eq!(res.alignment.score, 0);
        assert!(res.alignment.is_empty());
    }

    #[test]
    fn local_score_at_least_best_common_run() {
        // Common substring "GGGG" of length 4 → score ≥ 4.
        let res = local_align(b"TTGGGGTT", b"AAGGGGAA", &s());
        assert!(res.alignment.score >= 4);
    }
}
