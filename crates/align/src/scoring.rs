//! Alignment scoring schemes.

/// Scoring parameters for DNA alignment.
///
/// Scores are `i32`; gaps are expressed as non-negative *penalties*
/// (subtracted). `gap_open` is charged once per gap plus `gap_extend`
/// per gapped position, so a length-1 gap costs `gap_open + gap_extend`.
/// Linear-gap algorithms use only `gap_extend` with `gap_open == 0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scoring {
    /// Score for two identical bases.
    pub match_score: i32,
    /// Score (typically negative) for two different bases.
    pub mismatch_score: i32,
    /// Penalty charged when a gap is opened (≥ 0).
    pub gap_open: i32,
    /// Penalty charged per gapped position (≥ 0).
    pub gap_extend: i32,
}

impl Scoring {
    /// Conventional DNA scoring: +1 match, −1 mismatch, linear gap −2.
    /// Matches the simple schemes used by 16S OTU pipelines (DOTUR and
    /// kin), where distances are dominated by substitutions.
    pub fn dna_default() -> Scoring {
        Scoring {
            match_score: 1,
            mismatch_score: -1,
            gap_open: 0,
            gap_extend: 2,
        }
    }

    /// Affine scheme close to the EDNAFULL/needle defaults scaled down:
    /// +5 match, −4 mismatch, gap open 10, gap extend 1.
    pub fn dna_affine() -> Scoring {
        Scoring {
            match_score: 5,
            mismatch_score: -4,
            gap_open: 10,
            gap_extend: 1,
        }
    }

    /// Score of aligning bases `a` against `b` (case-insensitive).
    #[inline]
    pub fn substitution(&self, a: u8, b: u8) -> i32 {
        if a.eq_ignore_ascii_case(&b) {
            self.match_score
        } else {
            self.mismatch_score
        }
    }

    /// Cost of a gap of length `len ≥ 1` under this scheme.
    #[inline]
    pub fn gap_cost(&self, len: usize) -> i32 {
        if len == 0 {
            0
        } else {
            self.gap_open + self.gap_extend * len as i32
        }
    }
}

impl Default for Scoring {
    fn default() -> Self {
        Scoring::dna_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn substitution_case_insensitive() {
        let s = Scoring::dna_default();
        assert_eq!(s.substitution(b'A', b'a'), s.match_score);
        assert_eq!(s.substitution(b'A', b'C'), s.mismatch_score);
    }

    #[test]
    fn gap_cost_linear_and_affine() {
        let lin = Scoring::dna_default();
        assert_eq!(lin.gap_cost(0), 0);
        assert_eq!(lin.gap_cost(3), 6);
        let aff = Scoring::dna_affine();
        assert_eq!(aff.gap_cost(1), 11);
        assert_eq!(aff.gap_cost(4), 14);
    }
}
