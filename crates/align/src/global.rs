//! Needleman–Wunsch global alignment (linear and affine gaps).
//!
//! The W.Sim evaluation metric needs the number of matched positions in
//! an *optimal global alignment*, so these functions run a full DP with
//! traceback. For score-only uses (the DOTUR-like distance matrix) a
//! two-row score-only path avoids the O(n·m) traceback matrix.

use crate::scoring::Scoring;

/// One column of an alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlignmentOp {
    /// Both sequences consume a base and they are equal.
    Match,
    /// Both sequences consume a base and they differ.
    Mismatch,
    /// A gap in the second sequence (first consumes a base).
    Delete,
    /// A gap in the first sequence (second consumes a base).
    Insert,
}

/// Result of a pairwise alignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Alignment {
    /// Optimal alignment score under the scoring scheme used.
    pub score: i32,
    /// Alignment operations from start to end.
    pub ops: Vec<AlignmentOp>,
}

impl Alignment {
    /// Number of `Match` columns.
    pub fn matches(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| matches!(op, AlignmentOp::Match))
            .count()
    }

    /// Alignment length (columns).
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True for the empty alignment (both inputs empty).
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Identity = matches / alignment length; 1.0 for the empty
    /// alignment (two empty sequences are trivially identical).
    pub fn identity(&self) -> f64 {
        if self.ops.is_empty() {
            1.0
        } else {
            self.matches() as f64 / self.ops.len() as f64
        }
    }

    /// Render the aligned pair as two gapped ASCII strings.
    pub fn render(&self, a: &[u8], b: &[u8]) -> (String, String) {
        let mut ra = String::with_capacity(self.ops.len());
        let mut rb = String::with_capacity(self.ops.len());
        let (mut i, mut j) = (0usize, 0usize);
        for op in &self.ops {
            match op {
                AlignmentOp::Match | AlignmentOp::Mismatch => {
                    ra.push(a[i] as char);
                    rb.push(b[j] as char);
                    i += 1;
                    j += 1;
                }
                AlignmentOp::Delete => {
                    ra.push(a[i] as char);
                    rb.push('-');
                    i += 1;
                }
                AlignmentOp::Insert => {
                    ra.push('-');
                    rb.push(b[j] as char);
                    j += 1;
                }
            }
        }
        (ra, rb)
    }
}

/// Traceback directions, packed one byte per cell.
const TB_DIAG: u8 = 0;
const TB_UP: u8 = 1; // deletion: consume from `a`
const TB_LEFT: u8 = 2; // insertion: consume from `b`

/// Needleman–Wunsch with linear gap penalty (`scoring.gap_extend` per
/// gapped position; `gap_open` ignored). Full traceback.
#[allow(clippy::needless_range_loop)] // DP row initialisation reads clearest indexed
pub fn global_align(a: &[u8], b: &[u8], scoring: &Scoring) -> Alignment {
    let (n, m) = (a.len(), b.len());
    let gap = scoring.gap_extend;
    let width = m + 1;

    // Score rows (rolling) + full traceback matrix.
    let mut prev: Vec<i32> = (0..=m as i32).map(|j| -gap * j).collect();
    let mut curr: Vec<i32> = vec![0; width];
    let mut tb: Vec<u8> = vec![0; (n + 1) * width];
    for j in 1..=m {
        tb[j] = TB_LEFT;
    }

    for i in 1..=n {
        curr[0] = -gap * i as i32;
        tb[i * width] = TB_UP;
        let ai = a[i - 1];
        for j in 1..=m {
            let diag = prev[j - 1] + scoring.substitution(ai, b[j - 1]);
            let up = prev[j] - gap;
            let left = curr[j - 1] - gap;
            // Deterministic tie-break: diagonal preferred, then up.
            let (best, dir) = if diag >= up && diag >= left {
                (diag, TB_DIAG)
            } else if up >= left {
                (up, TB_UP)
            } else {
                (left, TB_LEFT)
            };
            curr[j] = best;
            tb[i * width + j] = dir;
        }
        std::mem::swap(&mut prev, &mut curr);
    }

    let score = prev[m];
    let ops = traceback(a, b, &tb, width);
    Alignment { score, ops }
}

fn traceback(a: &[u8], b: &[u8], tb: &[u8], width: usize) -> Vec<AlignmentOp> {
    let (mut i, mut j) = (a.len(), b.len());
    let mut ops = Vec::with_capacity(i.max(j));
    while i > 0 || j > 0 {
        match tb[i * width + j] {
            TB_DIAG if i > 0 && j > 0 => {
                ops.push(if a[i - 1].eq_ignore_ascii_case(&b[j - 1]) {
                    AlignmentOp::Match
                } else {
                    AlignmentOp::Mismatch
                });
                i -= 1;
                j -= 1;
            }
            TB_UP if i > 0 => {
                ops.push(AlignmentOp::Delete);
                i -= 1;
            }
            _ => {
                ops.push(AlignmentOp::Insert);
                j -= 1;
            }
        }
    }
    ops.reverse();
    ops
}

/// Score-only Needleman–Wunsch with linear gaps in O(min(n,m)) space.
pub fn global_score(a: &[u8], b: &[u8], scoring: &Scoring) -> i32 {
    // Keep the inner loop over the shorter sequence.
    let (a, b) = if a.len() < b.len() { (b, a) } else { (a, b) };
    let m = b.len();
    let gap = scoring.gap_extend;
    let mut prev: Vec<i32> = (0..=m as i32).map(|j| -gap * j).collect();
    let mut curr: Vec<i32> = vec![0; m + 1];
    for i in 1..=a.len() {
        curr[0] = -gap * i as i32;
        let ai = a[i - 1];
        for j in 1..=m {
            let diag = prev[j - 1] + scoring.substitution(ai, b[j - 1]);
            let up = prev[j] - gap;
            let left = curr[j - 1] - gap;
            curr[j] = diag.max(up).max(left);
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[m]
}

/// Gotoh affine-gap global alignment with full traceback.
///
/// Three DP layers (M = match/mismatch, X = gap in `b`, Y = gap in `a`)
/// with `gap_open + gap_extend` to open and `gap_extend` to extend.
pub fn global_affine(a: &[u8], b: &[u8], scoring: &Scoring) -> Alignment {
    const NEG: i32 = i32::MIN / 4;
    let (n, m) = (a.len(), b.len());
    let width = m + 1;
    let open = scoring.gap_open + scoring.gap_extend;
    let ext = scoring.gap_extend;

    let mut m_prev = vec![NEG; width];
    let mut x_prev = vec![NEG; width]; // gap in b (consume a)
    let mut y_prev = vec![NEG; width]; // gap in a (consume b)
    let mut m_curr = vec![NEG; width];
    let mut x_curr = vec![NEG; width];
    let mut y_curr = vec![NEG; width];

    // tb layers: for each cell and layer, where did we come from.
    // Encoded 2 bits per layer: origin layer (0=M, 1=X, 2=Y).
    let sz = (n + 1) * width;
    let mut tb_m = vec![0u8; sz];
    let mut tb_x = vec![0u8; sz];
    let mut tb_y = vec![0u8; sz];

    m_prev[0] = 0;
    for j in 1..=m {
        y_prev[j] = -open - ext * (j as i32 - 1);
        tb_y[j] = if j == 1 { 0 } else { 2 };
    }

    for i in 1..=n {
        m_curr[0] = NEG;
        y_curr[0] = NEG;
        x_curr[0] = -open - ext * (i as i32 - 1);
        tb_x[i * width] = if i == 1 { 0 } else { 1 };
        let ai = a[i - 1];
        for j in 1..=m {
            let sub = scoring.substitution(ai, b[j - 1]);
            // M: diagonal from any layer.
            let (mb, ml) = max3(m_prev[j - 1], x_prev[j - 1], y_prev[j - 1]);
            m_curr[j] = mb + sub;
            tb_m[i * width + j] = ml;
            // X: gap in b (move down). Open from M/Y or extend X.
            let open_mx = m_prev[j] - open;
            let open_yx = y_prev[j] - open;
            let ext_x = x_prev[j] - ext;
            let (xb, xl) = max3(open_mx, ext_x, open_yx);
            x_curr[j] = xb;
            tb_x[i * width + j] = xl;
            // Y: gap in a (move right). Open from M/X or extend Y.
            let open_my = m_curr[j - 1] - open;
            let open_xy = x_curr[j - 1] - open;
            let ext_y = y_curr[j - 1] - ext;
            let (yb, yl) = max3(open_my, open_xy, ext_y);
            y_curr[j] = yb;
            tb_y[i * width + j] = yl;
        }
        std::mem::swap(&mut m_prev, &mut m_curr);
        std::mem::swap(&mut x_prev, &mut x_curr);
        std::mem::swap(&mut y_prev, &mut y_curr);
    }

    let (score, mut layer) = max3(m_prev[m], x_prev[m], y_prev[m]);

    // Traceback through the three layers.
    let (mut i, mut j) = (n, m);
    let mut ops = Vec::with_capacity(n.max(m));
    while i > 0 || j > 0 {
        match layer {
            0 => {
                // M-layer cell: emitted a diagonal op; predecessor layer
                // is stored in tb_m.
                let from = tb_m[i * width + j];
                ops.push(if a[i - 1].eq_ignore_ascii_case(&b[j - 1]) {
                    AlignmentOp::Match
                } else {
                    AlignmentOp::Mismatch
                });
                i -= 1;
                j -= 1;
                layer = from;
            }
            1 => {
                let from = tb_x[i * width + j];
                ops.push(AlignmentOp::Delete);
                i -= 1;
                layer = from;
            }
            _ => {
                let from = tb_y[i * width + j];
                ops.push(AlignmentOp::Insert);
                j -= 1;
                layer = from;
            }
        }
    }
    ops.reverse();
    Alignment { score, ops }
}

/// `(max value, argmax as layer code 0/1/2)` with deterministic
/// preference M > X > Y on ties.
#[inline]
fn max3(m: i32, x: i32, y: i32) -> (i32, u8) {
    if m >= x && m >= y {
        (m, 0)
    } else if x >= y {
        (x, 1)
    } else {
        (y, 2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s() -> Scoring {
        Scoring::dna_default()
    }

    #[test]
    fn identical() {
        let aln = global_align(b"ACGT", b"ACGT", &s());
        assert_eq!(aln.score, 4);
        assert_eq!(aln.matches(), 4);
        assert!((aln.identity() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn single_substitution() {
        let aln = global_align(b"ACGT", b"AGGT", &s());
        assert_eq!(aln.score, 2); // 3 matches - 1 mismatch
        assert_eq!(aln.matches(), 3);
        assert_eq!(aln.len(), 4);
    }

    #[test]
    fn single_deletion() {
        let aln = global_align(b"ACGT", b"AGT", &s());
        assert_eq!(aln.score, 1); // 3 matches - 1 gap(2)
        assert_eq!(aln.len(), 4);
        assert_eq!(
            aln.ops
                .iter()
                .filter(|o| matches!(o, AlignmentOp::Delete))
                .count(),
            1
        );
    }

    #[test]
    fn empty_inputs() {
        let aln = global_align(b"", b"", &s());
        assert_eq!(aln.score, 0);
        assert!(aln.is_empty());
        assert_eq!(aln.identity(), 1.0);

        let aln = global_align(b"ACG", b"", &s());
        assert_eq!(aln.score, -6);
        assert_eq!(aln.len(), 3);
        assert_eq!(aln.identity(), 0.0);
    }

    #[test]
    fn score_only_matches_traceback_score() {
        let cases: &[(&[u8], &[u8])] = &[
            (b"ACGTACGT", b"ACGAACGT"),
            (b"AAAA", b"TTTT"),
            (b"ACGT", b"ACGTACGT"),
            (b"", b"ACGT"),
            (b"GATTACA", b"GCATGCU"),
        ];
        for (a, b) in cases {
            assert_eq!(
                global_score(a, b, &s()),
                global_align(a, b, &s()).score,
                "{:?} vs {:?}",
                std::str::from_utf8(a),
                std::str::from_utf8(b)
            );
        }
    }

    #[test]
    fn render_round_trips_sequences() {
        let a = b"GATTACA";
        let b = b"GCATGCT";
        let aln = global_align(a, b, &s());
        let (ra, rb) = aln.render(a, b);
        assert_eq!(ra.replace('-', "").as_bytes(), a);
        assert_eq!(rb.replace('-', "").as_bytes(), b);
        assert_eq!(ra.len(), rb.len());
    }

    #[test]
    fn affine_prefers_one_long_gap() {
        // With affine gaps, a single 3-gap is cheaper than three 1-gaps.
        let sc = Scoring::dna_affine();
        let aln = global_affine(b"ACGTTTACGT", b"ACGTACGT", &sc);
        // Count maximal gap runs in ops.
        let mut runs = 0;
        let mut in_gap = false;
        for op in &aln.ops {
            let is_gap = matches!(op, AlignmentOp::Delete | AlignmentOp::Insert);
            if is_gap && !in_gap {
                runs += 1;
            }
            in_gap = is_gap;
        }
        assert_eq!(runs, 1, "ops: {:?}", aln.ops);
    }

    #[test]
    fn affine_identical_matches_linear() {
        let sc = Scoring::dna_affine();
        let aln = global_affine(b"ACGTACGT", b"ACGTACGT", &sc);
        assert_eq!(aln.matches(), 8);
        assert_eq!(aln.score, 8 * sc.match_score);
    }

    #[test]
    fn affine_empty_inputs() {
        let sc = Scoring::dna_affine();
        let aln = global_affine(b"", b"", &sc);
        assert_eq!(aln.score, 0);
        let aln = global_affine(b"ACG", b"", &sc);
        assert_eq!(aln.len(), 3);
        assert_eq!(aln.score, -(sc.gap_open + 3 * sc.gap_extend));
    }

    #[test]
    fn alignment_is_symmetric_in_score() {
        let (a, b): (&[u8], &[u8]) = (b"ACGTTGCA", b"AGGTTGA");
        assert_eq!(
            global_align(a, b, &s()).score,
            global_align(b, a, &s()).score
        );
    }
}
