//! Banded global alignment for high-identity pairs.
//!
//! CD-HIT and UCLUST cluster sequences that are *highly similar*, so
//! the optimal alignment path stays near the diagonal. Restricting the
//! DP to a band of half-width `band` around the diagonal turns the
//! O(n·m) computation into O(band·max(n,m)). If the optimal path leaves
//! the band the banded score is a lower bound; callers using it as an
//! identity filter simply get a conservative answer.

use crate::global::{Alignment, AlignmentOp};
use crate::scoring::Scoring;

const NEG: i32 = i32::MIN / 4;

/// Banded Needleman–Wunsch with linear gaps and traceback.
///
/// `band` is the half-width: cell `(i, j)` is computed only when
/// `|j - i - skew| <= band`, with `skew = m - n` applied at the end so
/// the corner `(n, m)` is always inside the band. A `band` of at least
/// `|n - m|` is enforced (otherwise the corner is unreachable).
pub fn banded_global(a: &[u8], b: &[u8], scoring: &Scoring, band: usize) -> Alignment {
    let (n, m) = (a.len(), b.len());
    if n == 0 || m == 0 {
        // Degenerate: all gaps.
        let ops = vec![AlignmentOp::Delete; n]
            .into_iter()
            .chain(vec![AlignmentOp::Insert; m])
            .collect::<Vec<_>>();
        let score = -scoring.gap_extend * (n + m) as i32;
        return Alignment { score, ops };
    }
    let band = band.max(n.abs_diff(m)).max(1);
    let gap = scoring.gap_extend;
    let bw = 2 * band + 1; // stored cells per row, centred on j = i

    // score[i][d] where d = j - i + band ∈ [0, bw).
    let idx = |i: usize, d: usize| i * bw + d;
    let mut score = vec![NEG; (n + 1) * bw];
    let mut tb = vec![0u8; (n + 1) * bw];
    const TB_DIAG: u8 = 0;
    const TB_UP: u8 = 1;
    const TB_LEFT: u8 = 2;

    // Row 0: j ∈ [0, band].
    for j in 0..=band.min(m) {
        score[idx(0, j + band)] = -gap * j as i32;
        tb[idx(0, j + band)] = TB_LEFT;
    }

    for i in 1..=n {
        let j_lo = i.saturating_sub(band);
        let j_hi = (i + band).min(m);
        if j_lo > m {
            break;
        }
        let ai = a[i - 1];
        for j in j_lo..=j_hi {
            let d = j + band - i;
            if j == 0 {
                score[idx(i, d)] = -gap * i as i32;
                tb[idx(i, d)] = TB_UP;
                continue;
            }
            // Diagonal (i-1, j-1) has the same d.
            let diag = score[idx(i - 1, d)] + scoring.substitution(ai, b[j - 1]);
            // Up (i-1, j): d+1 in the previous row.
            let up = if d + 1 < bw {
                score[idx(i - 1, d + 1)] - gap
            } else {
                NEG
            };
            // Left (i, j-1): d-1 in this row.
            let left = if d > 0 {
                score[idx(i, d - 1)] - gap
            } else {
                NEG
            };
            let (best, dir) = if diag >= up && diag >= left {
                (diag, TB_DIAG)
            } else if up >= left {
                (up, TB_UP)
            } else {
                (left, TB_LEFT)
            };
            score[idx(i, d)] = best;
            tb[idx(i, d)] = dir;
        }
    }

    let final_d = m + band - n;
    let final_score = score[idx(n, final_d)];

    // Traceback.
    let (mut i, mut j) = (n, m);
    let mut ops = Vec::with_capacity(n.max(m));
    while i > 0 || j > 0 {
        let d = j + band - i;
        match tb[idx(i, d)] {
            TB_DIAG if i > 0 && j > 0 => {
                ops.push(if a[i - 1].eq_ignore_ascii_case(&b[j - 1]) {
                    AlignmentOp::Match
                } else {
                    AlignmentOp::Mismatch
                });
                i -= 1;
                j -= 1;
            }
            TB_UP if i > 0 => {
                ops.push(AlignmentOp::Delete);
                i -= 1;
            }
            _ => {
                ops.push(AlignmentOp::Insert);
                j -= 1;
            }
        }
    }
    ops.reverse();
    Alignment {
        score: final_score,
        ops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::global::global_align;

    fn s() -> Scoring {
        Scoring::dna_default()
    }

    #[test]
    fn wide_band_matches_full_dp() {
        let cases: &[(&[u8], &[u8])] = &[
            (b"ACGTACGTAC", b"ACGAACGTAC"),
            (b"GATTACA", b"GCATGCT"),
            (b"ACGT", b"ACG"),
            (b"AAAACCCC", b"AAAACCCC"),
        ];
        for (a, b) in cases {
            let full = global_align(a, b, &s());
            let banded = banded_global(a, b, &s(), a.len().max(b.len()));
            assert_eq!(banded.score, full.score);
        }
    }

    #[test]
    fn narrow_band_is_lower_bound() {
        let a = b"AAAATTTTCCCCGGGG";
        let b = b"TTTTCCCCGGGGAAAA"; // optimal path strays far off-diagonal
        let full = global_align(a, b, &s()).score;
        let banded = banded_global(a, b, &s(), 2).score;
        assert!(banded <= full);
    }

    #[test]
    fn high_identity_pair_fast_path() {
        let a = b"ACGTACGTACGTACGTACGT";
        let mut bv = a.to_vec();
        bv[6] = b'T'; // one substitution (G -> T)
        let aln = banded_global(a, &bv, &s(), 3);
        assert_eq!(aln.matches(), a.len() - 1);
        assert!((aln.identity() - 0.95).abs() < 1e-9);
    }

    #[test]
    fn length_difference_widens_band() {
        // band smaller than |n-m| would make the corner unreachable;
        // constructor widens it automatically.
        let a = b"ACGTACGTACGT";
        let b = b"ACGT";
        let aln = banded_global(a, b, &s(), 1);
        let (ra, rb) = aln.render(a, b);
        assert_eq!(ra.replace('-', "").as_bytes(), a.as_slice());
        assert_eq!(rb.replace('-', "").as_bytes(), b.as_slice());
    }

    #[test]
    fn empty_inputs() {
        let aln = banded_global(b"", b"ACG", &s(), 4);
        assert_eq!(aln.len(), 3);
        assert_eq!(aln.score, -6);
        let aln = banded_global(b"", b"", &s(), 4);
        assert!(aln.is_empty());
    }
}
