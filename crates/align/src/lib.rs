//! Pairwise sequence alignment substrate.
//!
//! MrMC-MinH itself avoids alignment (that is the point of minwise
//! hashing), but the *evaluation* depends on it everywhere:
//!
//! * the **W.Sim** metric is "average global sequence alignment
//!   similarity" within clusters (paper §IV-B);
//! * the CD-HIT-like and UCLUST-like baselines verify candidate matches
//!   with (banded) global alignment identity;
//! * the DOTUR-like / Mothur-like baselines build a full pairwise
//!   alignment distance matrix;
//! * the ESPRIT-like baseline replaces alignment with a k-mer distance,
//!   implemented here alongside for comparison.
//!
//! Provided algorithms: Needleman–Wunsch global alignment with linear
//! gaps ([`global`]), Gotoh affine-gap global alignment, Smith–Waterman
//! local alignment ([`local`]), a banded global variant for
//! high-identity pairs ([`banded`]), and k-mer profile distances
//! ([`kmerdist`]).

pub mod banded;
pub mod global;
pub mod kmerdist;
pub mod local;
pub mod scoring;

pub use banded::banded_global;
pub use global::{global_affine, global_align, Alignment, AlignmentOp};
pub use kmerdist::{kmer_distance, KmerProfile};
pub use local::local_align;
pub use scoring::Scoring;

/// Global-alignment identity between two sequences as a fraction in
/// `[0, 1]`: matched positions divided by alignment length. This is the
/// quantity averaged by the paper's W.Sim metric.
pub fn global_identity(a: &[u8], b: &[u8], scoring: &Scoring) -> f64 {
    global_align(a, b, scoring).identity()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_sequences_have_identity_one() {
        let s = Scoring::dna_default();
        assert!((global_identity(b"ACGTACGT", b"ACGTACGT", &s) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn disjoint_sequences_have_low_identity() {
        let s = Scoring::dna_default();
        let id = global_identity(b"AAAAAAAA", b"CCCCCCCC", &s);
        assert!(id < 0.2, "identity {id}");
    }
}
