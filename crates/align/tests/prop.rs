//! Property-based tests for the alignment substrate.

use proptest::prelude::*;

use mrmc_align::global::global_score;
use mrmc_align::kmerdist::{kmer_distance, spearman_distance, KmerProfile};
use mrmc_align::{banded_global, global_affine, global_align, local_align, Scoring};

fn dna(max_len: usize) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(
        proptest::sample::select(vec![b'A', b'C', b'G', b'T']),
        0..max_len,
    )
}

proptest! {
    /// Score symmetry: aligning (a, b) and (b, a) give equal scores.
    #[test]
    fn global_score_symmetric(a in dna(40), b in dna(40)) {
        let s = Scoring::dna_default();
        prop_assert_eq!(global_align(&a, &b, &s).score, global_align(&b, &a, &s).score);
    }

    /// The O(min) -space score equals the traceback version's score.
    #[test]
    fn score_only_equals_full(a in dna(40), b in dna(40)) {
        let s = Scoring::dna_default();
        prop_assert_eq!(global_score(&a, &b, &s), global_align(&a, &b, &s).score);
    }

    /// Identity is a fraction; self-alignment is perfect.
    #[test]
    fn identity_bounds_and_self(a in dna(60)) {
        let s = Scoring::dna_default();
        let aln = global_align(&a, &a, &s);
        prop_assert!((aln.identity() - 1.0).abs() < 1e-12);
        prop_assert_eq!(aln.matches(), a.len());
    }

    /// A full-width band reproduces the unbanded optimum.
    #[test]
    fn full_band_equals_unbanded(a in dna(30), b in dna(30)) {
        let s = Scoring::dna_default();
        let full = global_align(&a, &b, &s).score;
        let band = banded_global(&a, &b, &s, a.len().max(b.len()).max(1)).score;
        prop_assert_eq!(band, full);
    }

    /// A narrow band never beats the unbanded optimum.
    #[test]
    fn narrow_band_is_lower_bound(a in dna(30), b in dna(30), w in 1usize..6) {
        let s = Scoring::dna_default();
        let full = global_align(&a, &b, &s).score;
        let banded = banded_global(&a, &b, &s, w).score;
        prop_assert!(banded <= full);
    }

    /// Alignment ops replay to exactly the two inputs.
    #[test]
    fn render_reconstructs_inputs(a in dna(40), b in dna(40)) {
        let s = Scoring::dna_default();
        let aln = global_align(&a, &b, &s);
        let (ra, rb) = aln.render(&a, &b);
        prop_assert_eq!(ra.replace('-', "").into_bytes(), a);
        prop_assert_eq!(rb.replace('-', "").into_bytes(), b);
    }

    /// Affine alignment also replays to its inputs and never exceeds
    /// the all-match upper bound.
    #[test]
    fn affine_sane(a in dna(30), b in dna(30)) {
        let s = Scoring::dna_affine();
        let aln = global_affine(&a, &b, &s);
        let (ra, rb) = aln.render(&a, &b);
        prop_assert_eq!(ra.replace('-', "").into_bytes(), a.clone());
        prop_assert_eq!(rb.replace('-', "").into_bytes(), b.clone());
        let ub = (a.len().min(b.len()) as i32) * s.match_score;
        prop_assert!(aln.score <= ub);
    }

    /// Local alignment score is non-negative and at least the global
    /// score (it may ignore costly prefixes/suffixes).
    #[test]
    fn local_dominates_global(a in dna(30), b in dna(30)) {
        let s = Scoring::dna_default();
        let local = local_align(&a, &b, &s).alignment.score;
        let global = global_align(&a, &b, &s).score;
        prop_assert!(local >= 0);
        prop_assert!(local >= global);
    }

    /// k-mer distance is a bounded, symmetric dissimilarity with
    /// d(x, x) = 0.
    #[test]
    fn kmer_distance_metric_properties(a in dna(60), b in dna(60), k in 1usize..6) {
        let pa = KmerProfile::from_kmers(k, mrmc_seqio::encode::KmerIter::new(&a, k).unwrap());
        let pb = KmerProfile::from_kmers(k, mrmc_seqio::encode::KmerIter::new(&b, k).unwrap());
        let dab = kmer_distance(&pa, &pb);
        let dba = kmer_distance(&pb, &pa);
        prop_assert!((0.0..=1.0).contains(&dab));
        prop_assert!((dab - dba).abs() < 1e-12);
        prop_assert!(kmer_distance(&pa, &pa) < 1e-12);
    }

    /// Spearman distance is bounded and symmetric.
    #[test]
    fn spearman_bounded_symmetric(a in dna(80), b in dna(80)) {
        let k = 3;
        let pa = KmerProfile::from_kmers(k, mrmc_seqio::encode::KmerIter::new(&a, k).unwrap());
        let pb = KmerProfile::from_kmers(k, mrmc_seqio::encode::KmerIter::new(&b, k).unwrap());
        let dab = spearman_distance(&pa, &pb);
        let dba = spearman_distance(&pb, &pa);
        prop_assert!((0.0..=1.0).contains(&dab));
        prop_assert!((dab - dba).abs() < 1e-9);
    }
}
