//! Property-based tests for the simulation substrate.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use mrmc_seqio::stats::gc_content;
use mrmc_simulate::genome::{diverge, random_genome, MarkovModel};
use mrmc_simulate::{CommunitySpec, ErrorModel, ReadSimulator, SpeciesSpec, TaxRank};

proptest! {
    /// Generated genomes have the requested length and only ACGT.
    #[test]
    fn genome_well_formed(len in 0usize..5000, gc in 0.0f64..=1.0, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = random_genome(len, gc, &mut rng);
        prop_assert_eq!(g.len(), len);
        prop_assert!(g.iter().all(|c| b"ACGT".contains(c)));
    }

    /// Extreme GC targets are hit exactly.
    #[test]
    fn gc_extremes(len in 100usize..2000, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let all_at = random_genome(len, 0.0, &mut rng);
        prop_assert!((gc_content(&all_at) - 0.0).abs() < 1e-12);
        let all_gc = random_genome(len, 1.0, &mut rng);
        prop_assert!((gc_content(&all_gc) - 1.0).abs() < 1e-12);
    }

    /// Divergence keeps sequences ACGT and near the original length.
    #[test]
    fn diverge_well_formed(len in 100usize..2000, d in 0.0f64..0.5, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = random_genome(len, 0.5, &mut rng);
        let v = diverge(&g, d, &mut rng);
        prop_assert!(v.iter().all(|c| b"ACGT".contains(c)));
        // Indel rate is d/10 per base, so length drift stays small.
        let drift = (v.len() as f64 - len as f64).abs() / len as f64;
        prop_assert!(drift < 0.15, "drift {drift}");
    }

    /// Markov genomes are well formed and deterministic per seed.
    #[test]
    fn markov_deterministic(len in 10usize..2000, skew in 0.0f64..2.0, seed in any::<u64>()) {
        let mut r1 = StdRng::seed_from_u64(seed);
        let mut r2 = StdRng::seed_from_u64(seed);
        let g1 = MarkovModel::random(skew, 0.5, &mut r1).sample(len, &mut r1);
        let g2 = MarkovModel::random(skew, 0.5, &mut r2).sample(len, &mut r2);
        prop_assert_eq!(&g1, &g2);
        prop_assert_eq!(g1.len(), len);
        prop_assert!(g1.iter().all(|c| b"ACGT".contains(c)));
    }

    /// Reads never exceed the configured length, and the perfect error
    /// model is the identity on templates.
    #[test]
    fn read_simulator_contract(
        glen in 50usize..1000,
        rlen in 1usize..200,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = random_genome(glen, 0.5, &mut rng);
        let sim = ReadSimulator::new(rlen, ErrorModel::perfect());
        let read = sim.read_from(&g, &mut rng);
        prop_assert!(read.len() <= rlen);
        prop_assert!(read.len() == rlen.min(glen));
        // Perfect model: the read is a substring.
        if !read.is_empty() {
            let found = g.windows(read.len()).any(|w| w == &read[..]);
            prop_assert!(found);
        }
    }

    /// Community datasets: read counts exact, labels in range, every
    /// read non-empty, deterministic per seed.
    #[test]
    fn community_contract(total in 2usize..120, n_species in 1usize..5, seed in any::<u64>()) {
        let spec = CommunitySpec {
            species: (0..n_species)
                .map(|i| SpeciesSpec {
                    name: format!("sp{i}"),
                    gc: 0.5,
                    abundance: (i + 1) as f64,
                })
                .collect(),
            rank: TaxRank::Genus,
            genome_len: 3000,
        };
        let sim = ReadSimulator::new(100, ErrorModel::with_total_rate(0.01));
        let d1 = spec.generate("p", total, &sim, seed);
        prop_assert_eq!(d1.len(), total);
        let labels = d1.labels.as_ref().unwrap();
        prop_assert!(labels.iter().all(|&l| l < n_species));
        prop_assert!(d1.reads.iter().all(|r| !r.is_empty()));
        let d2 = spec.generate("p", total, &sim, seed);
        prop_assert_eq!(d1, d2);
    }
}
