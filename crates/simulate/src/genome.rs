//! Random genome generation and divergence.
//!
//! Two generators:
//!
//! * [`random_genome`] — i.i.d. bases with a target GC (used for 16S
//!   conserved/variable blocks, where *identity* is the signal);
//! * [`MarkovModel`] — order-2 Markov genomes with skewed transition
//!   probabilities (used for whole-metagenome communities, where
//!   *composition* is the signal: real genomes have strong codon and
//!   dinucleotide bias, which is what composition-based binning — the
//!   paper's k = 5 regime and MetaCluster — exploits; i.i.d. genomes
//!   have none and make the problem information-theoretically
//!   impossible at 1 000 bp).

use rand::rngs::StdRng;
use rand::Rng;

const BASES: [u8; 4] = [b'A', b'C', b'G', b'T'];

/// An order-2 Markov model over DNA with per-context transition
/// probabilities; species-specific skew gives each genome the
/// compositional signature binning algorithms rely on.
#[derive(Debug, Clone, PartialEq)]
pub struct MarkovModel {
    /// `probs[context][base]`, context = previous two bases (2 bits
    /// each, most recent base in the low bits).
    probs: [[f64; 4]; 16],
}

impl MarkovModel {
    /// Draw a random skewed model. `skew` controls how biased the
    /// composition is (0 = uniform i.i.d.; real genomes behave like
    /// ~0.5–1.0); `gc` tilts the stationary GC content.
    pub fn random(skew: f64, gc: f64, rng: &mut StdRng) -> MarkovModel {
        assert!((0.0..=1.0).contains(&gc), "gc must be in [0,1]");
        let mut probs = [[0.0f64; 4]; 16];
        for ctx in probs.iter_mut() {
            for (b, p) in ctx.iter_mut().enumerate() {
                // Log-normal weight + GC tilt (bases C=1, G=2 are GC).
                let noise: f64 = rng.random::<f64>() * 2.0 - 1.0;
                let gc_tilt = if b == 1 || b == 2 { gc } else { 1.0 - gc };
                *p = (skew * noise).exp() * gc_tilt;
            }
            let sum: f64 = ctx.iter().sum();
            for p in ctx.iter_mut() {
                *p /= sum;
            }
        }
        MarkovModel { probs }
    }

    /// Derive a related species' model: each transition weight is
    /// jittered by `amount` (log-scale). Small `amount` → nearly the
    /// same composition (congeneric species); large → distinct phyla.
    pub fn perturb(&self, amount: f64, rng: &mut StdRng) -> MarkovModel {
        let mut probs = self.probs;
        for ctx in probs.iter_mut() {
            for p in ctx.iter_mut() {
                let noise: f64 = rng.random::<f64>() * 2.0 - 1.0;
                *p *= (amount * noise).exp();
            }
            let sum: f64 = ctx.iter().sum();
            for p in ctx.iter_mut() {
                *p /= sum;
            }
        }
        MarkovModel { probs }
    }

    /// Sample a genome of `len` bases.
    pub fn sample(&self, len: usize, rng: &mut StdRng) -> Vec<u8> {
        let mut out = Vec::with_capacity(len);
        let mut ctx = 0usize;
        for _ in 0..len {
            let r: f64 = rng.random();
            let mut acc = 0.0;
            let mut base = 3usize;
            for (b, &p) in self.probs[ctx].iter().enumerate() {
                acc += p;
                if r < acc {
                    base = b;
                    break;
                }
            }
            out.push(BASES[base]);
            ctx = ((ctx << 2) | base) & 0xF;
        }
        out
    }
}

/// Generate a random genome of `len` bases with expected GC fraction
/// `gc` (each position drawn independently: G or C with probability
/// `gc`, A or T otherwise).
pub fn random_genome(len: usize, gc: f64, rng: &mut StdRng) -> Vec<u8> {
    assert!((0.0..=1.0).contains(&gc), "gc must be in [0,1]");
    (0..len)
        .map(|_| {
            if rng.random::<f64>() < gc {
                if rng.random::<bool>() {
                    b'G'
                } else {
                    b'C'
                }
            } else if rng.random::<bool>() {
                b'A'
            } else {
                b'T'
            }
        })
        .collect()
}

/// Derive a related sequence from `ancestor` at the given divergence:
/// each position mutates (to a uniformly different base) with
/// probability `divergence`; additionally small indels occur at
/// `divergence / 10` per position (geometric length, mean ~1.5) so
/// diverged genomes also differ structurally.
pub fn diverge(ancestor: &[u8], divergence: f64, rng: &mut StdRng) -> Vec<u8> {
    assert!((0.0..=1.0).contains(&divergence), "divergence in [0,1]");
    let indel_rate = divergence / 10.0;
    let mut out = Vec::with_capacity(ancestor.len() + 16);
    for &c in ancestor {
        let r = rng.random::<f64>();
        if r < indel_rate / 2.0 {
            // Deletion: skip this base.
            continue;
        } else if r < indel_rate {
            // Insertion before this base.
            out.push(BASES[rng.random_range(0..4usize)]);
            out.push(substitute_maybe(c, divergence, rng));
        } else {
            out.push(substitute_maybe(c, divergence, rng));
        }
    }
    out
}

/// Point-mutate one base with the given probability.
fn substitute_maybe(c: u8, rate: f64, rng: &mut StdRng) -> u8 {
    if rng.random::<f64>() < rate {
        mutate_base(c, rng)
    } else {
        c
    }
}

/// A uniformly random base different from `c`.
pub fn mutate_base(c: u8, rng: &mut StdRng) -> u8 {
    loop {
        let n = BASES[rng.random_range(0..4usize)];
        if n != c.to_ascii_uppercase() {
            return n;
        }
    }
}

/// Shift a sequence's GC content toward `target_gc` by flipping a
/// fraction of bases (A↔G, T↔C swaps preserve purine/pyrimidine
/// flavour). Used to give related genomes the distinct GC values
/// Table II reports.
pub fn shift_gc(seq: &mut [u8], target_gc: f64, rng: &mut StdRng) {
    let current = mrmc_seqio::stats::gc_content(seq);
    let delta = target_gc - current;
    if delta.abs() < 1e-9 {
        return;
    }
    // Probability that an eligible base flips.
    let p = delta.abs().min(1.0);
    for c in seq.iter_mut() {
        if delta > 0.0 {
            // Raise GC: flip some A->G, T->C.
            match *c {
                b'A' if rng.random::<f64>() < p / (1.0 - current).max(1e-9) => *c = b'G',
                b'T' if rng.random::<f64>() < p / (1.0 - current).max(1e-9) => *c = b'C',
                _ => {}
            }
        } else {
            // Lower GC: flip some G->A, C->T.
            match *c {
                b'G' if rng.random::<f64>() < p / current.max(1e-9) => *c = b'A',
                b'C' if rng.random::<f64>() < p / current.max(1e-9) => *c = b'T',
                _ => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrmc_seqio::stats::gc_content;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn genome_has_requested_gc() {
        let mut r = rng(1);
        let g = random_genome(50_000, 0.35, &mut r);
        assert_eq!(g.len(), 50_000);
        let gc = gc_content(&g);
        assert!((gc - 0.35).abs() < 0.01, "gc = {gc}");
    }

    #[test]
    fn genome_deterministic_per_seed() {
        let a = random_genome(100, 0.5, &mut rng(7));
        let b = random_genome(100, 0.5, &mut rng(7));
        let c = random_genome(100, 0.5, &mut rng(8));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn diverge_zero_is_identity() {
        let mut r = rng(2);
        let g = random_genome(1000, 0.5, &mut r);
        let d = diverge(&g, 0.0, &mut r);
        assert_eq!(g, d);
    }

    #[test]
    fn diverge_rate_matches_hamming_distance() {
        let mut r = rng(3);
        let g = random_genome(20_000, 0.5, &mut r);
        // Use pure substitutions (indel rate = divergence/10 shifts
        // frames; measure on prefix before first length change is
        // fiddly). Instead compare with a tiny divergence where indels
        // are rare, allowing generous tolerance.
        let d = diverge(&g, 0.05, &mut r);
        let len = g.len().min(d.len());
        let mismatches = g[..len]
            .iter()
            .zip(&d[..len])
            .filter(|(a, b)| a != b)
            .count();
        let rate = mismatches as f64 / len as f64;
        // Indels cause frame-shift mismatches, so observed rate ≥ the
        // substitution rate; bound loosely.
        assert!(rate >= 0.03, "rate {rate}");
    }

    #[test]
    fn mutate_base_never_returns_same() {
        let mut r = rng(4);
        for c in [b'A', b'C', b'G', b'T'] {
            for _ in 0..20 {
                assert_ne!(mutate_base(c, &mut r), c);
            }
        }
    }

    #[test]
    fn shift_gc_moves_toward_target() {
        let mut r = rng(5);
        let mut g = random_genome(20_000, 0.50, &mut r);
        shift_gc(&mut g, 0.65, &mut r);
        let gc = gc_content(&g);
        assert!(gc > 0.60, "gc after shift = {gc}");
        let mut g2 = random_genome(20_000, 0.50, &mut r);
        shift_gc(&mut g2, 0.35, &mut r);
        let gc2 = gc_content(&g2);
        assert!(gc2 < 0.40, "gc after shift = {gc2}");
    }

    #[test]
    #[should_panic(expected = "gc must be in")]
    fn bad_gc_panics() {
        random_genome(10, 1.5, &mut rng(0));
    }
}
