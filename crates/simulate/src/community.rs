//! Multi-species communities and labelled datasets.

use rand::rngs::StdRng;
use rand::SeedableRng;

use mrmc_seqio::SeqRecord;

use crate::genome::{diverge, random_genome, shift_gc, MarkovModel};
use crate::reads::ReadSimulator;
use crate::taxonomy::TaxRank;

/// One species in a community.
#[derive(Debug, Clone, PartialEq)]
pub struct SpeciesSpec {
    /// Display name (Table II species names, or synthetic ids).
    pub name: String,
    /// Target genome GC fraction (Table II's `[x.xx]` values).
    pub gc: f64,
    /// Relative abundance weight (Table II's ratios, e.g. 1:1:8).
    pub abundance: f64,
}

/// A whole community: species, their relatedness, genome size.
#[derive(Debug, Clone, PartialEq)]
pub struct CommunitySpec {
    /// Member species.
    pub species: Vec<SpeciesSpec>,
    /// Taxonomic separation between the species (drives how diverged
    /// the generated genomes are — the "Taxonomic Difference" column).
    pub rank: TaxRank,
    /// Genome length per species.
    pub genome_len: usize,
}

/// A labelled dataset: reads plus (optionally) ground-truth species
/// labels, ready for clustering and evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    /// Dataset id (e.g. "S1", "53R", "huse-3pct").
    pub name: String,
    /// The reads.
    pub reads: Vec<SeqRecord>,
    /// Ground-truth species index per read (None for "real" samples
    /// like R1, where the paper has no labels either).
    pub labels: Option<Vec<usize>>,
    /// Species names indexed by label.
    pub species: Vec<String>,
}

impl Dataset {
    /// Number of reads.
    pub fn len(&self) -> usize {
        self.reads.len()
    }

    /// True when the dataset has no reads.
    pub fn is_empty(&self) -> bool {
        self.reads.is_empty()
    }

    /// Drop ground-truth labels (turn a simulated sample into a
    /// "real"-style one).
    pub fn without_labels(mut self) -> Dataset {
        self.labels = None;
        self
    }
}

impl CommunitySpec {
    /// Generate the community's genomes.
    ///
    /// Two regimes, switched on genome length:
    ///
    /// * **Loci** (≤ 2 kb, amplicon-style): a literal ancestor sequence
    ///   diverged per species at the spec's rank — *identity* carries
    ///   the signal, reads of one species align.
    /// * **Genomes** (> 2 kb, shotgun-style): an ancestral order-2
    ///   Markov composition model perturbed per species by the rank's
    ///   divergence — *composition* carries the signal, as in real
    ///   bacterial genomes (reads from disjoint loci of one species
    ///   share k-mer usage, not alignment), which is the regime the
    ///   paper's whole-metagenome experiments (k = 5) operate in.
    pub fn genomes(&self, rng: &mut StdRng) -> Vec<Vec<u8>> {
        let mean_gc = self.species.iter().map(|s| s.gc).sum::<f64>() / self.species.len() as f64;
        if self.genome_len <= 2_000 {
            let ancestor = random_genome(self.genome_len, mean_gc, rng);
            return self
                .species
                .iter()
                .map(|s| {
                    let mut g = diverge(&ancestor, self.rank.divergence(), rng);
                    shift_gc(&mut g, s.gc, rng);
                    g
                })
                .collect();
        }
        let ancestor_model = MarkovModel::random(1.4, mean_gc, rng);
        self.species
            .iter()
            .map(|s| {
                let model = ancestor_model.perturb(self.rank.composition_jitter(), rng);
                let mut g = model.sample(self.genome_len, rng);
                shift_gc(&mut g, s.gc, rng);
                g
            })
            .collect()
    }

    /// Generate a labelled read set of `total_reads` reads allocated
    /// by abundance, with the given simulator. Deterministic per seed.
    pub fn generate(
        &self,
        name: &str,
        total_reads: usize,
        simulator: &ReadSimulator,
        seed: u64,
    ) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let genomes = self.genomes(&mut rng);
        let total_w: f64 = self.species.iter().map(|s| s.abundance).sum();
        let mut reads = Vec::with_capacity(total_reads);
        let mut labels = Vec::with_capacity(total_reads);
        let mut allocated = 0usize;
        for (idx, sp) in self.species.iter().enumerate() {
            let count = if idx + 1 == self.species.len() {
                total_reads - allocated
            } else {
                ((sp.abundance / total_w) * total_reads as f64).round() as usize
            };
            allocated += count;
            for r in 0..count {
                let seq = simulator.read_from(&genomes[idx], &mut rng);
                reads.push(SeqRecord::with_description(
                    format!("{name}_{idx}_{r}"),
                    sp.name.clone(),
                    seq,
                ));
                labels.push(idx);
            }
        }
        Dataset {
            name: name.to_string(),
            reads,
            labels: Some(labels),
            species: self.species.iter().map(|s| s.name.clone()).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reads::ErrorModel;
    use mrmc_seqio::stats::gc_content;

    fn spec() -> CommunitySpec {
        CommunitySpec {
            species: vec![
                SpeciesSpec {
                    name: "A".into(),
                    gc: 0.40,
                    abundance: 1.0,
                },
                SpeciesSpec {
                    name: "B".into(),
                    gc: 0.60,
                    abundance: 2.0,
                },
            ],
            rank: TaxRank::Order,
            genome_len: 20_000,
        }
    }

    #[test]
    fn read_counts_follow_abundance() {
        let sim = ReadSimulator::new(100, ErrorModel::perfect());
        let d = spec().generate("t", 300, &sim, 1);
        assert_eq!(d.len(), 300);
        let labels = d.labels.as_ref().unwrap();
        let a = labels.iter().filter(|&&l| l == 0).count();
        let b = labels.iter().filter(|&&l| l == 1).count();
        assert_eq!(a + b, 300);
        assert_eq!(a, 100);
        assert_eq!(b, 200);
    }

    #[test]
    fn genomes_follow_gc_targets() {
        let mut rng = StdRng::seed_from_u64(3);
        let gs = spec().genomes(&mut rng);
        assert_eq!(gs.len(), 2);
        assert!((gc_content(&gs[0]) - 0.40).abs() < 0.05);
        assert!((gc_content(&gs[1]) - 0.60).abs() < 0.05);
    }

    #[test]
    fn deterministic_per_seed() {
        let sim = ReadSimulator::new(80, ErrorModel::with_total_rate(0.02));
        let d1 = spec().generate("t", 50, &sim, 42);
        let d2 = spec().generate("t", 50, &sim, 42);
        let d3 = spec().generate("t", 50, &sim, 43);
        assert_eq!(d1, d2);
        assert_ne!(d1, d3);
    }

    #[test]
    fn without_labels_strips() {
        let sim = ReadSimulator::new(80, ErrorModel::perfect());
        let d = spec().generate("t", 10, &sim, 0).without_labels();
        assert!(d.labels.is_none());
        assert_eq!(d.len(), 10);
    }

    #[test]
    fn read_ids_unique() {
        let sim = ReadSimulator::new(80, ErrorModel::perfect());
        let d = spec().generate("t", 100, &sim, 0);
        let mut ids: Vec<&String> = d.reads.iter().map(|r| &r.id).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), 100);
    }
}
