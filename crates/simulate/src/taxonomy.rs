//! Taxonomic ranks mapped to whole-genome sequence divergence.
//!
//! Table II describes each simulated sample by the taxonomic rank
//! separating its species ("Species", "Genus", …, "Kingdom"). Our
//! substitution for real genomes keys the *divergence* of the
//! generated genomes to that rank: the finer the rank, the more
//! similar the genomes and the harder the binning problem — the
//! property the paper's S1 (species-level, hardest) → S10
//! (phylum-level, easier) progression exercises.
//!
//! The rates are model constants chosen to bracket the classic ~95 %
//! ANI species boundary; they are not estimates of real evolutionary
//! distances.

/// Taxonomic separation between two genomes in a sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TaxRank {
    /// Same species, different strain.
    Strain,
    /// Congeneric species.
    Species,
    /// Same family, different genus.
    Genus,
    /// Same order, different family.
    Family,
    /// Same class/phylum, different order.
    Order,
    /// Different phylum.
    Phylum,
    /// Different kingdom/domain.
    Kingdom,
}

impl TaxRank {
    /// Genome-wide divergence (substitution fraction) between two
    /// genomes separated at this rank.
    pub fn divergence(self) -> f64 {
        match self {
            TaxRank::Strain => 0.005,
            TaxRank::Species => 0.04,
            TaxRank::Genus => 0.10,
            TaxRank::Family => 0.16,
            TaxRank::Order => 0.22,
            TaxRank::Phylum => 0.30,
            TaxRank::Kingdom => 0.40,
        }
    }

    /// Composition-model jitter between two genomes separated at this
    /// rank: the log-scale perturbation applied to the ancestral
    /// Markov transition weights (see `mrmc_simulate::genome`).
    /// Calibrated so that k = 5 minhash binning of 1 000 bp reads
    /// lands in the accuracy band the paper reports for the matching
    /// Table III rows (~85 % at Species up to ~98 % at Phylum).
    pub fn composition_jitter(self) -> f64 {
        match self {
            TaxRank::Strain => 0.8,
            TaxRank::Species => 1.2,
            TaxRank::Genus => 1.5,
            TaxRank::Family => 1.8,
            TaxRank::Order => 2.1,
            TaxRank::Phylum => 2.5,
            TaxRank::Kingdom => 3.0,
        }
    }

    /// All ranks, finest first.
    pub const ALL: [TaxRank; 7] = [
        TaxRank::Strain,
        TaxRank::Species,
        TaxRank::Genus,
        TaxRank::Family,
        TaxRank::Order,
        TaxRank::Phylum,
        TaxRank::Kingdom,
    ];
}

impl std::str::FromStr for TaxRank {
    type Err = String;
    fn from_str(s: &str) -> Result<TaxRank, String> {
        match s.to_ascii_lowercase().as_str() {
            "strain" => Ok(TaxRank::Strain),
            "species" => Ok(TaxRank::Species),
            "genus" => Ok(TaxRank::Genus),
            "family" => Ok(TaxRank::Family),
            "order" => Ok(TaxRank::Order),
            "phylum" => Ok(TaxRank::Phylum),
            "kingdom" => Ok(TaxRank::Kingdom),
            other => Err(format!("unknown rank {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn divergence_monotone_in_rank() {
        let d: Vec<f64> = TaxRank::ALL.iter().map(|r| r.divergence()).collect();
        for w in d.windows(2) {
            assert!(w[0] < w[1], "{d:?}");
        }
    }

    #[test]
    fn ranks_ordered() {
        assert!(TaxRank::Species < TaxRank::Genus);
        assert!(TaxRank::Phylum < TaxRank::Kingdom);
    }

    #[test]
    fn parse() {
        assert_eq!("genus".parse::<TaxRank>().unwrap(), TaxRank::Genus);
        assert_eq!("Kingdom".parse::<TaxRank>().unwrap(), TaxRank::Kingdom);
        assert!("klass".parse::<TaxRank>().is_err());
    }
}
