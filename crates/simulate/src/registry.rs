//! The named dataset catalogue: synthetic stand-ins configured to the
//! papers' benchmark descriptions.
//!
//! * [`whole_metagenome_samples`] — S1–S14 and R1 of Table II: species
//!   GC values, abundance ratios, taxonomic separation, read counts,
//!   1 000 bp shotgun reads;
//! * [`environmental_samples`] — the eight Sogin et al. seawater
//!   samples of Table I: read counts, ~60 bp amplicon tags,
//!   power-law species abundances sized so OTU counts land near the
//!   paper's;
//! * [`huse_16s`] — the Huse et al. 43-genome pyrosequencing benchmark
//!   at a chosen error cap (3 % / 5 % in Table IV).
//!
//! Every generator takes a `scale` in `(0, 1]` that shrinks read
//! counts proportionally: the full counts reproduce the paper's sizes,
//! scaled-down ones keep test and bench times sane. Species counts
//! for the environmental samples scale with sqrt(scale) so scaled
//! samples keep a realistic reads-per-species ratio.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use mrmc_seqio::SeqRecord;

use crate::community::{CommunitySpec, Dataset, SpeciesSpec};
use crate::reads::{ErrorModel, ReadSimulator};
use crate::sixteen_s::make_family;
use crate::taxonomy::TaxRank;

/// Configuration of one whole-metagenome sample (a Table II row).
#[derive(Debug, Clone, PartialEq)]
pub struct SampleConfig {
    /// Sample id ("S1" … "S14", "R1").
    pub sid: &'static str,
    /// Species `(name, gc, abundance)` triples.
    pub species: Vec<(&'static str, f64, f64)>,
    /// Taxonomic separation (finest listed in Table II).
    pub rank: TaxRank,
    /// Full-size read count.
    pub reads: usize,
    /// Read length in bp.
    pub read_len: usize,
    /// Whether ground-truth labels are exposed (false for R1).
    pub labeled: bool,
}

impl SampleConfig {
    /// Ground-truth cluster count (number of species).
    pub fn expected_clusters(&self) -> usize {
        self.species.len()
    }

    /// Generate the dataset at `scale`, with a per-base error model.
    pub fn generate(&self, scale: f64, errors: ErrorModel, seed: u64) -> Dataset {
        assert!(scale > 0.0 && scale <= 1.0, "scale in (0,1]");
        let community = CommunitySpec {
            species: self
                .species
                .iter()
                .map(|&(name, gc, abundance)| SpeciesSpec {
                    name: name.to_string(),
                    gc,
                    abundance,
                })
                .collect(),
            rank: self.rank,
            // Real genomes are Mbp; 120 kb preserves read diversity
            // (reads never repeat) at a fraction of the memory.
            genome_len: 120_000,
        };
        let total = ((self.reads as f64) * scale).round().max(2.0) as usize;
        let simulator = ReadSimulator::new(self.read_len, errors);
        let d = community.generate(self.sid, total, &simulator, seed);
        if self.labeled {
            d
        } else {
            d.without_labels()
        }
    }
}

/// The Table II catalogue.
pub fn whole_metagenome_samples() -> Vec<SampleConfig> {
    use TaxRank::*;
    let s = |sid, species, rank, reads, labeled| SampleConfig {
        sid,
        species,
        rank,
        reads,
        read_len: 1000,
        labeled,
    };
    vec![
        s(
            "S1",
            vec![
                ("Bacillus halodurans", 0.44, 1.0),
                ("Bacillus subtilis", 0.44, 1.0),
            ],
            Species,
            49_998,
            true,
        ),
        s(
            "S2",
            vec![
                ("Gluconobacter oxydans", 0.61, 1.0),
                ("Granulobacter bethesdensis", 0.59, 1.0),
            ],
            Genus,
            49_998,
            true,
        ),
        s(
            "S3",
            vec![
                ("Escherichia coli", 0.51, 1.0),
                ("Yersinia pestis", 0.48, 1.0),
            ],
            Genus,
            49_998,
            true,
        ),
        s(
            "S4",
            vec![
                ("Rhodopirellula baltica", 0.55, 1.0),
                ("Blastopirellula marina", 0.57, 1.0),
            ],
            Genus,
            49_998,
            true,
        ),
        s(
            "S5",
            vec![
                ("Bacillus anthracis", 0.35, 1.0),
                ("Listeria monocytogenes", 0.38, 2.0),
            ],
            Family,
            49_998,
            true,
        ),
        s(
            "S6",
            vec![
                ("Methanocaldococcus jannaschii", 0.31, 1.0),
                ("Methanococcus mariplaudis", 0.33, 1.0),
            ],
            Family,
            49_998,
            true,
        ),
        s(
            "S7",
            vec![
                ("Thermofilum pendens", 0.58, 1.0),
                ("Pyrobaculum aerophilum", 0.51, 1.0),
            ],
            Family,
            49_998,
            true,
        ),
        s(
            "S8",
            vec![
                ("Gluconobacter oxydans", 0.61, 1.0),
                ("Rhodospirillum rubrum", 0.65, 1.0),
            ],
            Order,
            49_998,
            true,
        ),
        s(
            "S9",
            vec![
                ("Gluconobacter oxydans", 0.61, 1.0),
                ("Granulobacter bethesdensis", 0.59, 1.0),
                ("Nitrobacter hamburgensis", 0.62, 8.0),
            ],
            Family,
            49_996,
            true,
        ),
        s(
            "S10",
            vec![
                ("Escherichia coli", 0.51, 1.0),
                ("Pseudomonas putida", 0.62, 1.0),
                ("Bacillus anthracis", 0.35, 8.0),
            ],
            Order,
            49_996,
            true,
        ),
        s(
            "S11",
            vec![
                ("Gluconobacter oxydans", 0.61, 1.0),
                ("Granulobacter bethesdensis", 0.59, 1.0),
                ("Nitrobacter hamburgensis", 0.62, 4.0),
                ("Rhodospirillum rubrum", 0.65, 4.0),
            ],
            Family,
            99_998,
            true,
        ),
        s(
            "S12",
            vec![
                ("Escherichia coli", 0.51, 1.0),
                ("Pseudomonas putida", 0.62, 1.0),
                ("Thermofilum pendens", 0.58, 1.0),
                ("Pyrobaculum aerophilum", 0.51, 1.0),
                ("Bacillus anthracis", 0.35, 2.0),
                ("Bacillus subtilis", 0.44, 14.0),
            ],
            Species,
            99_994,
            true,
        ),
        s(
            "S13",
            vec![
                ("Acinetobacter baumannii SDF", 0.39, 1.0),
                ("Pseudomonas entomophila L48", 0.64, 1.0),
            ],
            Genus,
            4_000,
            true,
        ),
        s(
            "S14",
            vec![
                ("Ehrlichia ruminantium Gardel", 0.27, 1.0),
                ("Anaplasma centrale Israel", 0.50, 1.0),
                ("Neorickettsia sennetsu Miyayama", 0.41, 1.0),
            ],
            Genus,
            6_000,
            true,
        ),
        s(
            "R1",
            vec![
                ("Baumannia cicadellinicola", 0.33, 2.0),
                ("Sulcia muelleri", 0.22, 2.0),
                ("Wolbachia endosymbiont", 0.34, 1.0),
            ],
            Genus,
            7_137,
            false,
        ),
    ]
}

/// Configuration of one environmental 16S sample (a Table I row).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnvSampleConfig {
    /// Sample id.
    pub sid: &'static str,
    /// Site description.
    pub site: &'static str,
    /// Latitude °N.
    pub lat: f64,
    /// Longitude °W.
    pub lon: f64,
    /// Depth in metres.
    pub depth_m: u32,
    /// Temperature °C.
    pub temp_c: f64,
    /// Full-size read count.
    pub reads: usize,
    /// Species (OTU) richness used by the generator, sized so
    /// θ=0.95 clustering lands near the paper's OTU counts.
    pub n_species: usize,
}

/// The Table I catalogue.
pub fn environmental_samples() -> Vec<EnvSampleConfig> {
    let c = |sid, site, lat, lon, depth_m, temp_c, reads, n_species| EnvSampleConfig {
        sid,
        site,
        lat,
        lon,
        depth_m,
        temp_c,
        reads,
        n_species,
    };
    vec![
        c(
            "53R",
            "Labrador seawater",
            58.300,
            -29.133,
            1_400,
            3.5,
            11_218,
            1_180,
        ),
        c(
            "55R",
            "Oxygen minimum",
            58.300,
            -29.133,
            500,
            7.1,
            8_680,
            1_205,
        ),
        c(
            "112R",
            "Lower deep water",
            50.400,
            -25.000,
            4_121,
            2.3,
            11_132,
            1_694,
        ),
        c(
            "115R",
            "Oxygen minimum",
            50.400,
            -25.000,
            550,
            7.0,
            13_441,
            1_217,
        ),
        c(
            "137",
            "Labrador seawater",
            60.900,
            -38.516,
            1_710,
            3.0,
            12_259,
            1_020,
        ),
        c(
            "138",
            "Labrador seawater",
            60.900,
            -38.516,
            710,
            3.5,
            11_554,
            1_054,
        ),
        c(
            "FS312", "Bag City", 45.916, -129.983, 1_529, 31.2, 52_569, 1_983,
        ),
        c(
            "FS396",
            "Marker 52",
            45.943,
            -129.985,
            1_537,
            24.4,
            73_657,
            1_360,
        ),
    ]
}

impl EnvSampleConfig {
    /// Generate the sample at `scale`: ~60 bp amplicon tags from a
    /// power-law-abundant community of 16S genes.
    pub fn generate(&self, scale: f64, seed: u64) -> Dataset {
        assert!(scale > 0.0 && scale <= 1.0, "scale in (0,1]");
        let mut rng = StdRng::seed_from_u64(seed);
        let total = ((self.reads as f64) * scale).round().max(2.0) as usize;
        // Species richness scales with sqrt(scale): halving reads does
        // not halve the number of taxa in a real rarefaction either.
        let n_species = ((self.n_species as f64) * scale.sqrt()).round().max(2.0) as usize;
        let genes = make_family(n_species, &mut rng);

        // Power-law (Zipf-ish) abundances — the "rare biosphere" of
        // the Sogin study: a few dominant taxa, a long tail.
        let weights: Vec<f64> = (0..n_species)
            .map(|i| 1.0 / ((i + 1) as f64).powf(0.9))
            .collect();
        let total_w: f64 = weights.iter().sum();

        // Tag reads: amplicon sequencing is primer-delimited, so every
        // read of a species covers the *same* V6-style window (~60 bp,
        // the paper's average length) — duplicates plus sequencing
        // errors, exactly the structure of real 454 tag data.
        let errors = ErrorModel::pyrosequencing(0.004);
        let sim = ReadSimulator::new(60, errors);
        let mut reads = Vec::with_capacity(total);
        let mut labels = Vec::with_capacity(total);
        for r in 0..total {
            // Sample a species by weight.
            let mut pick = rng.random::<f64>() * total_w;
            let mut species = 0usize;
            for (i, w) in weights.iter().enumerate() {
                if pick < *w {
                    species = i;
                    break;
                }
                pick -= w;
            }
            let template = genes[species].amplicon(5, 0).to_vec();
            let seq = sim.apply_errors(&template, &mut rng);
            reads.push(SeqRecord::new(format!("{}_{r}", self.sid), seq));
            labels.push(species);
        }
        Dataset {
            name: self.sid.to_string(),
            reads,
            labels: Some(labels),
            species: (0..n_species).map(|i| format!("OTU{i}")).collect(),
        }
    }
}

/// The Huse et al. 16S simulated benchmark: 43 reference genes,
/// GS20-style ~100 bp amplicon reads, per-read error drawn uniformly
/// in `[0, max_error]` (Table IV's "up to 3 %/5 % error").
pub fn huse_16s(max_error: f64, scale: f64, seed: u64) -> Dataset {
    assert!(scale > 0.0 && scale <= 1.0, "scale in (0,1]");
    const HUSE_SPECIES: usize = 43;
    const HUSE_READS: usize = 345_000;
    let mut rng = StdRng::seed_from_u64(seed);
    let genes = make_family(HUSE_SPECIES, &mut rng);
    let total = ((HUSE_READS as f64) * scale).round().max(2.0) as usize;
    let mut reads = Vec::with_capacity(total);
    let mut labels = Vec::with_capacity(total);
    for r in 0..total {
        let species = rng.random_range(0..HUSE_SPECIES);
        // Primer-delimited GS20 amplicon: one fixed ~100 bp window per
        // species; per-read error drawn uniformly in [0, max_error].
        let template = genes[species].amplicon(3, 20).to_vec();
        let rate = rng.random::<f64>() * max_error;
        let sim = ReadSimulator::new(template.len().max(1), ErrorModel::pyrosequencing(rate));
        let seq = sim.apply_errors(&template, &mut rng);
        reads.push(SeqRecord::new(format!("huse_{r}"), seq));
        labels.push(species);
    }
    Dataset {
        name: format!("huse-{:.0}pct", max_error * 100.0),
        reads,
        labels: Some(labels),
        species: (0..HUSE_SPECIES).map(|i| format!("ref{i}")).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_catalogue_matches_paper() {
        let samples = whole_metagenome_samples();
        assert_eq!(samples.len(), 15);
        let by_sid = |sid: &str| {
            samples
                .iter()
                .find(|s| s.sid == sid)
                .unwrap_or_else(|| panic!("{sid} missing"))
        };
        assert_eq!(by_sid("S1").reads, 49_998);
        assert_eq!(by_sid("S1").expected_clusters(), 2);
        assert_eq!(by_sid("S12").expected_clusters(), 6);
        assert_eq!(by_sid("S12").reads, 99_994);
        assert_eq!(by_sid("S9").species[2].2, 8.0); // 1:1:8 ratio
        assert!(!by_sid("R1").labeled);
        assert_eq!(by_sid("R1").reads, 7_137);
        // GC contents per Table II.
        assert_eq!(by_sid("S6").species[0].1, 0.31);
        assert_eq!(by_sid("S8").species[1].1, 0.65);
    }

    #[test]
    fn table1_catalogue_matches_paper() {
        let samples = environmental_samples();
        assert_eq!(samples.len(), 8);
        let reads: Vec<usize> = samples.iter().map(|s| s.reads).collect();
        assert_eq!(
            reads,
            vec![11_218, 8_680, 11_132, 13_441, 12_259, 11_554, 52_569, 73_657]
        );
        assert_eq!(samples[0].sid, "53R");
        assert_eq!(samples[2].depth_m, 4_121);
    }

    #[test]
    fn whole_metagenome_generation_scaled() {
        let cfg = &whole_metagenome_samples()[0]; // S1
        let d = cfg.generate(0.01, ErrorModel::perfect(), 7);
        assert_eq!(d.len(), 500);
        assert_eq!(d.reads[0].len(), 1000);
        let labels = d.labels.as_ref().unwrap();
        // 1:1 ratio → ~250 each.
        let a = labels.iter().filter(|&&l| l == 0).count();
        assert!((240..=260).contains(&a), "a = {a}");
    }

    #[test]
    fn r1_is_unlabeled() {
        let cfg = whole_metagenome_samples()
            .into_iter()
            .find(|s| s.sid == "R1")
            .unwrap();
        let d = cfg.generate(0.01, ErrorModel::perfect(), 7);
        assert!(d.labels.is_none());
    }

    #[test]
    fn environmental_generation() {
        let cfg = environmental_samples()[0]; // 53R
        let d = cfg.generate(0.02, 11);
        assert_eq!(d.len(), 224); // 11218 * 0.02
                                  // Lengths vary around 60.
        let mean: f64 = d.reads.iter().map(|r| r.len() as f64).sum::<f64>() / d.len() as f64;
        assert!((50.0..70.0).contains(&mean), "mean len {mean}");
        // Species indices within range.
        let max_label = *d.labels.as_ref().unwrap().iter().max().unwrap();
        assert!(max_label < d.species.len());
    }

    #[test]
    fn huse_generation() {
        let d = huse_16s(0.03, 0.002, 5);
        assert_eq!(d.len(), 690);
        assert_eq!(d.species.len(), 43);
        assert!(d.labels.is_some());
        assert!(d.name.contains("3pct"));
    }

    #[test]
    fn generators_deterministic() {
        let cfg = environmental_samples()[1];
        assert_eq!(cfg.generate(0.01, 3), cfg.generate(0.01, 3));
        let w = &whole_metagenome_samples()[2];
        assert_eq!(
            w.generate(0.005, ErrorModel::perfect(), 9),
            w.generate(0.005, ErrorModel::perfect(), 9)
        );
    }

    #[test]
    #[should_panic(expected = "scale in (0,1]")]
    fn zero_scale_rejected() {
        whole_metagenome_samples()[0].generate(0.0, ErrorModel::perfect(), 0);
    }
}
