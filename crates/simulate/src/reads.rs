//! Sequencing read simulation with error models.
//!
//! Models the two platforms in the paper: Sanger-like shotgun reads
//! (Table II's 1 000 bp reads) and 454/Roche pyrosequencing amplicons
//! (Tables I/IV), whose signature error mode is homopolymer-length
//! miscalls — implemented as extra indel probability inside runs of a
//! repeated base.

use rand::rngs::StdRng;
use rand::Rng;

use crate::genome::mutate_base;

/// Per-base error probabilities.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorModel {
    /// Substitution probability per base.
    pub substitution: f64,
    /// Insertion probability per base.
    pub insertion: f64,
    /// Deletion probability per base.
    pub deletion: f64,
    /// Extra indel probability applied inside homopolymer runs
    /// (length ≥ 3) — the 454 signature.
    pub homopolymer: f64,
}

impl ErrorModel {
    /// No errors.
    pub fn perfect() -> ErrorModel {
        ErrorModel {
            substitution: 0.0,
            insertion: 0.0,
            deletion: 0.0,
            homopolymer: 0.0,
        }
    }

    /// An error model with total error ~`rate`, split 80 % subs /
    /// 10 % ins / 10 % del (the Huse benchmark's "reads with up to
    /// 3 %/5 % error" knob).
    pub fn with_total_rate(rate: f64) -> ErrorModel {
        ErrorModel {
            substitution: rate * 0.8,
            insertion: rate * 0.1,
            deletion: rate * 0.1,
            homopolymer: rate * 0.2,
        }
    }

    /// Pyrosequencing-flavoured model: mostly homopolymer indels.
    pub fn pyrosequencing(rate: f64) -> ErrorModel {
        ErrorModel {
            substitution: rate * 0.3,
            insertion: rate * 0.1,
            deletion: rate * 0.1,
            homopolymer: rate * 0.5,
        }
    }

    /// Expected per-base error (excluding the conditional homopolymer
    /// term).
    pub fn base_rate(&self) -> f64 {
        self.substitution + self.insertion + self.deletion
    }
}

/// Draws reads from genomes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReadSimulator {
    /// Read length (exact; reads near the 3' end are truncated).
    pub read_len: usize,
    /// Error model applied per read.
    pub errors: ErrorModel,
}

impl ReadSimulator {
    /// Simulator for fixed-length reads.
    pub fn new(read_len: usize, errors: ErrorModel) -> ReadSimulator {
        assert!(read_len > 0, "read length must be positive");
        ReadSimulator { read_len, errors }
    }

    /// Sample one read from a uniformly random start position.
    pub fn read_from(&self, genome: &[u8], rng: &mut StdRng) -> Vec<u8> {
        assert!(!genome.is_empty(), "cannot read from an empty genome");
        let max_start = genome.len().saturating_sub(self.read_len);
        let start = if max_start == 0 {
            0
        } else {
            rng.random_range(0..=max_start)
        };
        let end = (start + self.read_len).min(genome.len());
        self.apply_errors(&genome[start..end], rng)
    }

    /// Sample `count` reads.
    pub fn reads_from(&self, genome: &[u8], count: usize, rng: &mut StdRng) -> Vec<Vec<u8>> {
        (0..count).map(|_| self.read_from(genome, rng)).collect()
    }

    /// Corrupt a template according to the error model.
    pub fn apply_errors(&self, template: &[u8], rng: &mut StdRng) -> Vec<u8> {
        let e = &self.errors;
        let mut out = Vec::with_capacity(template.len() + 4);
        let mut run_len = 0usize;
        let mut prev = 0u8;
        for &c in template {
            run_len = if c == prev { run_len + 1 } else { 1 };
            prev = c;
            let in_homopolymer = run_len >= 3;
            let extra = if in_homopolymer { e.homopolymer } else { 0.0 };

            let r = rng.random::<f64>();
            if r < e.deletion + extra / 2.0 {
                continue; // base dropped
            }
            if r < e.deletion + extra / 2.0 + e.insertion + extra / 2.0 {
                // Insertion: duplicate within homopolymers (the 454
                // overcall), random base otherwise.
                out.push(if in_homopolymer {
                    c
                } else {
                    mutate_base(c, rng)
                });
            }
            if rng.random::<f64>() < e.substitution {
                out.push(mutate_base(c, rng));
            } else {
                out.push(c);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::genome::random_genome;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn perfect_reads_are_substrings() {
        let mut r = rng(1);
        let g = random_genome(5_000, 0.5, &mut r);
        let sim = ReadSimulator::new(100, ErrorModel::perfect());
        for _ in 0..20 {
            let read = sim.read_from(&g, &mut r);
            assert_eq!(read.len(), 100);
            let found = g.windows(100).any(|w| w == &read[..]);
            assert!(found, "read not a substring");
        }
    }

    #[test]
    fn error_rate_roughly_matches() {
        let mut r = rng(2);
        let g = random_genome(200, 0.5, &mut r);
        let sim = ReadSimulator::new(
            200,
            ErrorModel {
                substitution: 0.05,
                insertion: 0.0,
                deletion: 0.0,
                homopolymer: 0.0,
            },
        );
        let mut mismatches = 0usize;
        let mut total = 0usize;
        for _ in 0..200 {
            let read = sim.apply_errors(&g, &mut r);
            assert_eq!(read.len(), g.len());
            mismatches += read.iter().zip(&g).filter(|(a, b)| a != b).count();
            total += g.len();
        }
        let rate = mismatches as f64 / total as f64;
        assert!((rate - 0.05).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn short_genome_truncates_read() {
        let mut r = rng(3);
        let g = b"ACGTACGT".to_vec();
        let sim = ReadSimulator::new(100, ErrorModel::perfect());
        let read = sim.read_from(&g, &mut r);
        assert_eq!(read, g);
    }

    #[test]
    fn homopolymer_errors_target_runs() {
        let mut r = rng(4);
        // Template with a long homopolymer; only homopolymer errors on.
        let template = b"ACGTAAAAAAAAAAACGT".to_vec();
        let sim = ReadSimulator::new(
            template.len(),
            ErrorModel {
                substitution: 0.0,
                insertion: 0.0,
                deletion: 0.0,
                homopolymer: 0.3,
            },
        );
        let mut changed = 0usize;
        for _ in 0..100 {
            let read = sim.apply_errors(&template, &mut r);
            if read != template {
                changed += 1;
                // Length changes only (indels), and the A-run is what
                // shrinks or grows.
                let a_count = read.iter().filter(|&&c| c == b'A').count();
                assert_ne!(a_count, 0);
            }
        }
        assert!(changed > 30, "homopolymer errors too rare: {changed}");
    }

    #[test]
    fn reads_from_count() {
        let mut r = rng(5);
        let g = random_genome(1000, 0.5, &mut r);
        let sim = ReadSimulator::new(60, ErrorModel::with_total_rate(0.03));
        let reads = sim.reads_from(&g, 25, &mut r);
        assert_eq!(reads.len(), 25);
    }

    #[test]
    fn with_total_rate_components() {
        let e = ErrorModel::with_total_rate(0.05);
        assert!((e.base_rate() - 0.05).abs() < 1e-12);
        assert!(e.substitution > e.insertion);
    }

    #[test]
    #[should_panic(expected = "empty genome")]
    fn empty_genome_panics() {
        let sim = ReadSimulator::new(10, ErrorModel::perfect());
        sim.read_from(&[], &mut rng(0));
    }
}
