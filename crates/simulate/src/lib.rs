//! Synthetic metagenome data substrate.
//!
//! The paper evaluates on data we cannot redistribute or regenerate
//! bit-for-bit: real genomes from NCBI (Table II's species), the Sogin
//! et al. deep-sea 16S samples (Table I), the Huse et al. 43-genome
//! pyrosequencing benchmark, and a sharpshooter-gut real sample (R1).
//! Per the substitution policy in DESIGN.md we generate *synthetic
//! equivalents that control exactly the variables the evaluation
//! probes*: inter-species divergence (keyed to the taxonomic ranks in
//! Table II), GC content, abundance ratios, read counts/lengths, and
//! sequencing error rates.
//!
//! * [`genome`] — random genomes with target GC, divergence with
//!   substitutions + indels;
//! * [`taxonomy`] — taxonomic ranks mapped to sequence divergence;
//! * [`reads`] — shotgun/amplicon read simulation with substitution,
//!   indel and homopolymer error models (pyrosequencing's signature);
//! * [`sixteen_s`] — a 16S rRNA gene model with conserved and variable
//!   regions, for amplicon datasets;
//! * [`community`] — multi-species communities with abundance ratios;
//! * [`registry`] — the named dataset catalogue: S1–S14 + R1
//!   (Table II), the eight environmental samples (Table I), and the
//!   Huse 16S benchmark at 3 %/5 % error.
//!
//! Everything is deterministic given a seed (`rand::rngs::StdRng`).

pub mod community;
pub mod genome;
pub mod reads;
pub mod registry;
pub mod sixteen_s;
pub mod taxonomy;

pub use community::{CommunitySpec, Dataset, SpeciesSpec};
pub use genome::{diverge, random_genome};
pub use reads::{ErrorModel, ReadSimulator};
pub use registry::{environmental_samples, huse_16s, whole_metagenome_samples, SampleConfig};
pub use taxonomy::TaxRank;
