//! A 16S rRNA gene model with conserved and variable regions.
//!
//! 16S genes have ~9 hypervariable regions (V1–V9) separated by
//! conserved stretches used for primer design (paper §I). Our model
//! alternates conserved blocks — nearly identical across species —
//! with variable blocks that diverge strongly, so amplicon reads
//! behave like real 16S data: any two species agree in the conserved
//! scaffold but are separable by their variable regions.

use rand::rngs::StdRng;

use crate::genome::{diverge, random_genome};

/// Layout constants of the synthetic gene (~1.5 kb like real 16S).
const CONSERVED_BLOCK: usize = 120;
const VARIABLE_BLOCK: usize = 60;
const NUM_VARIABLE: usize = 9;

/// Divergence of variable regions between species in one family tree.
const VARIABLE_DIVERGENCE: f64 = 0.25;
/// Divergence of conserved regions.
const CONSERVED_DIVERGENCE: f64 = 0.01;

/// A reference 16S gene: the full sequence plus the variable-region
/// spans (offset, len).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SixteenSGene {
    /// The gene sequence.
    pub seq: Vec<u8>,
    /// Variable-region spans within `seq`.
    pub variable_spans: Vec<(usize, usize)>,
}

impl SixteenSGene {
    /// Length of the gene.
    pub fn len(&self) -> usize {
        self.seq.len()
    }

    /// True for an empty gene (never produced by the generator).
    pub fn is_empty(&self) -> bool {
        self.seq.is_empty()
    }

    /// Extract the amplicon targeted by "primers" around variable
    /// region `v` (0-based), `flank` conserved bases on each side —
    /// the region short 454 reads cover in the Sogin-style samples.
    pub fn amplicon(&self, v: usize, flank: usize) -> &[u8] {
        let (off, len) = self.variable_spans[v];
        let start = off.saturating_sub(flank);
        let end = (off + len + flank).min(self.seq.len());
        &self.seq[start..end]
    }
}

/// Generate a family of `n_species` related 16S genes: one ancestor,
/// each species diverging strongly in variable regions and barely in
/// conserved ones.
pub fn make_family(n_species: usize, rng: &mut StdRng) -> Vec<SixteenSGene> {
    let ancestor = ancestor_gene(rng);
    (0..n_species)
        .map(|_| diverge_gene(&ancestor, rng))
        .collect()
}

fn ancestor_gene(rng: &mut StdRng) -> SixteenSGene {
    let mut seq = Vec::new();
    let mut spans = Vec::with_capacity(NUM_VARIABLE);
    for _ in 0..NUM_VARIABLE {
        seq.extend(random_genome(CONSERVED_BLOCK, 0.55, rng));
        spans.push((seq.len(), VARIABLE_BLOCK));
        seq.extend(random_genome(VARIABLE_BLOCK, 0.50, rng));
    }
    seq.extend(random_genome(CONSERVED_BLOCK, 0.55, rng));
    SixteenSGene {
        seq,
        variable_spans: spans,
    }
}

fn diverge_gene(ancestor: &SixteenSGene, rng: &mut StdRng) -> SixteenSGene {
    // Diverge region by region so spans stay aligned (substitutions
    // only inside variable blocks would keep lengths; `diverge` may
    // indel, so rebuild spans as we go).
    let mut seq = Vec::with_capacity(ancestor.seq.len());
    let mut spans = Vec::with_capacity(ancestor.variable_spans.len());
    let mut cursor = 0usize;
    for &(off, len) in &ancestor.variable_spans {
        // Conserved stretch before this variable region.
        let conserved = &ancestor.seq[cursor..off];
        seq.extend(diverge(conserved, CONSERVED_DIVERGENCE, rng));
        let vstart = seq.len();
        let variable = &ancestor.seq[off..off + len];
        seq.extend(diverge(variable, VARIABLE_DIVERGENCE, rng));
        spans.push((vstart, seq.len() - vstart));
        cursor = off + len;
    }
    seq.extend(diverge(&ancestor.seq[cursor..], CONSERVED_DIVERGENCE, rng));
    SixteenSGene {
        seq,
        variable_spans: spans,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    fn identity(a: &[u8], b: &[u8]) -> f64 {
        // Alignment-based identity (1 − normalized edit distance):
        // `diverge` may indel even in conserved regions, and a single
        // early indel shifts every downstream position, so positional
        // matching would make this test depend on the rng stream.
        let (n, m) = (a.len(), b.len());
        if n.max(m) == 0 {
            return 1.0;
        }
        let mut prev: Vec<usize> = (0..=m).collect();
        let mut cur = vec![0usize; m + 1];
        for i in 1..=n {
            cur[0] = i;
            for j in 1..=m {
                let sub = prev[j - 1] + usize::from(a[i - 1] != b[j - 1]);
                cur[j] = sub.min(prev[j] + 1).min(cur[j - 1] + 1);
            }
            std::mem::swap(&mut prev, &mut cur);
        }
        1.0 - prev[m] as f64 / n.max(m) as f64
    }

    #[test]
    fn gene_has_expected_structure() {
        let fam = make_family(1, &mut rng(1));
        let g = &fam[0];
        assert_eq!(g.variable_spans.len(), NUM_VARIABLE);
        assert!(g.len() > 1_400 && g.len() < 1_800, "len {}", g.len());
        assert!(!g.is_empty());
    }

    #[test]
    fn conserved_regions_more_similar_than_variable() {
        let fam = make_family(2, &mut rng(2));
        let (a, b) = (&fam[0], &fam[1]);
        // First conserved block (before first variable span).
        let ca = &a.seq[..a.variable_spans[0].0];
        let cb = &b.seq[..b.variable_spans[0].0];
        let cons_id = identity(ca, cb);
        // First variable block.
        let (oa, la) = a.variable_spans[0];
        let (ob, lb) = b.variable_spans[0];
        let var_id = identity(&a.seq[oa..oa + la], &b.seq[ob..ob + lb]);
        assert!(
            cons_id > var_id + 0.1,
            "conserved {cons_id} vs variable {var_id}"
        );
        assert!(cons_id > 0.9, "conserved identity {cons_id}");
    }

    #[test]
    fn amplicon_covers_variable_region() {
        let fam = make_family(1, &mut rng(3));
        let g = &fam[0];
        let amp = g.amplicon(2, 20);
        let (off, len) = g.variable_spans[2];
        assert_eq!(amp.len(), len + 40);
        assert_eq!(&g.seq[off..off + len], &amp[20..20 + len]);
    }

    #[test]
    fn family_members_distinct() {
        let fam = make_family(5, &mut rng(4));
        for i in 0..fam.len() {
            for j in (i + 1)..fam.len() {
                assert_ne!(fam[i].seq, fam[j].seq, "{i} vs {j}");
            }
        }
    }

    #[test]
    fn amplicon_flank_clamps_at_edges() {
        let fam = make_family(1, &mut rng(5));
        let g = &fam[0];
        let amp = g.amplicon(0, 10_000);
        assert_eq!(amp.len(), g.len());
    }
}
