//! Thin blocking client for the `mrmc-server` protocol.
//!
//! One [`Client`] owns one TCP connection bound to one tenant
//! (session). All calls are synchronous request/response; admission
//! refusals surface as the typed [`SubmitOutcome`] variants rather
//! than errors, because backpressure is an expected answer, not a
//! failure.

use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use mrmc_obs::MetricsSnapshot;
use mrmc_seqio::SeqRecord;

use crate::protocol::{
    read_frame, write_frame, ErrorCode, ProtocolError, Request, Response, SeedConfig, SessionStats,
    WireRead, PROTOCOL_VERSION,
};

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(std::io::Error),
    /// The server sent bytes that do not decode.
    Protocol(ProtocolError),
    /// The server answered with an `Error` frame.
    Server {
        /// Machine-readable reason.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// The server answered with a well-formed but out-of-protocol
    /// response for the request sent.
    Unexpected(&'static str),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport: {e}"),
            ClientError::Protocol(e) => write!(f, "protocol: {e}"),
            ClientError::Server { code, message } => {
                write!(f, "server error [{}]: {message}", code.name())
            }
            ClientError::Unexpected(what) => write!(f, "unexpected response: {what}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

impl From<ProtocolError> for ClientError {
    fn from(e: ProtocolError) -> ClientError {
        ClientError::Protocol(e)
    }
}

/// Answer to a submission: labels, or an explicit admission refusal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitOutcome {
    /// Admitted; one label per read, in submission order.
    Labels(Vec<u64>),
    /// Refused: bounded queue full (transient — retry after a drain).
    Busy {
        /// Queue depth at refusal.
        queue_depth: u64,
        /// Configured limit.
        limit: u64,
    },
    /// Refused: session byte quota exhausted (permanent).
    QuotaExceeded {
        /// Bytes the submission would have used.
        would_use: u64,
        /// Configured quota.
        quota: u64,
    },
}

/// A connected, handshaken session client.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connect and handshake as `tenant`. The connection uses a 60 s
    /// read timeout so a hung daemon fails loudly instead of blocking
    /// forever.
    pub fn connect(addr: impl ToSocketAddrs, tenant: &str) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        stream.set_read_timeout(Some(Duration::from_secs(60))).ok();
        let mut client = Client { stream };
        let resp = client.call(&Request::Hello {
            version: PROTOCOL_VERSION,
            tenant: tenant.to_string(),
        })?;
        match resp {
            Response::HelloAck { .. } => Ok(client),
            other => Err(unexpected(other)),
        }
    }

    fn call(&mut self, req: &Request) -> Result<Response, ClientError> {
        write_frame(&mut self.stream, &req.encode())?;
        let body = read_frame(&mut self.stream)?.ok_or(ClientError::Protocol(
            ProtocolError::Io("server closed the connection".to_string()),
        ))?;
        Ok(Response::decode(&body)?)
    }

    /// Seed the session from a batch run over `reads`; returns the
    /// seeded cluster count.
    pub fn seed_from_batch(
        &mut self,
        config: &SeedConfig,
        reads: &[SeqRecord],
    ) -> Result<u64, ClientError> {
        let resp = self.call(&Request::SeedFromBatch {
            config: config.clone(),
            reads: reads.iter().map(WireRead::from).collect(),
        })?;
        match resp {
            Response::Seeded { clusters } => Ok(clusters),
            other => Err(unexpected(other)),
        }
    }

    /// Submit a micro-batch; refusals return as typed outcomes.
    pub fn submit(&mut self, reads: &[SeqRecord]) -> Result<SubmitOutcome, ClientError> {
        let resp = self.call(&Request::SubmitReads {
            reads: reads.iter().map(WireRead::from).collect(),
        })?;
        match resp {
            Response::Labels { labels } => Ok(SubmitOutcome::Labels(labels)),
            Response::Busy { queue_depth, limit } => Ok(SubmitOutcome::Busy { queue_depth, limit }),
            Response::QuotaExceeded { would_use, quota } => {
                Ok(SubmitOutcome::QuotaExceeded { would_use, quota })
            }
            other => Err(unexpected(other)),
        }
    }

    /// Submit expecting admission; any refusal becomes an error. For
    /// callers (tests, scripts) that treat backpressure as failure.
    pub fn submit_labels(&mut self, reads: &[SeqRecord]) -> Result<Vec<u64>, ClientError> {
        match self.submit(reads)? {
            SubmitOutcome::Labels(labels) => Ok(labels),
            SubmitOutcome::Busy { .. } => Err(ClientError::Unexpected("Busy")),
            SubmitOutcome::QuotaExceeded { .. } => Err(ClientError::Unexpected("QuotaExceeded")),
        }
    }

    /// Label of a previously seen read id.
    pub fn query(&mut self, id: &str) -> Result<Option<u64>, ClientError> {
        let resp = self.call(&Request::Query { id: id.to_string() })?;
        match resp {
            Response::QueryResult { label } => Ok(label),
            other => Err(unexpected(other)),
        }
    }

    /// The session's counters.
    pub fn stats(&mut self) -> Result<SessionStats, ClientError> {
        let resp = self.call(&Request::ClusterStats)?;
        match resp {
            Response::Stats(stats) => Ok(stats),
            other => Err(unexpected(other)),
        }
    }

    /// The daemon-wide metrics snapshot (all tenants): counters,
    /// gauges and latency/size histograms. Empty when the daemon runs
    /// with metrics disabled.
    pub fn server_stats(&mut self) -> Result<MetricsSnapshot, ClientError> {
        let resp = self.call(&Request::ServerStats)?;
        match resp {
            Response::ServerStats(snap) => Ok(snap),
            other => Err(unexpected(other)),
        }
    }

    /// Drain and stop the daemon; returns the backlog drained.
    pub fn shutdown(&mut self) -> Result<u64, ClientError> {
        let resp = self.call(&Request::Shutdown)?;
        match resp {
            Response::ShutdownAck { drained } => Ok(drained),
            other => Err(unexpected(other)),
        }
    }
}

fn unexpected(resp: Response) -> ClientError {
    match resp {
        Response::Error { code, message } => ClientError::Server { code, message },
        Response::HelloAck { .. } => ClientError::Unexpected("HelloAck"),
        Response::Seeded { .. } => ClientError::Unexpected("Seeded"),
        Response::Labels { .. } => ClientError::Unexpected("Labels"),
        Response::QueryResult { .. } => ClientError::Unexpected("QueryResult"),
        Response::Stats(_) => ClientError::Unexpected("Stats"),
        Response::ServerStats(_) => ClientError::Unexpected("ServerStats"),
        Response::Busy { .. } => ClientError::Unexpected("Busy"),
        Response::QuotaExceeded { .. } => ClientError::Unexpected("QuotaExceeded"),
        Response::ShutdownAck { .. } => ClientError::Unexpected("ShutdownAck"),
    }
}
