//! The `mrmc-server` daemon: TCP accept loop, per-tenant sessions, a
//! bounded admission queue feeding a worker pool, and graceful drain.
//!
//! # Threading model
//!
//! * One **accept loop** (the thread that calls [`Server::run`])
//!   spawns a handler thread per connection.
//! * Connection threads do handshake, framing and admission control,
//!   then hand admitted micro-batches to the shared work queue and
//!   block on the reply channel. Seeding (`SeedFromBatch`) runs
//!   inline on the connection thread — it is a one-time heavyweight
//!   step that holds only its own session's lock.
//! * A fixed **worker pool** drains the queue: lock the batch's
//!   session, [`crate::session::Session::assign`] via
//!   `IncrementalClusterer::push_batch`, reply. Different tenants
//!   proceed concurrently; one tenant's batches serialize on its
//!   session lock in admission order.
//!
//! Lock order is always session → queue (connections) or queue-pop →
//! session (workers, queue lock released before the session lock is
//! taken), so the two never deadlock.
//!
//! # Shutdown
//!
//! `Shutdown` flips the drain flag *under the queue lock* (so no new
//! batch can slip in afterwards), waits until the queue is empty and
//! nothing is in flight, acks with the number of batches that were
//! still queued, wakes the workers to exit, and unblocks the accept
//! loop with a loopback connection. Every admitted batch is answered
//! before the ack; submissions arriving during the drain get an
//! explicit `ShuttingDown` error.

use std::collections::{HashMap, VecDeque};
use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Duration;

use mrmc_obs::{Category, MetricsRegistry, MetricsSnapshot, SpanDraft, Tracer};
use mrmc_seqio::SeqRecord;

use crate::protocol::{
    read_frame, read_frame_after, write_frame, ErrorCode, ProtocolError, Request, Response,
    PROTOCOL_VERSION,
};
use crate::quota::{AdmissionLimits, AdmissionReject};
use crate::session::{Session, SessionError};

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; `127.0.0.1:0` picks an ephemeral loopback port.
    pub addr: String,
    /// Worker-pool threads draining the admission queue.
    pub workers: usize,
    /// Admission limits applied to every session.
    pub limits: AdmissionLimits,
    /// Record into the live metrics registry (`ServerStats` answers an
    /// empty snapshot when off). On by default; the registry is
    /// passive enough that turning it off is a benchmarking control,
    /// not an operational one.
    pub metrics: bool,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            limits: AdmissionLimits::default(),
            metrics: true,
        }
    }
}

/// One admitted micro-batch travelling queue → worker.
struct WorkItem {
    session: Arc<Mutex<Session>>,
    reads: Vec<SeqRecord>,
    bytes: usize,
    reply: mpsc::Sender<Result<Vec<u64>, SessionError>>,
    enqueued_ns: u64,
}

#[derive(Default)]
struct QueueState {
    items: VecDeque<WorkItem>,
    in_flight: usize,
}

struct Shared {
    tracer: Arc<Tracer>,
    /// Live metrics registry; `None` when the daemon runs with
    /// metrics disabled (the on/off overhead control in
    /// `server_report`).
    metrics: Option<Arc<MetricsRegistry>>,
    limits: AdmissionLimits,
    addr: Mutex<Option<SocketAddr>>,
    sessions: Mutex<HashMap<String, Arc<Mutex<Session>>>>,
    queue: Mutex<QueueState>,
    queue_cv: Condvar,
    drained_cv: Condvar,
    shutting_down: AtomicBool,
    server_job: u32,
}

impl Shared {
    fn session(&self, tenant: &str) -> Arc<Mutex<Session>> {
        let mut sessions = self.sessions.lock().expect("sessions lock");
        if let Some(s) = sessions.get(tenant) {
            return Arc::clone(s);
        }
        let job = self.tracer.begin_job(&format!("session:{tenant}"));
        let s = Arc::new(Mutex::new(Session::new(tenant, self.limits, job)));
        sessions.insert(tenant.to_string(), Arc::clone(&s));
        if let Some(m) = &self.metrics {
            m.gauge_set("serve.sessions", sessions.len() as i64);
        }
        s
    }

    /// Refresh the daemon-wide queue gauges from the queue state
    /// (callers hold the queue lock, so the values are consistent).
    fn queue_gauges(&self, q: &QueueState) {
        if let Some(m) = &self.metrics {
            m.gauge_set("serve.queue_depth", q.items.len() as i64);
            m.gauge_set("serve.in_flight", q.in_flight as i64);
        }
    }

    /// Enqueue an admitted batch unless the drain already began.
    /// Returns the item back on refusal so the caller can un-admit it.
    fn enqueue(&self, item: WorkItem) -> Result<(), WorkItem> {
        let mut q = self.queue.lock().expect("queue lock");
        if self.shutting_down.load(Ordering::SeqCst) {
            return Err(item);
        }
        q.items.push_back(item);
        self.queue_gauges(&q);
        self.queue_cv.notify_one();
        Ok(())
    }

    /// Flip the drain flag, wait for the queue to empty and all
    /// in-flight work to finish, then wake idle workers so they exit.
    /// Returns how many batches were still queued when drain began.
    fn drain(&self) -> u64 {
        let mut q = self.queue.lock().expect("queue lock");
        self.shutting_down.store(true, Ordering::SeqCst);
        let backlog = q.items.len() as u64;
        while !(q.items.is_empty() && q.in_flight == 0) {
            let (guard, _) = self
                .drained_cv
                .wait_timeout(q, Duration::from_millis(100))
                .expect("drained cv");
            q = guard;
        }
        self.queue_cv.notify_all();
        self.tracer.add_event(
            self.server_job,
            "drain",
            self.tracer.now_ns(),
            vec![("backlog".into(), backlog.to_string())],
        );
        backlog
    }
}

fn worker_loop(shared: Arc<Shared>) {
    loop {
        let item = {
            let mut q = shared.queue.lock().expect("queue lock");
            loop {
                if let Some(item) = q.items.pop_front() {
                    q.in_flight += 1;
                    shared.queue_gauges(&q);
                    break item;
                }
                if shared.shutting_down.load(Ordering::SeqCst) {
                    return;
                }
                q = shared.queue_cv.wait(q).expect("queue cv");
            }
        };
        let dequeued_ns = shared.tracer.now_ns();
        let result = {
            let mut s = item.session.lock().expect("session lock");
            let result = s.assign(&item.reads);
            s.complete(item.bytes);
            let done_ns = shared.tracer.now_ns();
            shared.tracer.add_span(
                SpanDraft::new(s.job, "serve:queue", Category::Serve)
                    .at(
                        item.enqueued_ns,
                        dequeued_ns.saturating_sub(item.enqueued_ns),
                    )
                    .meta("reads", item.reads.len()),
            );
            shared.tracer.add_span(
                SpanDraft::new(s.job, "serve:assign", Category::Serve)
                    .at(dequeued_ns, done_ns.saturating_sub(dequeued_ns))
                    .meta("reads", item.reads.len())
                    .meta("queue_depth", s.queue_depth())
                    .meta(
                        "ok",
                        match &result {
                            Ok(labels) => labels.len().to_string(),
                            Err(e) => format!("error:{e}"),
                        },
                    ),
            );
            if let Some(m) = &shared.metrics {
                let t = s.tenant();
                m.observe(
                    &format!("serve.tenant.{t}.queue_us"),
                    dequeued_ns.saturating_sub(item.enqueued_ns) / 1_000,
                );
                m.observe(
                    &format!("serve.tenant.{t}.latency_us"),
                    done_ns.saturating_sub(item.enqueued_ns) / 1_000,
                );
            }
            result
        };
        let _ = item.reply.send(result);
        let mut q = shared.queue.lock().expect("queue lock");
        q.in_flight -= 1;
        shared.queue_gauges(&q);
        if q.items.is_empty() && q.in_flight == 0 {
            shared.drained_cv.notify_all();
        }
    }
}

fn send(stream: &mut TcpStream, resp: &Response) -> bool {
    write_frame(stream, &resp.encode()).is_ok()
}

fn error_response(e: &SessionError) -> Response {
    let code = match e {
        SessionError::NotSeeded => ErrorCode::NotSeeded,
        SessionError::AlreadySeeded => ErrorCode::AlreadySeeded,
        SessionError::BadConfig(_) => ErrorCode::BadConfig,
        SessionError::Internal(_) => ErrorCode::Internal,
    };
    Response::Error {
        code,
        message: e.to_string(),
    }
}

/// Wait for the first header byte of the next frame, polling the
/// drain flag between read timeouts. `None` ends the connection
/// (peer closed, transport error, or daemon drain while idle).
fn poll_first_byte(shared: &Shared, stream: &mut TcpStream) -> Option<u8> {
    let mut b = [0u8; 1];
    loop {
        match stream.read(&mut b) {
            Ok(0) => return None,
            Ok(_) => return Some(b[0]),
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if shared.shutting_down.load(Ordering::SeqCst) {
                    return None;
                }
            }
            Err(_) => return None,
        }
    }
}

/// Handshake: the first frame must be `Hello` with a matching
/// version and non-empty tenant. Returns the bound session.
fn handshake(shared: &Shared, stream: &mut TcpStream) -> Option<Arc<Mutex<Session>>> {
    let body = match read_frame(stream) {
        Ok(Some(body)) => body,
        Ok(None) | Err(_) => return None,
    };
    match Request::decode(&body) {
        Ok(Request::Hello { version, tenant }) => {
            if version != PROTOCOL_VERSION {
                send(
                    stream,
                    &Response::Error {
                        code: ErrorCode::VersionMismatch,
                        message: ProtocolError::VersionMismatch {
                            got: version,
                            want: PROTOCOL_VERSION,
                        }
                        .to_string(),
                    },
                );
                None
            } else if tenant.is_empty() {
                send(
                    stream,
                    &Response::Error {
                        code: ErrorCode::Protocol,
                        message: "tenant must be non-empty".to_string(),
                    },
                );
                None
            } else {
                let session = shared.session(&tenant);
                if let Some(m) = &shared.metrics {
                    m.counter_add("serve.requests.hello", 1);
                }
                if send(
                    stream,
                    &Response::HelloAck {
                        version: PROTOCOL_VERSION,
                    },
                ) {
                    Some(session)
                } else {
                    None
                }
            }
        }
        Ok(_) => {
            send(
                stream,
                &Response::Error {
                    code: ErrorCode::Protocol,
                    message: "expected Hello as the first frame".to_string(),
                },
            );
            None
        }
        Err(e) => {
            send(
                stream,
                &Response::Error {
                    code: ErrorCode::Protocol,
                    message: e.to_string(),
                },
            );
            None
        }
    }
}

fn handle_submit(
    shared: &Shared,
    session: &Arc<Mutex<Session>>,
    reads: Vec<crate::protocol::WireRead>,
) -> Response {
    if shared.shutting_down.load(Ordering::SeqCst) {
        return Response::Error {
            code: ErrorCode::ShuttingDown,
            message: "daemon is draining".to_string(),
        };
    }
    let bytes: usize = reads.iter().map(|r| r.payload_bytes()).sum();
    let records: Vec<SeqRecord> = reads.into_iter().map(SeqRecord::from).collect();
    let rx = {
        let mut s = session.lock().expect("session lock");
        if let Some(m) = &shared.metrics {
            m.counter_add("serve.requests.submit", 1);
        }
        if !s.is_seeded() {
            return error_response(&SessionError::NotSeeded);
        }
        match s.try_admit(records.len(), bytes) {
            Err(AdmissionReject::Busy { queue_depth, limit }) => {
                shared.tracer.add_event(
                    s.job,
                    "admission_reject",
                    shared.tracer.now_ns(),
                    vec![
                        ("kind".into(), "busy".into()),
                        ("reads".into(), records.len().to_string()),
                    ],
                );
                if let Some(m) = &shared.metrics {
                    let t = s.tenant();
                    m.counter_add(&format!("serve.tenant.{t}.busy_rejections"), 1);
                    m.counter_add(
                        &format!("serve.tenant.{t}.reads_rejected"),
                        records.len() as u64,
                    );
                }
                return Response::Busy { queue_depth, limit };
            }
            Err(AdmissionReject::QuotaExceeded { would_use, quota }) => {
                shared.tracer.add_event(
                    s.job,
                    "admission_reject",
                    shared.tracer.now_ns(),
                    vec![
                        ("kind".into(), "quota".into()),
                        ("reads".into(), records.len().to_string()),
                    ],
                );
                if let Some(m) = &shared.metrics {
                    let t = s.tenant();
                    m.counter_add(&format!("serve.tenant.{t}.quota_rejections"), 1);
                    m.counter_add(
                        &format!("serve.tenant.{t}.reads_rejected"),
                        records.len() as u64,
                    );
                }
                return Response::QuotaExceeded { would_use, quota };
            }
            Ok(()) => {
                if let Some(m) = &shared.metrics {
                    let t = s.tenant();
                    m.counter_add(&format!("serve.tenant.{t}.batches_admitted"), 1);
                    m.counter_add(
                        &format!("serve.tenant.{t}.reads_admitted"),
                        records.len() as u64,
                    );
                    m.counter_add(&format!("serve.tenant.{t}.bytes_admitted"), bytes as u64);
                    m.observe(
                        &format!("serve.tenant.{t}.batch_reads"),
                        records.len() as u64,
                    );
                }
                let (tx, rx) = mpsc::channel();
                let item = WorkItem {
                    session: Arc::clone(session),
                    reads: records,
                    bytes,
                    reply: tx,
                    enqueued_ns: shared.tracer.now_ns(),
                };
                // Admission and enqueue both happen before the session
                // lock drops, so queue_depth never overshoots its bound.
                match shared.enqueue(item) {
                    Ok(()) => rx,
                    Err(_refused) => {
                        // Drain began between the flag check and the
                        // enqueue: un-admit and refuse explicitly.
                        s.complete(bytes);
                        return Response::Error {
                            code: ErrorCode::ShuttingDown,
                            message: "daemon is draining".to_string(),
                        };
                    }
                }
            }
        }
    };
    match rx.recv() {
        Ok(Ok(labels)) => Response::Labels { labels },
        Ok(Err(e)) => error_response(&e),
        Err(_) => error_response(&SessionError::Internal("worker disappeared".to_string())),
    }
}

fn handle_conn(shared: Arc<Shared>, mut stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    // Generous timeout for the handshake frame, then short polls so
    // the connection observes a drain while idle.
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let session = match handshake(&shared, &mut stream) {
        Some(s) => s,
        None => return,
    };
    loop {
        let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
        let first = match poll_first_byte(&shared, &mut stream) {
            Some(b) => b,
            None => return,
        };
        // Mid-frame: the peer is committed, read the rest blocking-ish.
        let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
        let body = match read_frame_after(first, &mut stream) {
            Ok(body) => body,
            Err(e) => {
                // Framing is lost — report and hang up.
                send(
                    &mut stream,
                    &Response::Error {
                        code: ErrorCode::Protocol,
                        message: e.to_string(),
                    },
                );
                return;
            }
        };
        let resp = match Request::decode(&body) {
            Err(e) => Response::Error {
                code: ErrorCode::Protocol,
                message: e.to_string(),
            },
            Ok(Request::Hello { .. }) => Response::Error {
                code: ErrorCode::Protocol,
                message: "duplicate Hello".to_string(),
            },
            Ok(Request::SeedFromBatch { config, reads }) => {
                if shared.shutting_down.load(Ordering::SeqCst) {
                    Response::Error {
                        code: ErrorCode::ShuttingDown,
                        message: "daemon is draining".to_string(),
                    }
                } else {
                    let records: Vec<SeqRecord> = reads.into_iter().map(SeqRecord::from).collect();
                    let start_ns = shared.tracer.now_ns();
                    let mut s = session.lock().expect("session lock");
                    if let Some(m) = &shared.metrics {
                        m.counter_add("serve.requests.seed", 1);
                    }
                    match s.seed_from_batch(&config, &records) {
                        Ok(clusters) => {
                            let done_ns = shared.tracer.now_ns();
                            shared.tracer.add_span(
                                SpanDraft::new(s.job, "serve:seed", Category::Serve)
                                    .at(start_ns, done_ns.saturating_sub(start_ns))
                                    .meta("reads", records.len())
                                    .meta("clusters", clusters),
                            );
                            if let Some(m) = &shared.metrics {
                                m.observe(
                                    &format!("serve.tenant.{}.seed_us", s.tenant()),
                                    done_ns.saturating_sub(start_ns) / 1_000,
                                );
                            }
                            Response::Seeded { clusters }
                        }
                        Err(e) => error_response(&e),
                    }
                }
            }
            Ok(Request::SubmitReads { reads }) => handle_submit(&shared, &session, reads),
            Ok(Request::Query { id }) => {
                if let Some(m) = &shared.metrics {
                    m.counter_add("serve.requests.query", 1);
                }
                let s = session.lock().expect("session lock");
                Response::QueryResult {
                    label: s.query(&id),
                }
            }
            Ok(Request::ClusterStats) => {
                if let Some(m) = &shared.metrics {
                    m.counter_add("serve.requests.cluster_stats", 1);
                }
                let s = session.lock().expect("session lock");
                Response::Stats(s.stats())
            }
            Ok(Request::ServerStats) => match &shared.metrics {
                Some(m) => {
                    m.counter_add("serve.requests.server_stats", 1);
                    // Refresh every session's live gauges so the
                    // snapshot reflects the daemon *now*, not as of
                    // the last submission. Lock order matches the
                    // handshake path: sessions map, then one session
                    // at a time.
                    let sessions = shared.sessions.lock().expect("sessions lock");
                    for s in sessions.values() {
                        s.lock().expect("session lock").export_metrics(m);
                    }
                    drop(sessions);
                    Response::ServerStats(m.snapshot())
                }
                None => Response::ServerStats(MetricsSnapshot::default()),
            },
            Ok(Request::Shutdown) => {
                let drained = shared.drain();
                let resp = Response::ShutdownAck { drained };
                send(&mut stream, &resp);
                // Unblock the accept loop so run() can return.
                if let Some(addr) = *shared.addr.lock().expect("addr lock") {
                    let _ = TcpStream::connect_timeout(&addr, Duration::from_secs(1));
                }
                return;
            }
        };
        if !send(&mut stream, &resp) {
            return;
        }
    }
}

/// The daemon. [`Server::bind`] claims the port and starts the worker
/// pool; [`Server::run`] serves until a `Shutdown` request drains it.
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Bind the listener and start the worker pool.
    pub fn bind(config: &ServerConfig, tracer: Arc<Tracer>) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let server_job = tracer.begin_job("mrmc-server");
        tracer.add_event(
            server_job,
            "listening",
            tracer.now_ns(),
            vec![("addr".into(), addr.to_string())],
        );
        let shared = Arc::new(Shared {
            tracer,
            metrics: config.metrics.then(|| Arc::new(MetricsRegistry::new())),
            limits: config.limits,
            addr: Mutex::new(Some(addr)),
            sessions: Mutex::new(HashMap::new()),
            queue: Mutex::new(QueueState::default()),
            queue_cv: Condvar::new(),
            drained_cv: Condvar::new(),
            shutting_down: AtomicBool::new(false),
            server_job,
        });
        let workers = (0..config.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("mrmc-worker-{i}"))
                    .spawn(move || worker_loop(shared))
                    .expect("spawn worker")
            })
            .collect();
        Ok(Server {
            listener,
            addr,
            shared,
            workers,
        })
    }

    /// The bound address (resolves `:0` to the ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The tracer the request path emits `serve` spans into.
    pub fn tracer(&self) -> Arc<Tracer> {
        Arc::clone(&self.shared.tracer)
    }

    /// The live metrics registry (`None` when disabled by config).
    pub fn metrics(&self) -> Option<Arc<MetricsRegistry>> {
        self.shared.metrics.as_ref().map(Arc::clone)
    }

    /// Serve until a client's `Shutdown` drains the daemon. Joins the
    /// worker pool and every connection thread before returning, so
    /// when this returns every admitted batch has been answered.
    pub fn run(self) {
        let mut conns: Vec<JoinHandle<()>> = Vec::new();
        for stream in self.listener.incoming() {
            if self.shared.shutting_down.load(Ordering::SeqCst) {
                break;
            }
            if let Ok(stream) = stream {
                let shared = Arc::clone(&self.shared);
                if let Ok(h) = thread::Builder::new()
                    .name("mrmc-conn".to_string())
                    .spawn(move || handle_conn(shared, stream))
                {
                    conns.push(h);
                }
            }
        }
        for w in self.workers {
            let _ = w.join();
        }
        for c in conns {
            let _ = c.join();
        }
    }

    /// Bind and serve on a background thread; the returned handle
    /// exposes the bound address and tracer and joins on drop-site
    /// demand via [`ServerHandle::join`].
    pub fn spawn(config: &ServerConfig, tracer: Arc<Tracer>) -> io::Result<ServerHandle> {
        let server = Server::bind(config, tracer)?;
        let addr = server.local_addr();
        let tracer = server.tracer();
        let metrics = server.metrics();
        let join = thread::Builder::new()
            .name("mrmc-server".to_string())
            .spawn(move || server.run())?;
        Ok(ServerHandle {
            addr,
            tracer,
            metrics,
            join,
        })
    }
}

/// Handle to a daemon running on a background thread.
pub struct ServerHandle {
    addr: SocketAddr,
    tracer: Arc<Tracer>,
    metrics: Option<Arc<MetricsRegistry>>,
    join: JoinHandle<()>,
}

impl ServerHandle {
    /// The daemon's bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The daemon's tracer (shared; snapshot with `ledger()`).
    pub fn tracer(&self) -> Arc<Tracer> {
        Arc::clone(&self.tracer)
    }

    /// The daemon's live metrics registry (`None` when disabled).
    pub fn metrics(&self) -> Option<Arc<MetricsRegistry>> {
        self.metrics.as_ref().map(Arc::clone)
    }

    /// Wait for the daemon to drain and exit.
    pub fn join(self) {
        let _ = self.join.join();
    }
}
