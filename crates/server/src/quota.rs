//! Admission control: bounded queues and byte quotas per session.
//!
//! The daemon never buffers unboundedly. Every `SubmitReads` passes
//! through a session's [`AdmissionLedger`] before it may enter the
//! work queue; a refusal is an explicit [`AdmissionReject`] the
//! connection turns into a `Busy` or `QuotaExceeded` response, and a
//! refused submission records *nothing* — neither queue space nor
//! clusterer state. Two distinct mechanisms:
//!
//! * **Busy** (transient): the session's queued-but-unprocessed work
//!   exceeds [`AdmissionLimits::max_queue_depth`] micro-batches or
//!   [`AdmissionLimits::max_queued_bytes`] payload bytes. Backs off
//!   per-session memory; retrying after in-flight work drains
//!   succeeds.
//! * **QuotaExceeded** (permanent): the session's lifetime admitted
//!   bytes would exceed [`AdmissionLimits::max_session_bytes`]. This
//!   is the per-tenant fairness knob.

/// Limits one session (tenant) is admitted under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionLimits {
    /// Micro-batches that may be queued or in flight at once.
    pub max_queue_depth: usize,
    /// Payload bytes that may be queued or in flight at once.
    pub max_queued_bytes: usize,
    /// Lifetime payload-byte quota (`u64::MAX` = unlimited).
    pub max_session_bytes: u64,
}

impl Default for AdmissionLimits {
    fn default() -> AdmissionLimits {
        AdmissionLimits {
            max_queue_depth: 64,
            max_queued_bytes: 8 * 1024 * 1024,
            max_session_bytes: u64::MAX,
        }
    }
}

/// Why a submission was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionReject {
    /// Bounded queue full — transient, retry after a drain.
    Busy {
        /// Micro-batches queued or in flight at refusal.
        queue_depth: u64,
        /// The configured depth limit.
        limit: u64,
    },
    /// Lifetime byte quota exhausted — permanent for the session.
    QuotaExceeded {
        /// Bytes the submission would have brought the lifetime total to.
        would_use: u64,
        /// The configured quota.
        quota: u64,
    },
}

/// Per-session admission bookkeeping: the gate plus every counter the
/// `ClusterStats` response reports.
#[derive(Debug, Clone)]
pub struct AdmissionLedger {
    limits: AdmissionLimits,
    /// Micro-batches queued or in flight.
    pub queue_depth: usize,
    /// Payload bytes queued or in flight.
    pub queued_bytes: usize,
    /// Lifetime admitted payload bytes.
    pub bytes_admitted: u64,
    /// Lifetime admitted reads.
    pub reads_admitted: u64,
    /// Lifetime admitted micro-batches.
    pub batches_admitted: u64,
    /// Lifetime refused reads.
    pub reads_rejected: u64,
    /// Refusals due to the bounded queue.
    pub busy_rejections: u64,
    /// Refusals due to the byte quota.
    pub quota_rejections: u64,
    /// High-water mark of `queue_depth`.
    pub max_queue_depth_seen: usize,
}

impl AdmissionLedger {
    /// Fresh ledger under `limits`.
    pub fn new(limits: AdmissionLimits) -> AdmissionLedger {
        AdmissionLedger {
            limits,
            queue_depth: 0,
            queued_bytes: 0,
            bytes_admitted: 0,
            reads_admitted: 0,
            batches_admitted: 0,
            reads_rejected: 0,
            busy_rejections: 0,
            quota_rejections: 0,
            max_queue_depth_seen: 0,
        }
    }

    /// The limits this ledger gates under.
    pub fn limits(&self) -> AdmissionLimits {
        self.limits
    }

    /// Gate one micro-batch of `reads` reads totalling `bytes` payload
    /// bytes. On `Ok` the batch is accounted as queued and must later
    /// be released with [`AdmissionLedger::complete`]; on `Err` all
    /// counters except the rejection tallies are untouched.
    pub fn try_admit(&mut self, reads: usize, bytes: usize) -> Result<(), AdmissionReject> {
        let would_use = self.bytes_admitted.saturating_add(bytes as u64);
        if would_use > self.limits.max_session_bytes {
            self.quota_rejections += 1;
            self.reads_rejected += reads as u64;
            return Err(AdmissionReject::QuotaExceeded {
                would_use,
                quota: self.limits.max_session_bytes,
            });
        }
        if self.queue_depth >= self.limits.max_queue_depth
            || self.queued_bytes.saturating_add(bytes) > self.limits.max_queued_bytes
        {
            self.busy_rejections += 1;
            self.reads_rejected += reads as u64;
            return Err(AdmissionReject::Busy {
                queue_depth: self.queue_depth as u64,
                limit: self.limits.max_queue_depth as u64,
            });
        }
        self.queue_depth += 1;
        self.queued_bytes += bytes;
        self.bytes_admitted = would_use;
        self.reads_admitted += reads as u64;
        self.batches_admitted += 1;
        self.max_queue_depth_seen = self.max_queue_depth_seen.max(self.queue_depth);
        Ok(())
    }

    /// Release a previously admitted batch's queue accounting (called
    /// when its processing finishes, successfully or not).
    pub fn complete(&mut self, bytes: usize) {
        debug_assert!(self.queue_depth > 0, "complete without admit");
        self.queue_depth = self.queue_depth.saturating_sub(1);
        self.queued_bytes = self.queued_bytes.saturating_sub(bytes);
    }

    /// Publish the ledger's live admission state as gauges under
    /// `prefix` (the additive admitted/rejected tallies are recorded
    /// at event time by the daemon, so re-publishing here cannot
    /// double-count — gauges are set, not added).
    pub fn export_gauges(&self, metrics: &mrmc_obs::MetricsRegistry, prefix: &str) {
        metrics.gauge_set(&format!("{prefix}.queue_depth"), self.queue_depth as i64);
        metrics.gauge_set(&format!("{prefix}.queued_bytes"), self.queued_bytes as i64);
        metrics.gauge_set(
            &format!("{prefix}.max_queue_depth"),
            self.max_queue_depth_seen as i64,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn limits(depth: usize, queued: usize, session: u64) -> AdmissionLimits {
        AdmissionLimits {
            max_queue_depth: depth,
            max_queued_bytes: queued,
            max_session_bytes: session,
        }
    }

    #[test]
    fn queue_depth_gates_and_drains() {
        let mut l = AdmissionLedger::new(limits(2, usize::MAX >> 1, u64::MAX));
        assert!(l.try_admit(3, 10).is_ok());
        assert!(l.try_admit(3, 10).is_ok());
        let rej = l.try_admit(3, 10).unwrap_err();
        assert_eq!(
            rej,
            AdmissionReject::Busy {
                queue_depth: 2,
                limit: 2
            }
        );
        assert_eq!(l.busy_rejections, 1);
        assert_eq!(l.reads_rejected, 3);
        assert_eq!(l.reads_admitted, 6);
        // Draining one batch frees a slot: transient, not permanent.
        l.complete(10);
        assert!(l.try_admit(3, 10).is_ok());
        assert_eq!(l.max_queue_depth_seen, 2);
    }

    #[test]
    fn queued_bytes_bound_memory() {
        let mut l = AdmissionLedger::new(limits(100, 25, u64::MAX));
        assert!(l.try_admit(1, 20).is_ok());
        assert!(matches!(
            l.try_admit(1, 10).unwrap_err(),
            AdmissionReject::Busy { .. }
        ));
        assert!(l.queued_bytes <= 25, "queued bytes stay bounded");
        l.complete(20);
        assert_eq!(l.queued_bytes, 0);
        assert!(l.try_admit(1, 10).is_ok());
    }

    #[test]
    fn byte_quota_is_permanent() {
        let mut l = AdmissionLedger::new(limits(100, usize::MAX >> 1, 30));
        assert!(l.try_admit(2, 25).is_ok());
        let rej = l.try_admit(2, 10).unwrap_err();
        assert_eq!(
            rej,
            AdmissionReject::QuotaExceeded {
                would_use: 35,
                quota: 30
            }
        );
        // Draining does not forgive the lifetime quota.
        l.complete(25);
        assert!(matches!(
            l.try_admit(2, 10).unwrap_err(),
            AdmissionReject::QuotaExceeded { .. }
        ));
        assert_eq!(l.quota_rejections, 2);
        assert_eq!(l.bytes_admitted, 25, "rejected bytes never accounted");
    }
}
