//! Per-tenant session state: a seeded incremental clusterer, the
//! read-id → label index, and the admission ledger.
//!
//! A session is created on first `Hello` for a tenant and shared by
//! every connection naming that tenant (the daemon wraps it in
//! `Arc<Mutex<…>>`). Its lifecycle:
//!
//! 1. **Unseeded** — only `ClusterStats` works; submissions answer
//!    `NotSeeded`.
//! 2. **Seeded** (`SeedFromBatch`) — the batch pipeline runs once,
//!    its representatives become the live centroids
//!    ([`IncrementalClusterer::from_run`]), and the batch reads'
//!    labels are indexed for `Query`.
//! 3. **Serving** — admitted micro-batches stream through
//!    [`IncrementalClusterer::push_batch`]; every new read is
//!    assigned in one sketch + representative scan, never by
//!    re-running a Map-Reduce job.

use std::collections::HashMap;

use mrmc::{IncrementalClusterer, MrMcMinH};
use mrmc_seqio::SeqRecord;

use crate::protocol::{SeedConfig, SessionStats};
use crate::quota::{AdmissionLedger, AdmissionLimits, AdmissionReject};

/// Session-level failures (mapped onto `Response::Error` frames by the
/// daemon).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionError {
    /// Submission or query arrived before `SeedFromBatch`.
    NotSeeded,
    /// A second `SeedFromBatch`; re-seeding would discard live state.
    AlreadySeeded,
    /// The seed configuration failed [`mrmc::MrMcConfig::validate`].
    BadConfig(String),
    /// The batch pipeline or the clusterer failed.
    Internal(String),
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::NotSeeded => write!(f, "session is not seeded"),
            SessionError::AlreadySeeded => write!(f, "session is already seeded"),
            SessionError::BadConfig(m) => write!(f, "bad seed config: {m}"),
            SessionError::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

impl std::error::Error for SessionError {}

/// One tenant's serving state.
#[derive(Debug)]
pub struct Session {
    tenant: String,
    clusterer: Option<IncrementalClusterer>,
    /// Read id → label, covering batch reads and streamed reads.
    labels_by_id: HashMap<String, u64>,
    seeded_clusters: u64,
    ledger: AdmissionLedger,
    /// Tracer job ordinal for this session's serve spans.
    pub job: u32,
}

impl Session {
    /// Fresh unseeded session for `tenant` under `limits`; `job` is
    /// the tracer job its spans attribute to.
    pub fn new(tenant: impl Into<String>, limits: AdmissionLimits, job: u32) -> Session {
        Session {
            tenant: tenant.into(),
            clusterer: None,
            labels_by_id: HashMap::new(),
            seeded_clusters: 0,
            ledger: AdmissionLedger::new(limits),
            job,
        }
    }

    /// Whether `SeedFromBatch` has completed.
    pub fn is_seeded(&self) -> bool {
        self.clusterer.is_some()
    }

    /// Run the batch pipeline over `reads` and seed the incremental
    /// clusterer from the finished run. Returns the seeded cluster
    /// count. The batch runs *untraced*: the request path after
    /// seeding must add no Map-Reduce job spans to the daemon's
    /// ledger, and keeping the seed run out as well makes that
    /// property trivially checkable (every daemon span is `serve`).
    pub fn seed_from_batch(
        &mut self,
        config: &SeedConfig,
        reads: &[SeqRecord],
    ) -> Result<u64, SessionError> {
        if self.is_seeded() {
            return Err(SessionError::AlreadySeeded);
        }
        let cfg = config.to_mrmc();
        cfg.validate().map_err(SessionError::BadConfig)?;
        let result = MrMcMinH::new(cfg)
            .run(reads)
            .map_err(|e| SessionError::Internal(e.to_string()))?;
        let inc = IncrementalClusterer::from_run(cfg, reads, &result)
            .map_err(|e| SessionError::Internal(e.to_string()))?;
        for (i, read) in reads.iter().enumerate() {
            self.labels_by_id
                .insert(read.id.clone(), result.assignment.label(i) as u64);
        }
        self.seeded_clusters = result.num_clusters() as u64;
        self.clusterer = Some(inc);
        Ok(self.seeded_clusters)
    }

    /// Assign an admitted micro-batch, recording each read's label
    /// under its id. Labels return in submission order.
    pub fn assign(&mut self, reads: &[SeqRecord]) -> Result<Vec<u64>, SessionError> {
        let inc = self.clusterer.as_mut().ok_or(SessionError::NotSeeded)?;
        let labels = inc
            .push_batch(reads)
            .map_err(|e| SessionError::Internal(e.to_string()))?;
        for (read, &label) in reads.iter().zip(&labels) {
            self.labels_by_id.insert(read.id.clone(), label as u64);
        }
        Ok(labels.into_iter().map(|l| l as u64).collect())
    }

    /// Label of a previously seen read id (batch or streamed).
    pub fn query(&self, id: &str) -> Option<u64> {
        self.labels_by_id.get(id).copied()
    }

    /// Gate a micro-batch through admission control.
    pub fn try_admit(&mut self, reads: usize, bytes: usize) -> Result<(), AdmissionReject> {
        self.ledger.try_admit(reads, bytes)
    }

    /// Release an admitted batch's queue accounting.
    pub fn complete(&mut self, bytes: usize) {
        self.ledger.complete(bytes)
    }

    /// Micro-batches currently queued or in flight.
    pub fn queue_depth(&self) -> usize {
        self.ledger.queue_depth
    }

    /// The tenant this session serves (metric key component).
    pub fn tenant(&self) -> &str {
        &self.tenant
    }

    /// Refresh this session's live gauges in the daemon registry under
    /// `serve.tenant.<tenant>.*`: clustering state plus the admission
    /// ledger's queue occupancy. Called on demand (each `ServerStats`
    /// request), not per submission — histograms and additive counters
    /// are recorded at event time by the daemon instead.
    pub fn export_metrics(&self, metrics: &mrmc_obs::MetricsRegistry) {
        let prefix = format!("serve.tenant.{}", self.tenant);
        metrics.gauge_set(
            &format!("{prefix}.clusters"),
            self.clusterer
                .as_ref()
                .map(|c| c.num_clusters() as i64)
                .unwrap_or(0),
        );
        metrics.gauge_set(
            &format!("{prefix}.seeded_clusters"),
            self.seeded_clusters as i64,
        );
        self.ledger.export_gauges(metrics, &prefix);
    }

    /// Snapshot every counter the protocol's `Stats` response carries.
    pub fn stats(&self) -> SessionStats {
        SessionStats {
            tenant: self.tenant.clone(),
            clusters: self
                .clusterer
                .as_ref()
                .map(|c| c.num_clusters() as u64)
                .unwrap_or(0),
            seeded_clusters: self.seeded_clusters,
            reads_admitted: self.ledger.reads_admitted,
            batches_admitted: self.ledger.batches_admitted,
            reads_rejected: self.ledger.reads_rejected,
            busy_rejections: self.ledger.busy_rejections,
            quota_rejections: self.ledger.quota_rejections,
            bytes_admitted: self.ledger.bytes_admitted,
            queue_depth: self.ledger.queue_depth as u64,
            queued_bytes: self.ledger.queued_bytes as u64,
            max_queue_depth: self.ledger.max_queue_depth_seen as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reads() -> Vec<SeqRecord> {
        vec![
            SeqRecord::new("a1", b"ACGTACGTACGTACGTTTTTACGTACGT".to_vec()),
            SeqRecord::new("a2", b"ACGTACGTACGTACGTTTTTACGTACGT".to_vec()),
            SeqRecord::new("b1", b"GGGGCCCCGGGGCCCCAAAAGGGGCCCC".to_vec()),
        ]
    }

    fn seed_cfg() -> SeedConfig {
        SeedConfig {
            kmer: 5,
            num_hashes: 64,
            theta: 0.9,
            greedy: true,
            seed: 7,
            canonical: false,
        }
    }

    #[test]
    fn lifecycle_not_seeded_then_seeded() {
        let mut s = Session::new("t", AdmissionLimits::default(), 0);
        assert_eq!(s.assign(&reads()).unwrap_err(), SessionError::NotSeeded);
        let k = s.seed_from_batch(&seed_cfg(), &reads()).unwrap();
        assert_eq!(k, 2);
        assert_eq!(s.stats().seeded_clusters, 2);
        // Batch reads are queryable; same-genome labels agree.
        assert_eq!(s.query("a1"), s.query("a2"));
        assert_ne!(s.query("a1"), s.query("b1"));
        assert_eq!(s.query("nope"), None);
        // Re-seeding is refused.
        assert_eq!(
            s.seed_from_batch(&seed_cfg(), &reads()).unwrap_err(),
            SessionError::AlreadySeeded
        );
    }

    #[test]
    fn assign_extends_query_index() {
        let mut s = Session::new("t", AdmissionLimits::default(), 0);
        s.seed_from_batch(&seed_cfg(), &reads()).unwrap();
        let newcomer = SeqRecord::new("a3", b"ACGTACGTACGTACGTTTTTACGTACGT".to_vec());
        let labels = s.assign(std::slice::from_ref(&newcomer)).unwrap();
        assert_eq!(labels.len(), 1);
        assert_eq!(s.query("a3"), Some(labels[0]));
        assert_eq!(
            s.query("a3"),
            s.query("a1"),
            "newcomer joins seeded cluster"
        );
    }

    #[test]
    fn bad_config_refused() {
        let mut s = Session::new("t", AdmissionLimits::default(), 0);
        let bad = SeedConfig {
            kmer: 0,
            ..seed_cfg()
        };
        assert!(matches!(
            s.seed_from_batch(&bad, &reads()).unwrap_err(),
            SessionError::BadConfig(_)
        ));
        assert!(!s.is_seeded());
    }
}
