//! **mrmc-server** — clustering as a service.
//!
//! The paper frames binning as a pre-processing step inside workflows
//! that receive reads continuously (§I); the batch pipeline answers
//! "cluster this corpus", this crate answers "and keep clustering
//! whatever arrives next, in milliseconds, without re-running the
//! job". A long-running daemon maintains per-tenant sessions, each
//! wrapping an [`mrmc::IncrementalClusterer`] seeded from a finished
//! batch run, and assigns newly submitted reads by micro-batching
//! them through a bounded admission queue onto a worker pool.
//!
//! * [`protocol`] — the typed length-prefixed binary protocol (LEB128
//!   varints shared with the shuffle wire format, total decoding, a
//!   [`ProtocolError`] taxonomy mirroring `WireError`).
//! * [`quota`] — admission control: bounded queue depth and byte
//!   quotas with explicit `Busy` / `QuotaExceeded` answers instead of
//!   unbounded buffering.
//! * [`session`] — per-tenant state: seeded clusterer, read→label
//!   index, admission ledger.
//! * [`server`] — the daemon: accept loop, worker pool, concurrent
//!   multi-session scheduling, graceful drain, `serve`-category spans
//!   into an [`mrmc_obs::Tracer`], and live `serve.*` metrics
//!   (per-tenant latency/batch-size histograms, admission counters,
//!   queue gauges) into an [`mrmc_obs::MetricsRegistry`] a client
//!   snapshots with `Request::ServerStats`.
//! * [`client`] — the thin blocking client the `mrmc-client` binary
//!   and the tests drive.
//!
//! See DESIGN.md §7 ("Serving layer") for the frame layout, session
//! lifecycle and admission-control rules.

pub mod client;
pub mod protocol;
pub mod quota;
pub mod server;
pub mod session;

pub use client::{Client, ClientError, SubmitOutcome};
pub use protocol::{
    ErrorCode, ProtocolError, Request, Response, SeedConfig, SessionStats, WireRead, MAX_FRAME_LEN,
    PROTOCOL_VERSION,
};
pub use quota::{AdmissionLedger, AdmissionLimits, AdmissionReject};
pub use server::{Server, ServerConfig, ServerHandle};
pub use session::{Session, SessionError};
