//! The daemon binary.
//!
//! ```text
//! mrmc-server [--addr 127.0.0.1:0] [--workers N]
//!             [--max-queue-depth D] [--max-queued-bytes B]
//!             [--max-session-bytes Q] [--no-metrics]
//! ```
//!
//! Prints `mrmc-server listening on <addr>` once bound (scripts parse
//! this line to learn the ephemeral port), serves until a client
//! sends `Shutdown`, drains, and exits 0.

use std::process::ExitCode;
use std::sync::Arc;

use mrmc_obs::Tracer;
use mrmc_server::{AdmissionLimits, Server, ServerConfig};

fn usage() -> ! {
    eprintln!(
        "usage: mrmc-server [--addr A] [--workers N] [--max-queue-depth D] \
         [--max-queued-bytes B] [--max-session-bytes Q] [--no-metrics]"
    );
    std::process::exit(2);
}

fn parse<T: std::str::FromStr>(args: &mut std::env::Args, flag: &str) -> T {
    let Some(v) = args.next() else { usage() };
    v.parse().unwrap_or_else(|_| {
        eprintln!("mrmc-server: bad value for {flag}: {v}");
        std::process::exit(2);
    })
}

fn main() -> ExitCode {
    let mut config = ServerConfig::default();
    let mut limits = AdmissionLimits::default();
    let mut args = std::env::args();
    args.next();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => config.addr = parse(&mut args, "--addr"),
            "--workers" => config.workers = parse(&mut args, "--workers"),
            "--max-queue-depth" => limits.max_queue_depth = parse(&mut args, "--max-queue-depth"),
            "--max-queued-bytes" => {
                limits.max_queued_bytes = parse(&mut args, "--max-queued-bytes")
            }
            "--max-session-bytes" => {
                limits.max_session_bytes = parse(&mut args, "--max-session-bytes")
            }
            "--no-metrics" => config.metrics = false,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("mrmc-server: unknown flag {other}");
                usage();
            }
        }
    }
    config.limits = limits;
    let tracer = Arc::new(Tracer::new());
    let server = match Server::bind(&config, tracer) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("mrmc-server: bind {}: {e}", config.addr);
            return ExitCode::FAILURE;
        }
    };
    println!("mrmc-server listening on {}", server.local_addr());
    server.run();
    println!("mrmc-server drained, exiting");
    ExitCode::SUCCESS
}
