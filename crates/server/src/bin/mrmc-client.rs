//! The thin client binary.
//!
//! ```text
//! mrmc-client --addr HOST:PORT [--tenant T] <command>
//!   seed   --fasta F [--kmer K] [--num-hashes N] [--theta X] [--greedy] [--seed S]
//!   submit --fasta F
//!   query  --id ID
//!   stats  [--server] [--dashboard] [--width W]
//!   shutdown
//! ```
//!
//! `stats` alone prints the tenant session's counters; `--server`
//! pulls the daemon-wide metrics snapshot (all tenants) and renders it
//! as text, `--dashboard` renders the same snapshot as an ASCII
//! dashboard with bucket bars.

use std::process::ExitCode;

use mrmc_seqio::read_fasta_path;
use mrmc_server::{Client, SeedConfig, SubmitOutcome};

fn usage() -> ! {
    eprintln!(
        "usage: mrmc-client --addr HOST:PORT [--tenant T] <command>\n\
         commands:\n\
         \x20 seed   --fasta F [--kmer K] [--num-hashes N] [--theta X] [--greedy] [--seed S]\n\
         \x20 submit --fasta F\n\
         \x20 query  --id ID\n\
         \x20 stats  [--server] [--dashboard] [--width W]\n\
         \x20 shutdown"
    );
    std::process::exit(2);
}

fn need(v: Option<String>, flag: &str) -> String {
    v.unwrap_or_else(|| {
        eprintln!("mrmc-client: missing {flag}");
        usage();
    })
}

fn main() -> ExitCode {
    let mut addr: Option<String> = None;
    let mut tenant = "default".to_string();
    let mut command: Option<String> = None;
    let mut fasta: Option<String> = None;
    let mut id: Option<String> = None;
    let mut server_wide = false;
    let mut dashboard = false;
    let mut width: usize = 80;
    let mut config = SeedConfig {
        kmer: 5,
        num_hashes: 64,
        theta: 0.9,
        greedy: true,
        seed: 7,
        canonical: false,
    };

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => addr = args.next(),
            "--tenant" => tenant = need(args.next(), "--tenant"),
            "--fasta" => fasta = args.next(),
            "--id" => id = args.next(),
            "--kmer" => config.kmer = need(args.next(), "--kmer").parse().unwrap_or(5),
            "--num-hashes" => {
                config.num_hashes = need(args.next(), "--num-hashes").parse().unwrap_or(64)
            }
            "--theta" => config.theta = need(args.next(), "--theta").parse().unwrap_or(0.9),
            "--seed" => config.seed = need(args.next(), "--seed").parse().unwrap_or(7),
            "--server" => server_wide = true,
            "--dashboard" => dashboard = true,
            "--width" => width = need(args.next(), "--width").parse().unwrap_or(80),
            "--greedy" => config.greedy = true,
            "--hierarchical" => config.greedy = false,
            "--canonical" => config.canonical = true,
            "--help" | "-h" => usage(),
            cmd if command.is_none() && !cmd.starts_with('-') => command = Some(cmd.to_string()),
            other => {
                eprintln!("mrmc-client: unknown flag {other}");
                usage();
            }
        }
    }

    let addr = need(addr, "--addr");
    let command = need(command, "a command");

    let mut client = match Client::connect(&addr, &tenant) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("mrmc-client: connect {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };

    let load = |fasta: Option<String>| {
        let path = need(fasta, "--fasta");
        read_fasta_path(&path).unwrap_or_else(|e| {
            eprintln!("mrmc-client: reading {path}: {e}");
            std::process::exit(1);
        })
    };

    let outcome = match command.as_str() {
        "seed" => {
            let reads = load(fasta);
            client.seed_from_batch(&config, &reads).map(|clusters| {
                println!("seeded {} reads into {clusters} clusters", reads.len());
            })
        }
        "submit" => {
            let reads = load(fasta);
            client.submit(&reads).map(|outcome| match outcome {
                SubmitOutcome::Labels(labels) => {
                    for (read, label) in reads.iter().zip(&labels) {
                        println!("{}\t{label}", read.id);
                    }
                }
                SubmitOutcome::Busy { queue_depth, limit } => {
                    println!("busy: queue depth {queue_depth}/{limit}, retry later");
                }
                SubmitOutcome::QuotaExceeded { would_use, quota } => {
                    println!("quota exceeded: {would_use} bytes > quota {quota}");
                }
            })
        }
        "query" => {
            let id = need(id, "--id");
            client.query(&id).map(|label| match label {
                Some(l) => println!("{id}\t{l}"),
                None => println!("{id}\t(unknown)"),
            })
        }
        "stats" if server_wide || dashboard => client.server_stats().map(|snap| {
            if dashboard {
                print!("{}", mrmc_obs::render_dashboard(&snap, width));
            } else {
                print!("{}", snap.render_text());
            }
        }),
        "stats" => client.stats().map(|s| {
            println!(
                "tenant={} clusters={} (seeded {}) admitted={} reads / {} batches / {} bytes \
                 rejected={} reads (busy {}, quota {}) queue={}/{} max-depth={}",
                s.tenant,
                s.clusters,
                s.seeded_clusters,
                s.reads_admitted,
                s.batches_admitted,
                s.bytes_admitted,
                s.reads_rejected,
                s.busy_rejections,
                s.quota_rejections,
                s.queue_depth,
                s.queued_bytes,
                s.max_queue_depth
            );
        }),
        "shutdown" => client.shutdown().map(|drained| {
            println!("daemon drained ({drained} queued batches) and exited");
        }),
        other => {
            eprintln!("mrmc-client: unknown command {other}");
            usage();
        }
    };

    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("mrmc-client: {command}: {e}");
            ExitCode::FAILURE
        }
    }
}
