//! The typed, length-prefixed binary protocol between `mrmc-server`
//! and its clients.
//!
//! Every message travels as one **frame**: `varint(body_len) · body`,
//! where the body is `tag(u8) · fields` and every integer field is the
//! same LEB128 varint the shuffle wire format uses
//! ([`mrmc_mapreduce::wire::put_uvarint`]). Strings and sequence
//! payloads are length-prefixed byte runs; `f64` travels as its 8
//! little-endian IEEE-754 bytes (bit-exact, so a θ sent over the wire
//! clusters identically to a local run).
//!
//! Decoding is **total**: any byte sequence either decodes to a typed
//! message or returns a [`ProtocolError`] — the taxonomy mirrors
//! [`WireError`] (truncation, varint overflow, trailing bytes) and
//! extends it with framing concerns (`FrameTooLarge`, `UnknownTag`,
//! version mismatch). The daemon must never panic on attacker-shaped
//! input; the property tests in `tests/protocol.rs` fuzz this module
//! with arbitrary and truncated frames to hold that line.

use std::io::{self, Read, Write};

use mrmc::{Mode, MrMcConfig};
use mrmc_mapreduce::wire::{get_uvarint, put_uvarint, WireError};
use mrmc_obs::metrics::{Histogram, MetricsSnapshot};
use mrmc_seqio::SeqRecord;

/// Protocol version spoken by this build. The handshake (`Hello` /
/// `HelloAck`) carries it; a mismatch is refused with
/// [`ErrorCode::VersionMismatch`] before any other traffic.
pub const PROTOCOL_VERSION: u32 = 1;

/// Hard cap on one frame's body length. Larger declared lengths are
/// refused *before* allocation, so a hostile length prefix cannot
/// balloon daemon memory.
pub const MAX_FRAME_LEN: u64 = 32 * 1024 * 1024;

/// Everything that can go wrong turning bytes into messages (and
/// back). Mirrors [`WireError`] for the shared varint layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// The buffer or stream ended mid-message.
    Truncated,
    /// A varint ran past 64 bits.
    Overflow,
    /// The frame header declared a body longer than [`MAX_FRAME_LEN`].
    FrameTooLarge {
        /// Declared body length.
        len: u64,
        /// The cap it exceeded.
        max: u64,
    },
    /// The body's first byte named no known message.
    UnknownTag(u8),
    /// Bytes remained after the message was fully decoded.
    TrailingBytes,
    /// A field that must be UTF-8 was not.
    BadUtf8,
    /// A structurally valid frame carried an out-of-range field.
    BadPayload(String),
    /// Handshake version disagreement.
    VersionMismatch {
        /// Version the peer offered.
        got: u32,
        /// Version this build speaks.
        want: u32,
    },
    /// Transport-level failure (connection reset, timeout, …).
    Io(String),
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::Truncated => write!(f, "frame truncated"),
            ProtocolError::Overflow => write!(f, "varint overflows u64"),
            ProtocolError::FrameTooLarge { len, max } => {
                write!(f, "frame body {len} bytes exceeds cap {max}")
            }
            ProtocolError::UnknownTag(t) => write!(f, "unknown message tag {t:#04x}"),
            ProtocolError::TrailingBytes => write!(f, "trailing bytes after message"),
            ProtocolError::BadUtf8 => write!(f, "string field is not UTF-8"),
            ProtocolError::BadPayload(m) => write!(f, "bad payload: {m}"),
            ProtocolError::VersionMismatch { got, want } => {
                write!(f, "protocol version {got} unsupported (want {want})")
            }
            ProtocolError::Io(m) => write!(f, "transport error: {m}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

impl From<WireError> for ProtocolError {
    fn from(e: WireError) -> ProtocolError {
        match e {
            WireError::Truncated => ProtocolError::Truncated,
            WireError::Overflow => ProtocolError::Overflow,
            other => ProtocolError::BadPayload(other.to_string()),
        }
    }
}

impl From<io::Error> for ProtocolError {
    fn from(e: io::Error) -> ProtocolError {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            ProtocolError::Truncated
        } else {
            ProtocolError::Io(e.to_string())
        }
    }
}

/// Machine-readable reason on a [`Response::Error`] frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The request frame itself was malformed.
    Protocol,
    /// Handshake refused: incompatible protocol version.
    VersionMismatch,
    /// The session has no seeded clusterer yet (`SeedFromBatch` first).
    NotSeeded,
    /// The session is already seeded; re-seeding would discard state.
    AlreadySeeded,
    /// The seed configuration failed validation.
    BadConfig,
    /// The daemon is draining and admits no new work.
    ShuttingDown,
    /// Server-side failure unrelated to the request's shape.
    Internal,
}

impl ErrorCode {
    fn to_u8(self) -> u8 {
        match self {
            ErrorCode::Protocol => 0,
            ErrorCode::VersionMismatch => 1,
            ErrorCode::NotSeeded => 2,
            ErrorCode::AlreadySeeded => 3,
            ErrorCode::BadConfig => 4,
            ErrorCode::ShuttingDown => 5,
            ErrorCode::Internal => 6,
        }
    }

    fn from_u8(v: u8) -> Result<ErrorCode, ProtocolError> {
        Ok(match v {
            0 => ErrorCode::Protocol,
            1 => ErrorCode::VersionMismatch,
            2 => ErrorCode::NotSeeded,
            3 => ErrorCode::AlreadySeeded,
            4 => ErrorCode::BadConfig,
            5 => ErrorCode::ShuttingDown,
            6 => ErrorCode::Internal,
            other => return Err(ProtocolError::BadPayload(format!("error code {other}"))),
        })
    }

    /// Stable lowercase name (logs, client display).
    pub fn name(self) -> &'static str {
        match self {
            ErrorCode::Protocol => "protocol",
            ErrorCode::VersionMismatch => "version_mismatch",
            ErrorCode::NotSeeded => "not_seeded",
            ErrorCode::AlreadySeeded => "already_seeded",
            ErrorCode::BadConfig => "bad_config",
            ErrorCode::ShuttingDown => "shutting_down",
            ErrorCode::Internal => "internal",
        }
    }
}

/// One read on the wire: id, description, sequence bytes. Lossless
/// against [`SeqRecord`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireRead {
    /// Record id (first header token).
    pub id: String,
    /// Remainder of the header line.
    pub description: String,
    /// Sequence bytes.
    pub seq: Vec<u8>,
}

impl WireRead {
    /// Wire payload size this read contributes to admission
    /// accounting: id + description + sequence bytes.
    pub fn payload_bytes(&self) -> usize {
        self.id.len() + self.description.len() + self.seq.len()
    }
}

impl From<&SeqRecord> for WireRead {
    fn from(r: &SeqRecord) -> WireRead {
        WireRead {
            id: r.id.clone(),
            description: r.description.clone(),
            seq: r.seq.clone(),
        }
    }
}

impl From<WireRead> for SeqRecord {
    fn from(r: WireRead) -> SeqRecord {
        SeqRecord::with_description(r.id, r.description, r.seq)
    }
}

/// The clustering knobs a client pins when seeding a session. The
/// remaining [`MrMcConfig`] fields take their defaults server-side;
/// everything that decides *labels* (k, sketch length, θ, mode, hash
/// seed, strand handling) is explicit so a local oracle run with the
/// same `SeedConfig` reproduces the daemon bit-for-bit.
#[derive(Debug, Clone, PartialEq)]
pub struct SeedConfig {
    /// k-mer size.
    pub kmer: u64,
    /// Sketch length (number of hash functions).
    pub num_hashes: u64,
    /// Similarity threshold θ.
    pub theta: f64,
    /// Greedy (Algorithm 1) vs hierarchical (Algorithm 2) seeding run.
    pub greedy: bool,
    /// Seed for the universal hash draws.
    pub seed: u64,
    /// Canonical (strand-independent) k-mers.
    pub canonical: bool,
}

impl SeedConfig {
    /// The equivalent batch/incremental configuration.
    pub fn to_mrmc(&self) -> MrMcConfig {
        MrMcConfig {
            kmer: self.kmer as usize,
            num_hashes: self.num_hashes as usize,
            theta: self.theta,
            mode: if self.greedy {
                Mode::Greedy
            } else {
                Mode::Hierarchical
            },
            seed: self.seed,
            canonical: self.canonical,
            ..MrMcConfig::default()
        }
    }
}

impl Default for SeedConfig {
    fn default() -> SeedConfig {
        let c = MrMcConfig::default();
        SeedConfig {
            kmer: c.kmer as u64,
            num_hashes: c.num_hashes as u64,
            theta: c.theta,
            greedy: false,
            seed: c.seed,
            canonical: false,
        }
    }
}

/// Per-session admission and clustering counters, as returned by
/// `ClusterStats`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Session (tenant) name.
    pub tenant: String,
    /// Live cluster count (seeded + founded by streamed reads).
    pub clusters: u64,
    /// Clusters present right after seeding.
    pub seeded_clusters: u64,
    /// Reads accepted into the admission queue, lifetime.
    pub reads_admitted: u64,
    /// Micro-batches accepted, lifetime.
    pub batches_admitted: u64,
    /// Reads refused (busy or quota), lifetime.
    pub reads_rejected: u64,
    /// Submissions refused because the bounded queue was full.
    pub busy_rejections: u64,
    /// Submissions refused because the byte quota was exhausted.
    pub quota_rejections: u64,
    /// Payload bytes admitted, lifetime (counts against the quota).
    pub bytes_admitted: u64,
    /// Micro-batches currently queued or in flight.
    pub queue_depth: u64,
    /// Payload bytes currently queued or in flight.
    pub queued_bytes: u64,
    /// High-water mark of `queue_depth`.
    pub max_queue_depth: u64,
}

/// Client → server messages.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Versioned handshake; must be the first frame on a connection.
    Hello {
        /// Client's [`PROTOCOL_VERSION`].
        version: u32,
        /// Tenant (session) this connection binds to.
        tenant: String,
    },
    /// Run the batch pipeline over `reads` and seed the session's
    /// incremental clusterer from the finished run.
    SeedFromBatch {
        /// Clustering knobs for the batch run and all later admission.
        config: SeedConfig,
        /// The batch corpus.
        reads: Vec<WireRead>,
    },
    /// Admit a micro-batch of new reads; answered with their labels
    /// (or `Busy` / `QuotaExceeded`).
    SubmitReads {
        /// The micro-batch, in assignment order.
        reads: Vec<WireRead>,
    },
    /// Look up the cluster label of a previously seen read id.
    Query {
        /// Read id (batch or streamed).
        id: String,
    },
    /// Fetch the session's counters.
    ClusterStats,
    /// Fetch the daemon-wide metrics snapshot (all tenants): counters,
    /// gauges and latency/size histograms from the live registry.
    ServerStats,
    /// Drain the admission queue and stop the daemon.
    Shutdown,
}

/// Server → client messages.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Handshake accepted.
    HelloAck {
        /// Server's [`PROTOCOL_VERSION`].
        version: u32,
    },
    /// Seeding finished.
    Seeded {
        /// Cluster count of the seeded run.
        clusters: u64,
    },
    /// Labels for an admitted micro-batch, in submission order.
    Labels {
        /// One label per submitted read.
        labels: Vec<u64>,
    },
    /// Answer to `Query`.
    QueryResult {
        /// The label, or `None` for an unknown read id.
        label: Option<u64>,
    },
    /// Answer to `ClusterStats`.
    Stats(SessionStats),
    /// Answer to `ServerStats`: a point-in-time copy of the daemon's
    /// metrics registry. Empty when the daemon runs with metrics
    /// disabled.
    ServerStats(MetricsSnapshot),
    /// Admission refused: the session's bounded queue is full. Retry
    /// after in-flight work drains; nothing was recorded.
    Busy {
        /// Queue depth at refusal.
        queue_depth: u64,
        /// Configured depth limit.
        limit: u64,
    },
    /// Admission refused: the session's byte quota is exhausted. This
    /// is permanent for the session; nothing was recorded.
    QuotaExceeded {
        /// Bytes the submission would have brought the total to.
        would_use: u64,
        /// Configured quota.
        quota: u64,
    },
    /// Request failed.
    Error {
        /// Machine-readable reason.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// Shutdown accepted; the queue was drained.
    ShutdownAck {
        /// Micro-batches that were still queued when drain began.
        drained: u64,
    },
}

// ---------------------------------------------------------------------------
// Encoding primitives
// ---------------------------------------------------------------------------

fn put_bytes(buf: &mut Vec<u8>, b: &[u8]) {
    put_uvarint(buf, b.len() as u64);
    buf.extend_from_slice(b);
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_bytes(buf, s.as_bytes());
}

fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn put_read(buf: &mut Vec<u8>, r: &WireRead) {
    put_str(buf, &r.id);
    put_str(buf, &r.description);
    put_bytes(buf, &r.seq);
}

fn put_reads(buf: &mut Vec<u8>, reads: &[WireRead]) {
    put_uvarint(buf, reads.len() as u64);
    for r in reads {
        put_read(buf, r);
    }
}

/// Validating cursor over one frame body.
struct Reader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, at: 0 }
    }

    fn u64(&mut self) -> Result<u64, ProtocolError> {
        let (v, n) = get_uvarint(&self.buf[self.at..])?;
        self.at += n;
        Ok(v)
    }

    fn u32(&mut self) -> Result<u32, ProtocolError> {
        let v = self.u64()?;
        u32::try_from(v).map_err(|_| ProtocolError::BadPayload(format!("{v} exceeds u32")))
    }

    fn byte(&mut self) -> Result<u8, ProtocolError> {
        let b = *self.buf.get(self.at).ok_or(ProtocolError::Truncated)?;
        self.at += 1;
        Ok(b)
    }

    fn bool(&mut self) -> Result<bool, ProtocolError> {
        match self.byte()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(ProtocolError::BadPayload(format!("bool byte {other}"))),
        }
    }

    fn f64(&mut self) -> Result<f64, ProtocolError> {
        let raw = self.take(8)?;
        let mut bits = [0u8; 8];
        bits.copy_from_slice(raw);
        Ok(f64::from_bits(u64::from_le_bytes(bits)))
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtocolError> {
        if self.buf.len() - self.at < n {
            return Err(ProtocolError::Truncated);
        }
        let out = &self.buf[self.at..self.at + n];
        self.at += n;
        Ok(out)
    }

    fn bytes(&mut self) -> Result<Vec<u8>, ProtocolError> {
        let len = self.u64()?;
        let len = usize::try_from(len).map_err(|_| ProtocolError::Truncated)?;
        Ok(self.take(len)?.to_vec())
    }

    fn string(&mut self) -> Result<String, ProtocolError> {
        String::from_utf8(self.bytes()?).map_err(|_| ProtocolError::BadUtf8)
    }

    fn read(&mut self) -> Result<WireRead, ProtocolError> {
        Ok(WireRead {
            id: self.string()?,
            description: self.string()?,
            seq: self.bytes()?,
        })
    }

    fn reads(&mut self) -> Result<Vec<WireRead>, ProtocolError> {
        let count = self.u64()?;
        // A read costs ≥ 3 body bytes, so the body length (already
        // capped by the frame reader) bounds any honest count; refuse
        // hostile counts before reserving memory for them.
        if count > (self.buf.len() as u64) {
            return Err(ProtocolError::Truncated);
        }
        let mut out = Vec::with_capacity(count as usize);
        for _ in 0..count {
            out.push(self.read()?);
        }
        Ok(out)
    }

    fn finish(self) -> Result<(), ProtocolError> {
        if self.at == self.buf.len() {
            Ok(())
        } else {
            Err(ProtocolError::TrailingBytes)
        }
    }
}

fn put_config(buf: &mut Vec<u8>, c: &SeedConfig) {
    put_uvarint(buf, c.kmer);
    put_uvarint(buf, c.num_hashes);
    put_f64(buf, c.theta);
    buf.push(u8::from(c.greedy));
    put_uvarint(buf, c.seed);
    buf.push(u8::from(c.canonical));
}

fn get_config(r: &mut Reader<'_>) -> Result<SeedConfig, ProtocolError> {
    let kmer = r.u64()?;
    let num_hashes = r.u64()?;
    let theta = r.f64()?;
    if !theta.is_finite() || !(0.0..=1.0).contains(&theta) {
        return Err(ProtocolError::BadPayload(format!("theta {theta}")));
    }
    let greedy = r.bool()?;
    let seed = r.u64()?;
    let canonical = r.bool()?;
    Ok(SeedConfig {
        kmer,
        num_hashes,
        theta,
        greedy,
        seed,
        canonical,
    })
}

fn put_stats(buf: &mut Vec<u8>, s: &SessionStats) {
    put_str(buf, &s.tenant);
    for v in [
        s.clusters,
        s.seeded_clusters,
        s.reads_admitted,
        s.batches_admitted,
        s.reads_rejected,
        s.busy_rejections,
        s.quota_rejections,
        s.bytes_admitted,
        s.queue_depth,
        s.queued_bytes,
        s.max_queue_depth,
    ] {
        put_uvarint(buf, v);
    }
}

fn get_stats(r: &mut Reader<'_>) -> Result<SessionStats, ProtocolError> {
    Ok(SessionStats {
        tenant: r.string()?,
        clusters: r.u64()?,
        seeded_clusters: r.u64()?,
        reads_admitted: r.u64()?,
        batches_admitted: r.u64()?,
        reads_rejected: r.u64()?,
        busy_rejections: r.u64()?,
        quota_rejections: r.u64()?,
        bytes_admitted: r.u64()?,
        queue_depth: r.u64()?,
        queued_bytes: r.u64()?,
        max_queue_depth: r.u64()?,
    })
}

// Gauges are the protocol's only signed field; they travel zigzag-
// mapped through the shared unsigned varint, so small magnitudes of
// either sign stay short on the wire.
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(u: u64) -> i64 {
    ((u >> 1) as i64) ^ -((u & 1) as i64)
}

fn put_snapshot(buf: &mut Vec<u8>, snap: &MetricsSnapshot) {
    put_uvarint(buf, snap.counters.len() as u64);
    for (name, v) in &snap.counters {
        put_str(buf, name);
        put_uvarint(buf, *v);
    }
    put_uvarint(buf, snap.gauges.len() as u64);
    for (name, v) in &snap.gauges {
        put_str(buf, name);
        put_uvarint(buf, zigzag(*v));
    }
    put_uvarint(buf, snap.histograms.len() as u64);
    for (name, h) in &snap.histograms {
        put_str(buf, name);
        put_uvarint(buf, h.count());
        put_uvarint(buf, h.sum());
        // Raw bounds (u64::MAX / 0 when empty), so decode rebuilds the
        // exact in-memory state and roundtrips bit-for-bit.
        put_uvarint(buf, h.min().unwrap_or(u64::MAX));
        put_uvarint(buf, h.max().unwrap_or(0));
        let sparse: Vec<(usize, u64)> = h.nonempty_buckets().collect();
        put_uvarint(buf, sparse.len() as u64);
        for (i, c) in sparse {
            put_uvarint(buf, i as u64);
            put_uvarint(buf, c);
        }
    }
}

fn get_snapshot(r: &mut Reader<'_>) -> Result<MetricsSnapshot, ProtocolError> {
    // Every entry costs ≥ 2 body bytes, so the (frame-capped) body
    // length bounds any honest count — same hostile-count discipline
    // as `Reader::reads`.
    let checked_count = |r: &mut Reader<'_>| -> Result<u64, ProtocolError> {
        let count = r.u64()?;
        if count > (r.buf.len() as u64) {
            return Err(ProtocolError::Truncated);
        }
        Ok(count)
    };
    let n = checked_count(r)?;
    let mut counters = Vec::with_capacity(n as usize);
    for _ in 0..n {
        counters.push((r.string()?, r.u64()?));
    }
    let n = checked_count(r)?;
    let mut gauges = Vec::with_capacity(n as usize);
    for _ in 0..n {
        gauges.push((r.string()?, unzigzag(r.u64()?)));
    }
    let n = checked_count(r)?;
    let mut histograms = Vec::with_capacity(n as usize);
    for _ in 0..n {
        let name = r.string()?;
        let count = r.u64()?;
        let sum = r.u64()?;
        let min = r.u64()?;
        let max = r.u64()?;
        let buckets = checked_count(r)?;
        let mut sparse = Vec::with_capacity(buckets as usize);
        for _ in 0..buckets {
            let i = r.u64()?;
            let i = usize::try_from(i)
                .map_err(|_| ProtocolError::BadPayload(format!("bucket index {i}")))?;
            sparse.push((i, r.u64()?));
        }
        let h = Histogram::from_parts(count, sum, min, max, sparse)
            .ok_or_else(|| ProtocolError::BadPayload(format!("histogram {name}")))?;
        histograms.push((name, h));
    }
    Ok(MetricsSnapshot {
        counters,
        gauges,
        histograms,
    })
}

// Request tags occupy 0x01–0x7f, response tags 0x81–0xff, so a frame
// read from the wrong direction fails as UnknownTag instead of
// decoding to nonsense.
const TAG_HELLO: u8 = 0x01;
const TAG_SEED: u8 = 0x02;
const TAG_SUBMIT: u8 = 0x03;
const TAG_QUERY: u8 = 0x04;
const TAG_STATS_REQ: u8 = 0x05;
const TAG_SHUTDOWN: u8 = 0x06;
const TAG_SERVER_STATS_REQ: u8 = 0x07;

const TAG_HELLO_ACK: u8 = 0x81;
const TAG_SEEDED: u8 = 0x82;
const TAG_LABELS: u8 = 0x83;
const TAG_QUERY_RESULT: u8 = 0x84;
const TAG_STATS: u8 = 0x85;
const TAG_BUSY: u8 = 0x86;
const TAG_QUOTA: u8 = 0x87;
const TAG_ERROR: u8 = 0x88;
const TAG_SHUTDOWN_ACK: u8 = 0x89;
const TAG_SERVER_STATS: u8 = 0x8a;

impl Request {
    /// Encode to a frame body (tag + fields, no length prefix).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match self {
            Request::Hello { version, tenant } => {
                buf.push(TAG_HELLO);
                put_uvarint(&mut buf, u64::from(*version));
                put_str(&mut buf, tenant);
            }
            Request::SeedFromBatch { config, reads } => {
                buf.push(TAG_SEED);
                put_config(&mut buf, config);
                put_reads(&mut buf, reads);
            }
            Request::SubmitReads { reads } => {
                buf.push(TAG_SUBMIT);
                put_reads(&mut buf, reads);
            }
            Request::Query { id } => {
                buf.push(TAG_QUERY);
                put_str(&mut buf, id);
            }
            Request::ClusterStats => buf.push(TAG_STATS_REQ),
            Request::ServerStats => buf.push(TAG_SERVER_STATS_REQ),
            Request::Shutdown => buf.push(TAG_SHUTDOWN),
        }
        buf
    }

    /// Decode a frame body. Total: returns a [`ProtocolError`] on any
    /// malformed input, never panics.
    pub fn decode(buf: &[u8]) -> Result<Request, ProtocolError> {
        let mut r = Reader::new(buf);
        let req = match r.byte()? {
            TAG_HELLO => Request::Hello {
                version: r.u32()?,
                tenant: r.string()?,
            },
            TAG_SEED => Request::SeedFromBatch {
                config: get_config(&mut r)?,
                reads: r.reads()?,
            },
            TAG_SUBMIT => Request::SubmitReads { reads: r.reads()? },
            TAG_QUERY => Request::Query { id: r.string()? },
            TAG_STATS_REQ => Request::ClusterStats,
            TAG_SERVER_STATS_REQ => Request::ServerStats,
            TAG_SHUTDOWN => Request::Shutdown,
            other => return Err(ProtocolError::UnknownTag(other)),
        };
        r.finish()?;
        Ok(req)
    }
}

impl Response {
    /// Encode to a frame body (tag + fields, no length prefix).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match self {
            Response::HelloAck { version } => {
                buf.push(TAG_HELLO_ACK);
                put_uvarint(&mut buf, u64::from(*version));
            }
            Response::Seeded { clusters } => {
                buf.push(TAG_SEEDED);
                put_uvarint(&mut buf, *clusters);
            }
            Response::Labels { labels } => {
                buf.push(TAG_LABELS);
                put_uvarint(&mut buf, labels.len() as u64);
                for &l in labels {
                    put_uvarint(&mut buf, l);
                }
            }
            Response::QueryResult { label } => {
                buf.push(TAG_QUERY_RESULT);
                match label {
                    None => buf.push(0),
                    Some(l) => {
                        buf.push(1);
                        put_uvarint(&mut buf, *l);
                    }
                }
            }
            Response::Stats(stats) => {
                buf.push(TAG_STATS);
                put_stats(&mut buf, stats);
            }
            Response::ServerStats(snap) => {
                buf.push(TAG_SERVER_STATS);
                put_snapshot(&mut buf, snap);
            }
            Response::Busy { queue_depth, limit } => {
                buf.push(TAG_BUSY);
                put_uvarint(&mut buf, *queue_depth);
                put_uvarint(&mut buf, *limit);
            }
            Response::QuotaExceeded { would_use, quota } => {
                buf.push(TAG_QUOTA);
                put_uvarint(&mut buf, *would_use);
                put_uvarint(&mut buf, *quota);
            }
            Response::Error { code, message } => {
                buf.push(TAG_ERROR);
                buf.push(code.to_u8());
                put_str(&mut buf, message);
            }
            Response::ShutdownAck { drained } => {
                buf.push(TAG_SHUTDOWN_ACK);
                put_uvarint(&mut buf, *drained);
            }
        }
        buf
    }

    /// Decode a frame body. Total, like [`Request::decode`].
    pub fn decode(buf: &[u8]) -> Result<Response, ProtocolError> {
        let mut r = Reader::new(buf);
        let resp = match r.byte()? {
            TAG_HELLO_ACK => Response::HelloAck { version: r.u32()? },
            TAG_SEEDED => Response::Seeded { clusters: r.u64()? },
            TAG_LABELS => {
                let count = r.u64()?;
                if count > (buf.len() as u64) {
                    return Err(ProtocolError::Truncated);
                }
                let mut labels = Vec::with_capacity(count as usize);
                for _ in 0..count {
                    labels.push(r.u64()?);
                }
                Response::Labels { labels }
            }
            TAG_QUERY_RESULT => Response::QueryResult {
                label: match r.byte()? {
                    0 => None,
                    1 => Some(r.u64()?),
                    other => return Err(ProtocolError::BadPayload(format!("option byte {other}"))),
                },
            },
            TAG_STATS => Response::Stats(get_stats(&mut r)?),
            TAG_SERVER_STATS => Response::ServerStats(get_snapshot(&mut r)?),
            TAG_BUSY => Response::Busy {
                queue_depth: r.u64()?,
                limit: r.u64()?,
            },
            TAG_QUOTA => Response::QuotaExceeded {
                would_use: r.u64()?,
                quota: r.u64()?,
            },
            TAG_ERROR => Response::Error {
                code: ErrorCode::from_u8(r.byte()?)?,
                message: r.string()?,
            },
            TAG_SHUTDOWN_ACK => Response::ShutdownAck { drained: r.u64()? },
            other => return Err(ProtocolError::UnknownTag(other)),
        };
        r.finish()?;
        Ok(resp)
    }
}

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

/// Write one frame: `varint(len) · body`.
pub fn write_frame(w: &mut impl Write, body: &[u8]) -> io::Result<()> {
    let mut header = Vec::with_capacity(10);
    put_uvarint(&mut header, body.len() as u64);
    w.write_all(&header)?;
    w.write_all(body)?;
    w.flush()
}

/// Read one frame body. `Ok(None)` means the stream ended cleanly at
/// a frame boundary (peer closed); EOF anywhere else is `Truncated`.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>, ProtocolError> {
    let mut first = [0u8; 1];
    match r.read(&mut first) {
        Ok(0) => return Ok(None),
        Ok(_) => {}
        Err(e) => return Err(e.into()),
    }
    read_frame_after(first[0], r).map(Some)
}

/// Read the remainder of a frame whose first header byte has already
/// been consumed (the daemon polls the first byte with a short timeout
/// so it can observe shutdown between frames).
pub fn read_frame_after(first: u8, r: &mut impl Read) -> Result<Vec<u8>, ProtocolError> {
    // Decode the varint length, first byte included.
    let mut len = u64::from(first & 0x7f);
    let mut shift = 7u32;
    let mut b = first;
    while b >= 0x80 {
        if shift >= 64 {
            return Err(ProtocolError::Overflow);
        }
        let mut next = [0u8; 1];
        match r.read_exact(&mut next) {
            Ok(()) => {}
            Err(e) => return Err(e.into()),
        }
        b = next[0];
        if shift == 63 && b > 1 {
            return Err(ProtocolError::Overflow);
        }
        len |= u64::from(b & 0x7f) << shift;
        shift += 7;
    }
    if len > MAX_FRAME_LEN {
        return Err(ProtocolError::FrameTooLarge {
            len,
            max: MAX_FRAME_LEN,
        });
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)?;
    Ok(body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frame_roundtrip() {
        let body = Request::Query { id: "r1".into() }.encode();
        let mut wire = Vec::new();
        write_frame(&mut wire, &body).unwrap();
        let got = read_frame(&mut Cursor::new(&wire)).unwrap().unwrap();
        assert_eq!(got, body);
        assert_eq!(
            Request::decode(&got).unwrap(),
            Request::Query { id: "r1".into() }
        );
        // Clean EOF after a whole frame → None.
        let mut c = Cursor::new(&wire);
        read_frame(&mut c).unwrap().unwrap();
        assert!(read_frame(&mut c).unwrap().is_none());
    }

    #[test]
    fn frame_rejects_oversize_before_alloc() {
        let mut wire = Vec::new();
        put_uvarint(&mut wire, MAX_FRAME_LEN + 1);
        assert!(matches!(
            read_frame(&mut Cursor::new(&wire)),
            Err(ProtocolError::FrameTooLarge { .. })
        ));
    }

    #[test]
    fn frame_truncated_body() {
        let mut wire = Vec::new();
        put_uvarint(&mut wire, 100);
        wire.extend_from_slice(&[1, 2, 3]);
        assert_eq!(
            read_frame(&mut Cursor::new(&wire)).unwrap_err(),
            ProtocolError::Truncated
        );
    }

    #[test]
    fn seed_config_decode_rejects_nan_theta() {
        let cfg = SeedConfig {
            theta: 0.9,
            ..SeedConfig::default()
        };
        let mut buf = vec![TAG_SEED];
        put_config(&mut buf, &cfg);
        // Patch the 8 theta bytes (after tag + 2 varints) to NaN.
        let theta_at = 1 + uvarint_len_of(cfg.kmer) + uvarint_len_of(cfg.num_hashes);
        buf[theta_at..theta_at + 8].copy_from_slice(&f64::NAN.to_bits().to_le_bytes());
        put_reads(&mut buf, &[]);
        assert!(matches!(
            Request::decode(&buf),
            Err(ProtocolError::BadPayload(_))
        ));
    }

    fn uvarint_len_of(v: u64) -> usize {
        let mut buf = Vec::new();
        put_uvarint(&mut buf, v)
    }
}
