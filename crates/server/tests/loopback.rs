//! End-to-end loopback tests: a real daemon on an ephemeral port,
//! real TCP clients, and a sequential [`IncrementalClusterer`] oracle.
//!
//! The acceptance property: two concurrent tenant sessions seeded via
//! `SeedFromBatch` produce assignments identical to the oracle, and
//! every read submitted after seeding is answered on the serving path
//! — the daemon's ledger contains *only* `serve`-category spans, no
//! Map-Reduce job spans.

use std::net::TcpStream;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use mrmc::{IncrementalClusterer, MrMcMinH};
use mrmc_obs::{Category, Tracer};
use mrmc_seqio::SeqRecord;
use mrmc_server::protocol::{read_frame, write_frame};
use mrmc_server::{
    AdmissionLimits, Client, ClientError, ErrorCode, Request, Response, SeedConfig, Server,
    ServerConfig, ServerHandle, SubmitOutcome, PROTOCOL_VERSION,
};
use mrmc_simulate::{CommunitySpec, ErrorModel, ReadSimulator, SpeciesSpec, TaxRank};

/// Deterministic two-species corpus (same generator as the
/// incremental-clusterer tests).
fn corpus(n: usize, seed: u64) -> Vec<SeqRecord> {
    let spec = CommunitySpec {
        species: vec![
            SpeciesSpec {
                name: "a".into(),
                gc: 0.40,
                abundance: 1.0,
            },
            SpeciesSpec {
                name: "b".into(),
                gc: 0.60,
                abundance: 1.0,
            },
        ],
        rank: TaxRank::Phylum,
        genome_len: 20_000,
    };
    let sim = ReadSimulator::new(400, ErrorModel::with_total_rate(0.002));
    spec.generate(&format!("s{seed}"), n, &sim, seed).reads
}

fn seed_cfg() -> SeedConfig {
    SeedConfig {
        kmer: 5,
        num_hashes: 64,
        theta: 0.55,
        greedy: true,
        seed: 7,
        canonical: false,
    }
}

fn spawn_server(limits: AdmissionLimits) -> ServerHandle {
    let config = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        limits,
        metrics: true,
    };
    Server::spawn(&config, Arc::new(Tracer::new())).expect("bind loopback")
}

/// What the daemon must agree with: seed the incremental clusterer
/// from the same batch run, then push the streamed reads in order.
fn oracle(cfg: &SeedConfig, batch: &[SeqRecord], streamed: &[SeqRecord]) -> Vec<u64> {
    let mrmc_cfg = cfg.to_mrmc();
    let run = MrMcMinH::new(mrmc_cfg).run(batch).expect("batch run");
    let mut inc = IncrementalClusterer::from_run(mrmc_cfg, batch, &run).expect("from_run");
    streamed
        .iter()
        .map(|r| inc.push(r).expect("push") as u64)
        .collect()
}

#[test]
fn concurrent_sessions_match_oracle_and_ledger_is_all_serve() {
    let handle = spawn_server(AdmissionLimits::default());
    let addr = handle.addr();
    let tracer = handle.tracer();

    // Two tenants with different corpora, driven concurrently.
    let tenants: Vec<thread::JoinHandle<()>> = [("alpha", 11u64), ("beta", 22u64)]
        .into_iter()
        .map(|(tenant, seed)| {
            thread::spawn(move || {
                let reads = corpus(60, seed);
                let (batch, streamed) = reads.split_at(40);
                let expected = oracle(&seed_cfg(), batch, streamed);

                let mut client = Client::connect(addr, tenant).expect("connect");
                let clusters = client.seed_from_batch(&seed_cfg(), batch).expect("seed");
                assert!(clusters >= 1, "{tenant}: seeded {clusters} clusters");

                // Stream in uneven micro-batches; labels must match the
                // sequential oracle read-for-read.
                let mut got = Vec::new();
                for chunk in streamed.chunks(7) {
                    got.extend(client.submit_labels(chunk).expect("submit"));
                }
                assert_eq!(got, expected, "{tenant}: daemon deviates from oracle");

                // Every submitted read is queryable at its oracle label.
                let last = streamed.last().expect("streamed nonempty");
                assert_eq!(
                    client.query(&last.id).expect("query"),
                    expected.last().copied(),
                    "{tenant}: query disagrees"
                );

                let stats = client.stats().expect("stats");
                assert_eq!(stats.tenant, tenant);
                assert_eq!(stats.reads_admitted, streamed.len() as u64);
                assert_eq!(stats.batches_admitted, streamed.chunks(7).count() as u64);
                assert_eq!(stats.reads_rejected, 0);
                assert_eq!(stats.queue_depth, 0, "{tenant}: work left queued");
            })
        })
        .collect();
    for t in tenants {
        t.join().expect("tenant thread");
    }

    // The acceptance assertion: the request path never re-ran the
    // batch pipeline. Seeding runs untraced, so the daemon's ledger
    // must contain serve spans only — zero Map-Reduce job spans.
    let ledger = tracer.ledger();
    assert!(!ledger.spans.is_empty(), "serve spans were emitted");
    for span in &ledger.spans {
        assert_eq!(
            span.category,
            Category::Serve,
            "non-serve span {} leaked into the daemon ledger",
            span.name
        );
    }
    assert!(
        ledger.spans.iter().any(|s| s.name == "serve:assign"),
        "assignment spans present"
    );

    // The live metrics plane saw the same traffic: per-tenant
    // admission counters match the session ledgers and the latency
    // histograms carry one sample per admitted batch with ordered
    // percentiles.
    let mut observer = Client::connect(addr, "alpha").expect("connect for metrics");
    let snap = observer.server_stats().expect("server stats");
    for tenant in ["alpha", "beta"] {
        let batches = 20usize.div_ceil(7) as u64;
        assert_eq!(
            snap.counter(&format!("serve.tenant.{tenant}.reads_admitted")),
            Some(20),
            "{tenant}: admitted-read counter"
        );
        assert_eq!(
            snap.counter(&format!("serve.tenant.{tenant}.batches_admitted")),
            Some(batches)
        );
        let lat = snap
            .histogram(&format!("serve.tenant.{tenant}.latency_us"))
            .expect("latency histogram present");
        assert_eq!(lat.count(), batches);
        let (p50, p95, p99) = (
            lat.percentile(50.0),
            lat.percentile(95.0),
            lat.percentile(99.0),
        );
        assert!(p50 <= p95 && p95 <= p99, "percentiles ordered");
        assert!(p99 <= lat.max().unwrap_or(0));
        let sizes = snap
            .histogram(&format!("serve.tenant.{tenant}.batch_reads"))
            .expect("batch-size histogram present");
        assert_eq!(sizes.sum(), 20, "batch-size samples cover every read");
        assert_eq!(
            snap.gauge(&format!("serve.tenant.{tenant}.queue_depth")),
            Some(0),
            "{tenant}: live queue gauge drained"
        );
    }
    // The worker sends each reply *before* re-taking the queue lock to
    // decrement `in_flight` (drain must answer every admitted batch
    // before acking), so a client that just received its labels may
    // still observe the previous gauge value — bounded by the number
    // of already-answered batches, never a phantom queue item.
    let in_flight = snap
        .gauge("serve.in_flight")
        .expect("in-flight gauge present");
    assert!(
        (0..=2).contains(&in_flight),
        "in-flight gauge bounded by answered batches: {in_flight}"
    );
    assert_eq!(snap.gauge("serve.queue_depth"), Some(0));
    assert_eq!(snap.gauge("serve.sessions"), Some(2));

    // Graceful drain: shutdown acks, the daemon thread exits, and a
    // late connection is refused or dropped without an answer.
    let mut closer = Client::connect(addr, "alpha").expect("connect for shutdown");
    closer.shutdown().expect("shutdown ack");
    handle.join();
    assert!(
        Client::connect(addr, "late").is_err(),
        "daemon still answering after drain"
    );
}

#[test]
fn zero_depth_queue_answers_busy() {
    let handle = spawn_server(AdmissionLimits {
        max_queue_depth: 0,
        ..AdmissionLimits::default()
    });
    let reads = corpus(20, 3);
    let mut client = Client::connect(handle.addr(), "t").expect("connect");
    client
        .seed_from_batch(&seed_cfg(), &reads[..10])
        .expect("seed");
    match client.submit(&reads[10..]).expect("submit") {
        SubmitOutcome::Busy { queue_depth, limit } => {
            assert_eq!((queue_depth, limit), (0, 0));
        }
        other => panic!("expected Busy, got {other:?}"),
    }
    let stats = client.stats().expect("stats");
    assert_eq!(stats.busy_rejections, 1);
    assert_eq!(stats.reads_rejected, 10);
    assert_eq!(stats.reads_admitted, 0, "refusals record nothing");
    client.shutdown().expect("shutdown");
    handle.join();
}

#[test]
fn byte_quota_refusals_are_permanent() {
    let handle = spawn_server(AdmissionLimits {
        max_session_bytes: 64,
        ..AdmissionLimits::default()
    });
    let reads = corpus(20, 4); // 400-base reads: any batch blows a 64-byte quota
    let mut client = Client::connect(handle.addr(), "t").expect("connect");
    client
        .seed_from_batch(&seed_cfg(), &reads[..10])
        .expect("seed");
    for _ in 0..2 {
        match client.submit(&reads[10..12]).expect("submit") {
            SubmitOutcome::QuotaExceeded { would_use, quota } => {
                assert_eq!(quota, 64);
                assert!(would_use > quota);
            }
            other => panic!("expected QuotaExceeded, got {other:?}"),
        }
    }
    let stats = client.stats().expect("stats");
    assert_eq!(stats.quota_rejections, 2, "quota refusal is permanent");
    assert_eq!(stats.bytes_admitted, 0);
    client.shutdown().expect("shutdown");
    handle.join();
}

/// Metrics are passive: a daemon with the registry disabled answers
/// `ServerStats` with an empty snapshot and assigns the exact same
/// labels as a metrics-enabled daemon over the same traffic.
#[test]
fn metrics_off_daemon_is_label_identical_and_snapshot_empty() {
    let reads = corpus(30, 9);
    let (batch, streamed) = reads.split_at(20);
    let mut labels = Vec::new();
    for metrics in [true, false] {
        let config = ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            limits: AdmissionLimits::default(),
            metrics,
        };
        let handle = Server::spawn(&config, Arc::new(Tracer::new())).expect("bind");
        let mut client = Client::connect(handle.addr(), "t").expect("connect");
        client.seed_from_batch(&seed_cfg(), batch).expect("seed");
        let mut got = Vec::new();
        for chunk in streamed.chunks(4) {
            got.extend(client.submit_labels(chunk).expect("submit"));
        }
        let snap = client.server_stats().expect("server stats");
        if metrics {
            assert!(
                snap.counter("serve.tenant.t.reads_admitted").is_some(),
                "metrics-on daemon records admissions"
            );
        } else {
            assert!(snap.is_empty(), "metrics-off snapshot is empty");
        }
        labels.push(got);
        client.shutdown().expect("shutdown");
        handle.join();
    }
    assert_eq!(labels[0], labels[1], "labels identical with metrics on/off");
}

#[test]
fn version_mismatch_is_refused_at_handshake() {
    let handle = spawn_server(AdmissionLimits::default());
    let mut stream = TcpStream::connect(handle.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    let hello = Request::Hello {
        version: PROTOCOL_VERSION + 999,
        tenant: "t".to_string(),
    };
    write_frame(&mut stream, &hello.encode()).expect("write");
    let body = read_frame(&mut stream).expect("read").expect("frame");
    match Response::decode(&body).expect("decode") {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::VersionMismatch),
        other => panic!("expected version-mismatch error, got {other:?}"),
    }
    drop(stream);
    let mut closer = Client::connect(handle.addr(), "t").expect("connect");
    closer.shutdown().expect("shutdown");
    handle.join();
}

#[test]
fn session_lifecycle_errors_are_typed() {
    let handle = spawn_server(AdmissionLimits::default());
    let reads = corpus(12, 5);
    let mut client = Client::connect(handle.addr(), "t").expect("connect");

    // Submitting before seeding is a typed NotSeeded error, and the
    // refusal admits nothing.
    match client.submit_labels(&reads[..4]) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::NotSeeded),
        other => panic!("expected NotSeeded, got {other:?}"),
    }
    assert_eq!(client.stats().expect("stats").reads_admitted, 0);

    client
        .seed_from_batch(&seed_cfg(), &reads[..8])
        .expect("seed");

    // Re-seeding would discard live centroids: refused.
    match client.seed_from_batch(&seed_cfg(), &reads[..8]) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::AlreadySeeded),
        other => panic!("expected AlreadySeeded, got {other:?}"),
    }

    // A second connection naming the same tenant shares the session.
    let mut second = Client::connect(handle.addr(), "t").expect("connect");
    let labels = second.submit_labels(&reads[8..]).expect("submit");
    assert_eq!(labels.len(), 4);
    assert_eq!(
        client.query(&reads[8].id).expect("query"),
        Some(labels[0]),
        "sessions are shared across connections"
    );

    client.shutdown().expect("shutdown");
    handle.join();
}
