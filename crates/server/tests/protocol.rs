//! Property and fuzz tests for the serving protocol: every message
//! type roundtrips through encode/decode, truncated and over-length
//! frames are rejected, and — the daemon's survival property —
//! decoding NEVER panics on arbitrary bytes, it returns a typed
//! [`ProtocolError`].

use std::io::Cursor;

use proptest::prelude::*;
use proptest::TestRng;

use mrmc_obs::metrics::{Histogram, MetricsSnapshot};
use mrmc_server::protocol::{
    read_frame, write_frame, ErrorCode, ProtocolError, Request, Response, SeedConfig, SessionStats,
    WireRead, MAX_FRAME_LEN,
};

// The vendored proptest stub has no tuple strategies, so struct-valued
// strategies compose field strategies by hand in `generate`.

struct WireReadStrategy;

impl Strategy for WireReadStrategy {
    type Value = WireRead;
    fn generate(&self, rng: &mut TestRng) -> WireRead {
        WireRead {
            id: "[a-z0-9_.:-]{0,16}".generate(rng),
            description: "[ -~]{0,12}".generate(rng),
            seq: proptest::collection::vec(any::<u8>(), 0..64).generate(rng),
        }
    }
}

struct SeedConfigStrategy;

impl Strategy for SeedConfigStrategy {
    type Value = SeedConfig;
    fn generate(&self, rng: &mut TestRng) -> SeedConfig {
        SeedConfig {
            kmer: (1u64..=31).generate(rng),
            num_hashes: (1u64..256).generate(rng),
            theta: (0.0f64..=1.0).generate(rng),
            greedy: any::<bool>().generate(rng),
            seed: any::<u64>().generate(rng),
            canonical: any::<bool>().generate(rng),
        }
    }
}

struct StatsStrategy;

impl Strategy for StatsStrategy {
    type Value = SessionStats;
    fn generate(&self, rng: &mut TestRng) -> SessionStats {
        let tenant = "[a-z0-9]{0,10}".generate(rng);
        let mut u = || any::<u64>().generate(rng);
        SessionStats {
            tenant,
            clusters: u(),
            seeded_clusters: u(),
            reads_admitted: u(),
            batches_admitted: u(),
            reads_rejected: u(),
            busy_rejections: u(),
            quota_rejections: u(),
            bytes_admitted: u(),
            queue_depth: u(),
            queued_bytes: u(),
            max_queue_depth: u(),
        }
    }
}

struct SnapshotStrategy;

impl Strategy for SnapshotStrategy {
    type Value = MetricsSnapshot;
    fn generate(&self, rng: &mut TestRng) -> MetricsSnapshot {
        let name = "[a-z0-9_.]{1,12}";
        let counters = proptest::collection::vec(any::<u64>(), 0..6)
            .generate(rng)
            .into_iter()
            .map(|v| (name.generate(rng), v))
            .collect();
        let gauges = proptest::collection::vec(any::<i64>(), 0..4)
            .generate(rng)
            .into_iter()
            .map(|v| (name.generate(rng), v))
            .collect();
        let histograms =
            proptest::collection::vec(proptest::collection::vec(any::<u64>(), 0..24), 0..3)
                .generate(rng)
                .into_iter()
                .map(|values| {
                    let mut h = Histogram::new();
                    for v in values {
                        h.record(v);
                    }
                    (name.generate(rng), h)
                })
                .collect();
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

/// Every strict prefix of a valid body must fail to decode (message
/// layouts are length-prefixed throughout, so truncation is always
/// detectable), and appending junk must fail with `TrailingBytes`.
fn assert_framing_total<T, D>(body: &[u8], decode: D)
where
    D: Fn(&[u8]) -> Result<T, ProtocolError>,
{
    decode(body).expect("whole body decodes");
    for cut in 0..body.len() {
        assert!(
            decode(&body[..cut]).is_err(),
            "prefix of {cut}/{} bytes decoded cleanly",
            body.len()
        );
    }
    let mut extended = body.to_vec();
    extended.push(0);
    assert!(
        matches!(decode(&extended), Err(ProtocolError::TrailingBytes)),
        "junk suffix not rejected"
    );
}

proptest! {
    /// Requests roundtrip bit-exactly, and their framing is total.
    #[test]
    fn request_roundtrip(
        version in any::<u32>(),
        tenant in "[a-z0-9_.:-]{0,16}",
        config in SeedConfigStrategy,
        reads in proptest::collection::vec(WireReadStrategy, 0..8),
        id in "[a-z0-9_.:-]{0,16}",
    ) {
        let requests = vec![
            Request::Hello { version, tenant },
            Request::SeedFromBatch { config, reads: reads.clone() },
            Request::SubmitReads { reads },
            Request::Query { id },
            Request::ClusterStats,
            Request::ServerStats,
            Request::Shutdown,
        ];
        for req in requests {
            let body = req.encode();
            prop_assert_eq!(Request::decode(&body).expect("roundtrip"), req);
            assert_framing_total(&body, Request::decode);
        }
    }

    /// Responses roundtrip bit-exactly, and their framing is total.
    #[test]
    fn response_roundtrip(
        version in any::<u32>(),
        clusters in any::<u64>(),
        labels in proptest::collection::vec(any::<u64>(), 0..32),
        label in proptest::strategy::any::<u64>(),
        has_label in any::<bool>(),
        stats in StatsStrategy,
        snapshot in SnapshotStrategy,
        a in any::<u64>(),
        b in any::<u64>(),
        message in "[ -~]{0,40}",
    ) {
        let responses = vec![
            Response::HelloAck { version },
            Response::Seeded { clusters },
            Response::Labels { labels },
            Response::QueryResult { label: has_label.then_some(label) },
            Response::Stats(stats),
            Response::ServerStats(snapshot),
            Response::Busy { queue_depth: a, limit: b },
            Response::QuotaExceeded { would_use: a, quota: b },
            Response::Error { code: ErrorCode::NotSeeded, message: message.clone() },
            Response::Error { code: ErrorCode::Internal, message },
            Response::ShutdownAck { drained: a },
        ];
        for resp in responses {
            let body = resp.encode();
            prop_assert_eq!(Response::decode(&body).expect("roundtrip"), resp);
            assert_framing_total(&body, Response::decode);
        }
    }

    /// The survival property: arbitrary bytes never panic the
    /// decoders — every outcome is Ok or a typed ProtocolError.
    #[test]
    fn decode_never_panics_on_arbitrary_bytes(
        bytes in proptest::collection::vec(any::<u8>(), 0..300)
    ) {
        let _ = Request::decode(&bytes);
        let _ = Response::decode(&bytes);
        let _ = read_frame(&mut Cursor::new(&bytes));
    }

    /// Flipping any single byte of a valid frame (header or body)
    /// never panics the frame reader or the decoder.
    #[test]
    fn mutated_frames_never_panic(
        reads in proptest::collection::vec(WireReadStrategy, 0..4),
        flip_at in any::<usize>(),
        flip_to in any::<u8>(),
    ) {
        let body = Request::SubmitReads { reads }.encode();
        let mut wire = Vec::new();
        write_frame(&mut wire, &body).unwrap();
        let at = flip_at % wire.len();
        wire[at] = flip_to;
        if let Ok(Some(body)) = read_frame(&mut Cursor::new(&wire)) {
            let _ = Request::decode(&body);
        }
    }
}

#[test]
fn unknown_tags_are_typed_errors_not_panics() {
    for tag in 0u8..=255 {
        let known_req = matches!(tag, 0x01..=0x07);
        let known_resp = matches!(tag, 0x81..=0x8a);
        match Request::decode(&[tag]) {
            Err(ProtocolError::UnknownTag(t)) => {
                assert_eq!(t, tag);
                assert!(!known_req, "tag {tag:#04x} should be known");
            }
            other => assert!(
                known_req,
                "unknown request tag {tag:#04x} produced {other:?}"
            ),
        }
        match Response::decode(&[tag]) {
            Err(ProtocolError::UnknownTag(t)) => {
                assert_eq!(t, tag);
                assert!(!known_resp, "tag {tag:#04x} should be known");
            }
            other => assert!(
                known_resp,
                "unknown response tag {tag:#04x} produced {other:?}"
            ),
        }
    }
}

#[test]
fn over_length_frames_rejected_before_allocation() {
    // Header declares max+1: refused without allocating the body.
    let mut wire = Vec::new();
    let mut header = Vec::new();
    mrmc_mapreduce::wire::put_uvarint(&mut header, MAX_FRAME_LEN + 1);
    wire.extend_from_slice(&header);
    assert!(matches!(
        read_frame(&mut Cursor::new(&wire)),
        Err(ProtocolError::FrameTooLarge { .. })
    ));

    // Absurd length (u64::MAX) likewise.
    let mut wire = Vec::new();
    mrmc_mapreduce::wire::put_uvarint(&mut wire, u64::MAX);
    assert!(matches!(
        read_frame(&mut Cursor::new(&wire)),
        Err(ProtocolError::FrameTooLarge { .. })
    ));
}

#[test]
fn truncated_streams_rejected() {
    let body = Request::ClusterStats.encode();
    let mut wire = Vec::new();
    write_frame(&mut wire, &body).unwrap();
    // Every strict prefix of the framed message fails with Truncated
    // (or clean EOF for the empty prefix).
    for cut in 1..wire.len() {
        match read_frame(&mut Cursor::new(&wire[..cut])) {
            Err(ProtocolError::Truncated) => {}
            Ok(None) => panic!("prefix {cut} looked like clean EOF"),
            other => panic!("prefix {cut}: {other:?}"),
        }
    }
    assert!(read_frame(&mut Cursor::new(&[] as &[u8]))
        .unwrap()
        .is_none());
}

/// A hostile read-count that the body length cannot possibly satisfy
/// is refused before any allocation sized by it.
#[test]
fn hostile_counts_refused() {
    let mut body = vec![0x03]; // SubmitReads tag
    mrmc_mapreduce::wire::put_uvarint(&mut body, u64::MAX);
    assert!(Request::decode(&body).is_err());

    let mut body = vec![0x83]; // Labels tag
    mrmc_mapreduce::wire::put_uvarint(&mut body, u64::MAX);
    assert!(Response::decode(&body).is_err());

    let mut body = vec![0x8a]; // ServerStats tag
    mrmc_mapreduce::wire::put_uvarint(&mut body, u64::MAX);
    assert!(Response::decode(&body).is_err());
}

/// A histogram whose sparse form names a bucket past the last log2
/// bucket must decode to a typed payload error, not an index panic.
#[test]
fn out_of_range_bucket_index_rejected() {
    let mut h = Histogram::new();
    h.record(9);
    let snap = MetricsSnapshot {
        counters: vec![],
        gauges: vec![],
        histograms: vec![("h".into(), h)],
    };
    let mut body = Response::ServerStats(snap).encode();
    // The final two varints are (bucket_index=4, count=1); bump the
    // index far out of range.
    let n = body.len();
    assert_eq!(body[n - 2], 4);
    body[n - 2] = 120;
    assert!(matches!(
        Response::decode(&body),
        Err(ProtocolError::BadPayload(_))
    ));
}
