//! Species-diversity estimators over a clustering.
//!
//! One of the paper's stated motivations for binning (§I): "it allows
//! computation of species diversity metrics". Treating each cluster as
//! an OTU, these are the standard ecology estimators the 16S
//! literature (and the authors' LSH-Div) reports: observed richness,
//! Chao1, Shannon entropy, Simpson's index, and rarefaction.

use mrmc_cluster::ClusterAssignment;

/// Diversity summary of one clustering.
#[derive(Debug, Clone, PartialEq)]
pub struct DiversityIndices {
    /// Observed OTU count (clusters with ≥ 1 member).
    pub observed: usize,
    /// Chao1 richness estimate: `S + f1² / (2·f2)` (bias-corrected
    /// when `f2 = 0`).
    pub chao1: f64,
    /// Shannon entropy `−Σ p ln p` (nats).
    pub shannon: f64,
    /// Simpson's diversity `1 − Σ p²`.
    pub simpson: f64,
    /// Singleton count `f1`.
    pub singletons: usize,
    /// Doubleton count `f2`.
    pub doubletons: usize,
}

/// Compute the standard indices from a clustering.
pub fn diversity(assignment: &ClusterAssignment) -> DiversityIndices {
    let sizes: Vec<usize> = assignment.sizes();
    let n: usize = sizes.iter().sum();
    let observed = sizes.len();
    let f1 = sizes.iter().filter(|&&s| s == 1).count();
    let f2 = sizes.iter().filter(|&&s| s == 2).count();

    // Chao1 with the bias-corrected form when no doubletons exist.
    let chao1 = if observed == 0 {
        0.0
    } else if f2 > 0 {
        observed as f64 + (f1 * f1) as f64 / (2.0 * f2 as f64)
    } else {
        observed as f64 + (f1 * f1.saturating_sub(1)) as f64 / 2.0
    };

    let mut shannon = 0.0f64;
    let mut simpson_sum = 0.0f64;
    if n > 0 {
        for &s in &sizes {
            let p = s as f64 / n as f64;
            shannon -= p * p.ln();
            simpson_sum += p * p;
        }
    }
    DiversityIndices {
        observed,
        chao1,
        shannon,
        simpson: if n == 0 { 0.0 } else { 1.0 - simpson_sum },
        singletons: f1,
        doubletons: f2,
    }
}

/// Expected OTU count in a random subsample of `m ≤ n` reads
/// (analytic rarefaction, the Hurlbert formula):
/// `E[S_m] = Σ_i (1 − C(n − n_i, m) / C(n, m))`.
///
/// Computed with log-gamma-free running products to stay in f64 range.
pub fn rarefaction(assignment: &ClusterAssignment, m: usize) -> f64 {
    let sizes = assignment.sizes();
    let n: usize = sizes.iter().sum();
    if m == 0 || n == 0 {
        return 0.0;
    }
    let m = m.min(n);
    let mut expected = 0.0f64;
    for &ni in &sizes {
        // log [ C(n−ni, m) / C(n, m) ] = Σ_{j=0}^{m−1} ln((n−ni−j)/(n−j))
        if n - ni < m {
            expected += 1.0; // the OTU is certainly seen
            continue;
        }
        let mut log_ratio = 0.0f64;
        for j in 0..m {
            log_ratio += (((n - ni - j) as f64) / ((n - j) as f64)).ln();
        }
        expected += 1.0 - log_ratio.exp();
    }
    expected
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assignment(sizes: &[usize]) -> ClusterAssignment {
        let mut labels = Vec::new();
        for (cluster, &s) in sizes.iter().enumerate() {
            labels.extend(std::iter::repeat_n(cluster, s));
        }
        ClusterAssignment::from_labels(labels)
    }

    #[test]
    fn observed_and_frequency_counts() {
        let d = diversity(&assignment(&[5, 1, 1, 2, 3]));
        assert_eq!(d.observed, 5);
        assert_eq!(d.singletons, 2);
        assert_eq!(d.doubletons, 1);
    }

    #[test]
    fn chao1_formula() {
        // S=5, f1=2, f2=1 → 5 + 4/2 = 7.
        let d = diversity(&assignment(&[5, 1, 1, 2, 3]));
        assert!((d.chao1 - 7.0).abs() < 1e-12);
        // No doubletons: bias-corrected form 3 + (2·1)/2 = 4.
        let d = diversity(&assignment(&[5, 1, 1]));
        assert!((d.chao1 - 4.0).abs() < 1e-12);
        // No singletons: Chao1 = observed.
        let d = diversity(&assignment(&[3, 4]));
        assert!((d.chao1 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn shannon_and_simpson_known_values() {
        // Two equal clusters: H = ln 2, Simpson = 0.5.
        let d = diversity(&assignment(&[10, 10]));
        assert!((d.shannon - std::f64::consts::LN_2).abs() < 1e-12);
        assert!((d.simpson - 0.5).abs() < 1e-12);
        // One cluster: H = 0, Simpson = 0.
        let d = diversity(&assignment(&[7]));
        assert!(d.shannon.abs() < 1e-12);
        assert!(d.simpson.abs() < 1e-12);
    }

    #[test]
    fn evenness_maximizes_shannon() {
        let even = diversity(&assignment(&[5, 5, 5, 5])).shannon;
        let skewed = diversity(&assignment(&[17, 1, 1, 1])).shannon;
        assert!(even > skewed);
    }

    #[test]
    fn empty_clustering() {
        let d = diversity(&assignment(&[]));
        assert_eq!(d.observed, 0);
        assert_eq!(d.chao1, 0.0);
        assert_eq!(d.shannon, 0.0);
    }

    #[test]
    fn rarefaction_endpoints() {
        let a = assignment(&[4, 3, 2, 1]);
        // Sampling everything sees every OTU.
        assert!((rarefaction(&a, 10) - 4.0).abs() < 1e-9);
        // Sampling one read sees exactly one OTU.
        assert!((rarefaction(&a, 1) - 1.0).abs() < 1e-9);
        assert_eq!(rarefaction(&a, 0), 0.0);
    }

    #[test]
    fn rarefaction_monotone() {
        let a = assignment(&[8, 4, 2, 1, 1]);
        let mut prev = 0.0;
        for m in 1..=16 {
            let e = rarefaction(&a, m);
            assert!(e >= prev - 1e-12, "m={m}: {e} < {prev}");
            prev = e;
        }
    }

    #[test]
    fn rarefaction_oversample_clamps() {
        let a = assignment(&[2, 2]);
        assert!((rarefaction(&a, 100) - 2.0).abs() < 1e-9);
    }
}
