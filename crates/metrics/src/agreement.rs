//! Supporting external agreement indices: purity, NMI, adjusted Rand.
//!
//! Not reported in the paper's tables, but standard for clustering
//! evaluation; EXPERIMENTS.md uses them to sanity-check that W.Acc's
//! known blind spot (over-clustering scores 100 %) is not driving the
//! conclusions.

use std::collections::HashMap;

use mrmc_cluster::ClusterAssignment;

/// (joint, per-cluster, per-class) contingency counts.
type Contingency = (
    HashMap<(usize, usize), usize>,
    HashMap<usize, usize>,
    HashMap<usize, usize>,
);

/// Contingency counts between clusters and classes.
fn contingency(assignment: &ClusterAssignment, truth: &[usize]) -> Contingency {
    assert_eq!(assignment.len(), truth.len(), "length mismatch");
    let mut joint: HashMap<(usize, usize), usize> = HashMap::new();
    let mut clusters: HashMap<usize, usize> = HashMap::new();
    let mut classes: HashMap<usize, usize> = HashMap::new();
    for (item, &class) in truth.iter().enumerate() {
        let cluster = assignment.label(item);
        *joint.entry((cluster, class)).or_insert(0) += 1;
        *clusters.entry(cluster).or_insert(0) += 1;
        *classes.entry(class).or_insert(0) += 1;
    }
    (joint, clusters, classes)
}

/// Purity ∈ [0, 1]: fraction of items in their cluster's majority
/// class.
pub fn purity(assignment: &ClusterAssignment, truth: &[usize]) -> f64 {
    if truth.is_empty() {
        return 1.0;
    }
    let (joint, clusters, _) = contingency(assignment, truth);
    let mut correct = 0usize;
    for (&cluster, _) in clusters.iter() {
        let best = joint
            .iter()
            .filter(|((c, _), _)| *c == cluster)
            .map(|(_, &n)| n)
            .max()
            .unwrap_or(0);
        correct += best;
    }
    correct as f64 / truth.len() as f64
}

/// Normalized mutual information ∈ [0, 1] (arithmetic-mean
/// normalization). 1 when the partitions coincide, 0 when independent.
pub fn normalized_mutual_information(assignment: &ClusterAssignment, truth: &[usize]) -> f64 {
    let n = truth.len();
    if n == 0 {
        return 1.0;
    }
    let (joint, clusters, classes) = contingency(assignment, truth);
    let nf = n as f64;
    let mut mi = 0.0;
    for (&(cluster, class), &nij) in &joint {
        let pij = nij as f64 / nf;
        let pi = clusters[&cluster] as f64 / nf;
        let pj = classes[&class] as f64 / nf;
        mi += pij * (pij / (pi * pj)).ln();
    }
    let h = |counts: &HashMap<usize, usize>| -> f64 {
        counts
            .values()
            .map(|&c| {
                let p = c as f64 / nf;
                -p * p.ln()
            })
            .sum()
    };
    let (hc, ht) = (h(&clusters), h(&classes));
    if hc == 0.0 && ht == 0.0 {
        return 1.0; // both partitions trivial and identical
    }
    let denom = (hc + ht) / 2.0;
    if denom == 0.0 {
        0.0
    } else {
        (mi / denom).clamp(0.0, 1.0)
    }
}

/// Adjusted Rand index ∈ [−1, 1]; 1 for identical partitions, ~0 for
/// random agreement.
pub fn adjusted_rand_index(assignment: &ClusterAssignment, truth: &[usize]) -> f64 {
    let n = truth.len();
    if n < 2 {
        return 1.0;
    }
    let (joint, clusters, classes) = contingency(assignment, truth);
    let choose2 = |x: usize| (x * x.saturating_sub(1) / 2) as f64;
    let sum_ij: f64 = joint.values().map(|&v| choose2(v)).sum();
    let sum_i: f64 = clusters.values().map(|&v| choose2(v)).sum();
    let sum_j: f64 = classes.values().map(|&v| choose2(v)).sum();
    let total = choose2(n);
    let expected = sum_i * sum_j / total;
    let max = (sum_i + sum_j) / 2.0;
    if (max - expected).abs() < 1e-12 {
        return 1.0; // degenerate: both partitions trivial
    }
    (sum_ij - expected) / (max - expected)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assign(labels: &[usize]) -> ClusterAssignment {
        ClusterAssignment::from_labels(labels.to_vec())
    }

    #[test]
    fn identical_partitions_score_max() {
        let a = assign(&[0, 0, 1, 1, 2]);
        let t = [5, 5, 9, 9, 7];
        assert!((purity(&a, &t) - 1.0).abs() < 1e-12);
        assert!((normalized_mutual_information(&a, &t) - 1.0).abs() < 1e-9);
        assert!((adjusted_rand_index(&a, &t) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn one_big_cluster_vs_two_classes() {
        let a = assign(&[0, 0, 0, 0]);
        let t = [0, 0, 1, 1];
        assert!((purity(&a, &t) - 0.5).abs() < 1e-12);
        assert!(normalized_mutual_information(&a, &t) < 1e-9);
        assert!(adjusted_rand_index(&a, &t).abs() < 1e-9);
    }

    #[test]
    fn over_clustering_penalized_by_ari_not_purity() {
        // All singletons: purity 1, ARI 0 (expected agreement).
        let a = assign(&[0, 1, 2, 3]);
        let t = [0, 0, 1, 1];
        assert!((purity(&a, &t) - 1.0).abs() < 1e-12);
        assert!(adjusted_rand_index(&a, &t).abs() < 0.5);
    }

    #[test]
    fn nmi_symmetric_in_partition_sizes() {
        let a = assign(&[0, 0, 1, 1, 1, 2]);
        let t = [1, 1, 0, 0, 0, 2];
        let nmi = normalized_mutual_information(&a, &t);
        assert!((nmi - 1.0).abs() < 1e-9, "relabelled partition, nmi={nmi}");
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let a = assign(&[]);
        assert_eq!(purity(&a, &[]), 1.0);
        assert_eq!(normalized_mutual_information(&a, &[]), 1.0);
        let a = assign(&[0]);
        assert_eq!(adjusted_rand_index(&a, &[3]), 1.0);
    }

    #[test]
    fn ari_partial_agreement_between_0_and_1() {
        let a = assign(&[0, 0, 1, 1, 1, 1]);
        let t = [0, 0, 0, 1, 1, 1];
        let ari = adjusted_rand_index(&a, &t);
        assert!(ari > 0.0 && ari < 1.0, "ari {ari}");
    }
}
