//! Weighted cluster accuracy (W.Acc).

use std::collections::HashMap;

use mrmc_cluster::ClusterAssignment;

/// The paper's W.Acc: "each cluster is designated by class/genera
/// based on the most frequent class in the cluster, and then the
/// accuracy is evaluated by computing the percent of correctly
/// assigned sequences with respect to the designated class. The
/// reported accuracy is averaged across all clusters, weighted by the
/// number of sequences in each cluster."
///
/// Clusters smaller than `min_size` are excluded (the paper reports
/// for clusters with more than 50 sequences; tests pass 1).
/// Returns a percentage in `[0, 100]`; `None` when no cluster passes
/// the size floor.
pub fn weighted_accuracy(
    assignment: &ClusterAssignment,
    truth: &[usize],
    min_size: usize,
) -> Option<f64> {
    assert_eq!(
        assignment.len(),
        truth.len(),
        "assignment and truth must cover the same items"
    );
    let mut num = 0.0f64;
    let mut denom = 0.0f64;
    for members in assignment.members().values() {
        if members.len() < min_size {
            continue;
        }
        let mut counts: HashMap<usize, usize> = HashMap::new();
        for &item in members {
            *counts.entry(truth[item]).or_insert(0) += 1;
        }
        let majority = *counts.values().max().expect("cluster non-empty");
        let acc = majority as f64 / members.len() as f64;
        // Weighted mean: weight = cluster size.
        num += acc * members.len() as f64;
        denom += members.len() as f64;
    }
    if denom == 0.0 {
        None
    } else {
        Some(100.0 * num / denom)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assign(labels: &[usize]) -> ClusterAssignment {
        ClusterAssignment::from_labels(labels.to_vec())
    }

    #[test]
    fn perfect_clustering_is_100() {
        let a = assign(&[0, 0, 1, 1]);
        let truth = [7, 7, 9, 9];
        assert_eq!(weighted_accuracy(&a, &truth, 1), Some(100.0));
    }

    #[test]
    fn mixed_cluster_scores_majority_fraction() {
        // One cluster of 4: 3 of class 0, 1 of class 1 → 75 %.
        let a = assign(&[0, 0, 0, 0]);
        let truth = [0, 0, 0, 1];
        assert_eq!(weighted_accuracy(&a, &truth, 1), Some(75.0));
    }

    #[test]
    fn weighting_by_cluster_size() {
        // Cluster A: 4 items at 75 %; cluster B: 1 item at 100 %.
        // Weighted: (0.75·4 + 1.0·1)/5 = 0.8.
        let a = assign(&[0, 0, 0, 0, 1]);
        let truth = [0, 0, 0, 1, 2];
        let acc = weighted_accuracy(&a, &truth, 1).unwrap();
        assert!((acc - 80.0).abs() < 1e-9);
    }

    #[test]
    fn min_size_filters_small_clusters() {
        let a = assign(&[0, 0, 0, 0, 1]);
        let truth = [0, 0, 0, 1, 2];
        // Only the size-4 cluster counts.
        let acc = weighted_accuracy(&a, &truth, 2).unwrap();
        assert!((acc - 75.0).abs() < 1e-9);
        // Nothing passes a floor of 10.
        assert_eq!(weighted_accuracy(&a, &truth, 10), None);
    }

    #[test]
    fn over_clustering_still_scores_high() {
        // Splitting one class into two pure clusters keeps W.Acc = 100
        // — the known blind spot of this metric (the paper pairs it
        // with cluster counts for that reason).
        let a = assign(&[0, 0, 1, 1]);
        let truth = [5, 5, 5, 5];
        assert_eq!(weighted_accuracy(&a, &truth, 1), Some(100.0));
    }

    #[test]
    #[should_panic(expected = "same items")]
    fn length_mismatch_panics() {
        weighted_accuracy(&assign(&[0, 0]), &[0], 1);
    }
}
