//! Weighted within-cluster sequence similarity (W.Sim).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

use mrmc_align::{global_identity, Scoring};
use mrmc_cluster::ClusterAssignment;
use mrmc_seqio::SeqRecord;

/// Options for the W.Sim computation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimilarityOptions {
    /// Clusters below this size are excluded (paper: 50 at full scale).
    pub min_cluster_size: usize,
    /// Pairs sampled per cluster; the all-pairs count is used when it
    /// is smaller. Exhaustive all-pairs alignment of a 10 000-read
    /// cluster is 5·10⁷ needleman–wunsch runs; sampling converges to
    /// the same mean with a few hundred.
    pub max_pairs_per_cluster: usize,
    /// Seed for pair sampling (determinism across runs).
    pub seed: u64,
    /// Alignment scoring scheme.
    pub scoring: Scoring,
}

impl Default for SimilarityOptions {
    fn default() -> Self {
        SimilarityOptions {
            min_cluster_size: 2,
            max_pairs_per_cluster: 200,
            seed: 0x5eed,
            scoring: Scoring::dna_default(),
        }
    }
}

/// The paper's W.Sim: "the average global sequence alignment
/// similarity (weighted by number of sequences in a cluster)", as a
/// percentage. Pairs within each qualifying cluster are sampled
/// (deterministically) and aligned in parallel; per-cluster means are
/// averaged weighted by cluster size. `None` when no cluster
/// qualifies.
pub fn weighted_similarity(
    assignment: &ClusterAssignment,
    reads: &[SeqRecord],
    options: &SimilarityOptions,
) -> Option<f64> {
    assert_eq!(
        assignment.len(),
        reads.len(),
        "assignment and reads must cover the same items"
    );
    let clusters: Vec<Vec<usize>> = assignment
        .members()
        .into_values()
        .filter(|m| m.len() >= options.min_cluster_size.max(2))
        .collect();
    if clusters.is_empty() {
        return None;
    }

    let per_cluster: Vec<(f64, usize)> = clusters
        .par_iter()
        .map(|members| {
            let pairs = sample_pairs(members, options.max_pairs_per_cluster, options.seed);
            let sum: f64 = pairs
                .par_iter()
                .map(|&(i, j)| global_identity(&reads[i].seq, &reads[j].seq, &options.scoring))
                .sum();
            (sum / pairs.len() as f64, members.len())
        })
        .collect();

    let mut num = 0.0;
    let mut denom = 0.0;
    for (mean, size) in per_cluster {
        num += mean * size as f64;
        denom += size as f64;
    }
    Some(100.0 * num / denom)
}

/// Sample up to `max_pairs` distinct unordered pairs from `members`
/// (all pairs when fewer exist).
fn sample_pairs(members: &[usize], max_pairs: usize, seed: u64) -> Vec<(usize, usize)> {
    let n = members.len();
    let all = n * (n - 1) / 2;
    if all <= max_pairs {
        let mut v = Vec::with_capacity(all);
        for a in 0..n {
            for b in (a + 1)..n {
                v.push((members[a], members[b]));
            }
        }
        return v;
    }
    // Rejection-free: sample pair indices in the condensed triangle.
    let mut rng = StdRng::seed_from_u64(seed ^ (n as u64) << 17);
    let mut seen = std::collections::HashSet::with_capacity(max_pairs);
    let mut v = Vec::with_capacity(max_pairs);
    while v.len() < max_pairs {
        let a = rng.random_range(0..n);
        let b = rng.random_range(0..n);
        if a == b {
            continue;
        }
        let key = (a.min(b), a.max(b));
        if seen.insert(key) {
            v.push((members[key.0], members[key.1]));
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reads(seqs: &[&[u8]]) -> Vec<SeqRecord> {
        seqs.iter()
            .enumerate()
            .map(|(i, s)| SeqRecord::new(format!("r{i}"), s.to_vec()))
            .collect()
    }

    #[test]
    fn identical_cluster_scores_100() {
        let rs = reads(&[b"ACGTACGT", b"ACGTACGT", b"ACGTACGT"]);
        let a = ClusterAssignment::from_labels(vec![0, 0, 0]);
        let sim = weighted_similarity(&a, &rs, &SimilarityOptions::default()).unwrap();
        assert!((sim - 100.0).abs() < 1e-9);
    }

    #[test]
    fn dissimilar_cluster_scores_low() {
        let rs = reads(&[b"AAAAAAAA", b"CCCCCCCC"]);
        let a = ClusterAssignment::from_labels(vec![0, 0]);
        let sim = weighted_similarity(&a, &rs, &SimilarityOptions::default()).unwrap();
        assert!(sim < 20.0, "sim {sim}");
    }

    #[test]
    fn weighting_by_cluster_size() {
        // Cluster 0 (2 reads): identity 1.0. Cluster 1 (2 reads):
        // identity 0.5 (half the bases differ).
        let rs = reads(&[b"ACGTACGT", b"ACGTACGT", b"AAAACCCC", b"AAAAGGGG"]);
        let a = ClusterAssignment::from_labels(vec![0, 0, 1, 1]);
        let sim = weighted_similarity(&a, &rs, &SimilarityOptions::default()).unwrap();
        assert!((sim - 75.0).abs() < 1.0, "sim {sim}");
    }

    #[test]
    fn singletons_excluded() {
        let rs = reads(&[b"ACGT", b"ACGT", b"TTTT"]);
        let a = ClusterAssignment::from_labels(vec![0, 0, 1]);
        // The singleton cluster 1 cannot contribute pairs.
        let sim = weighted_similarity(&a, &rs, &SimilarityOptions::default()).unwrap();
        assert!((sim - 100.0).abs() < 1e-9);
    }

    #[test]
    fn none_when_everything_filtered() {
        let rs = reads(&[b"ACGT", b"TTTT"]);
        let a = ClusterAssignment::from_labels(vec![0, 1]);
        assert_eq!(
            weighted_similarity(&a, &rs, &SimilarityOptions::default()),
            None
        );
    }

    #[test]
    fn sampling_deterministic() {
        let members: Vec<usize> = (0..50).collect();
        let p1 = sample_pairs(&members, 20, 9);
        let p2 = sample_pairs(&members, 20, 9);
        assert_eq!(p1, p2);
        assert_eq!(p1.len(), 20);
        // Distinct pairs.
        let mut set = std::collections::HashSet::new();
        for &(a, b) in &p1 {
            assert!(a != b);
            assert!(set.insert((a.min(b), a.max(b))));
        }
    }

    #[test]
    fn small_cluster_uses_all_pairs() {
        let members = vec![3, 7, 9];
        let pairs = sample_pairs(&members, 100, 0);
        assert_eq!(pairs.len(), 3);
    }

    #[test]
    fn min_cluster_size_option() {
        let rs = reads(&[b"ACGT", b"ACGT", b"GGGG", b"GGGG", b"GGGG"]);
        let a = ClusterAssignment::from_labels(vec![0, 0, 1, 1, 1]);
        let opts = SimilarityOptions {
            min_cluster_size: 3,
            ..Default::default()
        };
        // Only cluster 1 (GGGG×3, identity 1.0) qualifies.
        let sim = weighted_similarity(&a, &rs, &opts).unwrap();
        assert!((sim - 100.0).abs() < 1e-9);
    }
}
