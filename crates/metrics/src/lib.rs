//! Evaluation metrics for metagenome clusterings (paper §IV-B).
//!
//! * [`accuracy`] — **W.Acc**: each cluster is designated by its most
//!   frequent ground-truth class; the fraction of members matching the
//!   designation is averaged over clusters, weighted by cluster size;
//! * [`similarity`] — **W.Sim**: average within-cluster global
//!   alignment identity, weighted by cluster size, pair-sampled for
//!   tractability (the paper reports it for clusters above a size
//!   floor — 50 sequences at full scale);
//! * [`agreement`] — supporting external indices (purity, NMI,
//!   adjusted Rand) for the extended analyses in EXPERIMENTS.md.

pub mod accuracy;
pub mod agreement;
pub mod diversity;
pub mod similarity;

pub use accuracy::weighted_accuracy;
pub use agreement::{adjusted_rand_index, normalized_mutual_information, purity};
pub use diversity::{diversity, rarefaction, DiversityIndices};
pub use similarity::{weighted_similarity, SimilarityOptions};
