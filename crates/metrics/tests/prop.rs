//! Property-based tests for the evaluation metrics.

use proptest::prelude::*;

use mrmc_cluster::ClusterAssignment;
use mrmc_metrics::{adjusted_rand_index, normalized_mutual_information, purity, weighted_accuracy};

fn partition(n: usize, k: usize) -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(0..k, n..=n)
}

proptest! {
    /// W.Acc is a percentage, purity/NMI are fractions, ARI ≤ 1.
    #[test]
    fn metric_bounds(labels in partition(30, 6), truth in partition(30, 6)) {
        let a = ClusterAssignment::from_labels(labels);
        if let Some(acc) = weighted_accuracy(&a, &truth, 1) {
            prop_assert!((0.0..=100.0).contains(&acc));
        }
        prop_assert!((0.0..=1.0).contains(&purity(&a, &truth)));
        prop_assert!((0.0..=1.0).contains(&normalized_mutual_information(&a, &truth)));
        prop_assert!(adjusted_rand_index(&a, &truth) <= 1.0 + 1e-9);
    }

    /// Perfect agreement maxes every metric.
    #[test]
    fn perfect_agreement(truth in partition(25, 5)) {
        let a = ClusterAssignment::from_labels(truth.clone());
        prop_assert_eq!(weighted_accuracy(&a, &truth, 1), Some(100.0));
        prop_assert!((purity(&a, &truth) - 1.0).abs() < 1e-12);
        prop_assert!((normalized_mutual_information(&a, &truth) - 1.0).abs() < 1e-9);
        prop_assert!((adjusted_rand_index(&a, &truth) - 1.0).abs() < 1e-9);
    }

    /// Metrics are invariant to relabeling of cluster ids.
    #[test]
    fn relabel_invariance(labels in partition(25, 5), truth in partition(25, 5), offset in 1usize..100) {
        let a = ClusterAssignment::from_labels(labels.clone());
        let shifted = ClusterAssignment::from_labels(
            labels.iter().map(|l| l + offset).collect(),
        );
        prop_assert_eq!(
            weighted_accuracy(&a, &truth, 1),
            weighted_accuracy(&shifted, &truth, 1)
        );
        prop_assert!((purity(&a, &truth) - purity(&shifted, &truth)).abs() < 1e-12);
        prop_assert!(
            (adjusted_rand_index(&a, &truth) - adjusted_rand_index(&shifted, &truth)).abs() < 1e-9
        );
    }

    /// Singleton clustering: purity and W.Acc are perfect (each
    /// cluster trivially pure) — the blind spot ARI exists to catch.
    #[test]
    fn singletons_fool_purity_not_ari(truth in partition(20, 3)) {
        let singles = ClusterAssignment::singletons(20);
        prop_assert!((purity(&singles, &truth) - 1.0).abs() < 1e-12);
        prop_assert_eq!(weighted_accuracy(&singles, &truth, 1), Some(100.0));
        // With ≥ 2 classes of nontrivial size, ARI stays below 0.5.
        let class_count = truth.iter().collect::<std::collections::HashSet<_>>().len();
        let max_class = (0..3)
            .map(|c| truth.iter().filter(|&&t| t == c).count())
            .max()
            .unwrap();
        if class_count >= 2 && max_class <= 15 {
            prop_assert!(adjusted_rand_index(&singles, &truth) < 0.5);
        }
    }

    /// The min-size floor never *lowers* the count of contributing
    /// clusters' items... i.e. raising the floor only removes clusters.
    #[test]
    fn floor_monotone(labels in partition(30, 6), truth in partition(30, 6)) {
        let a = ClusterAssignment::from_labels(labels);
        let any_floor = weighted_accuracy(&a, &truth, 1);
        let high_floor = weighted_accuracy(&a, &truth, 10);
        if high_floor.is_some() {
            prop_assert!(any_floor.is_some());
        }
    }
}
