//! Property tests for the columnar data plane.
//!
//! Two invariants back the columnar engine's correctness claim:
//!
//! 1. **Representation fidelity** — `ColumnBatch::from_rows(rows)`
//!    followed by `to_rows()` reproduces the input *exactly* (variant,
//!    nulls, nested bag order, tuple arity), and the columnar shuffle
//!    pricing `row_shuffle_size(i)` equals the boxed row's
//!    `shuffle_size()`. Slicing and gathering preserve both.
//! 2. **Engine bit-identity** — randomized scripts over randomized
//!    inputs store byte-identical outputs and record identical shuffle
//!    statistics on the row and columnar engines, including the nasty
//!    FLATTEN corners (empty bags, bare non-tuple bag elements,
//!    mixed bag/scalar expression outputs, nulls, ragged tuples).

use std::collections::HashMap;
use std::sync::Arc;

use proptest::prelude::*;

use mrmc_mapreduce::dfs::{Dfs, DfsConfig};
use mrmc_mapreduce::ShuffleSized;
use mrmc_pig::exec::PigEngine;
use mrmc_pig::udf::{Udf, UdfError};
use mrmc_pig::{parse_script, ColumnBatch, PigRunner, UdfRegistry, Value};

// ----------------------------------------------------- value round-trips

/// Arbitrary Pig values of bounded depth (same distribution as the
/// `prop.rs` ordering tests, nested tuples and bags included).
fn value() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<i32>().prop_map(Value::Int),
        any::<i64>().prop_map(Value::Long),
        any::<f64>().prop_map(Value::Double),
        "[a-z]{0,6}".prop_map(Value::CharArray),
        proptest::collection::vec(any::<u8>(), 0..8).prop_map(|v| Value::ByteArray(v.into())),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..4).prop_map(Value::Tuple),
            proptest::collection::vec(inner, 0..4).prop_map(Value::Bag),
        ]
    })
}

/// Rows as relations hold them: tuples of arbitrary values, with
/// ragged widths in the mix.
fn rows() -> impl Strategy<Value = Vec<Value>> {
    proptest::collection::vec(
        proptest::collection::vec(value(), 0..5).prop_map(Value::Tuple),
        0..12,
    )
}

proptest! {
    /// from_rows → to_rows is the identity, and the columnar shuffle
    /// pricing matches the boxed pricing row for row.
    #[test]
    fn batch_round_trips_rows(rows in rows()) {
        let batch = ColumnBatch::from_rows(&rows).expect("all rows are tuples");
        prop_assert_eq!(batch.rows(), rows.len());
        prop_assert_eq!(batch.to_rows(), rows.clone());
        for (i, row) in rows.iter().enumerate() {
            prop_assert_eq!(batch.row_value(i), row.clone());
            prop_assert_eq!(batch.row_shuffle_size(i), row.shuffle_size());
        }
    }

    /// Slices and gathers of a batch reproduce the corresponding rows.
    #[test]
    fn slice_and_gather_preserve_rows(rows in rows(), cut in 0usize..12) {
        let batch = ColumnBatch::from_rows(&rows).expect("all rows are tuples");
        let cut = cut.min(rows.len());
        let head = batch.slice(0, cut);
        prop_assert_eq!(head.to_rows(), rows[..cut].to_vec());
        // Gather even-indexed rows in reverse.
        let idx: Vec<u32> = (0..rows.len() as u32).rev().filter(|i| i % 2 == 0).collect();
        let gathered = batch.gather(&idx);
        let expect: Vec<Value> = idx.iter().map(|&i| rows[i as usize].clone()).collect();
        prop_assert_eq!(gathered.to_rows(), expect);
    }
}

// ------------------------------------------------- script bit-identity

/// `Nullify(s)` → the string back, or `Null` when its length is even
/// (injects nulls into downstream columns).
struct Nullify;
impl Udf for Nullify {
    fn name(&self) -> &str {
        "Nullify"
    }
    fn exec(&self, args: &[Value]) -> Result<Value, UdfError> {
        let s = args
            .first()
            .and_then(Value::as_str)
            .ok_or_else(|| UdfError::new("Nullify", "expected one chararray"))?;
        Ok(if s.len() % 2 == 0 {
            Value::Null
        } else {
            Value::CharArray(s.to_string())
        })
    }
}

/// `Chars(s)` → bag of *bare* one-char chararrays (bag elements that
/// are not tuples — FLATTEN appends the value itself).
struct Chars;
impl Udf for Chars {
    fn name(&self) -> &str {
        "Chars"
    }
    fn exec(&self, args: &[Value]) -> Result<Value, UdfError> {
        let s = args
            .first()
            .and_then(Value::as_str)
            .ok_or_else(|| UdfError::new("Chars", "expected one chararray"))?;
        Ok(Value::bag(
            s.chars()
                .map(|c| Value::CharArray(c.to_string()))
                .collect::<Vec<_>>(),
        ))
    }
}

/// `MixBag(s)` → either a bag of `(char, position)` tuples (strings
/// starting a–m) or the bare string itself (n–z, empty): a
/// mixed-type expression output that defeats typed columnarization
/// and, under FLATTEN, produces ragged output rows.
struct MixBag;
impl Udf for MixBag {
    fn name(&self) -> &str {
        "MixBag"
    }
    fn exec(&self, args: &[Value]) -> Result<Value, UdfError> {
        let s = args
            .first()
            .and_then(Value::as_str)
            .ok_or_else(|| UdfError::new("MixBag", "expected one chararray"))?;
        Ok(match s.bytes().next() {
            Some(c) if c <= b'm' => Value::bag(
                s.chars()
                    .enumerate()
                    .map(|(i, c)| {
                        Value::tuple([Value::CharArray(c.to_string()), Value::Long(i as i64)])
                    })
                    .collect::<Vec<_>>(),
            ),
            _ => Value::CharArray(s.to_string()),
        })
    }
}

fn test_registry() -> UdfRegistry {
    let mut r = UdfRegistry::with_builtins();
    r.register(Arc::new(Nullify));
    r.register(Arc::new(Chars));
    r.register(Arc::new(MixBag));
    r
}

/// Build a random script from an op list. Every op keeps field `f0`
/// addressable; ops that require a non-null chararray are remapped to
/// a safe op once nulls may be present.
fn build_script(ops: &[u8], limit: usize) -> String {
    let mut script = String::from("A = LOAD '/in.txt' AS (f0:chararray);\n");
    let mut cur = "A".to_string();
    let mut maybe_null = false;
    for (i, &op) in ops.iter().enumerate() {
        let next = format!("R{i}");
        let op = if maybe_null && matches!(op, 0 | 1 | 2 | 3 | 8) {
            4 // string UDFs would error on null; filter instead
        } else {
            op
        };
        match op {
            0 => script.push_str(&format!(
                "{next} = FOREACH {cur} GENERATE UPPER(f0) AS (f0:chararray);\n"
            )),
            1 => script.push_str(&format!(
                "{next} = FOREACH {cur} GENERATE FLATTEN(TOKENIZE(f0)) AS (f0:chararray);\n"
            )),
            2 => script.push_str(&format!(
                "{next} = FOREACH {cur} GENERATE FLATTEN(Chars(f0)) AS (f0:chararray);\n"
            )),
            3 => script.push_str(&format!(
                "{next} = FOREACH {cur} GENERATE FLATTEN(MixBag(f0)) AS (f0:chararray, f1:long);\n"
            )),
            4 => script.push_str(&format!("{next} = FILTER {cur} BY f0 >= 'm';\n")),
            5 => {
                script.push_str(&format!("G{i} = GROUP {cur} BY f0;\n"));
                script.push_str(&format!(
                    "{next} = FOREACH G{i} GENERATE group AS (f0:chararray), COUNT({cur});\n"
                ));
            }
            6 => script.push_str(&format!("{next} = DISTINCT {cur};\n")),
            7 => {
                script.push_str(&format!("O{i} = ORDER {cur} BY f0 DESC;\n"));
                script.push_str(&format!("{next} = LIMIT O{i} {limit};\n"));
            }
            _ => {
                script.push_str(&format!(
                    "{next} = FOREACH {cur} GENERATE Nullify(f0) AS (f0:chararray);\n"
                ));
                maybe_null = true;
            }
        }
        cur = next;
    }
    script.push_str(&format!("STORE {cur} INTO '/out.txt';\n"));
    script
}

/// Run one script on one engine; return the stored bytes and the
/// per-stage shuffle statistics.
fn run_engine(script_src: &str, input: &str, engine: PigEngine) -> (Vec<u8>, Vec<(u64, u64, u64)>) {
    let dfs = Arc::new(
        Dfs::new(DfsConfig {
            block_size: 1024,
            replication: 1,
            nodes: 2,
        })
        .unwrap(),
    );
    dfs.put("/in.txt", input.as_bytes().to_vec(), false)
        .unwrap();
    let script = parse_script(script_src, &HashMap::new()).unwrap();
    let mut runner = PigRunner::new(Arc::clone(&dfs), test_registry()).with_engine(engine);
    runner.num_map_tasks = 3;
    runner.num_reducers = 2;
    runner.workers = Some(2);
    let report = runner.run(&script).unwrap();
    let stats = report
        .pipeline
        .stages()
        .iter()
        .map(|s| (s.shuffled_pairs, s.shuffled_bytes, s.shuffle_runs))
        .collect();
    (dfs.read("/out.txt").unwrap().to_vec(), stats)
}

proptest! {
    /// Randomized scripts over randomized inputs: the two engines
    /// must store byte-identical output and record identical shuffle
    /// statistics (pairs, bytes, runs) stage for stage.
    #[test]
    fn engines_bit_identical_on_random_scripts(
        lines in proptest::collection::vec("[a-o ]{0,6}", 0..10),
        ops in proptest::collection::vec(0u8..9, 0..5),
        limit in 0usize..7,
    ) {
        let input = lines.join("\n");
        let script = build_script(&ops, limit);
        let (row_out, row_stats) = run_engine(&script, &input, PigEngine::Row);
        let (col_out, col_stats) = run_engine(&script, &input, PigEngine::Columnar);
        prop_assert_eq!(
            String::from_utf8_lossy(&row_out),
            String::from_utf8_lossy(&col_out),
            "stored bytes diverged for script:\n{}",
            script
        );
        prop_assert_eq!(row_stats, col_stats, "shuffle stats diverged for script:\n{}", script);
    }
}

// ------------------------------------------------ directed flatten edges

/// One fixed script through both engines, with inputs chosen to hit a
/// specific edge; asserts byte identity and (optionally) the exact
/// expected output.
fn assert_engines_agree(script_src: &str, input: &str) -> String {
    let (row_out, _) = run_engine(script_src, input, PigEngine::Row);
    let (col_out, _) = run_engine(script_src, input, PigEngine::Columnar);
    assert_eq!(
        String::from_utf8_lossy(&row_out),
        String::from_utf8_lossy(&col_out),
        "engines diverged on:\n{script_src}"
    );
    String::from_utf8(col_out).unwrap()
}

#[test]
fn flatten_empty_bags_drop_rows() {
    // TOKENIZE('') is an empty bag: FLATTEN must drop the row.
    let out = assert_engines_agree(
        "A = LOAD '/in.txt' AS (f0:chararray);\n\
         B = FOREACH A GENERATE FLATTEN(TOKENIZE(f0)) AS (f0:chararray);\n\
         STORE B INTO '/out.txt';",
        "a b\n\nc\n\n",
    );
    assert_eq!(out, "(a)\n(b)\n(c)\n");
}

#[test]
fn flatten_bare_elements_append_single_field() {
    let out = assert_engines_agree(
        "A = LOAD '/in.txt' AS (f0:chararray);\n\
         B = FOREACH A GENERATE FLATTEN(Chars(f0)) AS (f0:chararray);\n\
         STORE B INTO '/out.txt';",
        "ab\nc\n",
    );
    assert_eq!(out, "(a)\n(b)\n(c)\n");
}

#[test]
fn flatten_mixed_outputs_produce_ragged_rows() {
    // 'ab' flattens to (char, pos) pairs; 'xy' stays a bare string —
    // output rows have arity 2 and 1 in the same relation.
    let out = assert_engines_agree(
        "A = LOAD '/in.txt' AS (f0:chararray);\n\
         B = FOREACH A GENERATE FLATTEN(MixBag(f0)) AS (f0:chararray, f1:long);\n\
         STORE B INTO '/out.txt';",
        "ab\nxy\n",
    );
    assert_eq!(out, "(a,0)\n(b,1)\n(xy)\n");
}

#[test]
fn flatten_cross_product_order_is_row_major() {
    // Two flattened bags in one GENERATE: later items vary fastest.
    let out = assert_engines_agree(
        "A = LOAD '/in.txt' AS (f0:chararray);\n\
         B = FOREACH A GENERATE FLATTEN(TOKENIZE(f0)) AS (f0:chararray), FLATTEN(TOKENIZE('x y')) AS (f1:chararray);\n\
         STORE B INTO '/out.txt';",
        "a b\n",
    );
    assert_eq!(out, "(a,x)\n(a,y)\n(b,x)\n(b,y)\n");
}

#[test]
fn nulls_survive_group_and_store() {
    // Nullify makes every even-length string Null; grouping by a
    // nullable key and storing must agree between engines.
    let out = assert_engines_agree(
        "A = LOAD '/in.txt' AS (f0:chararray);\n\
         N = FOREACH A GENERATE Nullify(f0) AS (f0:chararray);\n\
         G = GROUP N BY f0;\n\
         C = FOREACH G GENERATE group AS (f0:chararray), COUNT(N);\n\
         STORE C INTO '/out.txt';",
        "aa\nbcd\nee\nbcd\n",
    );
    // Null displays as the empty string; nulls group together.
    assert_eq!(out, "(,2)\n(bcd,2)\n");
}

#[test]
fn flatten_constant_tuple_appends_fields() {
    let out = assert_engines_agree(
        "A = LOAD '/in.txt' AS (f0:chararray);\n\
         B = FOREACH A GENERATE f0, FLATTEN(TOKENIZE('k v')) AS (f1:chararray, f2:chararray);\n\
         STORE B INTO '/out.txt';",
        "r\n",
    );
    assert_eq!(out, "(r,k)\n(r,v)\n");
}
