//! Property-based tests for the Pig layer.

use std::collections::HashMap;

use proptest::prelude::*;

use mrmc_pig::lexer::lex;
use mrmc_pig::parser::parse_script;
use mrmc_pig::Value;

/// Strategy: arbitrary Pig values of bounded depth.
fn value() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<i32>().prop_map(Value::Int),
        any::<i64>().prop_map(Value::Long),
        any::<f64>().prop_map(Value::Double),
        "[a-z]{0,6}".prop_map(Value::CharArray),
        proptest::collection::vec(any::<u8>(), 0..8).prop_map(|v| Value::ByteArray(v.into())),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..4).prop_map(Value::Tuple),
            proptest::collection::vec(inner, 0..4).prop_map(Value::Bag),
        ]
    })
}

proptest! {
    /// Value ordering is a total order: reflexive-equal, antisymmetric,
    /// transitive on sampled triples.
    #[test]
    fn value_order_total(a in value(), b in value(), c in value()) {
        use std::cmp::Ordering;
        prop_assert_eq!(a.cmp(&a), Ordering::Equal);
        prop_assert_eq!(a.cmp(&b), b.cmp(&a).reverse());
        if a.cmp(&b) != Ordering::Greater && b.cmp(&c) != Ordering::Greater {
            prop_assert_ne!(a.cmp(&c), Ordering::Greater);
        }
    }

    /// Equal values hash equally.
    #[test]
    fn value_eq_implies_hash_eq(a in value()) {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let b = a.clone();
        let mut ha = DefaultHasher::new();
        let mut hb = DefaultHasher::new();
        a.hash(&mut ha);
        b.hash(&mut hb);
        prop_assert_eq!(ha.finish(), hb.finish());
    }

    /// The lexer is total: arbitrary ASCII either tokenizes or errors,
    /// never panics.
    #[test]
    fn lexer_total(input in "[ -~\n]{0,200}") {
        let _ = lex(&input);
    }

    /// The parser is total on arbitrary input.
    #[test]
    fn parser_total(input in "[ -~\n]{0,200}") {
        let _ = parse_script(&input, &HashMap::new());
    }

    /// Round trip: a generated LOAD/FOREACH/STORE script parses into
    /// the expected number of statements regardless of identifier
    /// choice and parameter values.
    #[test]
    fn generated_scripts_parse(
        alias in "[A-Z]{1,4}",
        path in "[a-z/]{1,12}",
        udf in "[A-Za-z]{1,10}",
        k in 1i64..31,
    ) {
        let script = format!(
            "{alias} = LOAD '{path}' AS (line:chararray);\n\
             B = FOREACH {alias} GENERATE FLATTEN({udf}(line, $K));\n\
             STORE B INTO '{path}.out';"
        );
        let mut params = HashMap::new();
        params.insert("K".to_string(), k.to_string());
        let parsed = parse_script(&script, &params).unwrap();
        prop_assert_eq!(parsed.statements.len(), 3);
    }
}
