//! A miniature Pig-Latin engine, mirroring how MrMC-MinH is deployed.
//!
//! The paper implements its pipeline not as hand-written Hadoop jobs
//! but as a Pig script with Java UDFs (Algorithm 3). This crate
//! reproduces that layer: enough of Pig Latin to run the paper's
//! script verbatim, lowered onto the [`mrmc_mapreduce`] substrate.
//!
//! Supported subset (everything Algorithm 3 uses):
//!
//! ```text
//! A = LOAD '$INPUT' USING FastaStorage AS (readid:chararray, ...);
//! B = FOREACH A GENERATE FLATTEN(SomeUdf(field, $PARAM)) AS (x:long, y:chararray);
//! I = GROUP F ALL;
//! G = GROUP F BY field;
//! STORE K INTO '$OUTPUT';
//! ```
//!
//! * [`batch`] — the columnar data plane: typed column vectors with
//!   validity bitmaps and offset-based nested bags, behind the
//!   vectorized executor (`PigEngine::Columnar`, the default);
//! * [`value`] — Pig's dynamic data model (int, long, double,
//!   chararray, bytearray, tuple, bag) with total ordering so values
//!   can serve as shuffle keys;
//! * [`lexer`] / [`parser`] — tokenizer and recursive-descent parser
//!   with `$PARAM` substitution;
//! * [`udf`] — the `Udf` trait and registry; domain UDFs
//!   (`FastaStorage`, `CalculateMinwiseHash`, …) are registered by the
//!   `mrmc` crate, generic builtins (`TOKENIZE`, `COUNT`) live here;
//! * [`exec`] — the executor: `FOREACH` becomes a map-only job,
//!   `GROUP` a full shuffle, `LOAD`/`STORE` read and write the DFS;
//!   per-stage task statistics feed the simulated-cluster scaling
//!   model.

pub mod batch;
pub mod exec;
pub mod lexer;
pub mod parser;
pub mod udf;
pub mod value;

pub use batch::{BagCol, Bitmap, Column, ColumnBatch, VarBytes, VarBytesBuilder};
pub use exec::{PigEngine, PigRunner, RunReport};
pub use parser::{parse_script, ParseError, Script, Statement};
pub use udf::{BatchArg, BatchOut, BatchUdf, Udf, UdfRegistry};
pub use value::Value;
