//! Recursive-descent parser for the Pig-Latin subset of Algorithm 3.

use std::collections::HashMap;
use std::fmt;

use crate::lexer::{lex, LexError, Token, TokenKind};

/// A parsed script: ordered statements.
#[derive(Debug, Clone, PartialEq)]
pub struct Script {
    /// Statements in source order.
    pub statements: Vec<Statement>,
}

/// One statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `alias = <operator>;`
    Assign {
        /// Relation alias being defined.
        alias: String,
        /// The defining operator.
        op: Operator,
    },
    /// `STORE alias INTO 'path';`
    Store {
        /// Relation to persist.
        alias: String,
        /// DFS output path.
        path: String,
    },
}

/// Relational operators.
#[derive(Debug, Clone, PartialEq)]
pub enum Operator {
    /// `LOAD 'path' [USING Loader] [AS (schema)]`
    Load {
        /// DFS input path.
        path: String,
        /// Loader UDF name (defaults to the text loader).
        loader: Option<String>,
        /// Declared field names/types.
        schema: Vec<FieldDecl>,
    },
    /// `FOREACH input GENERATE item, item, ...`
    Foreach {
        /// Input relation alias.
        input: String,
        /// Generated items.
        items: Vec<GenItem>,
    },
    /// `GROUP input ALL` or `GROUP input BY field`
    Group {
        /// Input relation alias.
        input: String,
        /// Grouping mode.
        by: GroupBy,
    },
    /// `FILTER input BY lhs <op> rhs`
    Filter {
        /// Input relation alias.
        input: String,
        /// The predicate.
        cond: Cond,
    },
    /// `DISTINCT input`
    Distinct {
        /// Input relation alias.
        input: String,
    },
    /// `ORDER input BY field [ASC|DESC]`
    OrderBy {
        /// Input relation alias.
        input: String,
        /// Sort field.
        field: String,
        /// Descending order.
        desc: bool,
    },
    /// `LIMIT input n`
    Limit {
        /// Input relation alias.
        input: String,
        /// Maximum rows.
        n: usize,
    },
}

/// Comparison operators in `FILTER ... BY`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// A `FILTER` predicate: `lhs <op> rhs`.
#[derive(Debug, Clone, PartialEq)]
pub struct Cond {
    /// Left expression.
    pub lhs: Expr,
    /// Comparison.
    pub op: CmpOp,
    /// Right expression.
    pub rhs: Expr,
}

/// Grouping mode.
#[derive(Debug, Clone, PartialEq)]
pub enum GroupBy {
    /// Single global group (`GROUP x ALL`).
    All,
    /// Group by a named field.
    Field(String),
}

/// One `GENERATE` item.
#[derive(Debug, Clone, PartialEq)]
pub struct GenItem {
    /// The expression to evaluate.
    pub expr: Expr,
    /// Whether it is wrapped in `FLATTEN(...)`.
    pub flatten: bool,
    /// Optional `AS (...)` field declarations.
    pub schema: Vec<FieldDecl>,
}

/// Declared output field.
#[derive(Debug, Clone, PartialEq)]
pub struct FieldDecl {
    /// Field name.
    pub name: String,
    /// Optional Pig type annotation.
    pub ty: Option<String>,
}

/// Expressions inside `GENERATE` / UDF arguments.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Reference to a field of the current relation.
    Field(String),
    /// `Relation.Field` cross-relation reference (Algorithm 3's `I.F`).
    Dotted {
        /// Referenced relation alias.
        relation: String,
        /// Field within that relation.
        field: String,
    },
    /// UDF invocation.
    Udf {
        /// UDF name as written.
        name: String,
        /// Argument expressions.
        args: Vec<Expr>,
    },
    /// Integer literal.
    LitLong(i64),
    /// Float literal.
    LitDouble(f64),
    /// String literal.
    LitString(String),
}

/// Parse failure.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// 1-based line.
    pub line: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.message)
    }
}
impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            line: e.line,
            message: e.message,
        }
    }
}

/// Substitute `$NAME` parameters (longest name first so `$IN` does not
/// clobber `$INPUT`), then lex and parse.
pub fn parse_script(source: &str, params: &HashMap<String, String>) -> Result<Script, ParseError> {
    let mut keys: Vec<&String> = params.keys().collect();
    keys.sort_by_key(|k| std::cmp::Reverse(k.len()));
    let mut text = source.to_string();
    for k in keys {
        text = text.replace(&format!("${k}"), &params[k]);
    }
    if let Some(pos) = text.find('$') {
        let line = text[..pos].matches('\n').count() + 1;
        let tail: String = text[pos..].chars().take(16).collect();
        return Err(ParseError {
            line,
            message: format!("unbound parameter near {tail:?}"),
        });
    }
    let tokens = lex(&text)?;
    Parser { tokens, pos: 0 }.script()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&TokenKind> {
        self.tokens.get(self.pos).map(|t| &t.kind)
    }

    fn line(&self) -> usize {
        self.tokens
            .get(self.pos.min(self.tokens.len().saturating_sub(1)))
            .map(|t| t.line)
            .unwrap_or(0)
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            line: self.line(),
            message: message.into(),
        }
    }

    fn next(&mut self) -> Option<TokenKind> {
        let t = self.tokens.get(self.pos).cloned();
        self.pos += 1;
        t.map(|t| t.kind)
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<(), ParseError> {
        match self.next() {
            Some(k) if &k == kind => Ok(()),
            Some(k) => Err(ParseError {
                line: self.tokens[self.pos - 1].line,
                message: format!("expected {kind}, found {k}"),
            }),
            None => Err(self.err(format!("expected {kind}, found end of input"))),
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.next() {
            Some(TokenKind::Ident(s)) => Ok(s),
            Some(k) => Err(ParseError {
                line: self.tokens[self.pos - 1].line,
                message: format!("expected identifier, found {k}"),
            }),
            None => Err(self.err("expected identifier, found end of input")),
        }
    }

    fn keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        let id = self.ident()?;
        if id.eq_ignore_ascii_case(kw) {
            Ok(())
        } else {
            Err(ParseError {
                line: self.tokens[self.pos - 1].line,
                message: format!("expected keyword {kw}, found {id}"),
            })
        }
    }

    fn peek_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(TokenKind::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    fn string(&mut self) -> Result<String, ParseError> {
        match self.next() {
            Some(TokenKind::Str(s)) => Ok(s),
            Some(k) => Err(ParseError {
                line: self.tokens[self.pos - 1].line,
                message: format!("expected string literal, found {k}"),
            }),
            None => Err(self.err("expected string literal, found end of input")),
        }
    }

    fn script(mut self) -> Result<Script, ParseError> {
        let mut statements = Vec::new();
        while self.peek().is_some() {
            statements.push(self.statement()?);
        }
        Ok(Script { statements })
    }

    fn statement(&mut self) -> Result<Statement, ParseError> {
        if self.peek_keyword("STORE") {
            self.keyword("STORE")?;
            let alias = self.ident()?;
            self.keyword("INTO")?;
            let path = self.string()?;
            self.expect(&TokenKind::Semi)?;
            return Ok(Statement::Store { alias, path });
        }
        let alias = self.ident()?;
        self.expect(&TokenKind::Equals)?;
        let op = if self.peek_keyword("LOAD") {
            self.load()?
        } else if self.peek_keyword("FOREACH") {
            self.foreach()?
        } else if self.peek_keyword("GROUP") {
            self.group()?
        } else if self.peek_keyword("FILTER") {
            self.filter()?
        } else if self.peek_keyword("DISTINCT") {
            self.keyword("DISTINCT")?;
            Operator::Distinct {
                input: self.ident()?,
            }
        } else if self.peek_keyword("ORDER") {
            self.order_by()?
        } else if self.peek_keyword("LIMIT") {
            self.keyword("LIMIT")?;
            let input = self.ident()?;
            let n = match self.next() {
                Some(TokenKind::Int(v)) if v >= 0 => v as usize,
                other => {
                    return Err(self.err(format!(
                        "LIMIT needs a non-negative integer, found {other:?}"
                    )))
                }
            };
            Operator::Limit { input, n }
        } else {
            return Err(self.err("expected LOAD, FOREACH, GROUP, FILTER, DISTINCT, ORDER or LIMIT"));
        };
        self.expect(&TokenKind::Semi)?;
        Ok(Statement::Assign { alias, op })
    }

    fn load(&mut self) -> Result<Operator, ParseError> {
        self.keyword("LOAD")?;
        let path = self.string()?;
        let mut loader = None;
        if self.peek_keyword("USING") {
            self.keyword("USING")?;
            loader = Some(self.ident()?);
            // Optional loader args `Loader('a', 'b')` — accepted and
            // ignored (our loaders take no constructor args).
            if matches!(self.peek(), Some(TokenKind::LParen)) {
                let mut depth = 0usize;
                loop {
                    match self.next() {
                        Some(TokenKind::LParen) => depth += 1,
                        Some(TokenKind::RParen) => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        Some(_) => {}
                        None => return Err(self.err("unterminated loader arguments")),
                    }
                }
            }
        }
        let schema = if self.peek_keyword("AS") {
            self.keyword("AS")?;
            self.schema()?
        } else {
            Vec::new()
        };
        Ok(Operator::Load {
            path,
            loader,
            schema,
        })
    }

    fn foreach(&mut self) -> Result<Operator, ParseError> {
        self.keyword("FOREACH")?;
        let input = self.ident()?;
        self.keyword("GENERATE")?;
        let mut items = vec![self.gen_item()?];
        while matches!(self.peek(), Some(TokenKind::Comma)) {
            self.expect(&TokenKind::Comma)?;
            items.push(self.gen_item()?);
        }
        Ok(Operator::Foreach { input, items })
    }

    fn gen_item(&mut self) -> Result<GenItem, ParseError> {
        let flatten = self.peek_keyword("FLATTEN");
        let expr = if flatten {
            self.keyword("FLATTEN")?;
            self.expect(&TokenKind::LParen)?;
            let e = self.expr()?;
            self.expect(&TokenKind::RParen)?;
            e
        } else {
            self.expr()?
        };
        let schema = if self.peek_keyword("AS") {
            self.keyword("AS")?;
            self.schema()?
        } else {
            Vec::new()
        };
        Ok(GenItem {
            expr,
            flatten,
            schema,
        })
    }

    fn filter(&mut self) -> Result<Operator, ParseError> {
        self.keyword("FILTER")?;
        let input = self.ident()?;
        self.keyword("BY")?;
        let lhs = self.expr()?;
        let op = match self.next() {
            Some(TokenKind::EqEq) => CmpOp::Eq,
            Some(TokenKind::NotEq) => CmpOp::Ne,
            Some(TokenKind::Lt) => CmpOp::Lt,
            Some(TokenKind::Le) => CmpOp::Le,
            Some(TokenKind::Gt) => CmpOp::Gt,
            Some(TokenKind::Ge) => CmpOp::Ge,
            other => {
                return Err(self.err(format!("expected a comparison operator, found {other:?}")))
            }
        };
        let rhs = self.expr()?;
        Ok(Operator::Filter {
            input,
            cond: Cond { lhs, op, rhs },
        })
    }

    fn order_by(&mut self) -> Result<Operator, ParseError> {
        self.keyword("ORDER")?;
        let input = self.ident()?;
        self.keyword("BY")?;
        let field = self.ident()?;
        let desc = if self.peek_keyword("DESC") {
            self.keyword("DESC")?;
            true
        } else {
            if self.peek_keyword("ASC") {
                self.keyword("ASC")?;
            }
            false
        };
        Ok(Operator::OrderBy { input, field, desc })
    }

    fn group(&mut self) -> Result<Operator, ParseError> {
        self.keyword("GROUP")?;
        let input = self.ident()?;
        if self.peek_keyword("ALL") {
            self.keyword("ALL")?;
            Ok(Operator::Group {
                input,
                by: GroupBy::All,
            })
        } else {
            self.keyword("BY")?;
            let field = self.ident()?;
            Ok(Operator::Group {
                input,
                by: GroupBy::Field(field),
            })
        }
    }

    fn expr(&mut self) -> Result<Expr, ParseError> {
        match self.next() {
            Some(TokenKind::Int(v)) => Ok(Expr::LitLong(v)),
            Some(TokenKind::Float(v)) => Ok(Expr::LitDouble(v)),
            Some(TokenKind::Str(s)) => Ok(Expr::LitString(s)),
            Some(TokenKind::Ident(name)) => match self.peek() {
                Some(TokenKind::LParen) => {
                    self.expect(&TokenKind::LParen)?;
                    let mut args = Vec::new();
                    if !matches!(self.peek(), Some(TokenKind::RParen)) {
                        args.push(self.expr()?);
                        while matches!(self.peek(), Some(TokenKind::Comma)) {
                            self.expect(&TokenKind::Comma)?;
                            args.push(self.expr()?);
                        }
                    }
                    self.expect(&TokenKind::RParen)?;
                    Ok(Expr::Udf { name, args })
                }
                Some(TokenKind::Dot) => {
                    self.expect(&TokenKind::Dot)?;
                    let field = self.ident()?;
                    Ok(Expr::Dotted {
                        relation: name,
                        field,
                    })
                }
                _ => Ok(Expr::Field(name)),
            },
            Some(k) => Err(ParseError {
                line: self.tokens[self.pos - 1].line,
                message: format!("expected expression, found {k}"),
            }),
            None => Err(self.err("expected expression, found end of input")),
        }
    }

    fn schema(&mut self) -> Result<Vec<FieldDecl>, ParseError> {
        self.expect(&TokenKind::LParen)?;
        let mut fields = vec![self.field_decl()?];
        while matches!(self.peek(), Some(TokenKind::Comma)) {
            self.expect(&TokenKind::Comma)?;
            fields.push(self.field_decl()?);
        }
        self.expect(&TokenKind::RParen)?;
        Ok(fields)
    }

    fn field_decl(&mut self) -> Result<FieldDecl, ParseError> {
        let name = self.ident()?;
        let ty = if matches!(self.peek(), Some(TokenKind::Colon)) {
            self.expect(&TokenKind::Colon)?;
            Some(self.ident()?)
        } else {
            None
        };
        Ok(FieldDecl { name, ty })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> Script {
        parse_script(src, &HashMap::new()).unwrap()
    }

    #[test]
    fn parses_load_with_loader_and_schema() {
        let s = parse("A = LOAD 'in.fa' USING FastaStorage AS (readid:chararray, d:int, seq:bytearray, header:chararray);");
        match &s.statements[0] {
            Statement::Assign {
                alias,
                op:
                    Operator::Load {
                        path,
                        loader,
                        schema,
                    },
            } => {
                assert_eq!(alias, "A");
                assert_eq!(path, "in.fa");
                assert_eq!(loader.as_deref(), Some("FastaStorage"));
                assert_eq!(schema.len(), 4);
                assert_eq!(schema[0].name, "readid");
                assert_eq!(schema[0].ty.as_deref(), Some("chararray"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_foreach_flatten_udf() {
        let s = parse(
            "B = FOREACH A GENERATE FLATTEN(StringGenerator(seq, readid)) AS (seq:chararray, seqid:chararray);",
        );
        match &s.statements[0] {
            Statement::Assign {
                op: Operator::Foreach { input, items },
                ..
            } => {
                assert_eq!(input, "A");
                assert_eq!(items.len(), 1);
                assert!(items[0].flatten);
                match &items[0].expr {
                    Expr::Udf { name, args } => {
                        assert_eq!(name, "StringGenerator");
                        assert_eq!(
                            args,
                            &vec![Expr::Field("seq".into()), Expr::Field("readid".into())]
                        );
                    }
                    other => panic!("unexpected {other:?}"),
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_group_all_and_by() {
        let s = parse("I = GROUP F ALL; G = GROUP F BY seqid;");
        assert_eq!(
            s.statements[0],
            Statement::Assign {
                alias: "I".into(),
                op: Operator::Group {
                    input: "F".into(),
                    by: GroupBy::All
                }
            }
        );
        assert_eq!(
            s.statements[1],
            Statement::Assign {
                alias: "G".into(),
                op: Operator::Group {
                    input: "F".into(),
                    by: GroupBy::Field("seqid".into())
                }
            }
        );
    }

    #[test]
    fn parses_store() {
        let s = parse("STORE K INTO '/out1';");
        assert_eq!(
            s.statements[0],
            Statement::Store {
                alias: "K".into(),
                path: "/out1".into()
            }
        );
    }

    #[test]
    fn parses_dotted_reference_and_numeric_args() {
        let s = parse("J = FOREACH F GENERATE FLATTEN(CalcSim(minwise, I.F, 100, 0.95));");
        match &s.statements[0] {
            Statement::Assign {
                op: Operator::Foreach { items, .. },
                ..
            } => match &items[0].expr {
                Expr::Udf { args, .. } => {
                    assert_eq!(
                        args[1],
                        Expr::Dotted {
                            relation: "I".into(),
                            field: "F".into()
                        }
                    );
                    assert_eq!(args[2], Expr::LitLong(100));
                    assert_eq!(args[3], Expr::LitDouble(0.95));
                }
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn param_substitution() {
        let mut params = HashMap::new();
        params.insert("INPUT".to_string(), "/data/x.fa".to_string());
        params.insert("KMER".to_string(), "5".to_string());
        let s = parse_script(
            "A = LOAD '$INPUT'; C = FOREACH A GENERATE FLATTEN(K(seq, $KMER));",
            &params,
        )
        .unwrap();
        match &s.statements[0] {
            Statement::Assign {
                op: Operator::Load { path, .. },
                ..
            } => {
                assert_eq!(path, "/data/x.fa")
            }
            other => panic!("unexpected {other:?}"),
        }
        match &s.statements[1] {
            Statement::Assign {
                op: Operator::Foreach { items, .. },
                ..
            } => match &items[0].expr {
                Expr::Udf { args, .. } => assert_eq!(args[1], Expr::LitLong(5)),
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unbound_param_is_error() {
        let err = parse_script("A = LOAD '$NOPE';", &HashMap::new()).unwrap_err();
        assert!(err.message.contains("unbound parameter"), "{err}");
    }

    #[test]
    fn keywords_case_insensitive() {
        let s = parse("a = load 'x'; store a into 'y';");
        assert_eq!(s.statements.len(), 2);
    }

    #[test]
    fn missing_semicolon_is_error() {
        assert!(parse_script("A = LOAD 'x'", &HashMap::new()).is_err());
    }

    #[test]
    fn multiple_generate_items() {
        let s = parse("F = FOREACH E GENERATE FLATTEN(minwise), FLATTEN(seqid3);");
        match &s.statements[0] {
            Statement::Assign {
                op: Operator::Foreach { items, .. },
                ..
            } => {
                assert_eq!(items.len(), 2);
                assert!(items.iter().all(|i| i.flatten));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn full_algorithm3_script_parses() {
        let mut params = HashMap::new();
        for (k, v) in [
            ("INPUT", "/in.fa"),
            ("KMER", "5"),
            ("NUMHASH", "100"),
            ("DIV", "1048583"),
            ("LINK", "'average'"),
            ("CUTOFF", "0.95"),
            ("OUTPUT1", "/out/h"),
            ("OUTPUT2", "/out/g"),
        ] {
            params.insert(k.to_string(), v.to_string());
        }
        let script = r#"
            A = LOAD '$INPUT' USING FastaStorage AS (readid:chararray, d:int, seq:bytearray, header:chararray);
            B = FOREACH A GENERATE FLATTEN(StringGenerator(seq, readid)) AS (seq:chararray, seqid:chararray);
            C = FOREACH B GENERATE FLATTEN(TranslateToKmer(seq, seqid, $KMER)) AS (seqkmer:long, seqid2:chararray);
            E = FOREACH C GENERATE FLATTEN(CalculateMinwiseHash(seqkmer, seqid2, $NUMHASH, $DIV)) AS (minwise:long, seqid3:chararray);
            F = FOREACH E GENERATE FLATTEN(minwise), FLATTEN(seqid3);
            I = GROUP F ALL;
            J = FOREACH F GENERATE FLATTEN(CalculatePairwiseSimilarity(minwise, I.F)) AS (similaritymatrix:double);
            K = FOREACH J GENERATE FLATTEN(AgglomerativeHierarchicalClustering(similaritymatrix, $LINK, $NUMHASH, $CUTOFF)) AS (clusterlabel:int);
            L = FOREACH I GENERATE FLATTEN(GreedyClustering(I.F, $NUMHASH, $CUTOFF)) AS (clusterlabel:int);
            STORE K INTO '$OUTPUT1';
            STORE L INTO '$OUTPUT2';
        "#;
        let s = parse_script(script, &params).unwrap();
        assert_eq!(s.statements.len(), 11);
    }
}
