//! Pig's dynamic data model.
//!
//! A [`Value`] is one of Pig's scalar or composite types. Doubles are
//! compared and hashed by bit pattern so `Value` admits a *total*
//! order and can be used directly as a Map-Reduce shuffle key (NaN is
//! equal to itself; the engine never produces NaN keys, but totality
//! keeps the invariants simple).

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

use bytes::Bytes;

/// One Pig value.
#[derive(Debug, Clone)]
pub enum Value {
    /// Absent value (Pig's null).
    Null,
    /// 32-bit integer (`int`).
    Int(i32),
    /// 64-bit integer (`long`).
    Long(i64),
    /// IEEE double (`double`).
    Double(f64),
    /// UTF-8 string (`chararray`).
    CharArray(String),
    /// Raw bytes (`bytearray`). [`Bytes`] is a cheaply cloneable
    /// `Arc<[u8]>` window, so a bytearray sliced out of a loaded file
    /// (or out of a column) shares the backing store instead of
    /// copying — clones are O(1) and LOAD hands records to UDFs
    /// without a per-record copy.
    ByteArray(Bytes),
    /// Ordered fields (`tuple`).
    Tuple(Vec<Value>),
    /// Collection of tuples (`bag`).
    Bag(Vec<Value>),
}

impl Value {
    /// Pig type name for diagnostics.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Int(_) => "int",
            Value::Long(_) => "long",
            Value::Double(_) => "double",
            Value::CharArray(_) => "chararray",
            Value::ByteArray(_) => "bytearray",
            Value::Tuple(_) => "tuple",
            Value::Bag(_) => "bag",
        }
    }

    /// Build a tuple value.
    pub fn tuple(fields: impl Into<Vec<Value>>) -> Value {
        Value::Tuple(fields.into())
    }

    /// Build a bag value.
    pub fn bag(tuples: impl Into<Vec<Value>>) -> Value {
        Value::Bag(tuples.into())
    }

    /// Integer coercion (int/long accepted).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(i64::from(*v)),
            Value::Long(v) => Some(*v),
            _ => None,
        }
    }

    /// Float coercion (int/long/double accepted).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(f64::from(*v)),
            Value::Long(v) => Some(*v as f64),
            Value::Double(v) => Some(*v),
            _ => None,
        }
    }

    /// String view for chararrays.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::CharArray(s) => Some(s),
            _ => None,
        }
    }

    /// Byte view for bytearrays and chararrays.
    pub fn as_bytes(&self) -> Option<&[u8]> {
        match self {
            Value::ByteArray(b) => Some(b),
            Value::CharArray(s) => Some(s.as_bytes()),
            _ => None,
        }
    }

    /// Tuple fields, when this is a tuple.
    pub fn as_tuple(&self) -> Option<&[Value]> {
        match self {
            Value::Tuple(t) => Some(t),
            _ => None,
        }
    }

    /// Bag elements, when this is a bag.
    pub fn as_bag(&self) -> Option<&[Value]> {
        match self {
            Value::Bag(b) => Some(b),
            _ => None,
        }
    }

    /// Variant rank for cross-type total ordering.
    fn rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Int(_) => 1,
            Value::Long(_) => 2,
            Value::Double(_) => 3,
            Value::CharArray(_) => 4,
            Value::ByteArray(_) => 5,
            Value::Tuple(_) => 6,
            Value::Bag(_) => 7,
        }
    }
}

impl mrmc_mapreduce::ShuffleSized for Value {
    /// Serialized width as Pig's binary tuple format would write it: a
    /// one-byte type tag plus the payload (length-prefixed for
    /// variable-width types). This is what `SHUFFLE_BYTES` charges when
    /// a job shuffles dynamic values, instead of the shallow enum width.
    fn shuffle_size(&self) -> usize {
        1 + match self {
            Value::Null => 0,
            Value::Int(_) => 4,
            Value::Long(_) | Value::Double(_) => 8,
            Value::CharArray(s) => 4 + s.len(),
            Value::ByteArray(b) => 4 + b.len(),
            Value::Tuple(vs) | Value::Bag(vs) => {
                4 + vs
                    .iter()
                    .map(mrmc_mapreduce::ShuffleSized::shuffle_size)
                    .sum::<usize>()
            }
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Value) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Value) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Int(a), Int(b)) => a.cmp(b),
            (Long(a), Long(b)) => a.cmp(b),
            // total_cmp gives doubles a total order (NaN included).
            (Double(a), Double(b)) => a.total_cmp(b),
            (CharArray(a), CharArray(b)) => a.cmp(b),
            (ByteArray(a), ByteArray(b)) => a.cmp(b),
            (Tuple(a), Tuple(b)) | (Bag(a), Bag(b)) => a.cmp(b),
            _ => self.rank().cmp(&other.rank()),
        }
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.rank().hash(state);
        match self {
            Value::Null => {}
            Value::Int(v) => v.hash(state),
            Value::Long(v) => v.hash(state),
            Value::Double(v) => v.to_bits().hash(state),
            Value::CharArray(s) => s.hash(state),
            Value::ByteArray(b) => b.hash(state),
            Value::Tuple(t) | Value::Bag(t) => t.hash(state),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, ""),
            Value::Int(v) => write!(f, "{v}"),
            Value::Long(v) => write!(f, "{v}"),
            Value::Double(v) => write!(f, "{v}"),
            Value::CharArray(s) => write!(f, "{s}"),
            Value::ByteArray(b) => write!(f, "{}", String::from_utf8_lossy(b)),
            Value::Tuple(t) => {
                write!(f, "(")?;
                for (i, v) in t.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, ")")
            }
            Value::Bag(b) => {
                write!(f, "{{")?;
                for (i, v) in b.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn coercions() {
        assert_eq!(Value::Int(3).as_i64(), Some(3));
        assert_eq!(Value::Long(9).as_i64(), Some(9));
        assert_eq!(Value::Double(2.5).as_i64(), None);
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
        assert_eq!(Value::CharArray("x".into()).as_str(), Some("x"));
        assert_eq!(
            Value::ByteArray(vec![65].into()).as_bytes(),
            Some(&b"A"[..])
        );
        assert_eq!(Value::CharArray("A".into()).as_bytes(), Some(&b"A"[..]));
    }

    #[test]
    fn ordering_within_types() {
        assert!(Value::Int(1) < Value::Int(2));
        assert!(Value::CharArray("a".into()) < Value::CharArray("b".into()));
        assert!(Value::Double(1.0) < Value::Double(1.5));
    }

    #[test]
    fn ordering_across_types_is_total() {
        let vals = [
            Value::Null,
            Value::Int(0),
            Value::Long(0),
            Value::Double(0.0),
            Value::CharArray(String::new()),
            Value::ByteArray(Bytes::new()),
            Value::tuple([]),
            Value::bag([]),
        ];
        for (i, a) in vals.iter().enumerate() {
            for (j, b) in vals.iter().enumerate() {
                assert_eq!(a.cmp(b), i.cmp(&j));
            }
        }
    }

    #[test]
    fn eq_consistent_with_hash() {
        let a = Value::tuple([Value::Int(1), Value::CharArray("x".into())]);
        let b = Value::tuple([Value::Int(1), Value::CharArray("x".into())]);
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn nan_equals_itself() {
        let a = Value::Double(f64::NAN);
        let b = Value::Double(f64::NAN);
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Int(3).to_string(), "3");
        assert_eq!(
            Value::tuple([Value::Int(1), Value::CharArray("a".into())]).to_string(),
            "(1,a)"
        );
        assert_eq!(
            Value::bag([Value::tuple([Value::Int(1)])]).to_string(),
            "{(1)}"
        );
    }

    #[test]
    fn type_names() {
        assert_eq!(Value::Long(1).type_name(), "long");
        assert_eq!(Value::bag([]).type_name(), "bag");
    }
}
