//! Columnar batches: the typed data plane the vectorized executor
//! moves instead of boxed [`Value`] rows.
//!
//! A [`ColumnBatch`] stores a relation chunk as one [`Column`] per
//! tuple field. Columns are typed vectors (int/long/double plus
//! offset-based layouts for chararray/bytearray) with validity
//! bitmaps for nulls; nested bags are an offsets array over a child
//! batch ([`BagCol`]); anything that does not fit a single type
//! degrades honestly to a boxed [`Column::Dyn`] column rather than
//! coercing. Ragged tuples (rows of differing arity — legal in the
//! row engine, which stores plain `Vec<Value>` tuples) are captured
//! by an optional per-row width vector.
//!
//! The invariant every constructor and kernel preserves:
//! `ColumnBatch::from_rows(rows).to_rows() == rows` bit-for-bit —
//! including the exact `Value` variant of every field, null
//! positions, bag element order and tuple arity. The vectorized
//! executor leans on this to stay provably identical to the
//! row-at-a-time engine (see `tests/columnar.rs`).

use bytes::Bytes;
use mrmc_mapreduce::ShuffleSized;

use crate::value::Value;

// ---------------------------------------------------------------- bitmap

/// Packed validity bitmap: bit `i` set ⇒ row `i` holds a value,
/// cleared ⇒ the row is [`Value::Null`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl Bitmap {
    /// A bitmap of `len` bits, all set to `valid`.
    pub fn new(len: usize, valid: bool) -> Bitmap {
        let fill = if valid { u64::MAX } else { 0 };
        Bitmap {
            words: vec![fill; len.div_ceil(64)],
            len,
        }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no bits are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Read bit `i`.
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Write bit `i`.
    pub fn set(&mut self, i: usize, v: bool) {
        debug_assert!(i < self.len);
        let mask = 1u64 << (i % 64);
        if v {
            self.words[i / 64] |= mask;
        } else {
            self.words[i / 64] &= !mask;
        }
    }

    /// Append one bit.
    pub fn push(&mut self, v: bool) {
        if self.len.is_multiple_of(64) {
            self.words.push(0);
        }
        self.len += 1;
        self.set(self.len - 1, v);
    }

    /// True when every bit is set.
    pub fn all_set(&self) -> bool {
        (0..self.len).all(|i| self.get(i))
    }

    /// Bits selected by `idx`, in order.
    pub fn gather(&self, idx: &[u32]) -> Bitmap {
        let mut out = Bitmap::new(idx.len(), false);
        for (o, &i) in idx.iter().enumerate() {
            out.set(o, self.get(i as usize));
        }
        out
    }

    /// Bits `start..start + len`.
    pub fn slice(&self, start: usize, len: usize) -> Bitmap {
        let mut out = Bitmap::new(len, false);
        for o in 0..len {
            out.set(o, self.get(start + o));
        }
        out
    }
}

/// Read a validity slot under the `None = all valid` convention.
fn valid_at(validity: &Option<Bitmap>, i: usize) -> bool {
    validity.as_ref().is_none_or(|b| b.get(i))
}

/// Gather/slice an optional validity, dropping it when all-set.
fn normalize(validity: Option<Bitmap>) -> Option<Bitmap> {
    match validity {
        Some(b) if b.all_set() => None,
        other => other,
    }
}

// ---------------------------------------------------------------- varbytes

/// Variable-width byte storage: `offsets[i]..offsets[i + 1]` into a
/// shared [`Bytes`] buffer. Slicing a stored entry back out is O(1)
/// and shares the buffer — a bytearray column built over a loaded
/// file never copies record bytes.
#[derive(Debug, Clone, Default)]
pub struct VarBytes {
    offsets: Vec<u32>,
    data: Bytes,
}

impl VarBytes {
    /// Construct from raw parts (`offsets.len() == rows + 1`,
    /// monotone, last offset ≤ `data.len()`).
    pub fn from_parts(offsets: Vec<u32>, data: Bytes) -> VarBytes {
        debug_assert!(!offsets.is_empty());
        debug_assert!(offsets.windows(2).all(|w| w[0] <= w[1]));
        debug_assert!(*offsets.last().unwrap() as usize <= data.len());
        VarBytes { offsets, data }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// True when no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Borrow entry `i`.
    pub fn get(&self, i: usize) -> &[u8] {
        &self.data[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Entry `i` as a zero-copy [`Bytes`] window.
    pub fn get_bytes(&self, i: usize) -> Bytes {
        self.data
            .slice(self.offsets[i] as usize..self.offsets[i + 1] as usize)
    }

    /// Width of entry `i`.
    pub fn byte_len(&self, i: usize) -> usize {
        (self.offsets[i + 1] - self.offsets[i]) as usize
    }

    /// Entries selected by `idx` (copies the selected bytes).
    pub fn gather(&self, idx: &[u32]) -> VarBytes {
        let mut b = VarBytesBuilder::with_capacity(idx.len());
        for &i in idx {
            b.push(self.get(i as usize));
        }
        b.finish()
    }

    /// Entries `start..start + len`; shares the data buffer.
    pub fn slice(&self, start: usize, len: usize) -> VarBytes {
        let base = self.offsets[start];
        let offsets = self.offsets[start..=start + len]
            .iter()
            .map(|&o| o - base)
            .collect();
        let data = self
            .data
            .slice(base as usize..self.offsets[start + len] as usize);
        VarBytes { offsets, data }
    }
}

/// Incremental [`VarBytes`] construction.
#[derive(Debug, Default)]
pub struct VarBytesBuilder {
    offsets: Vec<u32>,
    data: Vec<u8>,
}

impl VarBytesBuilder {
    /// Builder pre-sized for `rows` entries.
    pub fn with_capacity(rows: usize) -> VarBytesBuilder {
        let mut offsets = Vec::with_capacity(rows + 1);
        offsets.push(0);
        VarBytesBuilder {
            offsets,
            data: Vec::new(),
        }
    }

    /// Append one entry.
    pub fn push(&mut self, bytes: &[u8]) {
        self.data.extend_from_slice(bytes);
        self.offsets.push(self.data.len() as u32);
    }

    /// Entries appended so far.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// True when nothing was appended.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Freeze into shared storage.
    pub fn finish(self) -> VarBytes {
        if self.offsets.is_empty() {
            return VarBytes {
                offsets: vec![0],
                data: Bytes::new(),
            };
        }
        VarBytes {
            offsets: self.offsets,
            data: self.data.into(),
        }
    }
}

// ---------------------------------------------------------------- columns

/// One typed column of a [`ColumnBatch`].
#[derive(Debug, Clone)]
pub enum Column {
    /// `int` values.
    Int {
        /// Packed values (`0` in null slots).
        data: Vec<i32>,
        /// Null positions (`None` = all valid).
        validity: Option<Bitmap>,
    },
    /// `long` values.
    Long {
        /// Packed values.
        data: Vec<i64>,
        /// Null positions.
        validity: Option<Bitmap>,
    },
    /// `double` values.
    Double {
        /// Packed values.
        data: Vec<f64>,
        /// Null positions.
        validity: Option<Bitmap>,
    },
    /// `chararray` values (UTF-8 in a [`VarBytes`]).
    Str {
        /// Offset-indexed string storage.
        data: VarBytes,
        /// Null positions.
        validity: Option<Bitmap>,
    },
    /// `bytearray` values.
    Bin {
        /// Offset-indexed byte storage.
        data: VarBytes,
        /// Null positions.
        validity: Option<Bitmap>,
    },
    /// Nested bags (offsets over a child batch).
    Bag(BagCol),
    /// Fallback for mixed-type or tuple-valued columns: boxed values,
    /// exactly as the row engine stores them.
    Dyn(Vec<Value>),
}

/// A bag column: row `i` holds elements
/// `offsets[i]..offsets[i + 1]` of the child batch. When
/// `tuple_elems` is set each element is a tuple of the child batch's
/// fields (the common Pig shape); otherwise elements are bare values
/// stored in the child's single column (e.g. a minwise sketch as a
/// bag of longs).
#[derive(Debug, Clone)]
pub struct BagCol {
    /// Row boundaries into the child batch (`rows + 1` entries).
    pub offsets: Vec<u32>,
    /// Element storage.
    pub elems: Box<ColumnBatch>,
    /// Elements are tuples of the child's fields vs bare values.
    pub tuple_elems: bool,
    /// Null positions (a null slot is `Value::Null`, not an empty bag).
    pub validity: Option<Bitmap>,
}

impl BagCol {
    /// Construct from parts, asserting the offsets cover the child.
    pub fn new(
        offsets: Vec<u32>,
        elems: ColumnBatch,
        tuple_elems: bool,
        validity: Option<Bitmap>,
    ) -> BagCol {
        debug_assert!(!offsets.is_empty());
        debug_assert!(offsets.windows(2).all(|w| w[0] <= w[1]));
        debug_assert_eq!(*offsets.last().unwrap() as usize, elems.rows());
        debug_assert!(tuple_elems || elems.num_cols() <= 1);
        BagCol {
            offsets,
            elems: Box::new(elems),
            tuple_elems,
            validity,
        }
    }

    /// Number of rows (bags).
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// True when the column holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Element count of bag `i`.
    pub fn bag_len(&self, i: usize) -> usize {
        (self.offsets[i + 1] - self.offsets[i]) as usize
    }

    /// Element `e` (child-batch row index) as a [`Value`].
    pub fn elem_value(&self, e: usize) -> Value {
        if self.tuple_elems {
            self.elems.row_value(e)
        } else {
            self.elems.value_at(e, 0)
        }
    }

    /// Bag `i` as a [`Value`] (`Null` when invalid).
    fn value_at(&self, i: usize) -> Value {
        if !valid_at(&self.validity, i) {
            return Value::Null;
        }
        let lo = self.offsets[i] as usize;
        let hi = self.offsets[i + 1] as usize;
        Value::Bag((lo..hi).map(|e| self.elem_value(e)).collect())
    }

    fn gather(&self, idx: &[u32]) -> BagCol {
        let mut offsets = Vec::with_capacity(idx.len() + 1);
        offsets.push(0u32);
        let mut elem_idx = Vec::new();
        for &i in idx {
            let i = i as usize;
            for e in self.offsets[i]..self.offsets[i + 1] {
                elem_idx.push(e);
            }
            offsets.push(elem_idx.len() as u32);
        }
        BagCol {
            offsets,
            elems: Box::new(self.elems.gather(&elem_idx)),
            tuple_elems: self.tuple_elems,
            validity: normalize(self.validity.as_ref().map(|b| b.gather(idx))),
        }
    }

    fn slice(&self, start: usize, len: usize) -> BagCol {
        let base = self.offsets[start];
        let offsets: Vec<u32> = self.offsets[start..=start + len]
            .iter()
            .map(|&o| o - base)
            .collect();
        let elems = self
            .elems
            .slice(base as usize, (self.offsets[start + len] - base) as usize);
        BagCol {
            offsets,
            elems: Box::new(elems),
            tuple_elems: self.tuple_elems,
            validity: normalize(self.validity.as_ref().map(|b| b.slice(start, len))),
        }
    }

    /// Serialized width of bag `i` under the `SHUFFLE_BYTES` pricing
    /// ([`Value::shuffle_size`] of the reconstructed value).
    fn value_shuffle_size(&self, i: usize) -> usize {
        if !valid_at(&self.validity, i) {
            return 1;
        }
        let lo = self.offsets[i] as usize;
        let hi = self.offsets[i + 1] as usize;
        let elems: usize = (lo..hi)
            .map(|e| {
                if self.tuple_elems {
                    self.elems.row_shuffle_size(e)
                } else {
                    self.elems.cols[0].value_shuffle_size(e)
                }
            })
            .sum();
        1 + 4 + elems
    }
}

impl Column {
    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            Column::Int { data, .. } => data.len(),
            Column::Long { data, .. } => data.len(),
            Column::Double { data, .. } => data.len(),
            Column::Str { data, .. } | Column::Bin { data, .. } => data.len(),
            Column::Bag(b) => b.len(),
            Column::Dyn(v) => v.len(),
        }
    }

    /// True when the column holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Row `i` reconstructed as a [`Value`], bit-identical to what
    /// the column was built from.
    pub fn value_at(&self, i: usize) -> Value {
        match self {
            Column::Int { data, validity } => {
                if valid_at(validity, i) {
                    Value::Int(data[i])
                } else {
                    Value::Null
                }
            }
            Column::Long { data, validity } => {
                if valid_at(validity, i) {
                    Value::Long(data[i])
                } else {
                    Value::Null
                }
            }
            Column::Double { data, validity } => {
                if valid_at(validity, i) {
                    Value::Double(data[i])
                } else {
                    Value::Null
                }
            }
            Column::Str { data, validity } => {
                if valid_at(validity, i) {
                    Value::CharArray(String::from_utf8_lossy(data.get(i)).into_owned())
                } else {
                    Value::Null
                }
            }
            Column::Bin { data, validity } => {
                if valid_at(validity, i) {
                    Value::ByteArray(data.get_bytes(i))
                } else {
                    Value::Null
                }
            }
            Column::Bag(b) => b.value_at(i),
            Column::Dyn(v) => v[i].clone(),
        }
    }

    /// Serialized width of row `i` (equals
    /// [`Value::shuffle_size`] of [`Column::value_at`], computed
    /// without materializing the value).
    pub fn value_shuffle_size(&self, i: usize) -> usize {
        match self {
            Column::Int { validity, .. } => {
                if valid_at(validity, i) {
                    5
                } else {
                    1
                }
            }
            Column::Long { validity, .. } | Column::Double { validity, .. } => {
                if valid_at(validity, i) {
                    9
                } else {
                    1
                }
            }
            Column::Str { data, validity } | Column::Bin { data, validity } => {
                if valid_at(validity, i) {
                    5 + data.byte_len(i)
                } else {
                    1
                }
            }
            Column::Bag(b) => b.value_shuffle_size(i),
            Column::Dyn(v) => v[i].shuffle_size(),
        }
    }

    /// An all-null column of `len` rows.
    pub fn nulls(len: usize) -> Column {
        Column::Int {
            data: vec![0; len],
            validity: Some(Bitmap::new(len, false)),
        }
    }

    /// Build a column from boxed values, sniffing the best layout:
    /// one non-null variant throughout ⇒ typed column with validity;
    /// bags of uniform element shape ⇒ [`BagCol`]; anything else ⇒
    /// [`Column::Dyn`] verbatim.
    pub fn from_values(vals: Vec<Value>) -> Column {
        #[derive(PartialEq, Clone, Copy)]
        enum Kind {
            Int,
            Long,
            Double,
            Str,
            Bin,
            Bag,
        }
        let mut kind: Option<Kind> = None;
        for v in &vals {
            let k = match v {
                Value::Null => continue,
                Value::Int(_) => Kind::Int,
                Value::Long(_) => Kind::Long,
                Value::Double(_) => Kind::Double,
                Value::CharArray(_) => Kind::Str,
                Value::ByteArray(_) => Kind::Bin,
                Value::Bag(_) => Kind::Bag,
                Value::Tuple(_) => return Column::Dyn(vals),
            };
            match kind {
                None => kind = Some(k),
                Some(prev) if prev == k => {}
                Some(_) => return Column::Dyn(vals),
            }
        }
        let len = vals.len();
        let mut validity = Bitmap::new(len, true);
        for (i, v) in vals.iter().enumerate() {
            if matches!(v, Value::Null) {
                validity.set(i, false);
            }
        }
        let validity = normalize(Some(validity));
        match kind {
            None => Column::nulls(len),
            Some(Kind::Int) => Column::Int {
                data: vals
                    .iter()
                    .map(|v| if let Value::Int(x) = v { *x } else { 0 })
                    .collect(),
                validity,
            },
            Some(Kind::Long) => Column::Long {
                data: vals
                    .iter()
                    .map(|v| if let Value::Long(x) = v { *x } else { 0 })
                    .collect(),
                validity,
            },
            Some(Kind::Double) => Column::Double {
                data: vals
                    .iter()
                    .map(|v| if let Value::Double(x) = v { *x } else { 0.0 })
                    .collect(),
                validity,
            },
            Some(Kind::Str) => {
                let mut b = VarBytesBuilder::with_capacity(len);
                for v in &vals {
                    b.push(v.as_str().map(str::as_bytes).unwrap_or_default());
                }
                // Lossy UTF-8 round-trip check: reconstruction uses
                // from_utf8_lossy, exact for the valid UTF-8 a
                // CharArray always holds.
                Column::Str {
                    data: b.finish(),
                    validity,
                }
            }
            Some(Kind::Bin) => {
                let mut b = VarBytesBuilder::with_capacity(len);
                for v in &vals {
                    if let Value::ByteArray(x) = v {
                        b.push(x);
                    } else {
                        b.push(&[]);
                    }
                }
                Column::Bin {
                    data: b.finish(),
                    validity,
                }
            }
            Some(Kind::Bag) => match bag_col_from_values(&vals, validity) {
                Some(b) => Column::Bag(b),
                None => Column::Dyn(vals),
            },
        }
    }

    /// Rows selected by `idx`, in order.
    pub fn gather(&self, idx: &[u32]) -> Column {
        match self {
            Column::Int { data, validity } => Column::Int {
                data: idx.iter().map(|&i| data[i as usize]).collect(),
                validity: normalize(validity.as_ref().map(|b| b.gather(idx))),
            },
            Column::Long { data, validity } => Column::Long {
                data: idx.iter().map(|&i| data[i as usize]).collect(),
                validity: normalize(validity.as_ref().map(|b| b.gather(idx))),
            },
            Column::Double { data, validity } => Column::Double {
                data: idx.iter().map(|&i| data[i as usize]).collect(),
                validity: normalize(validity.as_ref().map(|b| b.gather(idx))),
            },
            Column::Str { data, validity } => Column::Str {
                data: data.gather(idx),
                validity: normalize(validity.as_ref().map(|b| b.gather(idx))),
            },
            Column::Bin { data, validity } => Column::Bin {
                data: data.gather(idx),
                validity: normalize(validity.as_ref().map(|b| b.gather(idx))),
            },
            Column::Bag(b) => Column::Bag(b.gather(idx)),
            Column::Dyn(v) => Column::Dyn(idx.iter().map(|&i| v[i as usize].clone()).collect()),
        }
    }

    /// Contiguous rows `start..start + len` (cheap: byte storage is
    /// shared, only fixed-width vectors copy).
    pub fn slice(&self, start: usize, len: usize) -> Column {
        match self {
            Column::Int { data, validity } => Column::Int {
                data: data[start..start + len].to_vec(),
                validity: normalize(validity.as_ref().map(|b| b.slice(start, len))),
            },
            Column::Long { data, validity } => Column::Long {
                data: data[start..start + len].to_vec(),
                validity: normalize(validity.as_ref().map(|b| b.slice(start, len))),
            },
            Column::Double { data, validity } => Column::Double {
                data: data[start..start + len].to_vec(),
                validity: normalize(validity.as_ref().map(|b| b.slice(start, len))),
            },
            Column::Str { data, validity } => Column::Str {
                data: data.slice(start, len),
                validity: normalize(validity.as_ref().map(|b| b.slice(start, len))),
            },
            Column::Bin { data, validity } => Column::Bin {
                data: data.slice(start, len),
                validity: normalize(validity.as_ref().map(|b| b.slice(start, len))),
            },
            Column::Bag(b) => Column::Bag(b.slice(start, len)),
            Column::Dyn(v) => Column::Dyn(v[start..start + len].to_vec()),
        }
    }

    /// Concatenate columns end to end. Same variants merge natively;
    /// mixed variants degrade to [`Column::Dyn`].
    pub fn concat(parts: Vec<Column>) -> Column {
        fn same_variant(a: &Column, b: &Column) -> bool {
            std::mem::discriminant(a) == std::mem::discriminant(b)
        }
        if parts.is_empty() {
            return Column::nulls(0);
        }
        if parts.len() == 1 {
            return parts.into_iter().next().unwrap();
        }
        let uniform = parts.windows(2).all(|w| same_variant(&w[0], &w[1]));
        let bag_ok = uniform
            && match &parts[0] {
                Column::Bag(first) => parts
                    .iter()
                    .all(|p| matches!(p, Column::Bag(b) if b.tuple_elems == first.tuple_elems)),
                _ => true,
            };
        if !uniform || !bag_ok {
            let vals = parts
                .iter()
                .flat_map(|p| (0..p.len()).map(|i| p.value_at(i)))
                .collect();
            return Column::Dyn(vals);
        }
        // Values-first fallback keeps this simple for the layouts
        // where an append is not a plain extend.
        match &parts[0] {
            Column::Int { .. } | Column::Long { .. } | Column::Double { .. } => concat_fixed(parts),
            Column::Str { .. } | Column::Bin { .. } | Column::Bag(_) | Column::Dyn(_) => {
                concat_rebuild(parts)
            }
        }
    }
}

/// Concatenate fixed-width columns of one shared variant.
fn concat_fixed(parts: Vec<Column>) -> Column {
    let total: usize = parts.iter().map(Column::len).sum();
    let mut validity = Bitmap::new(total, true);
    let mut at = 0usize;
    for p in &parts {
        for i in 0..p.len() {
            let ok = match p {
                Column::Int { validity, .. }
                | Column::Long { validity, .. }
                | Column::Double { validity, .. } => valid_at(validity, i),
                _ => unreachable!(),
            };
            validity.set(at + i, ok);
        }
        at += p.len();
    }
    let validity = normalize(Some(validity));
    match &parts[0] {
        Column::Int { .. } => Column::Int {
            data: parts
                .iter()
                .flat_map(|p| match p {
                    Column::Int { data, .. } => data.iter().copied(),
                    _ => unreachable!(),
                })
                .collect(),
            validity,
        },
        Column::Long { .. } => Column::Long {
            data: parts
                .iter()
                .flat_map(|p| match p {
                    Column::Long { data, .. } => data.iter().copied(),
                    _ => unreachable!(),
                })
                .collect(),
            validity,
        },
        Column::Double { .. } => Column::Double {
            data: parts
                .iter()
                .flat_map(|p| match p {
                    Column::Double { data, .. } => data.iter().copied(),
                    _ => unreachable!(),
                })
                .collect(),
            validity,
        },
        _ => unreachable!(),
    }
}

/// Concatenate variable-width columns by rebuilding through values.
/// Str/Bin could append buffers directly; chunk concat happens once
/// per stage, so the rebuild keeps the edge cases (nested bags,
/// dyn) on one audited path.
fn concat_rebuild(parts: Vec<Column>) -> Column {
    let vals: Vec<Value> = parts
        .iter()
        .flat_map(|p| (0..p.len()).map(|i| p.value_at(i)))
        .collect();
    Column::from_values(vals)
}

/// Build a [`BagCol`] from bag-or-null values; `None` when element
/// shapes are mixed (caller falls back to `Dyn`).
fn bag_col_from_values(vals: &[Value], validity: Option<Bitmap>) -> Option<BagCol> {
    let mut offsets = Vec::with_capacity(vals.len() + 1);
    offsets.push(0u32);
    let mut elems: Vec<&Value> = Vec::new();
    for v in vals {
        if let Value::Bag(b) = v {
            elems.extend(b.iter());
        }
        offsets.push(elems.len() as u32);
    }
    let tuple_elems = match elems.iter().position(|e| matches!(e, Value::Tuple(_))) {
        Some(_) if elems.iter().all(|e| matches!(e, Value::Tuple(_))) => true,
        Some(_) => return None,
        None => false,
    };
    let child = if tuple_elems {
        let rows: Vec<Value> = elems.iter().map(|&e| e.clone()).collect();
        ColumnBatch::from_rows(&rows)?
    } else {
        let col = Column::from_values(elems.iter().map(|&e| e.clone()).collect());
        ColumnBatch::single(col)
    };
    Some(BagCol::new(offsets, child, tuple_elems, validity))
}

// ---------------------------------------------------------------- batch

/// A batch of tuples stored column-wise. `widths` captures ragged
/// tuples: `None` means every row spans all columns; `Some(w)` means
/// row `i` has `w[i]` fields (trailing columns hold padding nulls
/// that [`ColumnBatch::row_value`] drops).
#[derive(Debug, Clone, Default)]
pub struct ColumnBatch {
    cols: Vec<Column>,
    rows: usize,
    widths: Option<Vec<u32>>,
}

impl ColumnBatch {
    /// A batch over one column (each row a 1-field view).
    pub fn single(col: Column) -> ColumnBatch {
        let rows = col.len();
        ColumnBatch {
            cols: vec![col],
            rows,
            widths: None,
        }
    }

    /// Assemble from equal-length columns.
    pub fn from_cols(cols: Vec<Column>, rows: usize) -> ColumnBatch {
        debug_assert!(cols.iter().all(|c| c.len() == rows));
        ColumnBatch {
            cols,
            rows,
            widths: None,
        }
    }

    /// Assemble from columns plus explicit per-row widths.
    pub fn from_cols_ragged(cols: Vec<Column>, rows: usize, widths: Vec<u32>) -> ColumnBatch {
        debug_assert_eq!(widths.len(), rows);
        debug_assert!(widths.iter().all(|&w| w as usize <= cols.len()));
        ColumnBatch {
            cols,
            rows,
            widths: Some(widths),
        }
    }

    /// Columnarize tuple rows. Returns `None` unless **every** row is
    /// a [`Value::Tuple`] — relations of bare values stay in the row
    /// representation rather than pretending to be 1-column tuples.
    pub fn from_rows(rows: &[Value]) -> Option<ColumnBatch> {
        let tuples: Vec<&[Value]> = rows
            .iter()
            .map(|r| r.as_tuple())
            .collect::<Option<Vec<_>>>()?;
        let width = tuples.iter().map(|t| t.len()).max().unwrap_or(0);
        let ragged = tuples.iter().any(|t| t.len() != width);
        let mut cols = Vec::with_capacity(width);
        for j in 0..width {
            let vals: Vec<Value> = tuples
                .iter()
                .map(|t| t.get(j).cloned().unwrap_or(Value::Null))
                .collect();
            cols.push(Column::from_values(vals));
        }
        Some(ColumnBatch {
            cols,
            rows: rows.len(),
            widths: ragged.then(|| tuples.iter().map(|t| t.len() as u32).collect()),
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (the widest row's field count).
    pub fn num_cols(&self) -> usize {
        self.cols.len()
    }

    /// Column `j`.
    pub fn col(&self, j: usize) -> &Column {
        &self.cols[j]
    }

    /// All columns.
    pub fn cols(&self) -> &[Column] {
        &self.cols
    }

    /// Consume the batch into its columns (vectorized FLATTEN moves
    /// a gathered child batch's columns straight into the output).
    pub fn into_cols(self) -> Vec<Column> {
        self.cols
    }

    /// Field count of row `i`.
    pub fn width_of(&self, i: usize) -> usize {
        match &self.widths {
            Some(w) => w[i] as usize,
            None => self.cols.len(),
        }
    }

    /// Per-row widths when the batch is ragged.
    pub fn widths(&self) -> Option<&[u32]> {
        self.widths.as_deref()
    }

    /// Field `(row, col)` as a [`Value`] (`Null` past the row's
    /// width — the same out-of-range semantics the row engine's
    /// `row.get(i)` lookup has).
    pub fn value_at(&self, row: usize, col: usize) -> Value {
        if col >= self.cols.len() {
            return Value::Null;
        }
        self.cols[col].value_at(row)
    }

    /// Row `i` reconstructed as the original tuple value.
    pub fn row_value(&self, i: usize) -> Value {
        Value::Tuple(self.row_fields(i))
    }

    /// Row `i`'s fields (exactly `width_of(i)` of them).
    pub fn row_fields(&self, i: usize) -> Vec<Value> {
        (0..self.width_of(i))
            .map(|j| self.cols[j].value_at(i))
            .collect()
    }

    /// All rows, reconstructed.
    pub fn to_rows(&self) -> Vec<Value> {
        (0..self.rows).map(|i| self.row_value(i)).collect()
    }

    /// Serialized width of row `i`'s tuple under `SHUFFLE_BYTES`
    /// pricing — equals `self.row_value(i).shuffle_size()` without
    /// materializing the tuple. This is what the columnar GROUP's
    /// wire-size hook charges so index-shuffled rows price exactly
    /// like value-shuffled ones.
    pub fn row_shuffle_size(&self, i: usize) -> usize {
        1 + 4
            + (0..self.width_of(i))
                .map(|j| self.cols[j].value_shuffle_size(i))
                .sum::<usize>()
    }

    /// Rows selected by `idx`, in order.
    pub fn gather(&self, idx: &[u32]) -> ColumnBatch {
        ColumnBatch {
            cols: self.cols.iter().map(|c| c.gather(idx)).collect(),
            rows: idx.len(),
            widths: self
                .widths
                .as_ref()
                .map(|w| idx.iter().map(|&i| w[i as usize]).collect()),
        }
    }

    /// Contiguous rows `start..start + len`.
    pub fn slice(&self, start: usize, len: usize) -> ColumnBatch {
        ColumnBatch {
            cols: self.cols.iter().map(|c| c.slice(start, len)).collect(),
            rows: len,
            widths: self.widths.as_ref().map(|w| w[start..start + len].to_vec()),
        }
    }

    /// Concatenate batches vertically. Parts may differ in column
    /// count (ragged chunks from a fallback path); narrower parts'
    /// missing columns become padding nulls tracked by widths.
    pub fn concat(parts: Vec<ColumnBatch>) -> ColumnBatch {
        if parts.len() == 1 {
            return parts.into_iter().next().unwrap();
        }
        let rows: usize = parts.iter().map(|p| p.rows).sum();
        let width = parts.iter().map(|p| p.cols.len()).max().unwrap_or(0);
        let ragged = parts
            .iter()
            .any(|p| p.widths.is_some() || p.cols.len() < width);
        let widths = ragged.then(|| {
            parts
                .iter()
                .flat_map(|p| (0..p.rows).map(|i| p.width_of(i) as u32))
                .collect()
        });
        let mut cols = Vec::with_capacity(width);
        for j in 0..width {
            let pieces: Vec<Column> = parts
                .iter()
                .map(|p| {
                    if j < p.cols.len() {
                        p.cols[j].clone()
                    } else {
                        Column::nulls(p.rows)
                    }
                })
                .collect();
            cols.push(Column::concat(pieces));
        }
        ColumnBatch { cols, rows, widths }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(fields: impl Into<Vec<Value>>) -> Value {
        Value::Tuple(fields.into())
    }

    #[test]
    fn bitmap_roundtrip() {
        let mut b = Bitmap::new(130, true);
        assert!(b.all_set());
        b.set(0, false);
        b.set(64, false);
        b.set(129, false);
        assert!(!b.get(0) && b.get(1) && !b.get(64) && !b.get(129));
        let g = b.gather(&[0, 1, 129]);
        assert!(!g.get(0) && g.get(1) && !g.get(2));
        let s = b.slice(63, 3);
        assert!(s.get(0) && !s.get(1) && s.get(2));
    }

    #[test]
    fn varbytes_slice_shares_storage() {
        let mut b = VarBytesBuilder::with_capacity(3);
        b.push(b"abc");
        b.push(b"");
        b.push(b"xy");
        let v = b.finish();
        assert_eq!(v.get(0), b"abc");
        assert_eq!(v.get(1), b"");
        let s = v.slice(1, 2);
        assert_eq!(s.get(1), b"xy");
        let g = v.gather(&[2, 0]);
        assert_eq!(g.get(0), b"xy");
        assert_eq!(g.get(1), b"abc");
    }

    #[test]
    fn from_rows_requires_tuples() {
        assert!(ColumnBatch::from_rows(&[Value::Int(1)]).is_none());
        assert!(ColumnBatch::from_rows(&[t([Value::Int(1)]), Value::Long(2)]).is_none());
    }

    #[test]
    fn typed_columns_roundtrip() {
        let rows = vec![
            t([
                Value::Int(1),
                Value::CharArray("a".into()),
                Value::Double(0.5),
            ]),
            t([Value::Null, Value::CharArray("".into()), Value::Null]),
            t([Value::Int(-3), Value::Null, Value::Double(f64::NAN)]),
        ];
        let b = ColumnBatch::from_rows(&rows).unwrap();
        assert!(matches!(b.col(0), Column::Int { .. }));
        assert!(matches!(b.col(1), Column::Str { .. }));
        assert_eq!(b.to_rows(), rows);
    }

    #[test]
    fn mixed_column_degrades_to_dyn() {
        let rows = vec![t([Value::Int(1)]), t([Value::Long(2)])];
        let b = ColumnBatch::from_rows(&rows).unwrap();
        assert!(matches!(b.col(0), Column::Dyn(_)));
        assert_eq!(b.to_rows(), rows);
    }

    #[test]
    fn ragged_rows_keep_exact_arity() {
        let rows = vec![t([Value::Int(1), Value::Int(2)]), t([Value::Int(3)]), t([])];
        let b = ColumnBatch::from_rows(&rows).unwrap();
        assert_eq!(b.width_of(0), 2);
        assert_eq!(b.width_of(2), 0);
        // Past-width access is Null, matching `row.get(i)`.
        assert_eq!(b.value_at(1, 1), Value::Null);
        assert_eq!(b.to_rows(), rows);
        let g = b.gather(&[2, 0]);
        assert_eq!(g.to_rows(), vec![t([]), rows[0].clone()]);
    }

    #[test]
    fn bag_columns_roundtrip_both_element_shapes() {
        // Tuple elements.
        let rows = vec![
            t([Value::bag([
                t([Value::Int(1), Value::CharArray("x".into())]),
                t([Value::Int(2), Value::CharArray("y".into())]),
            ])]),
            t([Value::Null]),
            t([Value::bag([])]),
        ];
        let b = ColumnBatch::from_rows(&rows).unwrap();
        let Column::Bag(bag) = b.col(0) else {
            panic!("expected bag column")
        };
        assert!(bag.tuple_elems);
        assert_eq!(bag.bag_len(0), 2);
        assert_eq!(b.to_rows(), rows);

        // Bare elements (a minwise sketch shape).
        let rows = vec![
            t([Value::bag([Value::Long(7), Value::Long(8)])]),
            t([Value::bag([Value::Long(9)])]),
        ];
        let b = ColumnBatch::from_rows(&rows).unwrap();
        let Column::Bag(bag) = b.col(0) else {
            panic!("expected bag column")
        };
        assert!(!bag.tuple_elems);
        assert_eq!(b.to_rows(), rows);
    }

    #[test]
    fn mixed_bag_elements_degrade_to_dyn() {
        let rows = vec![t([Value::bag([t([Value::Int(1)]), Value::Long(2)])])];
        let b = ColumnBatch::from_rows(&rows).unwrap();
        assert!(matches!(b.col(0), Column::Dyn(_)));
        assert_eq!(b.to_rows(), rows);
    }

    #[test]
    fn row_shuffle_size_matches_value_pricing() {
        let rows = vec![
            t([
                Value::Int(1),
                Value::CharArray("abc".into()),
                Value::bag([t([Value::Long(1)]), t([Value::Long(2)])]),
            ]),
            t([
                Value::Null,
                Value::ByteArray(b"xyzw"[..].into()),
                Value::Null,
            ]),
            t([Value::Int(9)]),
        ];
        let b = ColumnBatch::from_rows(&rows).unwrap();
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(b.row_shuffle_size(i), row.shuffle_size(), "row {i}");
        }
    }

    #[test]
    fn gather_and_slice_preserve_nested_bags() {
        let rows: Vec<Value> = (0..6)
            .map(|i| {
                t([
                    Value::Long(i),
                    Value::bag(
                        (0..i as usize)
                            .map(|e| t([Value::Long(e as i64)]))
                            .collect::<Vec<_>>(),
                    ),
                ])
            })
            .collect();
        let b = ColumnBatch::from_rows(&rows).unwrap();
        let s = b.slice(2, 3);
        assert_eq!(s.to_rows(), rows[2..5].to_vec());
        let g = b.gather(&[5, 0, 3]);
        assert_eq!(
            g.to_rows(),
            vec![rows[5].clone(), rows[0].clone(), rows[3].clone()]
        );
    }

    #[test]
    fn concat_mixed_width_pads_with_widths() {
        let a = ColumnBatch::from_rows(&[t([Value::Int(1), Value::Int(2)])]).unwrap();
        let b = ColumnBatch::from_rows(&[t([Value::Int(3)])]).unwrap();
        let c = ColumnBatch::concat(vec![a, b]);
        assert_eq!(
            c.to_rows(),
            vec![t([Value::Int(1), Value::Int(2)]), t([Value::Int(3)])]
        );
    }

    #[test]
    fn concat_mixed_variants_degrades() {
        let a = ColumnBatch::from_rows(&[t([Value::Int(1)])]).unwrap();
        let b = ColumnBatch::from_rows(&[t([Value::CharArray("s".into())])]).unwrap();
        let c = ColumnBatch::concat(vec![a, b]);
        assert!(matches!(c.col(0), Column::Dyn(_)));
        assert_eq!(
            c.to_rows(),
            vec![t([Value::Int(1)]), t([Value::CharArray("s".into())])]
        );
    }
}
