//! Tokenizer for the Pig-Latin subset.

use std::fmt;

/// One token with its 1-based line for error messages.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Kind and payload.
    pub kind: TokenKind,
    /// 1-based source line.
    pub line: usize,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword (case preserved; keyword matching is
    /// case-insensitive in the parser).
    Ident(String),
    /// Single-quoted string literal (quotes stripped).
    Str(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// `=`
    Equals,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `:`
    Colon,
    /// `.`
    Dot,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "{s}"),
            TokenKind::Str(s) => write!(f, "'{s}'"),
            TokenKind::Int(v) => write!(f, "{v}"),
            TokenKind::Float(v) => write!(f, "{v}"),
            TokenKind::Equals => write!(f, "="),
            TokenKind::EqEq => write!(f, "=="),
            TokenKind::NotEq => write!(f, "!="),
            TokenKind::Lt => write!(f, "<"),
            TokenKind::Le => write!(f, "<="),
            TokenKind::Gt => write!(f, ">"),
            TokenKind::Ge => write!(f, ">="),
            TokenKind::LParen => write!(f, "("),
            TokenKind::RParen => write!(f, ")"),
            TokenKind::Comma => write!(f, ","),
            TokenKind::Semi => write!(f, ";"),
            TokenKind::Colon => write!(f, ":"),
            TokenKind::Dot => write!(f, "."),
        }
    }
}

/// Lexing failure.
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    /// 1-based line.
    pub line: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at line {}: {}", self.line, self.message)
    }
}
impl std::error::Error for LexError {}

/// Tokenize a script. `--` starts a line comment (Pig convention).
pub fn lex(source: &str) -> Result<Vec<Token>, LexError> {
    let mut tokens = Vec::new();
    let bytes = source.as_bytes();
    let mut i = 0usize;
    let mut line = 1usize;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            _ if c.is_ascii_whitespace() => i += 1,
            b'-' if i + 1 < bytes.len() && bytes[i + 1] == b'-' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'=' if i + 1 < bytes.len() && bytes[i + 1] == b'=' => {
                tokens.push(Token {
                    kind: TokenKind::EqEq,
                    line,
                });
                i += 2;
            }
            b'=' => {
                tokens.push(Token {
                    kind: TokenKind::Equals,
                    line,
                });
                i += 1;
            }
            b'!' if i + 1 < bytes.len() && bytes[i + 1] == b'=' => {
                tokens.push(Token {
                    kind: TokenKind::NotEq,
                    line,
                });
                i += 2;
            }
            b'<' if i + 1 < bytes.len() && bytes[i + 1] == b'=' => {
                tokens.push(Token {
                    kind: TokenKind::Le,
                    line,
                });
                i += 2;
            }
            b'<' => {
                tokens.push(Token {
                    kind: TokenKind::Lt,
                    line,
                });
                i += 1;
            }
            b'>' if i + 1 < bytes.len() && bytes[i + 1] == b'=' => {
                tokens.push(Token {
                    kind: TokenKind::Ge,
                    line,
                });
                i += 2;
            }
            b'>' => {
                tokens.push(Token {
                    kind: TokenKind::Gt,
                    line,
                });
                i += 1;
            }
            b'(' => {
                tokens.push(Token {
                    kind: TokenKind::LParen,
                    line,
                });
                i += 1;
            }
            b')' => {
                tokens.push(Token {
                    kind: TokenKind::RParen,
                    line,
                });
                i += 1;
            }
            b',' => {
                tokens.push(Token {
                    kind: TokenKind::Comma,
                    line,
                });
                i += 1;
            }
            b';' => {
                tokens.push(Token {
                    kind: TokenKind::Semi,
                    line,
                });
                i += 1;
            }
            b':' => {
                tokens.push(Token {
                    kind: TokenKind::Colon,
                    line,
                });
                i += 1;
            }
            b'.' => {
                tokens.push(Token {
                    kind: TokenKind::Dot,
                    line,
                });
                i += 1;
            }
            b'\'' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] != b'\'' {
                    if bytes[j] == b'\n' {
                        return Err(LexError {
                            line,
                            message: "unterminated string literal".into(),
                        });
                    }
                    j += 1;
                }
                if j >= bytes.len() {
                    return Err(LexError {
                        line,
                        message: "unterminated string literal".into(),
                    });
                }
                tokens.push(Token {
                    kind: TokenKind::Str(source[start..j].to_string()),
                    line,
                });
                i = j + 1;
            }
            _ if c.is_ascii_digit() => {
                let start = i;
                let mut is_float = false;
                while i < bytes.len()
                    && (bytes[i].is_ascii_digit()
                        || (bytes[i] == b'.'
                            && i + 1 < bytes.len()
                            && bytes[i + 1].is_ascii_digit()))
                {
                    if bytes[i] == b'.' {
                        is_float = true;
                    }
                    i += 1;
                }
                let text = &source[start..i];
                let kind = if is_float {
                    TokenKind::Float(text.parse().map_err(|_| LexError {
                        line,
                        message: format!("bad float literal {text:?}"),
                    })?)
                } else {
                    TokenKind::Int(text.parse().map_err(|_| LexError {
                        line,
                        message: format!("bad int literal {text:?}"),
                    })?)
                };
                tokens.push(Token { kind, line });
            }
            _ if c.is_ascii_alphabetic() || c == b'_' || c == b'$' => {
                let start = i;
                i += 1;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Ident(source[start..i].to_string()),
                    line,
                });
            }
            _ => {
                return Err(LexError {
                    line,
                    message: format!("unexpected character {:?}", c as char),
                });
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_assignment() {
        assert_eq!(
            kinds("A = LOAD 'x';"),
            vec![
                TokenKind::Ident("A".into()),
                TokenKind::Equals,
                TokenKind::Ident("LOAD".into()),
                TokenKind::Str("x".into()),
                TokenKind::Semi,
            ]
        );
    }

    #[test]
    fn lexes_numbers() {
        assert_eq!(
            kinds("5 0.95 100"),
            vec![
                TokenKind::Int(5),
                TokenKind::Float(0.95),
                TokenKind::Int(100)
            ]
        );
    }

    #[test]
    fn lexes_schema_and_dots() {
        assert_eq!(
            kinds("(a:int, I.F)"),
            vec![
                TokenKind::LParen,
                TokenKind::Ident("a".into()),
                TokenKind::Colon,
                TokenKind::Ident("int".into()),
                TokenKind::Comma,
                TokenKind::Ident("I".into()),
                TokenKind::Dot,
                TokenKind::Ident("F".into()),
                TokenKind::RParen,
            ]
        );
    }

    #[test]
    fn comments_skipped_and_lines_tracked() {
        let toks = lex("-- comment\nA = B;\n").unwrap();
        assert_eq!(toks[0].line, 2);
    }

    #[test]
    fn dollar_params_are_idents() {
        assert_eq!(kinds("$KMER"), vec![TokenKind::Ident("$KMER".into())]);
    }

    #[test]
    fn unterminated_string_is_error() {
        assert!(lex("A = LOAD 'oops").is_err());
        assert!(lex("A = LOAD 'oops\n'").is_err());
    }

    #[test]
    fn unexpected_char_is_error() {
        let err = lex("A @ B").unwrap_err();
        assert!(err.message.contains('@'));
    }
}
