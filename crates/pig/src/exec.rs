//! The Pig executor: lowers statements onto Map-Reduce jobs.
//!
//! * `LOAD` reads a DFS file and runs the loader UDF;
//! * `FOREACH ... GENERATE` becomes a **map-only job** — each input
//!   tuple is transformed in parallel ("the keyword FOREACH ensures
//!   that every operation is performed parallel on each sequence",
//!   paper §III-C1);
//! * `GROUP x ALL` / `GROUP x BY f` becomes a full **map + shuffle +
//!   reduce job** producing `(group, bag)` tuples;
//! * `STORE` serializes a relation back to the DFS.
//!
//! Every stage's task statistics are recorded in a
//! [`mrmc_mapreduce::Pipeline`], so a whole script run can afterwards
//! be re-scheduled onto a virtual N-node cluster.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use mrmc_mapreduce::dfs::Dfs;
use mrmc_mapreduce::job::{JobConfig, Mapper, Reducer, TaskContext};
use mrmc_mapreduce::pipeline::Pipeline;
use mrmc_mapreduce::MrError;

use crate::parser::{CmpOp, Cond, Expr, GenItem, GroupBy, Operator, Script, Statement};
use crate::udf::{Udf, UdfError, UdfRegistry};
use crate::value::Value;

/// Executor failure.
#[derive(Debug)]
pub enum PigError {
    /// Referenced relation was never defined.
    UnknownRelation(String),
    /// Referenced field not in the relation's schema.
    UnknownField {
        /// Relation searched.
        relation: String,
        /// Missing field.
        field: String,
    },
    /// UDF not registered.
    UnknownUdf(String),
    /// UDF evaluation failed.
    Udf(UdfError),
    /// A scalar cross-relation reference (`I.F`) hit a relation that
    /// does not have exactly one row.
    NotScalar {
        /// Relation referenced.
        relation: String,
        /// Its row count.
        rows: usize,
    },
    /// Underlying Map-Reduce error.
    Mr(MrError),
}

impl fmt::Display for PigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PigError::UnknownRelation(a) => write!(f, "unknown relation {a}"),
            PigError::UnknownField { relation, field } => {
                write!(f, "relation {relation} has no field {field}")
            }
            PigError::UnknownUdf(n) => write!(f, "unknown UDF {n}"),
            PigError::Udf(e) => write!(f, "{e}"),
            PigError::NotScalar { relation, rows } => write!(
                f,
                "scalar reference to {relation} requires exactly 1 row, found {rows}"
            ),
            PigError::Mr(e) => write!(f, "{e}"),
        }
    }
}
impl std::error::Error for PigError {}
impl From<MrError> for PigError {
    fn from(e: MrError) -> Self {
        PigError::Mr(e)
    }
}
impl From<UdfError> for PigError {
    fn from(e: UdfError) -> Self {
        PigError::Udf(e)
    }
}

/// A materialized relation: rows plus field names.
#[derive(Debug, Clone)]
struct Relation {
    rows: Arc<Vec<Value>>,
    schema: Vec<String>,
}

/// Result of running a script.
#[derive(Debug)]
pub struct RunReport {
    /// Paths written by `STORE`, in order.
    pub stored: Vec<String>,
    /// The Map-Reduce pipeline with per-stage task statistics.
    pub pipeline: Pipeline,
}

/// Expression with names resolved to indices and UDFs to handles.
#[derive(Clone)]
enum RExpr {
    Field(usize),
    Const(Value),
    Udf { udf: Arc<dyn Udf>, args: Vec<RExpr> },
}

impl RExpr {
    fn eval(&self, row: &[Value]) -> Result<Value, UdfError> {
        match self {
            RExpr::Field(i) => Ok(row.get(*i).cloned().unwrap_or(Value::Null)),
            RExpr::Const(v) => Ok(v.clone()),
            RExpr::Udf { udf, args } => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(a.eval(row)?);
                }
                udf.exec(&vals)
            }
        }
    }
}

/// Resolved generate item.
#[derive(Clone)]
struct RGenItem {
    expr: RExpr,
    flatten: bool,
}

/// The map task for `FOREACH`: evaluates the generate items per row.
struct ForeachMapper {
    items: Vec<RGenItem>,
}

impl Mapper for ForeachMapper {
    type InKey = usize;
    type InValue = Value;
    type OutKey = usize;
    type OutValue = Value;

    fn map(&self, key: usize, value: Value, ctx: &mut TaskContext<usize, Value>) {
        let row: &[Value] = value.as_tuple().unwrap_or(std::slice::from_ref(&value));
        // Each item contributes one or more "row fragments"; bags under
        // FLATTEN multiply rows (cross product), everything else
        // appends fields.
        let mut rows: Vec<Vec<Value>> = vec![Vec::new()];
        for item in &self.items {
            let v = match item.expr.eval(row) {
                Ok(v) => v,
                Err(e) => panic!("{e}"),
            };
            match (item.flatten, v) {
                (true, Value::Bag(elems)) => {
                    let mut next = Vec::with_capacity(rows.len() * elems.len().max(1));
                    for base in &rows {
                        for e in &elems {
                            let mut r = base.clone();
                            match e {
                                Value::Tuple(fields) => r.extend(fields.iter().cloned()),
                                other => r.push(other.clone()),
                            }
                            next.push(r);
                        }
                    }
                    rows = next;
                }
                (true, Value::Tuple(fields)) => {
                    for r in &mut rows {
                        r.extend(fields.iter().cloned());
                    }
                }
                (_, v) => {
                    for r in &mut rows {
                        r.push(v.clone());
                    }
                }
            }
        }
        for r in rows {
            ctx.emit(key, Value::Tuple(r));
        }
    }
}

/// The map task for `FILTER`: evaluates the predicate per row.
struct FilterMapper {
    lhs: RExpr,
    op: CmpOp,
    rhs: RExpr,
}

impl FilterMapper {
    fn matches(&self, row: &[Value]) -> Result<bool, UdfError> {
        let l = self.lhs.eval(row)?;
        let r = self.rhs.eval(row)?;
        // Numeric comparisons coerce int/long/double; everything else
        // falls back to the Value total order.
        let ord = match (l.as_f64(), r.as_f64()) {
            (Some(x), Some(y)) => x.partial_cmp(&y).unwrap_or(std::cmp::Ordering::Equal),
            _ => l.cmp(&r),
        };
        Ok(match self.op {
            CmpOp::Eq => ord == std::cmp::Ordering::Equal,
            CmpOp::Ne => ord != std::cmp::Ordering::Equal,
            CmpOp::Lt => ord == std::cmp::Ordering::Less,
            CmpOp::Le => ord != std::cmp::Ordering::Greater,
            CmpOp::Gt => ord == std::cmp::Ordering::Greater,
            CmpOp::Ge => ord != std::cmp::Ordering::Less,
        })
    }
}

impl Mapper for FilterMapper {
    type InKey = usize;
    type InValue = Value;
    type OutKey = usize;
    type OutValue = Value;

    fn map(&self, key: usize, value: Value, ctx: &mut TaskContext<usize, Value>) {
        let row: &[Value] = value.as_tuple().unwrap_or(std::slice::from_ref(&value));
        match self.matches(row) {
            Ok(true) => ctx.emit(key, value),
            Ok(false) => ctx.count("FILTERED_OUT", 1),
            Err(e) => panic!("{e}"),
        }
    }
}

/// Map side of `DISTINCT`: the whole row becomes the shuffle key.
struct DistinctMapper;

impl Mapper for DistinctMapper {
    type InKey = usize;
    type InValue = Value;
    type OutKey = Value;
    type OutValue = ();

    fn map(&self, _key: usize, value: Value, ctx: &mut TaskContext<Value, ()>) {
        ctx.emit(value, ());
    }

    fn key_wire_size(&self, key: &Value) -> usize {
        use mrmc_mapreduce::ShuffleSized;
        key.shuffle_size()
    }

    fn value_wire_size(&self, _value: &()) -> usize {
        0
    }
}

/// Reduce side of `DISTINCT`: one output per key group.
struct DistinctReducer;

impl Reducer for DistinctReducer {
    type InKey = Value;
    type InValue = ();
    type OutKey = Value;
    type OutValue = ();

    fn reduce(&self, key: Value, _values: Vec<()>, ctx: &mut TaskContext<Value, ()>) {
        ctx.emit(key, ());
    }
}

/// Map side of `GROUP`: key extraction.
struct GroupMapper {
    /// Field index to key on; `None` = GROUP ALL.
    key_field: Option<usize>,
}

impl Mapper for GroupMapper {
    type InKey = usize;
    type InValue = Value;
    type OutKey = Value;
    type OutValue = Value;

    fn map(&self, _key: usize, value: Value, ctx: &mut TaskContext<Value, Value>) {
        let key = match self.key_field {
            None => Value::CharArray("all".to_string()),
            Some(i) => value
                .as_tuple()
                .and_then(|t| t.get(i))
                .cloned()
                .unwrap_or(Value::Null),
        };
        ctx.emit(key, value);
    }

    fn key_wire_size(&self, key: &Value) -> usize {
        use mrmc_mapreduce::ShuffleSized;
        key.shuffle_size()
    }

    fn value_wire_size(&self, value: &Value) -> usize {
        use mrmc_mapreduce::ShuffleSized;
        value.shuffle_size()
    }
}

/// Reduce side of `GROUP`: bag construction.
struct GroupReducer;

impl Reducer for GroupReducer {
    type InKey = Value;
    type InValue = Value;
    type OutKey = Value;
    type OutValue = Value;

    fn reduce(&self, key: Value, values: Vec<Value>, ctx: &mut TaskContext<Value, Value>) {
        ctx.emit(key.clone(), Value::tuple([key, Value::Bag(values)]));
    }
}

/// Script executor with a DFS, a UDF registry and job sizing knobs.
pub struct PigRunner {
    dfs: Arc<Dfs>,
    registry: UdfRegistry,
    /// Map tasks per FOREACH/GROUP stage.
    pub num_map_tasks: usize,
    /// Reducers per GROUP stage.
    pub num_reducers: usize,
    /// Worker threads (None = machine parallelism).
    pub workers: Option<usize>,
}

impl PigRunner {
    /// New runner over a DFS with a registry.
    pub fn new(dfs: Arc<Dfs>, registry: UdfRegistry) -> PigRunner {
        PigRunner {
            dfs,
            registry,
            num_map_tasks: 8,
            num_reducers: 4,
            workers: None,
        }
    }

    fn job_config(&self, name: &str) -> JobConfig {
        let mut cfg = JobConfig::named(name).reducers(self.num_reducers);
        if let Some(w) = self.workers {
            cfg = cfg.workers(w);
        }
        cfg
    }

    /// Execute a parsed script against the DFS.
    pub fn run(&self, script: &Script) -> Result<RunReport, PigError> {
        let mut env: HashMap<String, Relation> = HashMap::new();
        let mut pipeline = Pipeline::new("pig-script");
        let mut stored = Vec::new();

        for stmt in &script.statements {
            match stmt {
                Statement::Assign { alias, op } => {
                    let rel = match op {
                        Operator::Load {
                            path,
                            loader,
                            schema,
                        } => self.exec_load(path, loader.as_deref(), schema)?,
                        Operator::Foreach { input, items } => {
                            self.exec_foreach(&env, &mut pipeline, alias, input, items)?
                        }
                        Operator::Group { input, by } => {
                            self.exec_group(&env, &mut pipeline, alias, input, by)?
                        }
                        Operator::Filter { input, cond } => {
                            self.exec_filter(&env, &mut pipeline, alias, input, cond)?
                        }
                        Operator::Distinct { input } => {
                            self.exec_distinct(&env, &mut pipeline, alias, input)?
                        }
                        Operator::OrderBy { input, field, desc } => {
                            self.exec_order_by(&env, input, field, *desc)?
                        }
                        Operator::Limit { input, n } => {
                            let rel = env
                                .get(input)
                                .ok_or_else(|| PigError::UnknownRelation(input.clone()))?;
                            Relation {
                                rows: Arc::new(rel.rows.iter().take(*n).cloned().collect()),
                                schema: rel.schema.clone(),
                            }
                        }
                    };
                    env.insert(alias.clone(), rel);
                }
                Statement::Store { alias, path } => {
                    let rel = env
                        .get(alias)
                        .ok_or_else(|| PigError::UnknownRelation(alias.clone()))?;
                    let mut text = String::new();
                    for row in rel.rows.iter() {
                        text.push_str(&row.to_string());
                        text.push('\n');
                    }
                    self.dfs.put(path, text.into_bytes(), true)?;
                    stored.push(path.clone());
                }
            }
        }
        Ok(RunReport { stored, pipeline })
    }

    fn exec_load(
        &self,
        path: &str,
        loader: Option<&str>,
        schema: &[crate::parser::FieldDecl],
    ) -> Result<Relation, PigError> {
        let loader_name = loader.unwrap_or("TextLoader");
        let udf = self
            .registry
            .get(loader_name)
            .ok_or_else(|| PigError::UnknownUdf(loader_name.to_string()))?;
        let bytes = self.dfs.read(path)?;
        let out = udf.exec(&[Value::ByteArray(bytes.to_vec())])?;
        let rows = match out {
            Value::Bag(rows) => rows,
            other => vec![other],
        };
        let schema_names = if schema.is_empty() {
            default_schema(&rows)
        } else {
            schema.iter().map(|f| f.name.clone()).collect()
        };
        Ok(Relation {
            rows: Arc::new(rows),
            schema: schema_names,
        })
    }

    fn exec_foreach(
        &self,
        env: &HashMap<String, Relation>,
        pipeline: &mut Pipeline,
        alias: &str,
        input: &str,
        items: &[GenItem],
    ) -> Result<Relation, PigError> {
        let rel = env
            .get(input)
            .ok_or_else(|| PigError::UnknownRelation(input.to_string()))?;
        let resolved: Vec<RGenItem> = items
            .iter()
            .map(|it| {
                Ok(RGenItem {
                    expr: self.resolve(env, &rel.schema, &it.expr)?,
                    flatten: it.flatten,
                })
            })
            .collect::<Result<_, PigError>>()?;

        let input_rows: Vec<(usize, Value)> = rel.rows.iter().cloned().enumerate().collect();
        let mapper = ForeachMapper { items: resolved };
        let out = pipeline.run_map_stage(
            input_rows,
            self.num_map_tasks,
            &mapper,
            &self.job_config(&format!("foreach:{alias}")),
        )?;
        let rows: Vec<Value> = out.into_iter().map(|(_, v)| v).collect();

        // Output schema: declared names where given, else generated.
        let mut schema = Vec::new();
        for (i, it) in items.iter().enumerate() {
            if it.schema.is_empty() {
                // Single unnamed output field per item; FLATTEN of a
                // field keeps its name when it is a plain field ref.
                let name = match &it.expr {
                    Expr::Field(n) => n.clone(),
                    _ => format!("f{i}"),
                };
                schema.push(name);
            } else {
                schema.extend(it.schema.iter().map(|f| f.name.clone()));
            }
        }
        Ok(Relation {
            rows: Arc::new(rows),
            schema,
        })
    }

    fn exec_group(
        &self,
        env: &HashMap<String, Relation>,
        pipeline: &mut Pipeline,
        alias: &str,
        input: &str,
        by: &GroupBy,
    ) -> Result<Relation, PigError> {
        let rel = env
            .get(input)
            .ok_or_else(|| PigError::UnknownRelation(input.to_string()))?;
        let key_field = match by {
            GroupBy::All => None,
            GroupBy::Field(name) => Some(field_index(&rel.schema, input, name)?),
        };
        let input_rows: Vec<(usize, Value)> = rel.rows.iter().cloned().enumerate().collect();
        let out = pipeline.run_stage(
            input_rows,
            self.num_map_tasks,
            &GroupMapper { key_field },
            &GroupReducer,
            &self.job_config(&format!("group:{alias}")),
        )?;
        let mut rows: Vec<Value> = out.into_iter().map(|(_, v)| v).collect();
        // Deterministic group order.
        rows.sort();
        Ok(Relation {
            rows: Arc::new(rows),
            // Pig names the bag field after the grouped relation.
            schema: vec!["group".to_string(), input.to_string()],
        })
    }

    fn exec_filter(
        &self,
        env: &HashMap<String, Relation>,
        pipeline: &mut Pipeline,
        alias: &str,
        input: &str,
        cond: &Cond,
    ) -> Result<Relation, PigError> {
        let rel = env
            .get(input)
            .ok_or_else(|| PigError::UnknownRelation(input.to_string()))?;
        let mapper = FilterMapper {
            lhs: self.resolve(env, &rel.schema, &cond.lhs)?,
            op: cond.op,
            rhs: self.resolve(env, &rel.schema, &cond.rhs)?,
        };
        let input_rows: Vec<(usize, Value)> = rel.rows.iter().cloned().enumerate().collect();
        let out = pipeline.run_map_stage(
            input_rows,
            self.num_map_tasks,
            &mapper,
            &self.job_config(&format!("filter:{alias}")),
        )?;
        Ok(Relation {
            rows: Arc::new(out.into_iter().map(|(_, v)| v).collect()),
            schema: rel.schema.clone(),
        })
    }

    fn exec_distinct(
        &self,
        env: &HashMap<String, Relation>,
        pipeline: &mut Pipeline,
        alias: &str,
        input: &str,
    ) -> Result<Relation, PigError> {
        let rel = env
            .get(input)
            .ok_or_else(|| PigError::UnknownRelation(input.to_string()))?;
        let input_rows: Vec<(usize, Value)> = rel.rows.iter().cloned().enumerate().collect();
        let out = pipeline.run_stage(
            input_rows,
            self.num_map_tasks,
            &DistinctMapper,
            &DistinctReducer,
            &self.job_config(&format!("distinct:{alias}")),
        )?;
        let mut rows: Vec<Value> = out.into_iter().map(|(k, ())| k).collect();
        rows.sort();
        Ok(Relation {
            rows: Arc::new(rows),
            schema: rel.schema.clone(),
        })
    }

    /// `ORDER BY` runs on the driver: real Pig samples the key space
    /// and uses a total-order partitioner across reducers; with
    /// in-memory relations a direct sort is behaviourally identical.
    fn exec_order_by(
        &self,
        env: &HashMap<String, Relation>,
        input: &str,
        field: &str,
        desc: bool,
    ) -> Result<Relation, PigError> {
        let rel = env
            .get(input)
            .ok_or_else(|| PigError::UnknownRelation(input.to_string()))?;
        let idx = field_index(&rel.schema, input, field)?;
        let mut rows: Vec<Value> = rel.rows.as_ref().clone();
        let key = |v: &Value| -> Value {
            v.as_tuple()
                .and_then(|t| t.get(idx))
                .cloned()
                .unwrap_or(Value::Null)
        };
        rows.sort_by(|a, b| {
            let ord = key(a).cmp(&key(b));
            if desc {
                ord.reverse()
            } else {
                ord
            }
        });
        Ok(Relation {
            rows: Arc::new(rows),
            schema: rel.schema.clone(),
        })
    }

    fn resolve(
        &self,
        env: &HashMap<String, Relation>,
        schema: &[String],
        expr: &Expr,
    ) -> Result<RExpr, PigError> {
        Ok(match expr {
            Expr::LitLong(v) => RExpr::Const(Value::Long(*v)),
            Expr::LitDouble(v) => RExpr::Const(Value::Double(*v)),
            Expr::LitString(s) => RExpr::Const(Value::CharArray(s.clone())),
            Expr::Field(name) => RExpr::Field(field_index(schema, "<current>", name)?),
            Expr::Dotted { relation, field } => {
                // Scalar cross-relation reference: the relation must
                // have exactly one row (true for GROUP ... ALL output).
                let rel = env
                    .get(relation)
                    .ok_or_else(|| PigError::UnknownRelation(relation.clone()))?;
                if rel.rows.len() != 1 {
                    return Err(PigError::NotScalar {
                        relation: relation.clone(),
                        rows: rel.rows.len(),
                    });
                }
                let idx = field_index(&rel.schema, relation, field)?;
                let v = rel.rows[0]
                    .as_tuple()
                    .and_then(|t| t.get(idx))
                    .cloned()
                    .unwrap_or(Value::Null);
                RExpr::Const(v)
            }
            Expr::Udf { name, args } => {
                let udf = self
                    .registry
                    .get(name)
                    .ok_or_else(|| PigError::UnknownUdf(name.clone()))?;
                let args = args
                    .iter()
                    .map(|a| self.resolve(env, schema, a))
                    .collect::<Result<_, PigError>>()?;
                RExpr::Udf { udf, args }
            }
        })
    }
}

fn field_index(schema: &[String], relation: &str, name: &str) -> Result<usize, PigError> {
    schema
        .iter()
        .position(|f| f == name)
        .ok_or_else(|| PigError::UnknownField {
            relation: relation.to_string(),
            field: name.to_string(),
        })
}

fn default_schema(rows: &[Value]) -> Vec<String> {
    let width = rows
        .first()
        .and_then(Value::as_tuple)
        .map(|t| t.len())
        .unwrap_or(1);
    (0..width).map(|i| format!("f{i}")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_script;
    use mrmc_mapreduce::dfs::DfsConfig;
    use std::collections::HashMap as Map;

    fn dfs() -> Arc<Dfs> {
        Arc::new(
            Dfs::new(DfsConfig {
                block_size: 1024,
                replication: 1,
                nodes: 2,
            })
            .unwrap(),
        )
    }

    fn runner(dfs: &Arc<Dfs>) -> PigRunner {
        let mut r = PigRunner::new(Arc::clone(dfs), UdfRegistry::with_builtins());
        r.num_map_tasks = 3;
        r.num_reducers = 2;
        r
    }

    #[test]
    fn load_foreach_store_word_upper() {
        let dfs = dfs();
        dfs.put("/in.txt", &b"hello\nworld\n"[..], false).unwrap();
        let script = parse_script(
            "A = LOAD '/in.txt' AS (line:chararray);\
             B = FOREACH A GENERATE UPPER(line);\
             STORE B INTO '/out.txt';",
            &Map::new(),
        )
        .unwrap();
        let report = runner(&dfs).run(&script).unwrap();
        assert_eq!(report.stored, vec!["/out.txt".to_string()]);
        let out = dfs.read("/out.txt").unwrap();
        assert_eq!(out.as_ref(), b"(HELLO)\n(WORLD)\n");
        // One FOREACH stage recorded.
        assert_eq!(report.pipeline.stages().len(), 1);
    }

    #[test]
    fn flatten_tokenize_explodes_rows() {
        let dfs = dfs();
        dfs.put("/t.txt", &b"a b\nc\n"[..], false).unwrap();
        let script = parse_script(
            "A = LOAD '/t.txt' AS (line:chararray);\
             W = FOREACH A GENERATE FLATTEN(TOKENIZE(line)) AS (word:chararray);\
             STORE W INTO '/w.txt';",
            &Map::new(),
        )
        .unwrap();
        runner(&dfs).run(&script).unwrap();
        let out = String::from_utf8(dfs.read("/w.txt").unwrap().to_vec()).unwrap();
        let mut words: Vec<&str> = out.lines().collect();
        words.sort();
        assert_eq!(words, vec!["(a)", "(b)", "(c)"]);
    }

    #[test]
    fn group_all_and_scalar_reference() {
        let dfs = dfs();
        dfs.put("/n.txt", &b"x\ny\nz\n"[..], false).unwrap();
        // COUNT the bag via scalar reference I.A.
        let script = parse_script(
            "A = LOAD '/n.txt' AS (line:chararray);\
             I = GROUP A ALL;\
             C = FOREACH I GENERATE COUNT(A);\
             STORE C INTO '/c.txt';",
            &Map::new(),
        )
        .unwrap();
        // `COUNT(A)`: `A` resolves as a field of I's schema (group, A).
        runner(&dfs).run(&script).unwrap();
        let out = dfs.read("/c.txt").unwrap();
        assert_eq!(out.as_ref(), b"(3)\n");
    }

    #[test]
    fn group_by_field() {
        let dfs = dfs();
        dfs.put("/kv.txt", &b"a 1\nb 2\na 3\n"[..], false).unwrap();
        let script = parse_script(
            "A = LOAD '/kv.txt' AS (line:chararray);\
             B = FOREACH A GENERATE FLATTEN(TOKENIZE(line)) AS (tok:chararray);\
             G = GROUP B BY tok;\
             C = FOREACH G GENERATE group, COUNT(B);\
             STORE C INTO '/g.txt';",
            &Map::new(),
        )
        .unwrap();
        runner(&dfs).run(&script).unwrap();
        let out = String::from_utf8(dfs.read("/g.txt").unwrap().to_vec()).unwrap();
        let mut lines: Vec<&str> = out.lines().collect();
        lines.sort();
        assert_eq!(lines, vec!["(1,1)", "(2,1)", "(3,1)", "(a,2)", "(b,1)"]);
    }

    #[test]
    fn unknown_relation_and_udf_errors() {
        let dfs = dfs();
        let script = parse_script("B = FOREACH missing GENERATE x;", &Map::new()).unwrap();
        assert!(matches!(
            runner(&dfs).run(&script),
            Err(PigError::UnknownRelation(_))
        ));

        dfs.put("/x", &b"a\n"[..], false).unwrap();
        let script = parse_script(
            "A = LOAD '/x' AS (line:chararray); B = FOREACH A GENERATE NoSuch(line);",
            &Map::new(),
        )
        .unwrap();
        assert!(matches!(
            runner(&dfs).run(&script),
            Err(PigError::UnknownUdf(_))
        ));
    }

    #[test]
    fn unknown_field_error() {
        let dfs = dfs();
        dfs.put("/x", &b"a\n"[..], false).unwrap();
        let script = parse_script(
            "A = LOAD '/x' AS (line:chararray); B = FOREACH A GENERATE nope;",
            &Map::new(),
        )
        .unwrap();
        assert!(matches!(
            runner(&dfs).run(&script),
            Err(PigError::UnknownField { .. })
        ));
    }

    #[test]
    fn scalar_reference_requires_single_row() {
        let dfs = dfs();
        dfs.put("/x", &b"a\nb\n"[..], false).unwrap();
        let script = parse_script(
            "A = LOAD '/x' AS (line:chararray);\
             B = FOREACH A GENERATE A.line;",
            &Map::new(),
        )
        .unwrap();
        assert!(matches!(
            runner(&dfs).run(&script),
            Err(PigError::NotScalar { rows: 2, .. })
        ));
    }

    #[test]
    fn filter_by_comparison() {
        let dfs = dfs();
        dfs.put("/n.txt", &b"1\n5\n3\n9\n2\n"[..], false).unwrap();
        // Parse the line to a long via a custom UDF-free route: compare
        // chararrays lexicographically ('5' > '3' etc. works for single
        // digits).
        let script = parse_script(
            "A = LOAD '/n.txt' AS (v:chararray);\
             B = FILTER A BY v >= '3';\
             STORE B INTO '/big.txt';",
            &Map::new(),
        )
        .unwrap();
        runner(&dfs).run(&script).unwrap();
        let out = String::from_utf8(dfs.read("/big.txt").unwrap().to_vec()).unwrap();
        let mut rows: Vec<&str> = out.lines().collect();
        rows.sort();
        assert_eq!(rows, vec!["(3)", "(5)", "(9)"]);
    }

    #[test]
    fn filter_numeric_comparison_via_udf() {
        // COUNT produces longs; numeric comparison with an int literal.
        let dfs = dfs();
        dfs.put("/kv.txt", &b"a a a\nb\n"[..], false).unwrap();
        let script = parse_script(
            "A = LOAD '/kv.txt' AS (line:chararray);\
             W = FOREACH A GENERATE FLATTEN(TOKENIZE(line)) AS (w:chararray);\
             G = GROUP W BY w;\
             C = FOREACH G GENERATE group, COUNT(W);\
             F = FILTER C BY f1 >= 2;\
             STORE F INTO '/freq.txt';",
            &Map::new(),
        )
        .unwrap();
        // Schema of C: [group, f1] (unnamed second item).
        runner(&dfs).run(&script).unwrap();
        let out = String::from_utf8(dfs.read("/freq.txt").unwrap().to_vec()).unwrap();
        assert_eq!(out.trim(), "(a,3)");
    }

    #[test]
    fn distinct_removes_duplicates() {
        let dfs = dfs();
        dfs.put("/d.txt", &b"x\ny\nx\nz\ny\nx\n"[..], false)
            .unwrap();
        let script = parse_script(
            "A = LOAD '/d.txt' AS (v:chararray);\
             D = DISTINCT A;\
             STORE D INTO '/u.txt';",
            &Map::new(),
        )
        .unwrap();
        runner(&dfs).run(&script).unwrap();
        let out = String::from_utf8(dfs.read("/u.txt").unwrap().to_vec()).unwrap();
        assert_eq!(out.lines().count(), 3);
    }

    #[test]
    fn order_by_and_limit() {
        let dfs = dfs();
        dfs.put("/s.txt", &b"pear\napple\nfig\nbanana\n"[..], false)
            .unwrap();
        let script = parse_script(
            "A = LOAD '/s.txt' AS (v:chararray);\
             O = ORDER A BY v DESC;\
             L = LIMIT O 2;\
             STORE L INTO '/top.txt';",
            &Map::new(),
        )
        .unwrap();
        runner(&dfs).run(&script).unwrap();
        let out = String::from_utf8(dfs.read("/top.txt").unwrap().to_vec()).unwrap();
        assert_eq!(out, "(pear)\n(fig)\n");
    }

    #[test]
    fn order_by_ascending_default() {
        let dfs = dfs();
        dfs.put("/s.txt", &b"b\nc\na\n"[..], false).unwrap();
        let script = parse_script(
            "A = LOAD '/s.txt' AS (v:chararray);\
             O = ORDER A BY v;\
             STORE O INTO '/sorted.txt';",
            &Map::new(),
        )
        .unwrap();
        runner(&dfs).run(&script).unwrap();
        let out = String::from_utf8(dfs.read("/sorted.txt").unwrap().to_vec()).unwrap();
        assert_eq!(out, "(a)\n(b)\n(c)\n");
    }

    #[test]
    fn limit_zero_and_oversized() {
        let dfs = dfs();
        dfs.put("/s.txt", &b"a\nb\n"[..], false).unwrap();
        let script = parse_script(
            "A = LOAD '/s.txt' AS (v:chararray);\
             Z = LIMIT A 0;\
             B = LIMIT A 100;\
             STORE Z INTO '/zero.txt';\
             STORE B INTO '/all.txt';",
            &Map::new(),
        )
        .unwrap();
        runner(&dfs).run(&script).unwrap();
        assert_eq!(dfs.read("/zero.txt").unwrap().len(), 0);
        assert_eq!(dfs.read("/all.txt").unwrap().as_ref(), b"(a)\n(b)\n");
    }

    #[test]
    fn pipeline_records_group_shuffle() {
        let dfs = dfs();
        dfs.put("/x", &b"a\nb\nc\n"[..], false).unwrap();
        let script = parse_script(
            "A = LOAD '/x' AS (line:chararray); I = GROUP A ALL;",
            &Map::new(),
        )
        .unwrap();
        let report = runner(&dfs).run(&script).unwrap();
        let stage = &report.pipeline.stages()[0];
        assert_eq!(stage.shuffled_pairs, 3);
        assert!(!stage.reduce_stats.is_empty());
    }
}
