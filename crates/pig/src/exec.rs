//! The Pig executor: lowers statements onto Map-Reduce jobs.
//!
//! * `LOAD` reads a DFS file and runs the loader UDF;
//! * `FOREACH ... GENERATE` becomes a **map-only job** — each input
//!   tuple is transformed in parallel ("the keyword FOREACH ensures
//!   that every operation is performed parallel on each sequence",
//!   paper §III-C1);
//! * `GROUP x ALL` / `GROUP x BY f` becomes a full **map + shuffle +
//!   reduce job** producing `(group, bag)` tuples;
//! * `STORE` serializes a relation back to the DFS.
//!
//! Two execution engines share this lowering ([`PigEngine`]):
//!
//! * **Row** — the original row-at-a-time interpreter over boxed
//!   [`Value`] tuples;
//! * **Columnar** (default) — relations held as [`ColumnBatch`]es,
//!   operators evaluated on column windows through the batch UDF ABI
//!   ([`crate::udf::BatchUdf`]), `FLATTEN` expanded with gather
//!   vectors, and `GROUP` shuffling 4-byte **row indices** instead of
//!   cloned row trees — the grouped runs come back through
//!   [`Pipeline::run_group_stage`] and one columnar gather builds the
//!   result bags. Chunks that the vectorizer cannot keep aligned
//!   (mixed-type flatten inputs, ragged bag-element tuples) fall back
//!   to the exact row-engine logic per chunk, so both engines are
//!   bit-identical by construction *and* by the property tests in
//!   `tests/columnar.rs`.
//!
//! Every stage's task statistics are recorded in a
//! [`mrmc_mapreduce::Pipeline`], so a whole script run can afterwards
//! be re-scheduled onto a virtual N-node cluster. Attach a tracer
//! ([`PigRunner::traced`]) and each operator additionally records a
//! `Category::Pig` span wrapping its engine spans, which lets
//! critical-path analysis attribute scripted-run time to
//! FOREACH/FILTER/GROUP operators.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use mrmc_mapreduce::dfs::Dfs;
use mrmc_mapreduce::engine::chunk_ranges;
use mrmc_mapreduce::job::{JobConfig, Mapper, Reducer, TaskContext};
use mrmc_mapreduce::obs::{Category, SpanDraft, SpanId, Tracer};
use mrmc_mapreduce::pipeline::Pipeline;
use mrmc_mapreduce::MrError;

use crate::batch::{BagCol, Column, ColumnBatch};
use crate::parser::{CmpOp, Cond, Expr, GenItem, GroupBy, Operator, Script, Statement};
use crate::udf::{BatchArg, BatchOut, BatchUdf, Udf, UdfError, UdfRegistry};
use crate::value::Value;

/// Executor failure.
#[derive(Debug)]
pub enum PigError {
    /// Referenced relation was never defined.
    UnknownRelation(String),
    /// Referenced field not in the relation's schema.
    UnknownField {
        /// Relation searched.
        relation: String,
        /// Missing field.
        field: String,
    },
    /// UDF not registered.
    UnknownUdf(String),
    /// UDF evaluation failed.
    Udf(UdfError),
    /// A scalar cross-relation reference (`I.F`) hit a relation that
    /// does not have exactly one row.
    NotScalar {
        /// Relation referenced.
        relation: String,
        /// Its row count.
        rows: usize,
    },
    /// Underlying Map-Reduce error.
    Mr(MrError),
}

impl fmt::Display for PigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PigError::UnknownRelation(a) => write!(f, "unknown relation {a}"),
            PigError::UnknownField { relation, field } => {
                write!(f, "relation {relation} has no field {field}")
            }
            PigError::UnknownUdf(n) => write!(f, "unknown UDF {n}"),
            PigError::Udf(e) => write!(f, "{e}"),
            PigError::NotScalar { relation, rows } => write!(
                f,
                "scalar reference to {relation} requires exactly 1 row, found {rows}"
            ),
            PigError::Mr(e) => write!(f, "{e}"),
        }
    }
}
impl std::error::Error for PigError {}
impl From<MrError> for PigError {
    fn from(e: MrError) -> Self {
        PigError::Mr(e)
    }
}
impl From<UdfError> for PigError {
    fn from(e: UdfError) -> Self {
        PigError::Udf(e)
    }
}

/// Which execution engine the runner uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PigEngine {
    /// Row-at-a-time over boxed [`Value`] tuples (the reference
    /// semantics; kept as the bit-identity oracle).
    Row,
    /// Columnar batches with vectorized operators (default).
    #[default]
    Columnar,
}

/// Relation storage. Both representations carry a logical `len` so
/// `LIMIT` is a zero-copy prefix view over shared storage instead of
/// a deep row copy.
#[derive(Debug, Clone)]
enum Store {
    /// Boxed rows (the row engine, and any relation whose rows are
    /// not tuples — columnarization never pretends).
    Rows { data: Arc<Vec<Value>>, len: usize },
    /// Columnar batch.
    Batch { data: Arc<ColumnBatch>, len: usize },
}

/// A materialized relation: rows plus field names.
#[derive(Debug, Clone)]
struct Relation {
    store: Store,
    schema: Vec<String>,
}

impl Relation {
    fn len(&self) -> usize {
        match &self.store {
            Store::Rows { len, .. } | Store::Batch { len, .. } => *len,
        }
    }

    /// Row `i` as a boxed value (materializes from columns).
    fn row(&self, i: usize) -> Value {
        match &self.store {
            Store::Rows { data, .. } => data[i].clone(),
            Store::Batch { data, .. } => data.row_value(i),
        }
    }

    /// All live rows, boxed (the row-path entry format).
    fn rows_vec(&self) -> Vec<Value> {
        match &self.store {
            Store::Rows { data, len } => data[..*len].to_vec(),
            Store::Batch { data, len } => (0..*len).map(|i| data.row_value(i)).collect(),
        }
    }

    /// The columnar view, when this relation has one.
    fn batch(&self) -> Option<(&Arc<ColumnBatch>, usize)> {
        match &self.store {
            Store::Batch { data, len } => Some((data, *len)),
            Store::Rows { .. } => None,
        }
    }
}

/// Result of running a script.
#[derive(Debug)]
pub struct RunReport {
    /// Paths written by `STORE`, in order.
    pub stored: Vec<String>,
    /// The Map-Reduce pipeline with per-stage task statistics.
    pub pipeline: Pipeline,
}

// ------------------------------------------------------------ row engine

/// Expression with names resolved to indices and UDFs to handles.
#[derive(Clone)]
enum RExpr {
    Field(usize),
    Const(Value),
    Udf { udf: Arc<dyn Udf>, args: Vec<RExpr> },
}

impl RExpr {
    fn eval(&self, row: &[Value]) -> Result<Value, UdfError> {
        match self {
            RExpr::Field(i) => Ok(row.get(*i).cloned().unwrap_or(Value::Null)),
            RExpr::Const(v) => Ok(v.clone()),
            RExpr::Udf { udf, args } => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(a.eval(row)?);
                }
                udf.exec(&vals)
            }
        }
    }
}

/// Resolved generate item.
#[derive(Clone)]
struct RGenItem {
    expr: RExpr,
    flatten: bool,
}

/// Expand one row's evaluated items into output rows — the single
/// definition of FOREACH/FLATTEN semantics. Bags under FLATTEN
/// multiply rows (cross product, later items varying fastest);
/// flattened tuples append their fields; everything else appends one
/// field. The columnar engine's slow path calls this with
/// pre-evaluated item values, so both engines share the semantics by
/// construction.
fn expand_row(evaled: Vec<(bool, Value)>) -> Vec<Vec<Value>> {
    let mut rows: Vec<Vec<Value>> = vec![Vec::new()];
    for (flatten, v) in evaled {
        match (flatten, v) {
            (true, Value::Bag(elems)) => {
                let mut next = Vec::with_capacity(rows.len() * elems.len().max(1));
                for base in &rows {
                    for e in &elems {
                        let mut r = base.clone();
                        match e {
                            Value::Tuple(fields) => r.extend(fields.iter().cloned()),
                            other => r.push(other.clone()),
                        }
                        next.push(r);
                    }
                }
                rows = next;
            }
            (true, Value::Tuple(fields)) => {
                for r in &mut rows {
                    r.extend(fields.iter().cloned());
                }
            }
            (_, v) => {
                for r in &mut rows {
                    r.push(v.clone());
                }
            }
        }
    }
    rows
}

/// The map task for `FOREACH`: evaluates the generate items per row.
struct ForeachMapper {
    items: Vec<RGenItem>,
}

impl Mapper for ForeachMapper {
    type InKey = usize;
    type InValue = Value;
    type OutKey = usize;
    type OutValue = Value;

    fn map(&self, key: usize, value: Value, ctx: &mut TaskContext<usize, Value>) {
        let row: &[Value] = value.as_tuple().unwrap_or(std::slice::from_ref(&value));
        let evaled: Vec<(bool, Value)> = self
            .items
            .iter()
            .map(|item| match item.expr.eval(row) {
                Ok(v) => (item.flatten, v),
                Err(e) => panic!("{e}"),
            })
            .collect();
        for r in expand_row(evaled) {
            ctx.emit(key, Value::Tuple(r));
        }
    }
}

/// Compare two values the way `FILTER` does: numeric comparisons
/// coerce int/long/double; everything else falls back to the
/// `Value` total order.
fn filter_cmp(l: &Value, r: &Value) -> std::cmp::Ordering {
    match (l.as_f64(), r.as_f64()) {
        (Some(x), Some(y)) => x.partial_cmp(&y).unwrap_or(std::cmp::Ordering::Equal),
        _ => l.cmp(r),
    }
}

/// Apply a comparison operator to an ordering.
fn cmp_matches(op: CmpOp, ord: std::cmp::Ordering) -> bool {
    match op {
        CmpOp::Eq => ord == std::cmp::Ordering::Equal,
        CmpOp::Ne => ord != std::cmp::Ordering::Equal,
        CmpOp::Lt => ord == std::cmp::Ordering::Less,
        CmpOp::Le => ord != std::cmp::Ordering::Greater,
        CmpOp::Gt => ord == std::cmp::Ordering::Greater,
        CmpOp::Ge => ord != std::cmp::Ordering::Less,
    }
}

/// The map task for `FILTER`: evaluates the predicate per row.
struct FilterMapper {
    lhs: RExpr,
    op: CmpOp,
    rhs: RExpr,
}

impl FilterMapper {
    fn matches(&self, row: &[Value]) -> Result<bool, UdfError> {
        let l = self.lhs.eval(row)?;
        let r = self.rhs.eval(row)?;
        Ok(cmp_matches(self.op, filter_cmp(&l, &r)))
    }
}

impl Mapper for FilterMapper {
    type InKey = usize;
    type InValue = Value;
    type OutKey = usize;
    type OutValue = Value;

    fn map(&self, key: usize, value: Value, ctx: &mut TaskContext<usize, Value>) {
        let row: &[Value] = value.as_tuple().unwrap_or(std::slice::from_ref(&value));
        match self.matches(row) {
            Ok(true) => ctx.emit(key, value),
            Ok(false) => ctx.count("FILTERED_OUT", 1),
            Err(e) => panic!("{e}"),
        }
    }
}

/// Map side of `DISTINCT`: the whole row becomes the shuffle key.
struct DistinctMapper;

impl Mapper for DistinctMapper {
    type InKey = usize;
    type InValue = Value;
    type OutKey = Value;
    type OutValue = ();

    fn map(&self, _key: usize, value: Value, ctx: &mut TaskContext<Value, ()>) {
        ctx.emit(value, ());
    }

    fn key_wire_size(&self, key: &Value) -> usize {
        use mrmc_mapreduce::ShuffleSized;
        key.shuffle_size()
    }

    fn value_wire_size(&self, _value: &()) -> usize {
        0
    }
}

/// Reduce side of `DISTINCT`: one output per key group.
struct DistinctReducer;

impl Reducer for DistinctReducer {
    type InKey = Value;
    type InValue = ();
    type OutKey = Value;
    type OutValue = ();

    fn reduce(&self, key: Value, _values: Vec<()>, ctx: &mut TaskContext<Value, ()>) {
        ctx.emit(key, ());
    }
}

/// Map side of `GROUP`: key extraction.
struct GroupMapper {
    /// Field index to key on; `None` = GROUP ALL.
    key_field: Option<usize>,
}

impl Mapper for GroupMapper {
    type InKey = usize;
    type InValue = Value;
    type OutKey = Value;
    type OutValue = Value;

    fn map(&self, _key: usize, value: Value, ctx: &mut TaskContext<Value, Value>) {
        let key = match self.key_field {
            None => Value::CharArray("all".to_string()),
            Some(i) => value
                .as_tuple()
                .and_then(|t| t.get(i))
                .cloned()
                .unwrap_or(Value::Null),
        };
        ctx.emit(key, value);
    }

    fn key_wire_size(&self, key: &Value) -> usize {
        use mrmc_mapreduce::ShuffleSized;
        key.shuffle_size()
    }

    fn value_wire_size(&self, value: &Value) -> usize {
        use mrmc_mapreduce::ShuffleSized;
        value.shuffle_size()
    }
}

/// Reduce side of `GROUP`: bag construction.
struct GroupReducer;

impl Reducer for GroupReducer {
    type InKey = Value;
    type InValue = Value;
    type OutKey = Value;
    type OutValue = Value;

    fn reduce(&self, key: Value, values: Vec<Value>, ctx: &mut TaskContext<Value, Value>) {
        ctx.emit(key.clone(), Value::tuple([key, Value::Bag(values)]));
    }
}

// ------------------------------------------------------- columnar engine

/// Expression resolved against the batch ABI.
#[derive(Clone)]
enum BExpr {
    Field(usize),
    Const(Value),
    Udf {
        udf: Arc<dyn BatchUdf>,
        args: Vec<BExpr>,
    },
}

/// Resolved generate item, columnar flavor.
#[derive(Clone)]
struct BGenItem {
    expr: BExpr,
    flatten: bool,
}

/// One evaluated item over a chunk window.
enum ItemCol<'a> {
    /// Borrowed window `start..start + len` of an input column.
    Ref(&'a Column),
    /// Chunk-local owned column (`len` rows).
    Owned(Column),
    /// Chunk-local tuple-per-row output (`len` rows).
    Tup(ColumnBatch),
    /// One value broadcast to every row.
    Scalar(Value),
}

impl ItemCol<'_> {
    /// The value this item takes at chunk-local row `i`.
    fn value_at(&self, start: usize, i: usize) -> Value {
        match self {
            ItemCol::Ref(c) => c.value_at(start + i),
            ItemCol::Owned(c) => c.value_at(i),
            ItemCol::Tup(b) => b.row_value(i),
            ItemCol::Scalar(v) => v.clone(),
        }
    }
}

/// Evaluate a batch expression over rows `start..start + len`.
fn eval_bexpr<'a>(
    batch: &'a ColumnBatch,
    start: usize,
    len: usize,
    expr: &BExpr,
) -> Result<ItemCol<'a>, UdfError> {
    Ok(match expr {
        BExpr::Field(i) => {
            if *i < batch.num_cols() {
                ItemCol::Ref(batch.col(*i))
            } else {
                ItemCol::Scalar(Value::Null)
            }
        }
        BExpr::Const(v) => ItemCol::Scalar(v.clone()),
        BExpr::Udf { udf, args } => {
            let children: Vec<ItemCol<'a>> = args
                .iter()
                .map(|a| {
                    eval_bexpr(batch, start, len, a).map(|c| match c {
                        // Tuple-valued arguments materialize (no UDF
                        // in the suite takes tuple columns; keep the
                        // corner correct, not fast).
                        ItemCol::Tup(b) => {
                            ItemCol::Owned(Column::Dyn((0..len).map(|i| b.row_value(i)).collect()))
                        }
                        other => other,
                    })
                })
                .collect::<Result<_, UdfError>>()?;
            let call_args: Vec<BatchArg<'_>> = children
                .iter()
                .map(|c| match c {
                    ItemCol::Ref(col) => BatchArg::Column { col, start, len },
                    ItemCol::Owned(col) => BatchArg::Column { col, start: 0, len },
                    ItemCol::Scalar(v) => BatchArg::Scalar { value: v, len },
                    ItemCol::Tup(_) => unreachable!("materialized above"),
                })
                .collect();
            match udf.eval_batch(&call_args, len)? {
                BatchOut::Col(c) => {
                    debug_assert_eq!(c.len(), len);
                    ItemCol::Owned(c)
                }
                BatchOut::Rows(v) => {
                    debug_assert_eq!(v.len(), len);
                    ItemCol::Owned(Column::from_values(v))
                }
                BatchOut::Tup(b) => {
                    debug_assert_eq!(b.rows(), len);
                    ItemCol::Tup(b)
                }
            }
        }
    })
}

/// How one evaluated item feeds the vectorized output assembly.
enum ItemPlan<'a> {
    /// Appends one column, replicated by the input-row gather.
    Plain(ItemCol<'a>),
    /// Flattened bag: multiplies rows; appends the bag's element
    /// fields. `global` marks offsets indexed by batch-global rows
    /// (borrowed input column) vs chunk-local rows (computed column).
    FlatBag { bag: &'a BagCol, global: bool },
    /// Owned flattened bag (same, but the column lives in this
    /// chunk's eval results).
    FlatBagOwned { col_idx: usize },
    /// Flattened uniform tuple column: appends its columns.
    FlatTup { col_idx: usize },
    /// Flattened constant tuple: appends one constant per field.
    FlatConstTuple(Vec<Value>),
}

/// Vectorized FOREACH over one chunk. Returns `None` when the chunk
/// needs the row-at-a-time fallback (the caller then uses
/// [`expand_row`] per row — bit-identical by sharing the row
/// engine's expansion code).
#[allow(clippy::too_many_lines)]
fn foreach_chunk_fast(
    start: usize,
    len: usize,
    evaled: &[ItemCol<'_>],
    items: &[BGenItem],
) -> Option<ColumnBatch> {
    // Classify items; bail to the slow path on anything the gather
    // assembly cannot keep aligned.
    let window_valid = |b: &BagCol, global: bool| -> bool {
        let (s, l) = if global { (start, len) } else { (0, len) };
        b.validity
            .as_ref()
            .is_none_or(|v| (s..s + l).all(|i| v.get(i)))
    };
    let bag_uniform = |b: &BagCol| -> bool { !b.tuple_elems || b.elems.widths().is_none() };
    let mut plans: Vec<ItemPlan<'_>> = Vec::with_capacity(items.len());
    for (idx, (item, col)) in items.iter().zip(evaled).enumerate() {
        if !item.flatten {
            match col {
                ItemCol::Tup(_) => return None,
                other => plans.push(ItemPlan::Plain(copy_item_ref(other))),
            }
            continue;
        }
        match col {
            ItemCol::Ref(Column::Bag(b)) => {
                if !window_valid(b, true) || !bag_uniform(b) {
                    return None;
                }
                plans.push(ItemPlan::FlatBag {
                    bag: b,
                    global: true,
                });
            }
            ItemCol::Owned(Column::Bag(b)) => {
                if !window_valid(b, false) || !bag_uniform(b) {
                    return None;
                }
                plans.push(ItemPlan::FlatBagOwned { col_idx: idx });
            }
            // Dynamic columns may hide bags or tuples per row.
            ItemCol::Ref(Column::Dyn(_)) | ItemCol::Owned(Column::Dyn(_)) => return None,
            // Typed non-bag columns: FLATTEN of a non-bag non-tuple
            // value appends the value itself — plain semantics.
            ItemCol::Ref(_) | ItemCol::Owned(_) => plans.push(ItemPlan::Plain(copy_item_ref(col))),
            ItemCol::Tup(b) => {
                if b.widths().is_some() {
                    return None;
                }
                plans.push(ItemPlan::FlatTup { col_idx: idx });
            }
            ItemCol::Scalar(Value::Tuple(fields)) => {
                plans.push(ItemPlan::FlatConstTuple(fields.clone()))
            }
            ItemCol::Scalar(Value::Bag(_)) => return None,
            ItemCol::Scalar(v) => plans.push(ItemPlan::Plain(ItemCol::Scalar(v.clone()))),
        }
    }

    // Build the gather vectors: one pass over input rows, odometer
    // over the flatten bags (later items vary fastest, matching the
    // row engine's sequential expansion).
    struct FlatRef<'b> {
        bag: &'b BagCol,
        global: bool,
        take: Vec<u32>,
    }
    let mut flats: Vec<FlatRef<'_>> = Vec::new();
    for plan in &plans {
        match plan {
            ItemPlan::FlatBag { bag, global } => flats.push(FlatRef {
                bag,
                global: *global,
                take: Vec::new(),
            }),
            ItemPlan::FlatBagOwned { col_idx } => {
                let ItemCol::Owned(Column::Bag(b)) = &evaled[*col_idx] else {
                    unreachable!()
                };
                flats.push(FlatRef {
                    bag: b,
                    global: false,
                    take: Vec::new(),
                });
            }
            _ => {}
        }
    }
    let k = flats.len();
    let mut take_in: Vec<u32> = Vec::with_capacity(len);
    let mut counts = vec![0usize; k];
    let mut odo = vec![0usize; k];
    for i in 0..len {
        let mut total = 1usize;
        for (f, fr) in flats.iter().enumerate() {
            let row = if fr.global { start + i } else { i };
            counts[f] = fr.bag.bag_len(row);
            total *= counts[f];
        }
        if total == 0 {
            continue;
        }
        odo.iter_mut().for_each(|x| *x = 0);
        for _ in 0..total {
            take_in.push(i as u32);
            for (f, fr) in flats.iter_mut().enumerate() {
                let row = if fr.global { start + i } else { i };
                fr.take.push(fr.bag.offsets[row] + odo[f] as u32);
            }
            // Increment odometer, last item fastest.
            for f in (0..k).rev() {
                odo[f] += 1;
                if odo[f] < counts[f] {
                    break;
                }
                odo[f] = 0;
            }
        }
    }
    let out_rows = take_in.len();
    let take_global: Vec<u32> = take_in.iter().map(|&i| i + start as u32).collect();

    // Assemble output columns in item order.
    let mut out_cols: Vec<Column> = Vec::new();
    let mut flat_cursor = 0usize;
    for plan in &plans {
        match plan {
            ItemPlan::Plain(ItemCol::Ref(c)) => out_cols.push(c.gather(&take_global)),
            ItemPlan::Plain(ItemCol::Owned(c)) => out_cols.push(c.gather(&take_in)),
            ItemPlan::Plain(ItemCol::Scalar(v)) => {
                out_cols.push(Column::from_values(vec![v.clone(); out_rows]))
            }
            ItemPlan::Plain(ItemCol::Tup(_)) => unreachable!("rejected above"),
            ItemPlan::FlatBag { .. } | ItemPlan::FlatBagOwned { .. } => {
                let fr = &flats[flat_cursor];
                flat_cursor += 1;
                let child = fr.bag.elems.gather(&fr.take);
                if fr.bag.tuple_elems {
                    out_cols.extend(child.into_cols());
                } else {
                    out_cols.extend(child.into_cols().into_iter().take(1));
                }
            }
            ItemPlan::FlatTup { col_idx } => {
                let ItemCol::Tup(b) = &evaled[*col_idx] else {
                    unreachable!()
                };
                for c in b.cols() {
                    out_cols.push(c.gather(&take_in));
                }
            }
            ItemPlan::FlatConstTuple(fields) => {
                for f in fields {
                    out_cols.push(Column::from_values(vec![f.clone(); out_rows]));
                }
            }
        }
    }
    Some(ColumnBatch::from_cols(out_cols, out_rows))
}

/// Re-borrow an evaluated item for plan storage (cheap: `Ref` stays
/// borrowed, `Owned`/`Scalar` values are plan-local anyway).
fn copy_item_ref<'a>(col: &ItemCol<'a>) -> ItemCol<'a> {
    match col {
        ItemCol::Ref(c) => ItemCol::Ref(c),
        ItemCol::Owned(c) => ItemCol::Owned(c.clone()),
        ItemCol::Tup(b) => ItemCol::Tup(b.clone()),
        ItemCol::Scalar(v) => ItemCol::Scalar(v.clone()),
    }
}

/// Full FOREACH over one chunk: fast vectorized assembly when
/// possible, else the shared row-expansion fallback.
fn foreach_chunk(
    batch: &ColumnBatch,
    start: usize,
    len: usize,
    items: &[BGenItem],
) -> Result<ColumnBatch, UdfError> {
    if len == 0 {
        // The row engine never invokes a UDF for zero rows; neither
        // may the batch path.
        return Ok(ColumnBatch::from_rows(&[]).expect("empty batch"));
    }
    let evaled: Vec<ItemCol<'_>> = items
        .iter()
        .map(|it| eval_bexpr(batch, start, len, &it.expr))
        .collect::<Result<_, UdfError>>()?;
    if let Some(out) = foreach_chunk_fast(start, len, &evaled, items) {
        return Ok(out);
    }
    // Slow path: exact row-engine expansion per row, reusing the
    // already-evaluated item values.
    let mut rows: Vec<Value> = Vec::with_capacity(len);
    for i in 0..len {
        let evaled_row: Vec<(bool, Value)> = items
            .iter()
            .zip(&evaled)
            .map(|(it, col)| (it.flatten, col.value_at(start, i)))
            .collect();
        for r in expand_row(evaled_row) {
            rows.push(Value::Tuple(r));
        }
    }
    Ok(ColumnBatch::from_rows(&rows).expect("tuple rows"))
}

/// The columnar map task for `FOREACH`: one chunk of rows per call.
struct BatchForeachMapper {
    batch: Arc<ColumnBatch>,
    items: Vec<BGenItem>,
}

impl Mapper for BatchForeachMapper {
    type InKey = usize;
    type InValue = (u32, u32);
    type OutKey = usize;
    type OutValue = ColumnBatch;

    fn map(&self, key: usize, (start, len): (u32, u32), ctx: &mut TaskContext<usize, ColumnBatch>) {
        match foreach_chunk(&self.batch, start as usize, len as usize, &self.items) {
            Ok(out) => ctx.emit(key, out),
            Err(e) => panic!("{e}"),
        }
    }
}

/// The columnar map task for `FILTER`: selection vector + gather.
struct BatchFilterMapper {
    batch: Arc<ColumnBatch>,
    lhs: BExpr,
    op: CmpOp,
    rhs: BExpr,
}

impl Mapper for BatchFilterMapper {
    type InKey = usize;
    type InValue = (u32, u32);
    type OutKey = usize;
    type OutValue = ColumnBatch;

    fn map(&self, key: usize, (start, len): (u32, u32), ctx: &mut TaskContext<usize, ColumnBatch>) {
        let (start, len) = (start as usize, len as usize);
        if len == 0 {
            ctx.emit(key, ColumnBatch::from_rows(&[]).expect("empty batch"));
            return;
        }
        let run = || -> Result<(ColumnBatch, u64), UdfError> {
            let l = eval_bexpr(&self.batch, start, len, &self.lhs)?;
            let r = eval_bexpr(&self.batch, start, len, &self.rhs)?;
            let mut keep: Vec<u32> = Vec::with_capacity(len);
            let mut dropped = 0u64;
            for i in 0..len {
                let lv = l.value_at(start, i);
                let rv = r.value_at(start, i);
                if cmp_matches(self.op, filter_cmp(&lv, &rv)) {
                    keep.push((start + i) as u32);
                } else {
                    dropped += 1;
                }
            }
            Ok((self.batch.gather(&keep), dropped))
        };
        match run() {
            Ok((out, dropped)) => {
                if dropped > 0 {
                    ctx.count("FILTERED_OUT", dropped);
                }
                ctx.emit(key, out);
            }
            Err(e) => panic!("{e}"),
        }
    }
}

/// The columnar map side of `GROUP`: shuffles `(key, row index)` —
/// 4-byte values instead of cloned row trees — while charging
/// `SHUFFLE_BYTES` for the full row via the wire-size hook, so the
/// accounting stays bit-identical to the value shuffle.
struct BatchGroupMapper {
    batch: Arc<ColumnBatch>,
    key_field: Option<usize>,
}

impl Mapper for BatchGroupMapper {
    type InKey = usize;
    type InValue = u32;
    type OutKey = Value;
    type OutValue = u32;

    fn map(&self, _key: usize, row: u32, ctx: &mut TaskContext<Value, u32>) {
        let key = match self.key_field {
            None => Value::CharArray("all".to_string()),
            Some(i) => self.batch.value_at(row as usize, i),
        };
        ctx.emit(key, row);
    }

    fn key_wire_size(&self, key: &Value) -> usize {
        use mrmc_mapreduce::ShuffleSized;
        key.shuffle_size()
    }

    fn value_wire_size(&self, value: &u32) -> usize {
        self.batch.row_shuffle_size(*value as usize)
    }
}

// --------------------------------------------------------------- runner

/// Script executor with a DFS, a UDF registry and job sizing knobs.
pub struct PigRunner {
    dfs: Arc<Dfs>,
    registry: UdfRegistry,
    /// Map tasks per FOREACH/GROUP stage.
    pub num_map_tasks: usize,
    /// Reducers per GROUP stage.
    pub num_reducers: usize,
    /// Worker threads (None = machine parallelism).
    pub workers: Option<usize>,
    /// Execution engine (columnar by default; `Row` keeps the boxed
    /// row-at-a-time reference path).
    pub engine: PigEngine,
    tracer: Option<Arc<Tracer>>,
}

impl PigRunner {
    /// New runner over a DFS with a registry.
    pub fn new(dfs: Arc<Dfs>, registry: UdfRegistry) -> PigRunner {
        PigRunner {
            dfs,
            registry,
            num_map_tasks: 8,
            num_reducers: 4,
            workers: None,
            engine: PigEngine::default(),
            tracer: None,
        }
    }

    /// Select the execution engine.
    pub fn with_engine(mut self, engine: PigEngine) -> PigRunner {
        self.engine = engine;
        self
    }

    /// Attach a trace sink: every engine stage's spans accumulate in
    /// it, and each Pig operator records a wrapping `Category::Pig`
    /// span chained operator-to-operator, so critical-path analysis
    /// can attribute scripted-run time to FOREACH/FILTER/GROUP.
    pub fn traced(mut self, tracer: Arc<Tracer>) -> PigRunner {
        self.tracer = Some(tracer);
        self
    }

    fn job_config(&self, name: &str) -> JobConfig {
        let mut cfg = JobConfig::named(name).reducers(self.num_reducers);
        if let Some(w) = self.workers {
            cfg = cfg.workers(w);
        }
        cfg
    }

    fn columnar(&self) -> bool {
        self.engine == PigEngine::Columnar
    }

    /// Wrap row output into the engine's preferred representation.
    fn make_relation(&self, rows: Vec<Value>, schema: Vec<String>) -> Relation {
        let store = if self.columnar() {
            match ColumnBatch::from_rows(&rows) {
                Some(batch) => {
                    let len = batch.rows();
                    Store::Batch {
                        data: Arc::new(batch),
                        len,
                    }
                }
                None => Store::Rows {
                    len: rows.len(),
                    data: Arc::new(rows),
                },
            }
        } else {
            Store::Rows {
                len: rows.len(),
                data: Arc::new(rows),
            }
        };
        Relation { store, schema }
    }

    /// Execute a parsed script against the DFS.
    pub fn run(&self, script: &Script) -> Result<RunReport, PigError> {
        let mut env: HashMap<String, Relation> = HashMap::new();
        let mut pipeline = Pipeline::new("pig-script");
        if let Some(t) = &self.tracer {
            pipeline = pipeline.traced(Arc::clone(t));
        }
        let mut stored = Vec::new();
        let pig_job = self.tracer.as_ref().map(|t| t.begin_job("pig-operators"));
        let mut prev_span: Option<SpanId> = None;

        for stmt in &script.statements {
            let t0 = self.tracer.as_ref().map(|t| t.now_ns()).unwrap_or(0);
            let (span_name, rows_out) = match stmt {
                Statement::Assign { alias, op } => {
                    let rel = match op {
                        Operator::Load {
                            path,
                            loader,
                            schema,
                        } => self.exec_load(path, loader.as_deref(), schema)?,
                        Operator::Foreach { input, items } => {
                            self.exec_foreach(&env, &mut pipeline, alias, input, items)?
                        }
                        Operator::Group { input, by } => {
                            self.exec_group(&env, &mut pipeline, alias, input, by)?
                        }
                        Operator::Filter { input, cond } => {
                            self.exec_filter(&env, &mut pipeline, alias, input, cond)?
                        }
                        Operator::Distinct { input } => {
                            self.exec_distinct(&env, &mut pipeline, alias, input)?
                        }
                        Operator::OrderBy { input, field, desc } => {
                            self.exec_order_by(&env, input, field, *desc)?
                        }
                        Operator::Limit { input, n } => {
                            let rel = env
                                .get(input)
                                .ok_or_else(|| PigError::UnknownRelation(input.clone()))?;
                            // Zero-copy prefix view: shares the Arc'd
                            // storage, only the logical length drops.
                            let mut store = rel.store.clone();
                            match &mut store {
                                Store::Rows { len, .. } | Store::Batch { len, .. } => {
                                    *len = (*len).min(*n);
                                }
                            }
                            Relation {
                                store,
                                schema: rel.schema.clone(),
                            }
                        }
                    };
                    let name = format!("{}:{alias}", op_kind(op));
                    let rows_out = rel.len();
                    env.insert(alias.clone(), rel);
                    (name, rows_out)
                }
                Statement::Store { alias, path } => {
                    let rel = env
                        .get(alias)
                        .ok_or_else(|| PigError::UnknownRelation(alias.clone()))?;
                    let mut text = String::new();
                    match &rel.store {
                        Store::Rows { data, len } => {
                            for row in &data[..*len] {
                                text.push_str(&row.to_string());
                                text.push('\n');
                            }
                        }
                        Store::Batch { data, len } => {
                            for i in 0..*len {
                                text.push_str(&data.row_value(i).to_string());
                                text.push('\n');
                            }
                        }
                    }
                    self.dfs.put(path, text.into_bytes(), true)?;
                    stored.push(path.clone());
                    (format!("store:{alias}"), rel.len())
                }
            };
            if let (Some(t), Some(job)) = (&self.tracer, pig_job) {
                let dur = t.now_ns().saturating_sub(t0);
                let mut draft = SpanDraft::new(job, span_name, Category::Pig)
                    .at(t0, dur)
                    .lane(0)
                    .meta("rows_out", rows_out);
                if let Some(p) = prev_span {
                    draft = draft.dep(p);
                }
                prev_span = Some(t.add_span(draft));
            }
        }
        Ok(RunReport { stored, pipeline })
    }

    fn exec_load(
        &self,
        path: &str,
        loader: Option<&str>,
        schema: &[crate::parser::FieldDecl],
    ) -> Result<Relation, PigError> {
        let loader_name = loader.unwrap_or("TextLoader");
        let udf = self
            .registry
            .get(loader_name)
            .ok_or_else(|| PigError::UnknownUdf(loader_name.to_string()))?;
        // The DFS hands back shared bytes; the loader sees a zero-copy
        // window, not a per-load heap copy.
        let bytes = self.dfs.read(path)?;
        let out = udf.exec(&[Value::ByteArray(bytes)])?;
        let rows = match out {
            Value::Bag(rows) => rows,
            other => vec![other],
        };
        let schema_names = if schema.is_empty() {
            default_schema(&rows)
        } else {
            schema.iter().map(|f| f.name.clone()).collect()
        };
        Ok(self.make_relation(rows, schema_names))
    }

    fn exec_foreach(
        &self,
        env: &HashMap<String, Relation>,
        pipeline: &mut Pipeline,
        alias: &str,
        input: &str,
        items: &[GenItem],
    ) -> Result<Relation, PigError> {
        let rel = env
            .get(input)
            .ok_or_else(|| PigError::UnknownRelation(input.to_string()))?;

        // Output schema: declared names where given, else generated.
        let mut schema = Vec::new();
        for (i, it) in items.iter().enumerate() {
            if it.schema.is_empty() {
                // Single unnamed output field per item; FLATTEN of a
                // field keeps its name when it is a plain field ref.
                let name = match &it.expr {
                    Expr::Field(n) => n.clone(),
                    _ => format!("f{i}"),
                };
                schema.push(name);
            } else {
                schema.extend(it.schema.iter().map(|f| f.name.clone()));
            }
        }

        if let Some((batch, len)) = rel.batch() {
            let resolved: Vec<BGenItem> = items
                .iter()
                .map(|it| {
                    Ok(BGenItem {
                        expr: self.resolve_batch(env, &rel.schema, &it.expr)?,
                        flatten: it.flatten,
                    })
                })
                .collect::<Result<_, PigError>>()?;
            let chunks: Vec<(usize, (u32, u32))> = chunk_ranges(len, self.num_map_tasks)
                .into_iter()
                .enumerate()
                .map(|(i, r)| (i, (r.start as u32, (r.end - r.start) as u32)))
                .collect();
            let mapper = BatchForeachMapper {
                batch: Arc::clone(batch),
                items: resolved,
            };
            let out = pipeline.run_map_stage(
                chunks,
                self.num_map_tasks,
                &mapper,
                &self.job_config(&format!("foreach:{alias}")),
            )?;
            let parts: Vec<ColumnBatch> = out.into_iter().map(|(_, b)| b).collect();
            let merged = ColumnBatch::concat(parts);
            let len = merged.rows();
            return Ok(Relation {
                store: Store::Batch {
                    data: Arc::new(merged),
                    len,
                },
                schema,
            });
        }

        let resolved: Vec<RGenItem> = items
            .iter()
            .map(|it| {
                Ok(RGenItem {
                    expr: self.resolve(env, &rel.schema, &it.expr)?,
                    flatten: it.flatten,
                })
            })
            .collect::<Result<_, PigError>>()?;
        let input_rows: Vec<(usize, Value)> = rel.rows_vec().into_iter().enumerate().collect();
        let mapper = ForeachMapper { items: resolved };
        let out = pipeline.run_map_stage(
            input_rows,
            self.num_map_tasks,
            &mapper,
            &self.job_config(&format!("foreach:{alias}")),
        )?;
        let rows: Vec<Value> = out.into_iter().map(|(_, v)| v).collect();
        Ok(self.make_relation(rows, schema))
    }

    fn exec_group(
        &self,
        env: &HashMap<String, Relation>,
        pipeline: &mut Pipeline,
        alias: &str,
        input: &str,
        by: &GroupBy,
    ) -> Result<Relation, PigError> {
        let rel = env
            .get(input)
            .ok_or_else(|| PigError::UnknownRelation(input.to_string()))?;
        let key_field = match by {
            GroupBy::All => None,
            GroupBy::Field(name) => Some(field_index(&rel.schema, input, name)?),
        };
        let schema = vec!["group".to_string(), input.to_string()];

        if let Some((batch, len)) = rel.batch() {
            // Shuffle row *indices*; the wire-size hook prices the
            // full row so SHUFFLE_BYTES matches the value shuffle.
            let input_rows: Vec<(usize, u32)> = (0..len).map(|i| (i, i as u32)).collect();
            let mapper = BatchGroupMapper {
                batch: Arc::clone(batch),
                key_field,
            };
            let groups = pipeline.run_group_stage(
                input_rows,
                self.num_map_tasks,
                &mapper,
                &self.job_config(&format!("group:{alias}")),
            )?;
            // Deterministic group order (keys are unique, so sorting
            // by key equals the row engine's whole-row sort).
            let mut groups = groups;
            groups.sort_by(|a, b| a.0.cmp(&b.0));
            let mut offsets = Vec::with_capacity(groups.len() + 1);
            offsets.push(0u32);
            let mut elem_idx: Vec<u32> = Vec::with_capacity(len);
            let mut keys: Vec<Value> = Vec::with_capacity(groups.len());
            for (key, rows) in groups {
                keys.push(key);
                elem_idx.extend(rows);
                offsets.push(elem_idx.len() as u32);
            }
            // One gather materializes every group's member rows into
            // the bag column's child batch — the grouped runs were
            // moved, not cloned, all the way from the reducers.
            let child = batch.gather(&elem_idx);
            let rows = keys.len();
            let key_col = Column::from_values(keys);
            let bag_col = Column::Bag(BagCol::new(offsets, child, true, None));
            let out = ColumnBatch::from_cols(vec![key_col, bag_col], rows);
            return Ok(Relation {
                store: Store::Batch {
                    data: Arc::new(out),
                    len: rows,
                },
                schema,
            });
        }

        let input_rows: Vec<(usize, Value)> = rel.rows_vec().into_iter().enumerate().collect();
        let out = pipeline.run_stage(
            input_rows,
            self.num_map_tasks,
            &GroupMapper { key_field },
            &GroupReducer,
            &self.job_config(&format!("group:{alias}")),
        )?;
        let mut rows: Vec<Value> = out.into_iter().map(|(_, v)| v).collect();
        // Deterministic group order.
        rows.sort();
        Ok(Relation {
            store: Store::Rows {
                len: rows.len(),
                data: Arc::new(rows),
            },
            // Pig names the bag field after the grouped relation.
            schema,
        })
    }

    fn exec_filter(
        &self,
        env: &HashMap<String, Relation>,
        pipeline: &mut Pipeline,
        alias: &str,
        input: &str,
        cond: &Cond,
    ) -> Result<Relation, PigError> {
        let rel = env
            .get(input)
            .ok_or_else(|| PigError::UnknownRelation(input.to_string()))?;

        if let Some((batch, len)) = rel.batch() {
            let mapper = BatchFilterMapper {
                batch: Arc::clone(batch),
                lhs: self.resolve_batch(env, &rel.schema, &cond.lhs)?,
                op: cond.op,
                rhs: self.resolve_batch(env, &rel.schema, &cond.rhs)?,
            };
            let chunks: Vec<(usize, (u32, u32))> = chunk_ranges(len, self.num_map_tasks)
                .into_iter()
                .enumerate()
                .map(|(i, r)| (i, (r.start as u32, (r.end - r.start) as u32)))
                .collect();
            let out = pipeline.run_map_stage(
                chunks,
                self.num_map_tasks,
                &mapper,
                &self.job_config(&format!("filter:{alias}")),
            )?;
            let merged = ColumnBatch::concat(out.into_iter().map(|(_, b)| b).collect());
            let len = merged.rows();
            return Ok(Relation {
                store: Store::Batch {
                    data: Arc::new(merged),
                    len,
                },
                schema: rel.schema.clone(),
            });
        }

        let mapper = FilterMapper {
            lhs: self.resolve(env, &rel.schema, &cond.lhs)?,
            op: cond.op,
            rhs: self.resolve(env, &rel.schema, &cond.rhs)?,
        };
        let input_rows: Vec<(usize, Value)> = rel.rows_vec().into_iter().enumerate().collect();
        let out = pipeline.run_map_stage(
            input_rows,
            self.num_map_tasks,
            &mapper,
            &self.job_config(&format!("filter:{alias}")),
        )?;
        Ok(Relation {
            store: Store::Rows {
                len: out.len(),
                data: Arc::new(out.into_iter().map(|(_, v)| v).collect()),
            },
            schema: rel.schema.clone(),
        })
    }

    fn exec_distinct(
        &self,
        env: &HashMap<String, Relation>,
        pipeline: &mut Pipeline,
        alias: &str,
        input: &str,
    ) -> Result<Relation, PigError> {
        let rel = env
            .get(input)
            .ok_or_else(|| PigError::UnknownRelation(input.to_string()))?;
        let input_rows: Vec<(usize, Value)> = rel.rows_vec().into_iter().enumerate().collect();
        let out = pipeline.run_stage(
            input_rows,
            self.num_map_tasks,
            &DistinctMapper,
            &DistinctReducer,
            &self.job_config(&format!("distinct:{alias}")),
        )?;
        let mut rows: Vec<Value> = out.into_iter().map(|(k, ())| k).collect();
        rows.sort();
        Ok(self.make_relation(rows, rel.schema.clone()))
    }

    /// `ORDER BY` runs on the driver: real Pig samples the key space
    /// and uses a total-order partitioner across reducers; with
    /// in-memory relations a direct sort is behaviourally identical.
    fn exec_order_by(
        &self,
        env: &HashMap<String, Relation>,
        input: &str,
        field: &str,
        desc: bool,
    ) -> Result<Relation, PigError> {
        let rel = env
            .get(input)
            .ok_or_else(|| PigError::UnknownRelation(input.to_string()))?;
        let idx = field_index(&rel.schema, input, field)?;

        if let Some((batch, len)) = rel.batch() {
            // Stable argsort on the key column, then one gather —
            // no row materialization, no per-comparison key clones.
            let keys: Vec<Value> = (0..len).map(|i| batch.value_at(i, idx)).collect();
            let mut order: Vec<u32> = (0..len as u32).collect();
            order.sort_by(|&a, &b| {
                let ord = keys[a as usize].cmp(&keys[b as usize]);
                if desc {
                    ord.reverse()
                } else {
                    ord
                }
            });
            let sorted = batch.gather(&order);
            return Ok(Relation {
                store: Store::Batch {
                    data: Arc::new(sorted),
                    len,
                },
                schema: rel.schema.clone(),
            });
        }

        let mut rows: Vec<Value> = rel.rows_vec();
        let key = |v: &Value| -> Value {
            v.as_tuple()
                .and_then(|t| t.get(idx))
                .cloned()
                .unwrap_or(Value::Null)
        };
        rows.sort_by(|a, b| {
            let ord = key(a).cmp(&key(b));
            if desc {
                ord.reverse()
            } else {
                ord
            }
        });
        Ok(Relation {
            store: Store::Rows {
                len: rows.len(),
                data: Arc::new(rows),
            },
            schema: rel.schema.clone(),
        })
    }

    fn resolve(
        &self,
        env: &HashMap<String, Relation>,
        schema: &[String],
        expr: &Expr,
    ) -> Result<RExpr, PigError> {
        Ok(match expr {
            Expr::LitLong(v) => RExpr::Const(Value::Long(*v)),
            Expr::LitDouble(v) => RExpr::Const(Value::Double(*v)),
            Expr::LitString(s) => RExpr::Const(Value::CharArray(s.clone())),
            Expr::Field(name) => RExpr::Field(field_index(schema, "<current>", name)?),
            Expr::Dotted { relation, field } => {
                RExpr::Const(self.resolve_scalar_ref(env, relation, field)?)
            }
            Expr::Udf { name, args } => {
                let udf = self
                    .registry
                    .get(name)
                    .ok_or_else(|| PigError::UnknownUdf(name.clone()))?;
                let args = args
                    .iter()
                    .map(|a| self.resolve(env, schema, a))
                    .collect::<Result<_, PigError>>()?;
                RExpr::Udf { udf, args }
            }
        })
    }

    /// Resolve an expression against the batch ABI ([`BExpr`]).
    fn resolve_batch(
        &self,
        env: &HashMap<String, Relation>,
        schema: &[String],
        expr: &Expr,
    ) -> Result<BExpr, PigError> {
        Ok(match expr {
            Expr::LitLong(v) => BExpr::Const(Value::Long(*v)),
            Expr::LitDouble(v) => BExpr::Const(Value::Double(*v)),
            Expr::LitString(s) => BExpr::Const(Value::CharArray(s.clone())),
            Expr::Field(name) => BExpr::Field(field_index(schema, "<current>", name)?),
            Expr::Dotted { relation, field } => {
                BExpr::Const(self.resolve_scalar_ref(env, relation, field)?)
            }
            Expr::Udf { name, args } => {
                let udf = self
                    .registry
                    .get_batch(name)
                    .ok_or_else(|| PigError::UnknownUdf(name.clone()))?;
                let args = args
                    .iter()
                    .map(|a| self.resolve_batch(env, schema, a))
                    .collect::<Result<_, PigError>>()?;
                BExpr::Udf { udf, args }
            }
        })
    }

    /// Scalar cross-relation reference (`I.F`): the relation must
    /// have exactly one row (true for `GROUP ... ALL` output).
    fn resolve_scalar_ref(
        &self,
        env: &HashMap<String, Relation>,
        relation: &str,
        field: &str,
    ) -> Result<Value, PigError> {
        let rel = env
            .get(relation)
            .ok_or_else(|| PigError::UnknownRelation(relation.to_string()))?;
        if rel.len() != 1 {
            return Err(PigError::NotScalar {
                relation: relation.to_string(),
                rows: rel.len(),
            });
        }
        let idx = field_index(&rel.schema, relation, field)?;
        Ok(rel
            .row(0)
            .as_tuple()
            .and_then(|t| t.get(idx))
            .cloned()
            .unwrap_or(Value::Null))
    }
}

/// Operator kind label for span names.
fn op_kind(op: &Operator) -> &'static str {
    match op {
        Operator::Load { .. } => "load",
        Operator::Foreach { .. } => "foreach",
        Operator::Group { .. } => "group",
        Operator::Filter { .. } => "filter",
        Operator::Distinct { .. } => "distinct",
        Operator::OrderBy { .. } => "order",
        Operator::Limit { .. } => "limit",
    }
}

fn field_index(schema: &[String], relation: &str, name: &str) -> Result<usize, PigError> {
    schema
        .iter()
        .position(|f| f == name)
        .ok_or_else(|| PigError::UnknownField {
            relation: relation.to_string(),
            field: name.to_string(),
        })
}

fn default_schema(rows: &[Value]) -> Vec<String> {
    let width = rows
        .first()
        .and_then(Value::as_tuple)
        .map(|t| t.len())
        .unwrap_or(1);
    (0..width).map(|i| format!("f{i}")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_script;
    use mrmc_mapreduce::dfs::DfsConfig;
    use std::collections::HashMap as Map;

    fn dfs() -> Arc<Dfs> {
        Arc::new(
            Dfs::new(DfsConfig {
                block_size: 1024,
                replication: 1,
                nodes: 2,
            })
            .unwrap(),
        )
    }

    fn runner(dfs: &Arc<Dfs>) -> PigRunner {
        let mut r = PigRunner::new(Arc::clone(dfs), UdfRegistry::with_builtins());
        r.num_map_tasks = 3;
        r.num_reducers = 2;
        r
    }

    fn row_runner(dfs: &Arc<Dfs>) -> PigRunner {
        runner(dfs).with_engine(PigEngine::Row)
    }

    #[test]
    fn load_foreach_store_word_upper() {
        let dfs = dfs();
        dfs.put("/in.txt", &b"hello\nworld\n"[..], false).unwrap();
        let script = parse_script(
            "A = LOAD '/in.txt' AS (line:chararray);\
             B = FOREACH A GENERATE UPPER(line);\
             STORE B INTO '/out.txt';",
            &Map::new(),
        )
        .unwrap();
        let report = runner(&dfs).run(&script).unwrap();
        assert_eq!(report.stored, vec!["/out.txt".to_string()]);
        let out = dfs.read("/out.txt").unwrap();
        assert_eq!(out.as_ref(), b"(HELLO)\n(WORLD)\n");
        // One FOREACH stage recorded.
        assert_eq!(report.pipeline.stages().len(), 1);
    }

    #[test]
    fn both_engines_store_identical_bytes() {
        for script_src in [
            "A = LOAD '/in.txt' AS (line:chararray);\
             B = FOREACH A GENERATE UPPER(line);\
             STORE B INTO '/out.txt';",
            "A = LOAD '/in.txt' AS (line:chararray);\
             W = FOREACH A GENERATE FLATTEN(TOKENIZE(line)) AS (word:chararray);\
             G = GROUP W BY word;\
             C = FOREACH G GENERATE group, COUNT(W);\
             O = ORDER C BY group;\
             L = LIMIT O 3;\
             STORE L INTO '/out.txt';",
        ] {
            let script = parse_script(script_src, &Map::new()).unwrap();
            let mut outs = Vec::new();
            for columnar in [false, true] {
                let dfs = dfs();
                dfs.put("/in.txt", &b"c a b\nb a\nz\n"[..], false).unwrap();
                let r = if columnar {
                    runner(&dfs)
                } else {
                    row_runner(&dfs)
                };
                r.run(&script).unwrap();
                outs.push(dfs.read("/out.txt").unwrap());
            }
            assert_eq!(outs[0], outs[1], "engines diverged on: {script_src}");
        }
    }

    #[test]
    fn flatten_tokenize_explodes_rows() {
        let dfs = dfs();
        dfs.put("/t.txt", &b"a b\nc\n"[..], false).unwrap();
        let script = parse_script(
            "A = LOAD '/t.txt' AS (line:chararray);\
             W = FOREACH A GENERATE FLATTEN(TOKENIZE(line)) AS (word:chararray);\
             STORE W INTO '/w.txt';",
            &Map::new(),
        )
        .unwrap();
        runner(&dfs).run(&script).unwrap();
        let out = String::from_utf8(dfs.read("/w.txt").unwrap().to_vec()).unwrap();
        let mut words: Vec<&str> = out.lines().collect();
        words.sort();
        assert_eq!(words, vec!["(a)", "(b)", "(c)"]);
    }

    #[test]
    fn group_all_and_scalar_reference() {
        let dfs = dfs();
        dfs.put("/n.txt", &b"x\ny\nz\n"[..], false).unwrap();
        // COUNT the bag via scalar reference I.A.
        let script = parse_script(
            "A = LOAD '/n.txt' AS (line:chararray);\
             I = GROUP A ALL;\
             C = FOREACH I GENERATE COUNT(A);\
             STORE C INTO '/c.txt';",
            &Map::new(),
        )
        .unwrap();
        // `COUNT(A)`: `A` resolves as a field of I's schema (group, A).
        runner(&dfs).run(&script).unwrap();
        let out = dfs.read("/c.txt").unwrap();
        assert_eq!(out.as_ref(), b"(3)\n");
    }

    #[test]
    fn group_by_field() {
        let dfs = dfs();
        dfs.put("/kv.txt", &b"a 1\nb 2\na 3\n"[..], false).unwrap();
        let script = parse_script(
            "A = LOAD '/kv.txt' AS (line:chararray);\
             B = FOREACH A GENERATE FLATTEN(TOKENIZE(line)) AS (tok:chararray);\
             G = GROUP B BY tok;\
             C = FOREACH G GENERATE group, COUNT(B);\
             STORE C INTO '/g.txt';",
            &Map::new(),
        )
        .unwrap();
        runner(&dfs).run(&script).unwrap();
        let out = String::from_utf8(dfs.read("/g.txt").unwrap().to_vec()).unwrap();
        let mut lines: Vec<&str> = out.lines().collect();
        lines.sort();
        assert_eq!(lines, vec!["(1,1)", "(2,1)", "(3,1)", "(a,2)", "(b,1)"]);
    }

    #[test]
    fn unknown_relation_and_udf_errors() {
        let dfs = dfs();
        let script = parse_script("B = FOREACH missing GENERATE x;", &Map::new()).unwrap();
        assert!(matches!(
            runner(&dfs).run(&script),
            Err(PigError::UnknownRelation(_))
        ));

        dfs.put("/x", &b"a\n"[..], false).unwrap();
        let script = parse_script(
            "A = LOAD '/x' AS (line:chararray); B = FOREACH A GENERATE NoSuch(line);",
            &Map::new(),
        )
        .unwrap();
        assert!(matches!(
            runner(&dfs).run(&script),
            Err(PigError::UnknownUdf(_))
        ));
    }

    #[test]
    fn unknown_field_error() {
        let dfs = dfs();
        dfs.put("/x", &b"a\n"[..], false).unwrap();
        let script = parse_script(
            "A = LOAD '/x' AS (line:chararray); B = FOREACH A GENERATE nope;",
            &Map::new(),
        )
        .unwrap();
        assert!(matches!(
            runner(&dfs).run(&script),
            Err(PigError::UnknownField { .. })
        ));
    }

    #[test]
    fn scalar_reference_requires_single_row() {
        let dfs = dfs();
        dfs.put("/x", &b"a\nb\n"[..], false).unwrap();
        let script = parse_script(
            "A = LOAD '/x' AS (line:chararray);\
             B = FOREACH A GENERATE A.line;",
            &Map::new(),
        )
        .unwrap();
        assert!(matches!(
            runner(&dfs).run(&script),
            Err(PigError::NotScalar { rows: 2, .. })
        ));
    }

    #[test]
    fn filter_by_comparison() {
        let dfs = dfs();
        dfs.put("/n.txt", &b"1\n5\n3\n9\n2\n"[..], false).unwrap();
        // Parse the line to a long via a custom UDF-free route: compare
        // chararrays lexicographically ('5' > '3' etc. works for single
        // digits).
        let script = parse_script(
            "A = LOAD '/n.txt' AS (v:chararray);\
             B = FILTER A BY v >= '3';\
             STORE B INTO '/big.txt';",
            &Map::new(),
        )
        .unwrap();
        runner(&dfs).run(&script).unwrap();
        let out = String::from_utf8(dfs.read("/big.txt").unwrap().to_vec()).unwrap();
        let mut rows: Vec<&str> = out.lines().collect();
        rows.sort();
        assert_eq!(rows, vec!["(3)", "(5)", "(9)"]);
    }

    #[test]
    fn filter_numeric_comparison_via_udf() {
        // COUNT produces longs; numeric comparison with an int literal.
        let dfs = dfs();
        dfs.put("/kv.txt", &b"a a a\nb\n"[..], false).unwrap();
        let script = parse_script(
            "A = LOAD '/kv.txt' AS (line:chararray);\
             W = FOREACH A GENERATE FLATTEN(TOKENIZE(line)) AS (w:chararray);\
             G = GROUP W BY w;\
             C = FOREACH G GENERATE group, COUNT(W);\
             F = FILTER C BY f1 >= 2;\
             STORE F INTO '/freq.txt';",
            &Map::new(),
        )
        .unwrap();
        // Schema of C: [group, f1] (unnamed second item).
        runner(&dfs).run(&script).unwrap();
        let out = String::from_utf8(dfs.read("/freq.txt").unwrap().to_vec()).unwrap();
        assert_eq!(out.trim(), "(a,3)");
    }

    #[test]
    fn distinct_removes_duplicates() {
        let dfs = dfs();
        dfs.put("/d.txt", &b"x\ny\nx\nz\ny\nx\n"[..], false)
            .unwrap();
        let script = parse_script(
            "A = LOAD '/d.txt' AS (v:chararray);\
             D = DISTINCT A;\
             STORE D INTO '/u.txt';",
            &Map::new(),
        )
        .unwrap();
        runner(&dfs).run(&script).unwrap();
        let out = String::from_utf8(dfs.read("/u.txt").unwrap().to_vec()).unwrap();
        assert_eq!(out.lines().count(), 3);
    }

    #[test]
    fn order_by_and_limit() {
        let dfs = dfs();
        dfs.put("/s.txt", &b"pear\napple\nfig\nbanana\n"[..], false)
            .unwrap();
        let script = parse_script(
            "A = LOAD '/s.txt' AS (v:chararray);\
             O = ORDER A BY v DESC;\
             L = LIMIT O 2;\
             STORE L INTO '/top.txt';",
            &Map::new(),
        )
        .unwrap();
        runner(&dfs).run(&script).unwrap();
        let out = String::from_utf8(dfs.read("/top.txt").unwrap().to_vec()).unwrap();
        assert_eq!(out, "(pear)\n(fig)\n");
    }

    #[test]
    fn order_by_ascending_default() {
        let dfs = dfs();
        dfs.put("/s.txt", &b"b\nc\na\n"[..], false).unwrap();
        let script = parse_script(
            "A = LOAD '/s.txt' AS (v:chararray);\
             O = ORDER A BY v;\
             STORE O INTO '/sorted.txt';",
            &Map::new(),
        )
        .unwrap();
        runner(&dfs).run(&script).unwrap();
        let out = String::from_utf8(dfs.read("/sorted.txt").unwrap().to_vec()).unwrap();
        assert_eq!(out, "(a)\n(b)\n(c)\n");
    }

    #[test]
    fn limit_zero_and_oversized() {
        let dfs = dfs();
        dfs.put("/s.txt", &b"a\nb\n"[..], false).unwrap();
        let script = parse_script(
            "A = LOAD '/s.txt' AS (v:chararray);\
             Z = LIMIT A 0;\
             B = LIMIT A 100;\
             STORE Z INTO '/zero.txt';\
             STORE B INTO '/all.txt';",
            &Map::new(),
        )
        .unwrap();
        runner(&dfs).run(&script).unwrap();
        assert_eq!(dfs.read("/zero.txt").unwrap().len(), 0);
        assert_eq!(dfs.read("/all.txt").unwrap().as_ref(), b"(a)\n(b)\n");
    }

    #[test]
    fn limit_shares_storage_instead_of_cloning() {
        let dfs = dfs();
        dfs.put("/s.txt", &b"a\nb\nc\n"[..], false).unwrap();
        let script = parse_script(
            "A = LOAD '/s.txt' AS (v:chararray);\
             L = LIMIT A 2;\
             STORE L INTO '/two.txt';",
            &Map::new(),
        )
        .unwrap();
        for r in [runner(&dfs), row_runner(&dfs)] {
            r.run(&script).unwrap();
            assert_eq!(dfs.read("/two.txt").unwrap().as_ref(), b"(a)\n(b)\n");
        }
    }

    #[test]
    fn pipeline_records_group_shuffle() {
        let dfs = dfs();
        dfs.put("/x", &b"a\nb\nc\n"[..], false).unwrap();
        let script = parse_script(
            "A = LOAD '/x' AS (line:chararray); I = GROUP A ALL;",
            &Map::new(),
        )
        .unwrap();
        let report = runner(&dfs).run(&script).unwrap();
        let stage = &report.pipeline.stages()[0];
        assert_eq!(stage.shuffled_pairs, 3);
        assert!(!stage.reduce_stats.is_empty());
    }

    #[test]
    fn group_stage_stats_identical_across_engines() {
        let dfs = dfs();
        dfs.put("/kv.txt", &b"a 1\nb 2\na 3\nc 9\nb 4\n"[..], false)
            .unwrap();
        let script = parse_script(
            "A = LOAD '/kv.txt' AS (line:chararray);\
             B = FOREACH A GENERATE FLATTEN(TOKENIZE(line)) AS (tok:chararray);\
             G = GROUP B BY tok;",
            &Map::new(),
        )
        .unwrap();
        let col = runner(&dfs).run(&script).unwrap();
        let row = row_runner(&dfs).run(&script).unwrap();
        let (cs, rs) = (&col.pipeline.stages()[1], &row.pipeline.stages()[1]);
        assert_eq!(cs.shuffled_pairs, rs.shuffled_pairs);
        // The index shuffle must charge the same SHUFFLE_BYTES as the
        // value shuffle (wire-size hook prices the full row).
        assert_eq!(cs.shuffled_bytes, rs.shuffled_bytes);
        assert_eq!(cs.shuffle_runs, rs.shuffle_runs);
    }

    #[test]
    fn operator_spans_recorded_with_tracer() {
        let dfs = dfs();
        dfs.put("/x", &b"a\nb\n"[..], false).unwrap();
        let script = parse_script(
            "A = LOAD '/x' AS (line:chararray);\
             B = FOREACH A GENERATE UPPER(line);\
             I = GROUP B ALL;\
             STORE I INTO '/o.txt';",
            &Map::new(),
        )
        .unwrap();
        let tracer = Arc::new(Tracer::new());
        runner(&dfs)
            .traced(Arc::clone(&tracer))
            .run(&script)
            .unwrap();
        let ledger = tracer.ledger();
        let pig_spans: Vec<_> = ledger
            .spans
            .iter()
            .filter(|s| s.category == Category::Pig)
            .collect();
        let names: Vec<&str> = pig_spans.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["load:A", "foreach:B", "group:I", "store:I"]);
        // Operator spans chain so the critical path can walk them.
        assert!(pig_spans[1].deps.contains(&pig_spans[0].id));
        // Engine spans accumulate in the same ledger (FOREACH ran a
        // real map stage under the hood).
        assert!(ledger.spans.iter().any(|s| s.category == Category::Compute));
    }
}
