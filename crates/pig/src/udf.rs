//! User-defined functions and their registry.
//!
//! Pig UDFs in the paper are Java classes (`FastaStorage`,
//! `CalculateMinwiseHash`, …); here a UDF is any `Send + Sync` type
//! implementing [`Udf`]. The executor evaluates argument expressions
//! and calls [`Udf::exec`] once per input tuple; returning a
//! [`Value::Bag`] combined with `FLATTEN(...)` yields multiple output
//! rows, exactly like Pig.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use crate::batch::{Column, ColumnBatch, VarBytesBuilder};
use crate::value::Value;

/// UDF evaluation failure.
#[derive(Debug, Clone, PartialEq)]
pub struct UdfError {
    /// UDF name.
    pub udf: String,
    /// Description.
    pub message: String,
}

impl UdfError {
    /// Convenience constructor.
    pub fn new(udf: impl Into<String>, message: impl Into<String>) -> UdfError {
        UdfError {
            udf: udf.into(),
            message: message.into(),
        }
    }
}

impl fmt::Display for UdfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "UDF {} failed: {}", self.udf, self.message)
    }
}
impl std::error::Error for UdfError {}

/// A user-defined function.
pub trait Udf: Send + Sync {
    /// Registered (and script-visible) name.
    fn name(&self) -> &str;

    /// Evaluate on already-evaluated arguments.
    fn exec(&self, args: &[Value]) -> Result<Value, UdfError>;
}

// ---------------------------------------------------------- batch ABI

/// One argument of a batch-at-a-time UDF call: either a window into
/// a column (one value per row) or a scalar broadcast to every row
/// (literals and `I.F` scalar references — shared, never cloned per
/// row).
#[derive(Debug, Clone, Copy)]
pub enum BatchArg<'a> {
    /// Rows `start..start + len` of `col`.
    Column {
        /// Backing column.
        col: &'a Column,
        /// First row of the window.
        start: usize,
        /// Window length.
        len: usize,
    },
    /// The same value for every row.
    Scalar {
        /// Broadcast value.
        value: &'a Value,
        /// Broadcast length.
        len: usize,
    },
}

impl BatchArg<'_> {
    /// Rows in this argument.
    pub fn len(&self) -> usize {
        match self {
            BatchArg::Column { len, .. } | BatchArg::Scalar { len, .. } => *len,
        }
    }

    /// True for zero-row arguments.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Value for row `i` (materializes; fast paths should match on
    /// the column layout instead).
    pub fn value_at(&self, i: usize) -> Value {
        match self {
            BatchArg::Column { col, start, .. } => col.value_at(start + i),
            BatchArg::Scalar { value, .. } => (*value).clone(),
        }
    }

    /// The backing column window, when this is a column argument.
    pub fn as_column(&self) -> Option<(&Column, usize, usize)> {
        match self {
            BatchArg::Column { col, start, len } => Some((col, *start, *len)),
            BatchArg::Scalar { .. } => None,
        }
    }

    /// The broadcast value, when this is a scalar argument.
    pub fn as_scalar(&self) -> Option<&Value> {
        match self {
            BatchArg::Scalar { value, .. } => Some(value),
            BatchArg::Column { .. } => None,
        }
    }
}

/// Result of a batch UDF call over `rows` input rows.
#[derive(Debug, Clone)]
pub enum BatchOut {
    /// One value per row, already columnar.
    Col(Column),
    /// One value per row, boxed (the executor columnarizes; scalar
    /// adapters and irregular outputs use this).
    Rows(Vec<Value>),
    /// One *tuple* per row, kept columnar — `FLATTEN` of this output
    /// appends the batch's columns without materializing tuples.
    Tup(ColumnBatch),
}

/// A batch-at-a-time UDF: evaluates whole column windows in one
/// call. The contract mirrors the scalar [`Udf`] exactly — for every
/// row `i`, the output value must be bit-identical to
/// `scalar.exec(&[args[0][i], args[1][i], ...])`. Native
/// implementations exist for the hot kernels; every other registered
/// scalar UDF is lifted through [`UdfRegistry::get_batch`]'s adapter.
pub trait BatchUdf: Send + Sync {
    /// Registered (and script-visible) name.
    fn name(&self) -> &str;

    /// Evaluate `rows` rows. Every argument has exactly `rows` rows.
    fn eval_batch(&self, args: &[BatchArg<'_>], rows: usize) -> Result<BatchOut, UdfError>;
}

/// Lifts a scalar [`Udf`] to the batch ABI: one `exec` call per row
/// over a reused argument buffer. Scalar argument slots (literals,
/// `GROUP ALL` aggregates) are filled **once** per batch instead of
/// cloned per row — for Algorithm 3 that alone removes a per-row
/// deep copy of the full minwise-sketch bag.
pub struct ScalarBatchUdf {
    udf: Arc<dyn Udf>,
}

impl ScalarBatchUdf {
    /// Wrap a scalar UDF.
    pub fn new(udf: Arc<dyn Udf>) -> ScalarBatchUdf {
        ScalarBatchUdf { udf }
    }
}

impl BatchUdf for ScalarBatchUdf {
    fn name(&self) -> &str {
        self.udf.name()
    }

    fn eval_batch(&self, args: &[BatchArg<'_>], rows: usize) -> Result<BatchOut, UdfError> {
        // Scalar slots are cloned once here and reused for every row.
        let mut buf: Vec<Value> = args
            .iter()
            .map(|a| a.as_scalar().cloned().unwrap_or(Value::Null))
            .collect();
        let mut out = Vec::with_capacity(rows);
        for i in 0..rows {
            for (slot, arg) in buf.iter_mut().zip(args) {
                if let Some((col, start, _)) = arg.as_column() {
                    *slot = col.value_at(start + i);
                }
            }
            out.push(self.udf.exec(&buf)?);
        }
        Ok(BatchOut::Rows(out))
    }
}

/// Case-insensitive UDF name → implementation map, holding both the
/// scalar row-at-a-time registrations and optional native
/// batch-at-a-time implementations of the same names.
#[derive(Clone, Default)]
pub struct UdfRegistry {
    map: HashMap<String, Arc<dyn Udf>>,
    batch: HashMap<String, Arc<dyn BatchUdf>>,
}

impl UdfRegistry {
    /// Empty registry.
    pub fn new() -> UdfRegistry {
        UdfRegistry::default()
    }

    /// Registry pre-loaded with the generic builtins
    /// (`TOKENIZE`, `COUNT`, `UPPER`, `CONCAT`, `TextLoader`),
    /// including their vectorized implementations.
    pub fn with_builtins() -> UdfRegistry {
        let mut r = UdfRegistry::new();
        r.register(Arc::new(Tokenize));
        r.register(Arc::new(Count));
        r.register(Arc::new(Upper));
        r.register(Arc::new(Concat));
        r.register(Arc::new(TextLoader));
        r.register_batch(Arc::new(BatchUpper));
        r.register_batch(Arc::new(BatchCount));
        r.register_batch(Arc::new(BatchTokenize));
        r
    }

    /// Register (or replace) a scalar UDF under its own name. Any
    /// native batch implementation previously registered under the
    /// name is dropped — the two must stay semantically paired, so a
    /// new scalar falls back to the lifting adapter until a matching
    /// batch kernel is registered again.
    pub fn register(&mut self, udf: Arc<dyn Udf>) {
        let key = udf.name().to_ascii_lowercase();
        self.batch.remove(&key);
        self.map.insert(key, udf);
    }

    /// Register (or replace) a native batch implementation. The
    /// contract: per-row output bit-identical to the scalar UDF of
    /// the same name.
    pub fn register_batch(&mut self, udf: Arc<dyn BatchUdf>) {
        self.batch.insert(udf.name().to_ascii_lowercase(), udf);
    }

    /// Look up by name, case-insensitively.
    pub fn get(&self, name: &str) -> Option<Arc<dyn Udf>> {
        self.map.get(&name.to_ascii_lowercase()).cloned()
    }

    /// Batch-ABI lookup: a native batch kernel when one is
    /// registered, else the scalar UDF lifted through
    /// [`ScalarBatchUdf`] — so *every* registered UDF works under
    /// the columnar engine.
    pub fn get_batch(&self, name: &str) -> Option<Arc<dyn BatchUdf>> {
        let key = name.to_ascii_lowercase();
        if let Some(b) = self.batch.get(&key) {
            return Some(Arc::clone(b));
        }
        self.map
            .get(&key)
            .map(|u| Arc::new(ScalarBatchUdf::new(Arc::clone(u))) as Arc<dyn BatchUdf>)
    }

    /// Registered names, sorted (for error messages).
    pub fn names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.map.keys().cloned().collect();
        v.sort();
        v
    }
}

impl fmt::Debug for UdfRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("UdfRegistry")
            .field("udfs", &self.names())
            .finish()
    }
}

// ---------------------------------------------------------------- builtins

/// `TOKENIZE(chararray)` → bag of single-field word tuples.
struct Tokenize;
impl Udf for Tokenize {
    fn name(&self) -> &str {
        "TOKENIZE"
    }
    fn exec(&self, args: &[Value]) -> Result<Value, UdfError> {
        let s = args
            .first()
            .and_then(Value::as_str)
            .ok_or_else(|| UdfError::new("TOKENIZE", "expected one chararray"))?;
        Ok(Value::bag(
            s.split_whitespace()
                .map(|w| Value::tuple([Value::CharArray(w.to_string())]))
                .collect::<Vec<_>>(),
        ))
    }
}

/// `COUNT(bag)` → long.
struct Count;
impl Udf for Count {
    fn name(&self) -> &str {
        "COUNT"
    }
    fn exec(&self, args: &[Value]) -> Result<Value, UdfError> {
        let b = args
            .first()
            .and_then(Value::as_bag)
            .ok_or_else(|| UdfError::new("COUNT", "expected one bag"))?;
        Ok(Value::Long(b.len() as i64))
    }
}

/// `UPPER(chararray)` → chararray.
struct Upper;
impl Udf for Upper {
    fn name(&self) -> &str {
        "UPPER"
    }
    fn exec(&self, args: &[Value]) -> Result<Value, UdfError> {
        let s = args
            .first()
            .and_then(Value::as_str)
            .ok_or_else(|| UdfError::new("UPPER", "expected one chararray"))?;
        Ok(Value::CharArray(s.to_ascii_uppercase()))
    }
}

/// `CONCAT(a, b)` → chararray.
struct Concat;
impl Udf for Concat {
    fn name(&self) -> &str {
        "CONCAT"
    }
    fn exec(&self, args: &[Value]) -> Result<Value, UdfError> {
        if args.len() != 2 {
            return Err(UdfError::new("CONCAT", "expected two arguments"));
        }
        let a = args[0]
            .as_str()
            .ok_or_else(|| UdfError::new("CONCAT", "arg 1 must be chararray"))?;
        let b = args[1]
            .as_str()
            .ok_or_else(|| UdfError::new("CONCAT", "arg 2 must be chararray"))?;
        Ok(Value::CharArray(format!("{a}{b}")))
    }
}

/// Default loader: one tuple `(line:chararray)` per input line.
pub struct TextLoader;
impl Udf for TextLoader {
    fn name(&self) -> &str {
        "TextLoader"
    }
    fn exec(&self, args: &[Value]) -> Result<Value, UdfError> {
        let bytes = args
            .first()
            .and_then(Value::as_bytes)
            .ok_or_else(|| UdfError::new("TextLoader", "expected file bytes"))?;
        let text = String::from_utf8_lossy(bytes);
        Ok(Value::bag(
            text.lines()
                .map(|l| Value::tuple([Value::CharArray(l.to_string())]))
                .collect::<Vec<_>>(),
        ))
    }
}

// ------------------------------------------------------- batch builtins

/// Vectorized `UPPER`: uppercases the whole string buffer in one
/// pass (ASCII-only transform, identical byte-for-byte to the scalar
/// `str::to_ascii_uppercase` on valid UTF-8).
struct BatchUpper;
impl BatchUdf for BatchUpper {
    fn name(&self) -> &str {
        "UPPER"
    }
    fn eval_batch(&self, args: &[BatchArg<'_>], rows: usize) -> Result<BatchOut, UdfError> {
        let err = || UdfError::new("UPPER", "expected one chararray");
        let arg = args.first().ok_or_else(err)?;
        if let Some(v) = arg.as_scalar() {
            let s = v.as_str().ok_or_else(err)?;
            return Ok(BatchOut::Rows(vec![
                Value::CharArray(s.to_ascii_uppercase());
                rows
            ]));
        }
        let (col, start, len) = arg.as_column().expect("not scalar");
        if let Column::Str { data, validity } = col {
            let all_valid = validity
                .as_ref()
                .is_none_or(|v| (start..start + len).all(|i| v.get(i)));
            if !all_valid {
                return Err(err());
            }
            let mut b = VarBytesBuilder::with_capacity(len);
            for i in start..start + len {
                let mut bytes = data.get(i).to_vec();
                bytes.make_ascii_uppercase();
                b.push(&bytes);
            }
            return Ok(BatchOut::Col(Column::Str {
                data: b.finish(),
                validity: None,
            }));
        }
        // Non-string layouts: defer to per-row checks for the exact
        // scalar errors.
        let mut out = Vec::with_capacity(len);
        for i in 0..len {
            match arg.value_at(i) {
                Value::CharArray(s) => out.push(Value::CharArray(s.to_ascii_uppercase())),
                _ => return Err(err()),
            }
        }
        Ok(BatchOut::Rows(out))
    }
}

/// Vectorized `COUNT`: bag lengths straight off the offsets array.
struct BatchCount;
impl BatchUdf for BatchCount {
    fn name(&self) -> &str {
        "COUNT"
    }
    fn eval_batch(&self, args: &[BatchArg<'_>], rows: usize) -> Result<BatchOut, UdfError> {
        let err = || UdfError::new("COUNT", "expected one bag");
        let arg = args.first().ok_or_else(err)?;
        if let Some(v) = arg.as_scalar() {
            let b = v.as_bag().ok_or_else(err)?;
            return Ok(BatchOut::Rows(vec![Value::Long(b.len() as i64); rows]));
        }
        let (col, start, len) = arg.as_column().expect("not scalar");
        if let Column::Bag(bag) = col {
            let mut data = Vec::with_capacity(len);
            for i in start..start + len {
                if bag.validity.as_ref().is_some_and(|v| !v.get(i)) {
                    return Err(err());
                }
                data.push(bag.bag_len(i) as i64);
            }
            return Ok(BatchOut::Col(Column::Long {
                data,
                validity: None,
            }));
        }
        let mut out = Vec::with_capacity(len);
        for i in 0..len {
            match arg.value_at(i) {
                Value::Bag(b) => out.push(Value::Long(b.len() as i64)),
                _ => return Err(err()),
            }
        }
        Ok(BatchOut::Rows(out))
    }
}

/// Vectorized `TOKENIZE`: builds the word-bag column (offsets + one
/// child string column) without boxing a single `Value`.
struct BatchTokenize;
impl BatchUdf for BatchTokenize {
    fn name(&self) -> &str {
        "TOKENIZE"
    }
    fn eval_batch(&self, args: &[BatchArg<'_>], rows: usize) -> Result<BatchOut, UdfError> {
        let err = || UdfError::new("TOKENIZE", "expected one chararray");
        let arg = args.first().ok_or_else(err)?;
        let mut offsets = Vec::with_capacity(rows + 1);
        offsets.push(0u32);
        let mut words = VarBytesBuilder::with_capacity(rows);
        for i in 0..rows {
            match arg.value_at(i) {
                Value::CharArray(s) => {
                    for w in s.split_whitespace() {
                        words.push(w.as_bytes());
                    }
                }
                _ => return Err(err()),
            }
            offsets.push(words.len() as u32);
        }
        let child = crate::batch::ColumnBatch::single(Column::Str {
            data: words.finish(),
            validity: None,
        });
        Ok(BatchOut::Col(Column::Bag(crate::batch::BagCol::new(
            offsets, child, true, None,
        ))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_case_insensitive() {
        let r = UdfRegistry::with_builtins();
        assert!(r.get("tokenize").is_some());
        assert!(r.get("TOKENIZE").is_some());
        assert!(r.get("Tokenize").is_some());
        assert!(r.get("NoSuchUdf").is_none());
    }

    #[test]
    fn tokenize_splits_words() {
        let r = UdfRegistry::with_builtins();
        let out = r
            .get("TOKENIZE")
            .unwrap()
            .exec(&[Value::CharArray("a b  c".into())])
            .unwrap();
        let bag = out.as_bag().unwrap();
        assert_eq!(bag.len(), 3);
        assert_eq!(bag[0], Value::tuple([Value::CharArray("a".into())]));
    }

    #[test]
    fn count_counts() {
        let r = UdfRegistry::with_builtins();
        let out = r
            .get("COUNT")
            .unwrap()
            .exec(&[Value::bag([Value::Int(1), Value::Int(2)])])
            .unwrap();
        assert_eq!(out, Value::Long(2));
    }

    #[test]
    fn wrong_arg_types_error() {
        let r = UdfRegistry::with_builtins();
        assert!(r.get("COUNT").unwrap().exec(&[Value::Int(1)]).is_err());
        assert!(r.get("TOKENIZE").unwrap().exec(&[]).is_err());
        assert!(r
            .get("CONCAT")
            .unwrap()
            .exec(&[Value::CharArray("x".into())])
            .is_err());
    }

    #[test]
    fn text_loader_lines() {
        let out = TextLoader
            .exec(&[Value::ByteArray(bytes::Bytes::from_static(b"one\ntwo\n"))])
            .unwrap();
        assert_eq!(out.as_bag().unwrap().len(), 2);
    }

    #[test]
    fn batch_builtins_match_scalar() {
        let r = UdfRegistry::with_builtins();
        let inputs = vec![
            Value::CharArray("hello World".into()),
            Value::CharArray("".into()),
            Value::CharArray("a b  c".into()),
        ];
        let col = Column::from_values(inputs.clone());
        for name in ["UPPER", "TOKENIZE"] {
            let scalar = r.get(name).unwrap();
            let batch = r.get_batch(name).unwrap();
            let args = [BatchArg::Column {
                col: &col,
                start: 0,
                len: inputs.len(),
            }];
            let out = batch.eval_batch(&args, inputs.len()).unwrap();
            let got: Vec<Value> = match out {
                BatchOut::Col(c) => (0..c.len()).map(|i| c.value_at(i)).collect(),
                BatchOut::Rows(v) => v,
                BatchOut::Tup(b) => b.to_rows(),
            };
            let want: Vec<Value> = inputs
                .iter()
                .map(|v| scalar.exec(std::slice::from_ref(v)).unwrap())
                .collect();
            assert_eq!(got, want, "{name}");
        }
    }

    #[test]
    fn batch_count_reads_offsets() {
        let r = UdfRegistry::with_builtins();
        let col = Column::from_values(vec![
            Value::bag([Value::tuple([Value::Int(1)]), Value::tuple([Value::Int(2)])]),
            Value::bag([]),
        ]);
        let out = r
            .get_batch("count")
            .unwrap()
            .eval_batch(
                &[BatchArg::Column {
                    col: &col,
                    start: 0,
                    len: 2,
                }],
                2,
            )
            .unwrap();
        let BatchOut::Col(c) = out else {
            panic!("expected columnar output")
        };
        assert_eq!(c.value_at(0), Value::Long(2));
        assert_eq!(c.value_at(1), Value::Long(0));
    }

    #[test]
    fn scalar_adapter_lifts_any_udf() {
        let r = UdfRegistry::with_builtins();
        // CONCAT has no native batch kernel: the adapter covers it,
        // broadcasting the scalar argument without per-row clones.
        let batch = r.get_batch("CONCAT").unwrap();
        let col = Column::from_values(vec![
            Value::CharArray("a".into()),
            Value::CharArray("b".into()),
        ]);
        let suffix = Value::CharArray("!".into());
        let out = batch
            .eval_batch(
                &[
                    BatchArg::Column {
                        col: &col,
                        start: 0,
                        len: 2,
                    },
                    BatchArg::Scalar {
                        value: &suffix,
                        len: 2,
                    },
                ],
                2,
            )
            .unwrap();
        let BatchOut::Rows(rows) = out else {
            panic!("adapter returns rows")
        };
        assert_eq!(
            rows,
            vec![Value::CharArray("a!".into()), Value::CharArray("b!".into())]
        );
    }

    #[test]
    fn scalar_registration_drops_stale_batch_kernel() {
        struct Custom;
        impl Udf for Custom {
            fn name(&self) -> &str {
                "UPPER"
            }
            fn exec(&self, _args: &[Value]) -> Result<Value, UdfError> {
                Ok(Value::CharArray("custom".into()))
            }
        }
        let mut r = UdfRegistry::with_builtins();
        r.register(Arc::new(Custom));
        let out = r.get_batch("upper").unwrap().eval_batch(&[], 1).unwrap();
        let BatchOut::Rows(rows) = out else {
            panic!("adapter path expected")
        };
        assert_eq!(rows, vec![Value::CharArray("custom".into())]);
    }

    #[test]
    fn register_replaces() {
        struct Custom;
        impl Udf for Custom {
            fn name(&self) -> &str {
                "COUNT"
            }
            fn exec(&self, _args: &[Value]) -> Result<Value, UdfError> {
                Ok(Value::Long(-1))
            }
        }
        let mut r = UdfRegistry::with_builtins();
        r.register(Arc::new(Custom));
        assert_eq!(r.get("count").unwrap().exec(&[]).unwrap(), Value::Long(-1));
    }
}
