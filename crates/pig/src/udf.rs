//! User-defined functions and their registry.
//!
//! Pig UDFs in the paper are Java classes (`FastaStorage`,
//! `CalculateMinwiseHash`, …); here a UDF is any `Send + Sync` type
//! implementing [`Udf`]. The executor evaluates argument expressions
//! and calls [`Udf::exec`] once per input tuple; returning a
//! [`Value::Bag`] combined with `FLATTEN(...)` yields multiple output
//! rows, exactly like Pig.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use crate::value::Value;

/// UDF evaluation failure.
#[derive(Debug, Clone, PartialEq)]
pub struct UdfError {
    /// UDF name.
    pub udf: String,
    /// Description.
    pub message: String,
}

impl UdfError {
    /// Convenience constructor.
    pub fn new(udf: impl Into<String>, message: impl Into<String>) -> UdfError {
        UdfError {
            udf: udf.into(),
            message: message.into(),
        }
    }
}

impl fmt::Display for UdfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "UDF {} failed: {}", self.udf, self.message)
    }
}
impl std::error::Error for UdfError {}

/// A user-defined function.
pub trait Udf: Send + Sync {
    /// Registered (and script-visible) name.
    fn name(&self) -> &str;

    /// Evaluate on already-evaluated arguments.
    fn exec(&self, args: &[Value]) -> Result<Value, UdfError>;
}

/// Case-insensitive UDF name → implementation map.
#[derive(Clone, Default)]
pub struct UdfRegistry {
    map: HashMap<String, Arc<dyn Udf>>,
}

impl UdfRegistry {
    /// Empty registry.
    pub fn new() -> UdfRegistry {
        UdfRegistry::default()
    }

    /// Registry pre-loaded with the generic builtins
    /// (`TOKENIZE`, `COUNT`, `UPPER`, `CONCAT`, `TextLoader`).
    pub fn with_builtins() -> UdfRegistry {
        let mut r = UdfRegistry::new();
        r.register(Arc::new(Tokenize));
        r.register(Arc::new(Count));
        r.register(Arc::new(Upper));
        r.register(Arc::new(Concat));
        r.register(Arc::new(TextLoader));
        r
    }

    /// Register (or replace) a UDF under its own name.
    pub fn register(&mut self, udf: Arc<dyn Udf>) {
        self.map.insert(udf.name().to_ascii_lowercase(), udf);
    }

    /// Look up by name, case-insensitively.
    pub fn get(&self, name: &str) -> Option<Arc<dyn Udf>> {
        self.map.get(&name.to_ascii_lowercase()).cloned()
    }

    /// Registered names, sorted (for error messages).
    pub fn names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.map.keys().cloned().collect();
        v.sort();
        v
    }
}

impl fmt::Debug for UdfRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("UdfRegistry")
            .field("udfs", &self.names())
            .finish()
    }
}

// ---------------------------------------------------------------- builtins

/// `TOKENIZE(chararray)` → bag of single-field word tuples.
struct Tokenize;
impl Udf for Tokenize {
    fn name(&self) -> &str {
        "TOKENIZE"
    }
    fn exec(&self, args: &[Value]) -> Result<Value, UdfError> {
        let s = args
            .first()
            .and_then(Value::as_str)
            .ok_or_else(|| UdfError::new("TOKENIZE", "expected one chararray"))?;
        Ok(Value::bag(
            s.split_whitespace()
                .map(|w| Value::tuple([Value::CharArray(w.to_string())]))
                .collect::<Vec<_>>(),
        ))
    }
}

/// `COUNT(bag)` → long.
struct Count;
impl Udf for Count {
    fn name(&self) -> &str {
        "COUNT"
    }
    fn exec(&self, args: &[Value]) -> Result<Value, UdfError> {
        let b = args
            .first()
            .and_then(Value::as_bag)
            .ok_or_else(|| UdfError::new("COUNT", "expected one bag"))?;
        Ok(Value::Long(b.len() as i64))
    }
}

/// `UPPER(chararray)` → chararray.
struct Upper;
impl Udf for Upper {
    fn name(&self) -> &str {
        "UPPER"
    }
    fn exec(&self, args: &[Value]) -> Result<Value, UdfError> {
        let s = args
            .first()
            .and_then(Value::as_str)
            .ok_or_else(|| UdfError::new("UPPER", "expected one chararray"))?;
        Ok(Value::CharArray(s.to_ascii_uppercase()))
    }
}

/// `CONCAT(a, b)` → chararray.
struct Concat;
impl Udf for Concat {
    fn name(&self) -> &str {
        "CONCAT"
    }
    fn exec(&self, args: &[Value]) -> Result<Value, UdfError> {
        if args.len() != 2 {
            return Err(UdfError::new("CONCAT", "expected two arguments"));
        }
        let a = args[0]
            .as_str()
            .ok_or_else(|| UdfError::new("CONCAT", "arg 1 must be chararray"))?;
        let b = args[1]
            .as_str()
            .ok_or_else(|| UdfError::new("CONCAT", "arg 2 must be chararray"))?;
        Ok(Value::CharArray(format!("{a}{b}")))
    }
}

/// Default loader: one tuple `(line:chararray)` per input line.
pub struct TextLoader;
impl Udf for TextLoader {
    fn name(&self) -> &str {
        "TextLoader"
    }
    fn exec(&self, args: &[Value]) -> Result<Value, UdfError> {
        let bytes = args
            .first()
            .and_then(Value::as_bytes)
            .ok_or_else(|| UdfError::new("TextLoader", "expected file bytes"))?;
        let text = String::from_utf8_lossy(bytes);
        Ok(Value::bag(
            text.lines()
                .map(|l| Value::tuple([Value::CharArray(l.to_string())]))
                .collect::<Vec<_>>(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_case_insensitive() {
        let r = UdfRegistry::with_builtins();
        assert!(r.get("tokenize").is_some());
        assert!(r.get("TOKENIZE").is_some());
        assert!(r.get("Tokenize").is_some());
        assert!(r.get("NoSuchUdf").is_none());
    }

    #[test]
    fn tokenize_splits_words() {
        let r = UdfRegistry::with_builtins();
        let out = r
            .get("TOKENIZE")
            .unwrap()
            .exec(&[Value::CharArray("a b  c".into())])
            .unwrap();
        let bag = out.as_bag().unwrap();
        assert_eq!(bag.len(), 3);
        assert_eq!(bag[0], Value::tuple([Value::CharArray("a".into())]));
    }

    #[test]
    fn count_counts() {
        let r = UdfRegistry::with_builtins();
        let out = r
            .get("COUNT")
            .unwrap()
            .exec(&[Value::bag([Value::Int(1), Value::Int(2)])])
            .unwrap();
        assert_eq!(out, Value::Long(2));
    }

    #[test]
    fn wrong_arg_types_error() {
        let r = UdfRegistry::with_builtins();
        assert!(r.get("COUNT").unwrap().exec(&[Value::Int(1)]).is_err());
        assert!(r.get("TOKENIZE").unwrap().exec(&[]).is_err());
        assert!(r
            .get("CONCAT")
            .unwrap()
            .exec(&[Value::CharArray("x".into())])
            .is_err());
    }

    #[test]
    fn text_loader_lines() {
        let out = TextLoader
            .exec(&[Value::ByteArray(b"one\ntwo\n".to_vec())])
            .unwrap();
        assert_eq!(out.as_bag().unwrap().len(), 2);
    }

    #[test]
    fn register_replaces() {
        struct Custom;
        impl Udf for Custom {
            fn name(&self) -> &str {
                "COUNT"
            }
            fn exec(&self, _args: &[Value]) -> Result<Value, UdfError> {
                Ok(Value::Long(-1))
            }
        }
        let mut r = UdfRegistry::with_builtins();
        r.register(Arc::new(Custom));
        assert_eq!(r.get("count").unwrap().exec(&[]).unwrap(), Value::Long(-1));
    }
}
