//! The tracing contract, end to end.
//!
//! * **Passivity** — attaching a [`Tracer`] must not change a job's
//!   output, counters, or recovery ledger.
//! * **Determinism** — the span ledger's *signature* (everything but
//!   wall-clock timestamps) depends only on the input and the fault
//!   plan: identical across repeated runs and across worker-pool
//!   sizes, including under injected panics, stragglers, node deaths
//!   and fetch failures.
//! * **Simulated-time fidelity** — the trace written by
//!   [`ClusterSpec::simulate_job_traced`] tiles the schedule exactly:
//!   its critical path reproduces the untraced simulator's makespan
//!   and attributes ≥ 95 % of it (the ISSUE acceptance bar; the
//!   construction actually achieves ~100 %).
//! * **Counters** — merge/snapshot semantics and cross-stage totals,
//!   with the shuffle counter keys present uniformly on every stage.

use std::sync::Arc;

use mrmc_chaos::{FaultPlan, Phase};
use mrmc_mapreduce::engine::run_job_with_faults;
use mrmc_mapreduce::job::{Counters, JobConfig, Mapper, Reducer, ShuffleSized, TaskContext};
use mrmc_mapreduce::pipeline::Pipeline;
use mrmc_mapreduce::simcluster::{ClusterSpec, JobCostModel, ShuffleVolume};
use mrmc_mapreduce::{critical_path, NoFaults, RecoveryCounters, Tracer};

struct Tokenize;
impl Mapper for Tokenize {
    type InKey = usize;
    type InValue = String;
    type OutKey = String;
    type OutValue = u64;
    fn map(&self, _k: usize, v: String, ctx: &mut TaskContext<String, u64>) {
        for w in v.split_whitespace() {
            ctx.emit(w.to_string(), 1);
        }
        ctx.count("WORDS_SEEN", v.split_whitespace().count() as u64);
    }
    fn key_wire_size(&self, key: &String) -> usize {
        key.shuffle_size()
    }
    fn value_wire_size(&self, value: &u64) -> usize {
        value.shuffle_size()
    }
}

struct Sum;
impl Reducer for Sum {
    type InKey = String;
    type InValue = u64;
    type OutKey = String;
    type OutValue = u64;
    fn reduce(&self, k: String, vs: Vec<u64>, ctx: &mut TaskContext<String, u64>) {
        ctx.emit(k, vs.iter().sum());
    }
}

fn input() -> Vec<(usize, String)> {
    (0..48)
        .map(|i| (i, format!("alpha{} beta{} gamma gamma", i % 5, i % 11)))
        .collect()
}

fn chaotic_plan() -> FaultPlan {
    FaultPlan::new()
        .task_panic(0, Phase::Map, 1, 2)
        .task_panic(0, Phase::Reduce, 0, 1)
        .task_slowdown(0, Phase::Map, 3, 15)
        .node_death_after_map(0, 2)
        .shuffle_fetch_fail(0, 2, 1, 2)
}

/// Quietly swallow the engine's injected-panic payloads so test output
/// stays readable (the engine catches and retries them).
fn hush_injected_panics() {
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<String>()
            .map(|s| s.starts_with("chaos: injected panic"))
            .unwrap_or(false);
        if !injected {
            default_hook(info);
        }
    }));
}

#[test]
fn tracing_is_passive() {
    let config = JobConfig::named("wc").reducers(4).nodes(6);
    let plain = run_job_with_faults(input(), 6, &Tokenize, &Sum, &config, &NoFaults).unwrap();
    let tracer = Arc::new(Tracer::new());
    let traced_cfg = config.traced(tracer.clone());
    let traced = run_job_with_faults(input(), 6, &Tokenize, &Sum, &traced_cfg, &NoFaults).unwrap();
    assert_eq!(plain.output, traced.output);
    assert_eq!(plain.counters.snapshot(), traced.counters.snapshot());
    assert_eq!(plain.recovery, traced.recovery);

    let ledger = tracer.ledger();
    assert_eq!(ledger.jobs, vec!["wc".to_string()]);
    // 6 maps + 1 shuffle barrier + 4 reduces + job:setup.
    assert_eq!(ledger.spans.len(), 12);
    assert!(ledger.spans.iter().any(|s| s.name == "shuffle"));
    // The shuffle barrier depends on every map task's final span.
    let shuffle = ledger.spans.iter().find(|s| s.name == "shuffle").unwrap();
    assert_eq!(shuffle.deps.len(), 6);
}

#[test]
fn ledger_signature_stable_across_worker_counts_under_faults() {
    hush_injected_panics();
    let mut signatures = Vec::new();
    let mut outputs = Vec::new();
    for workers in [1, 2, 8] {
        let tracer = Arc::new(Tracer::new());
        let config = JobConfig::named("wc-chaos")
            .reducers(4)
            .nodes(6)
            .attempts(4)
            .workers(workers)
            .traced(tracer.clone());
        let run = run_job_with_faults(
            input(),
            6,
            &Tokenize,
            &Sum,
            &config,
            &chaotic_plan().injector(),
        )
        .unwrap();
        let mut output = run.output;
        output.sort();
        outputs.push(output);
        signatures.push(tracer.ledger().signature());
    }
    assert_eq!(outputs[0], outputs[1]);
    assert_eq!(outputs[0], outputs[2]);
    assert_eq!(
        signatures[0], signatures[1],
        "1-worker and 2-worker ledgers diverge"
    );
    assert_eq!(
        signatures[0], signatures[2],
        "1-worker and 8-worker ledgers diverge"
    );
    // The plan's effects are all on the ledger: retried attempts,
    // node-death re-execution, fetch retries.
    let sig = signatures[0].join("\n");
    assert!(sig.contains("pass=\"node_loss\"") || sig.contains("node_loss"));
    assert!(sig.contains("fetch_retry"));
    assert!(sig.contains("panic"));
}

/// Two runs of the *same seeded chaos plan* must export byte-identical
/// metrics snapshots: the `engine.*` keys are derived from record
/// counts, shuffle volumes and recovery counters — never wall-clock —
/// so a fixed plan pins every counter and histogram bucket.
#[test]
fn seeded_chaos_plan_pins_the_metrics_snapshot() {
    hush_injected_panics();
    let snapshot_text = |seed: u64| {
        let plan = FaultPlan::random(seed, &mrmc_chaos::ChaosProfile::default());
        let mut pipeline = Pipeline::new("chaos-metrics");
        pipeline
            .run_stage_with_faults(
                input(),
                5,
                &Tokenize,
                &Sum,
                &JobConfig::named("wc-metrics")
                    .reducers(3)
                    .nodes(6)
                    .attempts(4),
                &plan.injector(),
            )
            .unwrap();
        let metrics = mrmc_obs::MetricsRegistry::new();
        pipeline.export_metrics(&metrics);
        metrics.snapshot().render_text()
    };
    let first = snapshot_text(7);
    assert_eq!(first, snapshot_text(7), "seeded plan must pin the snapshot");
    assert!(first.contains("engine.recovery."));
    assert!(first.contains("histogram engine.map.records_in"));
    // A different seed is allowed to differ — and with this profile the
    // fault mix does, via the recovery counters.
    assert_ne!(first, snapshot_text(8), "distinct seeds diverge");
}

#[test]
fn repeated_chaotic_runs_yield_identical_ledgers() {
    hush_injected_panics();
    let run = || {
        let tracer = Arc::new(Tracer::new());
        let config = JobConfig::named("wc-replay")
            .reducers(3)
            .nodes(6)
            .attempts(4)
            .traced(tracer.clone());
        run_job_with_faults(
            input(),
            5,
            &Tokenize,
            &Sum,
            &config,
            &chaotic_plan().injector(),
        )
        .unwrap();
        tracer.ledger().signature()
    };
    assert_eq!(run(), run());
}

#[test]
fn critical_path_matches_simulated_makespan_on_synthetic_schedules() {
    let model = JobCostModel::default();
    let volume = ShuffleVolume {
        records: 10_000,
        bytes: 400_000,
        runs: 24,
    };
    // Uneven map costs (one dominant task), short reduces; a recovery
    // ledger that charges extra executions to the schedule.
    let map_costs: Vec<f64> = (0..17).map(|i| 0.5 + 0.37 * (i % 5) as f64).collect();
    let reduce_costs = vec![1.25, 0.8, 2.0, 0.4];
    let mut recovery = RecoveryCounters::new();
    recovery.tasks_retried = 2;
    recovery.speculative_wins = 1;

    for nodes in [2, 4, 6, 12] {
        let cluster = ClusterSpec::m1_large(nodes);
        let untraced =
            cluster.simulate_job_shuffle(&model, &map_costs, volume, &reduce_costs, recovery);
        let tracer = Tracer::new();
        let traced = cluster.simulate_job_traced(
            &model,
            &map_costs,
            volume,
            &reduce_costs,
            recovery,
            &tracer,
            "synthetic",
            0.0,
        );
        assert_eq!(untraced, traced, "{nodes} nodes: reports diverge");

        let ledger = tracer.ledger();
        let cp = critical_path(&ledger);
        let makespan_s = cp.makespan_ns as f64 / 1e9;
        let expected = untraced.total();
        assert!(
            (makespan_s - expected).abs() < 1e-6,
            "{nodes} nodes: trace makespan {makespan_s} vs simulated total {expected}"
        );
        assert!(
            cp.coverage() >= 0.95,
            "{nodes} nodes: coverage {}",
            cp.coverage()
        );
        // Recovery executions appear on the simulated trace too.
        assert!(ledger
            .spans
            .iter()
            .any(|s| s.category == mrmc_mapreduce::obs::trace::Category::Recovery));
    }
}

#[test]
fn counters_merge_accumulates_and_snapshot_sorts() {
    let a = Counters::new();
    a.add("B_SECOND", 2);
    a.add("A_FIRST", 1);
    let b = Counters::new();
    b.add("B_SECOND", 40);
    b.add("C_THIRD", 7);
    a.merge(&b);
    assert_eq!(a.get("A_FIRST"), 1);
    assert_eq!(a.get("B_SECOND"), 42);
    assert_eq!(a.get("C_THIRD"), 7);
    assert_eq!(a.get("NEVER_WRITTEN"), 0);
    let snap = a.snapshot();
    assert_eq!(
        snap,
        vec![
            ("A_FIRST".to_string(), 1),
            ("B_SECOND".to_string(), 42),
            ("C_THIRD".to_string(), 7),
        ]
    );
    // Merging is additive, not idempotent.
    a.merge(&b);
    assert_eq!(a.get("B_SECOND"), 82);
}

/// A map-only identity stage for the cross-stage counter test.
struct Passthrough;
impl Mapper for Passthrough {
    type InKey = String;
    type InValue = u64;
    type OutKey = String;
    type OutValue = u64;
    fn map(&self, k: String, v: u64, ctx: &mut TaskContext<String, u64>) {
        ctx.emit(k, v);
    }
    fn key_wire_size(&self, key: &String) -> usize {
        key.shuffle_size()
    }
    fn value_wire_size(&self, value: &u64) -> usize {
        value.shuffle_size()
    }
}

#[test]
fn counter_total_spans_stages_and_shuffle_keys_are_uniform() {
    let mut pipeline = Pipeline::new("totals");
    let stage1 = pipeline
        .run_stage(
            input(),
            4,
            &Tokenize,
            &Sum,
            &JobConfig::named("count").reducers(3),
        )
        .unwrap();
    let words: u64 = stage1.iter().map(|(_, n)| n).sum();
    pipeline
        .run_map_stage(stage1, 3, &Passthrough, &JobConfig::named("pass"))
        .unwrap();

    // WORDS_SEEN is only written by stage 1; the totals must still see
    // it through the per-stage snapshots.
    assert_eq!(pipeline.counter_total("WORDS_SEEN"), words);
    assert_eq!(
        pipeline.counter_total("MAP_INPUT_RECORDS"),
        48 + pipeline.stages()[1].counter("MAP_INPUT_RECORDS")
    );
    // Both stages expose the full shuffle key set — the map-only stage
    // reports zeros rather than omitting the keys.
    for stage in pipeline.stages() {
        let keys: Vec<&str> = stage.counters.iter().map(|(k, _)| k.as_str()).collect();
        for key in ["SHUFFLED_PAIRS", "SHUFFLE_BYTES", "SHUFFLE_RUNS"] {
            assert!(keys.contains(&key), "stage {} lacks {key}", stage.name);
        }
        assert_eq!(
            stage.shuffle_volume().records,
            stage.counter("SHUFFLED_PAIRS")
        );
    }
    assert_eq!(pipeline.stages()[1].shuffle_volume().records, 0);
}
