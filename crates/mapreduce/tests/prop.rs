//! Property-based tests for the Map-Reduce substrate.

use proptest::prelude::*;

use bytes::Bytes;
use mrmc_mapreduce::dfs::{Dfs, DfsConfig, FastaSplitReader};
use mrmc_mapreduce::engine::{run_job, run_job_with_combiner};
use mrmc_mapreduce::job::{Combiner, JobConfig, Mapper, Reducer, TaskContext};
use mrmc_mapreduce::simcluster::lpt_makespan;
use std::collections::HashMap;

struct WcMapper;
impl Mapper for WcMapper {
    type InKey = usize;
    type InValue = String;
    type OutKey = String;
    type OutValue = u64;
    fn map(&self, _k: usize, line: String, ctx: &mut TaskContext<String, u64>) {
        for w in line.split_whitespace() {
            ctx.emit(w.to_string(), 1);
        }
    }
}

struct SumReducer;
impl Reducer for SumReducer {
    type InKey = String;
    type InValue = u64;
    type OutKey = String;
    type OutValue = u64;
    fn reduce(&self, k: String, vs: Vec<u64>, ctx: &mut TaskContext<String, u64>) {
        ctx.emit(k, vs.iter().sum());
    }
}

struct SumCombiner;
impl Combiner for SumCombiner {
    type Key = String;
    type Value = u64;
    fn combine(&self, _k: &String, vs: Vec<u64>) -> Vec<u64> {
        vec![vs.iter().sum()]
    }
}

fn word() -> impl Strategy<Value = String> {
    "[a-e]{1,3}"
}

proptest! {
    /// The distributed word count equals the sequential one, for any
    /// input, task count, reducer count and worker count — and the
    /// combiner never changes the answer.
    #[test]
    fn wordcount_equals_sequential(
        lines in proptest::collection::vec(
            proptest::collection::vec(word(), 0..8).prop_map(|ws| ws.join(" ")),
            0..20
        ),
        map_tasks in 1usize..6,
        reducers in 1usize..5,
        workers in 1usize..5,
    ) {
        let mut expected: HashMap<String, u64> = HashMap::new();
        for line in &lines {
            for w in line.split_whitespace() {
                *expected.entry(w.to_string()).or_insert(0) += 1;
            }
        }
        let input: Vec<(usize, String)> = lines.into_iter().enumerate().collect();
        let cfg = JobConfig::named("wc").reducers(reducers).workers(workers);

        let plain = run_job(input.clone(), map_tasks, &WcMapper, &SumReducer, &cfg).unwrap();
        let got: HashMap<String, u64> = plain.output.into_iter().collect();
        prop_assert_eq!(&got, &expected);

        let combined =
            run_job_with_combiner(input, map_tasks, &WcMapper, &SumCombiner, &SumReducer, &cfg)
                .unwrap();
        let got2: HashMap<String, u64> = combined.output.into_iter().collect();
        prop_assert_eq!(&got2, &expected);
        prop_assert!(combined.shuffled_pairs <= plain.shuffled_pairs);
    }

    /// DFS round-trips arbitrary content through any block size, and
    /// split ranges tile the file exactly.
    #[test]
    fn dfs_round_trip_and_splits(
        content in proptest::collection::vec(any::<u8>(), 0..2000),
        block in 1usize..257,
    ) {
        let dfs = Dfs::new(DfsConfig { block_size: block, replication: 1, nodes: 2 }).unwrap();
        dfs.put("/f", content.clone(), false).unwrap();
        let read_back = dfs.read("/f").unwrap();
        prop_assert_eq!(read_back.as_ref(), &content[..]);
        let splits = dfs.splits("/f").unwrap();
        let mut cursor = 0usize;
        for s in &splits {
            prop_assert_eq!(s.range.start, cursor);
            cursor = s.range.end;
        }
        prop_assert_eq!(cursor, content.len());
    }

    /// Every FASTA record is owned by exactly one split, for any
    /// record set and block size.
    #[test]
    fn fasta_records_partitioned_once(
        seqs in proptest::collection::vec("[ACGT]{1,30}", 1..12),
        block in 4usize..64,
    ) {
        let mut fasta = String::new();
        for (i, s) in seqs.iter().enumerate() {
            fasta.push_str(&format!(">r{i}\n{s}\n"));
        }
        let bytes = Bytes::from(fasta.into_bytes());
        let mut owned = 0usize;
        let mut cursor = 0usize;
        while cursor < bytes.len() {
            let end = (cursor + block).min(bytes.len());
            owned += FastaSplitReader::records_in(&bytes, cursor..end).len();
            cursor = end;
        }
        prop_assert_eq!(owned, seqs.len());
    }

    /// LPT makespan bounds: max(cost) ≤ makespan ≤ total(cost), and
    /// makespan ≥ total/slots.
    #[test]
    fn lpt_bounds(
        costs in proptest::collection::vec(0.01f64..10.0, 1..40),
        slots in 1usize..16,
    ) {
        let mk = lpt_makespan(&costs, slots);
        let total: f64 = costs.iter().sum();
        let max = costs.iter().cloned().fold(0.0, f64::max);
        prop_assert!(mk >= max - 1e-9);
        prop_assert!(mk <= total + 1e-9);
        prop_assert!(mk >= total / slots as f64 - 1e-9);
    }

    /// Makespan never increases with more slots.
    #[test]
    fn lpt_monotone_in_slots(costs in proptest::collection::vec(0.01f64..10.0, 1..30)) {
        let mut prev = f64::INFINITY;
        for slots in 1..8 {
            let mk = lpt_makespan(&costs, slots);
            prop_assert!(mk <= prev + 1e-9);
            prev = mk;
        }
    }
}
