//! Property-based tests for the Map-Reduce substrate.

use proptest::prelude::*;

use bytes::Bytes;
use mrmc_mapreduce::dfs::{Dfs, DfsConfig, FastaSplitReader};
use mrmc_mapreduce::engine::{run_job, run_job_with_combiner};
use mrmc_mapreduce::job::{Combiner, JobConfig, Mapper, Reducer, TaskContext};
use mrmc_mapreduce::simcluster::{lpt_makespan, ClusterSpec, JobCostModel};
use mrmc_mapreduce::RecoveryCounters;
use std::collections::HashMap;

struct WcMapper;
impl Mapper for WcMapper {
    type InKey = usize;
    type InValue = String;
    type OutKey = String;
    type OutValue = u64;
    fn map(&self, _k: usize, line: String, ctx: &mut TaskContext<String, u64>) {
        for w in line.split_whitespace() {
            ctx.emit(w.to_string(), 1);
        }
    }
}

struct SumReducer;
impl Reducer for SumReducer {
    type InKey = String;
    type InValue = u64;
    type OutKey = String;
    type OutValue = u64;
    fn reduce(&self, k: String, vs: Vec<u64>, ctx: &mut TaskContext<String, u64>) {
        ctx.emit(k, vs.iter().sum());
    }
}

struct SumCombiner;
impl Combiner for SumCombiner {
    type Key = String;
    type Value = u64;
    fn combine(&self, _k: &String, vs: Vec<u64>) -> Vec<u64> {
        vec![vs.iter().sum()]
    }
}

fn word() -> impl Strategy<Value = String> {
    "[a-e]{1,3}"
}

proptest! {
    /// The distributed word count equals the sequential one, for any
    /// input, task count, reducer count and worker count — and the
    /// combiner never changes the answer.
    #[test]
    fn wordcount_equals_sequential(
        lines in proptest::collection::vec(
            proptest::collection::vec(word(), 0..8).prop_map(|ws| ws.join(" ")),
            0..20
        ),
        map_tasks in 1usize..6,
        reducers in 1usize..5,
        workers in 1usize..5,
    ) {
        let mut expected: HashMap<String, u64> = HashMap::new();
        for line in &lines {
            for w in line.split_whitespace() {
                *expected.entry(w.to_string()).or_insert(0) += 1;
            }
        }
        let input: Vec<(usize, String)> = lines.into_iter().enumerate().collect();
        let cfg = JobConfig::named("wc").reducers(reducers).workers(workers);

        let plain = run_job(input.clone(), map_tasks, &WcMapper, &SumReducer, &cfg).unwrap();
        let got: HashMap<String, u64> = plain.output.into_iter().collect();
        prop_assert_eq!(&got, &expected);

        let combined =
            run_job_with_combiner(input, map_tasks, &WcMapper, &SumCombiner, &SumReducer, &cfg)
                .unwrap();
        let got2: HashMap<String, u64> = combined.output.into_iter().collect();
        prop_assert_eq!(&got2, &expected);
        prop_assert!(combined.shuffled_pairs <= plain.shuffled_pairs);
    }

    /// DFS round-trips arbitrary content through any block size, and
    /// split ranges tile the file exactly.
    #[test]
    fn dfs_round_trip_and_splits(
        content in proptest::collection::vec(any::<u8>(), 0..2000),
        block in 1usize..257,
    ) {
        let dfs = Dfs::new(DfsConfig { block_size: block, replication: 1, nodes: 2 }).unwrap();
        dfs.put("/f", content.clone(), false).unwrap();
        let read_back = dfs.read("/f").unwrap();
        prop_assert_eq!(read_back.as_ref(), &content[..]);
        let splits = dfs.splits("/f").unwrap();
        let mut cursor = 0usize;
        for s in &splits {
            prop_assert_eq!(s.range.start, cursor);
            cursor = s.range.end;
        }
        prop_assert_eq!(cursor, content.len());
    }

    /// Every FASTA record is owned by exactly one split, for any
    /// record set and block size.
    #[test]
    fn fasta_records_partitioned_once(
        seqs in proptest::collection::vec("[ACGT]{1,30}", 1..12),
        block in 4usize..64,
    ) {
        let mut fasta = String::new();
        for (i, s) in seqs.iter().enumerate() {
            fasta.push_str(&format!(">r{i}\n{s}\n"));
        }
        let bytes = Bytes::from(fasta.into_bytes());
        let mut owned = 0usize;
        let mut cursor = 0usize;
        while cursor < bytes.len() {
            let end = (cursor + block).min(bytes.len());
            owned += FastaSplitReader::records_in(&bytes, cursor..end).len();
            cursor = end;
        }
        prop_assert_eq!(owned, seqs.len());
    }

    /// LPT makespan bounds: max(cost) ≤ makespan ≤ total(cost), and
    /// makespan ≥ total/slots.
    #[test]
    fn lpt_bounds(
        costs in proptest::collection::vec(0.01f64..10.0, 1..40),
        slots in 1usize..16,
    ) {
        let mk = lpt_makespan(&costs, slots);
        let total: f64 = costs.iter().sum();
        let max = costs.iter().cloned().fold(0.0, f64::max);
        prop_assert!(mk >= max - 1e-9);
        prop_assert!(mk <= total + 1e-9);
        prop_assert!(mk >= total / slots as f64 - 1e-9);
    }

    /// Makespan never increases with more slots.
    #[test]
    fn lpt_monotone_in_slots(costs in proptest::collection::vec(0.01f64..10.0, 1..30)) {
        let mut prev = f64::INFINITY;
        for slots in 1..8 {
            let mk = lpt_makespan(&costs, slots);
            prop_assert!(mk <= prev + 1e-9);
            prev = mk;
        }
    }

    /// Simulated job phases respect the classic scheduling lower
    /// bounds: no phase beats its longest task (plus launch overhead),
    /// nor the total work spread over the available slots.
    #[test]
    fn sim_job_lower_bounds(
        map_costs in proptest::collection::vec(0.01f64..20.0, 1..30),
        reduce_costs in proptest::collection::vec(0.01f64..20.0, 0..12),
        shuffled in 0u64..2_000_000,
        nodes in 1usize..13,
    ) {
        let model = JobCostModel::default();
        let cluster = ClusterSpec::m1_large(nodes);
        let report = cluster.simulate_job(&model, &map_costs, shuffled, &reduce_costs);

        let max_map = map_costs.iter().cloned().fold(0.0, f64::max);
        let map_work: f64 =
            map_costs.iter().sum::<f64>() + map_costs.len() as f64 * model.task_overhead;
        prop_assert!(report.map_time >= max_map + model.task_overhead - 1e-9);
        prop_assert!(report.map_time >= map_work / cluster.map_slots() as f64 - 1e-9);

        if !reduce_costs.is_empty() {
            let max_red = reduce_costs.iter().cloned().fold(0.0, f64::max);
            let red_work: f64 =
                reduce_costs.iter().sum::<f64>() + reduce_costs.len() as f64 * model.task_overhead;
            prop_assert!(report.reduce_time >= max_red + model.task_overhead - 1e-9);
            prop_assert!(report.reduce_time >= red_work / cluster.reduce_slots() as f64 - 1e-9);
        }
        prop_assert!(report.total() >= model.job_overhead - 1e-9);
    }

    /// Adding nodes never makes a simulated job slower (every term —
    /// map makespan, reduce makespan, shuffle bandwidth — improves or
    /// stays put).
    #[test]
    fn sim_job_total_non_increasing_in_nodes(
        map_costs in proptest::collection::vec(0.01f64..20.0, 1..30),
        reduce_costs in proptest::collection::vec(0.01f64..20.0, 0..12),
        shuffled in 0u64..2_000_000,
    ) {
        let model = JobCostModel::default();
        let mut prev = f64::INFINITY;
        for nodes in 1..=12 {
            let total = ClusterSpec::m1_large(nodes)
                .simulate_job(&model, &map_costs, shuffled, &reduce_costs)
                .total();
            prop_assert!(total <= prev + 1e-9, "{nodes} nodes: {total} > {prev}");
            prev = total;
        }
    }

    /// Recovery work is never free: a job that retried or re-executed
    /// maps takes at least as long as its clean counterpart, and a
    /// clean ledger changes nothing.
    #[test]
    fn sim_job_recovery_never_cheaper(
        map_costs in proptest::collection::vec(0.01f64..20.0, 1..30),
        nodes in 1usize..13,
        retried in 0u64..6,
        reexecuted in 0u64..6,
    ) {
        let model = JobCostModel::default();
        let cluster = ClusterSpec::m1_large(nodes);
        let clean = cluster.simulate_job(&model, &map_costs, 0, &[]);
        let ledger = RecoveryCounters {
            tasks_retried: retried,
            maps_reexecuted_node_loss: reexecuted,
            ..RecoveryCounters::new()
        };
        let recovered = cluster.simulate_job_recovered(&model, &map_costs, 0, &[], ledger);
        prop_assert!(recovered.total() >= clean.total() - 1e-9);
        let idle = cluster.simulate_job_recovered(
            &model, &map_costs, 0, &[], RecoveryCounters::new(),
        );
        prop_assert!((idle.total() - clean.total()).abs() < 1e-12);
    }
}
