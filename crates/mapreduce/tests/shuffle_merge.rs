//! Bit-identity of the sort-merge shuffle against the old data plane.
//!
//! The engine used to concatenate every map task's partition output in
//! map order and stable-sort it by key inside the reduce task; the
//! sort-merge plane instead emits pre-sorted per-partition runs and
//! k-way-merges them reducer-side. These tests reimplement the *old*
//! plane as a sequential oracle and demand exact `Vec` equality — not
//! sorted-set equality — so partition order, key order, and the order
//! of values *within* a reduce group are all pinned down, for random
//! key distributions, skewed partitions, and empty partitions, with
//! and without a combiner, and under injected faults.

use proptest::prelude::*;

use mrmc_chaos::{FaultPlan, Phase};
use mrmc_mapreduce::engine::{run_job, run_job_with_combiner, run_job_with_faults};
use mrmc_mapreduce::job::{partition_of, Combiner, JobConfig, Mapper, Reducer, TaskContext};

/// The pre-sort-merge data plane, run sequentially: chunk exactly like
/// the engine, map in task order, combine on a stable key sort with
/// `vec![first]` grouping, append each map's pairs to flat partitions
/// in map order, stable-sort each partition, group, reduce.
fn oracle_run<M, C, R>(
    input: &[(M::InKey, M::InValue)],
    num_maps: usize,
    mapper: &M,
    combiner: Option<&C>,
    reducer: &R,
    reducers: usize,
) -> Vec<(R::OutKey, R::OutValue)>
where
    M: Mapper,
    M::InKey: Clone,
    M::InValue: Clone,
    C: Combiner<Key = M::OutKey, Value = M::OutValue>,
    R: Reducer<InKey = M::OutKey, InValue = M::OutValue>,
{
    let n = num_maps.max(1);
    let (base, extra) = (input.len() / n, input.len() % n);
    let mut partitions: Vec<Vec<(M::OutKey, M::OutValue)>> =
        (0..reducers).map(|_| Vec::new()).collect();
    let mut offset = 0;
    for i in 0..n {
        let size = base + usize::from(i < extra);
        let chunk = &input[offset..offset + size];
        offset += size;
        let mut ctx = TaskContext::new();
        for (k, v) in chunk {
            mapper.map(k.clone(), v.clone(), &mut ctx);
        }
        let (mut pairs, _) = ctx.into_parts();
        if let Some(c) = combiner {
            pairs.sort_by(|a, b| a.0.cmp(&b.0));
            let mut combined = Vec::new();
            let mut iter = pairs.into_iter().peekable();
            while let Some((key, first)) = iter.next() {
                let mut group = vec![first];
                while iter.peek().is_some_and(|(k, _)| *k == key) {
                    group.push(iter.next().expect("peeked").1);
                }
                for v in c.combine(&key, group) {
                    combined.push((key.clone(), v));
                }
            }
            pairs = combined;
        }
        for (k, v) in pairs {
            let p = partition_of(&k, reducers);
            partitions[p].push((k, v));
        }
    }
    let mut output = Vec::new();
    for mut pairs in partitions {
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        let mut ctx = TaskContext::new();
        let mut iter = pairs.into_iter().peekable();
        while let Some((key, first)) = iter.next() {
            let mut group = vec![first];
            while iter.peek().is_some_and(|(k, _)| *k == key) {
                group.push(iter.next().expect("peeked").1);
            }
            reducer.reduce(key, group, &mut ctx);
        }
        let (out, _) = ctx.into_parts();
        output.extend(out);
    }
    output
}

/// Emits 1–3 pairs per record, each value carrying `(record id,
/// emission ordinal)` — unique provenance, so any reordering of equal
/// keys between the planes changes the output.
struct TagMapper {
    key_space: u32,
}
impl Mapper for TagMapper {
    type InKey = u32;
    type InValue = u32;
    type OutKey = u32;
    type OutValue = (u32, u32);
    fn map(&self, id: u32, x: u32, ctx: &mut TaskContext<u32, (u32, u32)>) {
        for e in 0..1 + x % 3 {
            ctx.emit(x.wrapping_add(e) % self.key_space.max(1), (id, e));
        }
    }
}

/// Emits each group's value list verbatim: the reducer output *is* the
/// grouped value order, making equality order-sensitive end to end.
struct CollectReducer;
impl Reducer for CollectReducer {
    type InKey = u32;
    type InValue = (u32, u32);
    type OutKey = u32;
    type OutValue = Vec<(u32, u32)>;
    fn reduce(&self, k: u32, vs: Vec<(u32, u32)>, ctx: &mut TaskContext<u32, Vec<(u32, u32)>>) {
        ctx.emit(k, vs);
    }
}

/// Keeps only a prefix of each local group — order-sensitive, so a
/// combiner seeing groups in a different value order changes the job
/// output, which is exactly what the tests must detect.
struct TakeTwoCombiner;
impl Combiner for TakeTwoCombiner {
    type Key = u32;
    type Value = (u32, u32);
    fn combine(&self, _k: &u32, vs: Vec<(u32, u32)>) -> Vec<(u32, u32)> {
        vs.into_iter().take(2).collect()
    }
}

fn tagged(payloads: &[u32]) -> Vec<(u32, u32)> {
    payloads
        .iter()
        .enumerate()
        .map(|(i, &x)| (i as u32, x))
        .collect()
}

proptest! {
    /// Random keys: merged-reduce output is element-for-element the old
    /// concat-stable-sort plane's, for any chunking, partition count,
    /// and worker-level interleaving.
    #[test]
    fn merge_plane_bit_identical_random(
        payloads in proptest::collection::vec(any::<u32>(), 0..200),
        key_space in 1u32..40,
        num_maps in 1usize..9,
        reducers in 1usize..9,
        workers in 1usize..5,
    ) {
        let mapper = TagMapper { key_space };
        let input = tagged(&payloads);
        let expect = oracle_run(
            &input, num_maps, &mapper, None::<&TakeTwoCombiner>, &CollectReducer, reducers,
        );
        let cfg = JobConfig::named("merge-random").reducers(reducers).workers(workers);
        let got = run_job(input, num_maps, &mapper, &CollectReducer, &cfg).unwrap();
        prop_assert_eq!(got.output, expect);
        prop_assert!(got.shuffle_runs <= (num_maps * reducers) as u64);
        prop_assert_eq!(got.counters.get("SHUFFLE_RUNS"), got.shuffle_runs);
        prop_assert_eq!(got.counters.get("SHUFFLE_BYTES"), got.shuffled_bytes);
    }

    /// Skewed keys (a 1–3 key universe) funnel nearly everything into
    /// one partition while most reducers sit empty — the merge must
    /// handle both extremes and still match bit-for-bit.
    #[test]
    fn merge_plane_bit_identical_skewed_and_empty(
        payloads in proptest::collection::vec(0u32..3, 0..300),
        key_space in 1u32..4,
        num_maps in 1usize..6,
        reducers in 2usize..17,
    ) {
        let mapper = TagMapper { key_space };
        let input = tagged(&payloads);
        let expect = oracle_run(
            &input, num_maps, &mapper, None::<&TakeTwoCombiner>, &CollectReducer, reducers,
        );
        let cfg = JobConfig::named("merge-skew").reducers(reducers).workers(4);
        let got = run_job(input, num_maps, &mapper, &CollectReducer, &cfg).unwrap();
        prop_assert_eq!(got.output, expect);
        // At most `key_space` partitions can be non-empty.
        prop_assert!(got.shuffle_runs <= key_space as u64 * num_maps as u64);
    }

    /// The combiner path: map-side sort + slice-range grouping must
    /// hand each combiner group its values in emission order (the old
    /// stable sort's order), or the order-sensitive combiner diverges.
    #[test]
    fn combiner_plane_bit_identical(
        payloads in proptest::collection::vec(any::<u32>(), 0..200),
        key_space in 1u32..20,
        num_maps in 1usize..7,
        reducers in 1usize..7,
        workers in 1usize..5,
    ) {
        let mapper = TagMapper { key_space };
        let input = tagged(&payloads);
        let expect = oracle_run(
            &input, num_maps, &mapper, Some(&TakeTwoCombiner), &CollectReducer, reducers,
        );
        let cfg = JobConfig::named("merge-comb").reducers(reducers).workers(workers);
        let got = run_job_with_combiner(
            input, num_maps, &mapper, &TakeTwoCombiner, &CollectReducer, &cfg,
        ).unwrap();
        prop_assert_eq!(got.output, expect);
    }

    /// Chaos on the merge plane: retried maps, a node death at the
    /// barrier, lost shuffle fetches, and a straggler's speculative
    /// backup all re-execute tasks — and the re-executed runs must
    /// splice back into the merge without disturbing a single element.
    #[test]
    fn merge_plane_bit_identical_under_faults(
        payloads in proptest::collection::vec(any::<u32>(), 1..150),
        key_space in 1u32..20,
        dead_node in 0usize..4,
        panicking_map in 0usize..4,
        lost_map in 0usize..4,
    ) {
        let mapper = TagMapper { key_space };
        let input = tagged(&payloads);
        let (num_maps, reducers) = (4, 3);
        let expect = oracle_run(
            &input, num_maps, &mapper, None::<&TakeTwoCombiner>, &CollectReducer, reducers,
        );
        let cfg = JobConfig::named("merge-chaos")
            .reducers(reducers)
            .workers(4)
            .attempts(3)
            .nodes(4);
        let plan = FaultPlan::new()
            .task_panic(0, Phase::Map, panicking_map, 1)
            .task_slowdown(0, Phase::Map, (panicking_map + 1) % num_maps, 20)
            .node_death_after_map(0, dead_node)
            .shuffle_fetch_fail(0, lost_map, 1, 5);
        let got = run_job_with_faults(
            input, num_maps, &mapper, &CollectReducer, &cfg, &plan.injector(),
        ).unwrap();
        prop_assert_eq!(got.output, expect);
        prop_assert!(got.recovery.tasks_retried >= 1);
        prop_assert_eq!(got.recovery.maps_reexecuted_fetch_fail, 1);
    }
}

/// Heap-backed string keys through the merge: comparison and clone
/// paths differ from `u32`, and the payload-byte accounting must equal
/// a hand-summed group pricing — each distinct key per map task charged
/// once (`4 + len`), plus a varint value count, plus 4 per value.
#[test]
fn string_keys_bit_identical_with_payload_bytes() {
    struct WordMapper;
    impl Mapper for WordMapper {
        type InKey = u32;
        type InValue = u32;
        type OutKey = String;
        type OutValue = u32;
        fn map(&self, id: u32, x: u32, ctx: &mut TaskContext<String, u32>) {
            ctx.emit(format!("k{}", x % 7), id);
            ctx.emit(format!("key-{}", x % 13), id);
        }
        fn key_wire_size(&self, key: &String) -> usize {
            use mrmc_mapreduce::ShuffleSized;
            key.shuffle_size()
        }
        fn value_wire_size(&self, _value: &u32) -> usize {
            4
        }
    }
    struct JoinReducer;
    impl Reducer for JoinReducer {
        type InKey = String;
        type InValue = u32;
        type OutKey = String;
        type OutValue = Vec<u32>;
        fn reduce(&self, k: String, vs: Vec<u32>, ctx: &mut TaskContext<String, Vec<u32>>) {
            ctx.emit(k, vs);
        }
    }
    let input: Vec<(u32, u32)> = (0..64u32)
        .map(|i| (i, i.wrapping_mul(2654435761)))
        .collect();
    let expect = oracle_run(
        &input,
        5,
        &WordMapper,
        None::<&TakeTwoCombiner2>,
        &JoinReducer,
        4,
    );
    let cfg = JobConfig::named("merge-str").reducers(4).workers(4);
    let got = run_job(input.clone(), 5, &WordMapper, &JoinReducer, &cfg).unwrap();
    assert_eq!(got.output, expect);

    // Payload accounting: replay the engine's chunking and map-side
    // grouping, then price each group once — key (4 + len), varint
    // value count, 4 per value. This is the on-the-wire framing of a
    // sorted run, so SHUFFLE_BYTES must equal it exactly.
    let (num_maps, n) = (5usize, input.len());
    let (base, extra) = (n / num_maps, n % num_maps);
    let mut bytes = 0u64;
    let mut offset = 0;
    for i in 0..num_maps {
        let size = base + usize::from(i < extra);
        let mut ctx = TaskContext::new();
        for (id, x) in &input[offset..offset + size] {
            WordMapper.map(*id, *x, &mut ctx);
        }
        offset += size;
        let (pairs, _) = ctx.into_parts();
        let mut groups: std::collections::HashMap<String, u64> = std::collections::HashMap::new();
        for (k, _) in pairs {
            *groups.entry(k).or_insert(0) += 1;
        }
        for (k, count) in groups {
            bytes +=
                4 + k.len() as u64 + mrmc_mapreduce::wire::uvarint_len(count) as u64 + 4 * count;
        }
    }
    assert_eq!(got.shuffled_bytes, bytes);

    // A never-used combiner type to satisfy the oracle's generics.
    struct TakeTwoCombiner2;
    impl Combiner for TakeTwoCombiner2 {
        type Key = String;
        type Value = u32;
        fn combine(&self, _k: &String, vs: Vec<u32>) -> Vec<u32> {
            vs
        }
    }
}

#[test]
fn empty_input_and_single_key_edge_cases() {
    let mapper = TagMapper { key_space: 1 };
    for (payloads, reducers) in [
        (Vec::new(), 3usize),
        (vec![7u32; 40], 5),
        (vec![0, 1, 2], 1),
    ] {
        let input = tagged(&payloads);
        let expect = oracle_run(
            &input,
            3,
            &mapper,
            None::<&TakeTwoCombiner>,
            &CollectReducer,
            reducers,
        );
        let cfg = JobConfig::named("merge-edge").reducers(reducers).workers(2);
        let got = run_job(input, 3, &mapper, &CollectReducer, &cfg).unwrap();
        assert_eq!(got.output, expect);
        if payloads.is_empty() {
            assert_eq!(got.shuffle_runs, 0, "no pairs, no runs");
        }
    }
}
