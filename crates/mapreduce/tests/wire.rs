//! Property tests for the compact wire layer: varint and id-run
//! roundtrips over arbitrary inputs, band-key packing at every legal
//! width, and the pricing contract — SHUFFLE_BYTES charged by the
//! engine must equal the bytes the encoded runs actually occupy,
//! computed from the wire format alone.

use proptest::prelude::*;

use mrmc_mapreduce::engine::{run_job, run_job_with_combiner};
use mrmc_mapreduce::job::{partition_of, Combiner, JobConfig, Mapper, Reducer, TaskContext};
use mrmc_mapreduce::wire::{get_uvarint, put_uvarint, uvarint_len};
use mrmc_mapreduce::{BandKeyCodec, IdRun};

proptest! {
    /// LEB128 roundtrip: encode/decode recovers any u64, the decoder
    /// consumes exactly the bytes the encoder wrote, and `uvarint_len`
    /// predicts that width without encoding.
    #[test]
    fn varint_roundtrip(v in any::<u64>(), junk in any::<u8>()) {
        let mut buf = Vec::new();
        put_uvarint(&mut buf, v);
        prop_assert_eq!(buf.len(), uvarint_len(v));
        buf.push(junk); // decoder must not read past the value
        let (got, used) = get_uvarint(&buf).expect("valid varint");
        prop_assert_eq!(got, v);
        prop_assert_eq!(used, buf.len() - 1);
    }

    /// `IdRun::from_ids` accepts ids in any order with duplicates and
    /// decodes back to the sorted deduplicated set; the priced width
    /// is exactly the encoded buffer.
    #[test]
    fn idrun_roundtrip_arbitrary_ids(ids in proptest::collection::vec(any::<u32>(), 0..200)) {
        let run = IdRun::from_ids(ids.clone());
        let mut expect = ids.clone();
        expect.sort_unstable();
        expect.dedup();
        prop_assert_eq!(run.decode().expect("roundtrip"), expect.clone());
        prop_assert_eq!(run.count(), expect.len() as u64);
        prop_assert_eq!(run.wire_len(), run.as_bytes().len());
        // A second hop through from_sorted is the identity.
        let again = IdRun::from_sorted(&expect).expect("sorted input");
        prop_assert_eq!(again.as_bytes(), run.as_bytes());
    }

    /// Merging any partition of a sorted id set reproduces the set:
    /// merge == concat ∘ sort ∘ dedup, independent of how ids were
    /// split across runs.
    #[test]
    fn idrun_merge_is_set_union(
        parts in proptest::collection::vec(
            proptest::collection::vec(0u32..10_000, 0..50), 1..6)
    ) {
        let runs: Vec<IdRun> = parts.iter().map(|p| IdRun::from_ids(p.clone())).collect();
        let merged = IdRun::merge(&runs).expect("merge");
        let mut expect: Vec<u32> = parts.concat();
        expect.sort_unstable();
        expect.dedup();
        prop_assert_eq!(merged.decode().expect("decode"), expect);
    }

    /// Corrupting the count prefix of a valid run never decodes
    /// successfully to a *different* id set silently — it either
    /// errors or (when the tampered count matches) reproduces framing
    /// errors. The decoder validates framing end to end.
    #[test]
    fn idrun_decode_rejects_truncation(ids in proptest::collection::vec(any::<u32>(), 1..50)) {
        let run = IdRun::from_ids(ids);
        let bytes = run.as_bytes();
        // Dropping the last byte must never decode cleanly.
        let truncated = IdRun::from_encoded_unchecked(bytes[..bytes.len() - 1].to_vec());
        prop_assert!(truncated.decode().is_err());
    }

    /// Band-key packing at arbitrary legal widths: `unpack ∘ pack`
    /// returns the band exactly and the signature truncated to
    /// `sig_bits` — the codec's documented lossy contract.
    #[test]
    fn band_key_pack_unpack(
        bands in 1usize..64,
        sig_bits in 1u32..48,
        band_sel in any::<u64>(),
        sig in any::<u64>(),
    ) {
        let codec = BandKeyCodec::new(bands, sig_bits).expect("legal widths");
        let band = (band_sel % bands as u64) as u32;
        let key = codec.pack(band, sig);
        let (got_band, got_sig) = codec.unpack(key);
        prop_assert_eq!(got_band, band);
        prop_assert_eq!(got_sig, sig & codec.sig_mask());
        // The priced width covers every bit the packed key can carry.
        if codec.wire_bytes() < 8 {
            prop_assert_eq!(key >> (8 * codec.wire_bytes()), 0);
        }
    }
}

/// Groups ids by `id % key_space`, each value a singleton encoded run.
struct RunMapper {
    key_space: u32,
}
impl Mapper for RunMapper {
    type InKey = u32;
    type InValue = u32;
    type OutKey = u32;
    type OutValue = IdRun;
    fn map(&self, _k: u32, id: u32, ctx: &mut TaskContext<u32, IdRun>) {
        // Arena-backed emission: byte-identical to
        // `ctx.emit(key, IdRun::singleton(id))`, so the pricing replay
        // below also pins the arena path against the raw plane.
        ctx.emit_singleton_run(id % self.key_space.max(1), id);
    }
    fn key_wire_size(&self, key: &u32) -> usize {
        uvarint_len(u64::from(*key))
    }
    fn value_wire_size(&self, run: &IdRun) -> usize {
        run.wire_len()
    }
}

/// Map-side merge: every per-key group collapses to one encoded run.
struct MergeCombiner;
impl Combiner for MergeCombiner {
    type Key = u32;
    type Value = IdRun;
    fn combine(&self, _key: &u32, values: Vec<IdRun>) -> Vec<IdRun> {
        vec![IdRun::merge(&values).expect("mapper emits valid runs")]
    }
}

/// Decodes and merges the surviving runs back into plain sorted ids.
struct DecodeReducer;
impl Reducer for DecodeReducer {
    type InKey = u32;
    type InValue = IdRun;
    type OutKey = u32;
    type OutValue = Vec<u32>;
    fn reduce(&self, k: u32, vs: Vec<IdRun>, ctx: &mut TaskContext<u32, Vec<u32>>) {
        let merged = IdRun::merge(&vs).expect("wire-valid runs");
        ctx.emit(k, merged.decode().expect("decode"));
    }
}

/// The raw control plane for the same job: ids travel as plain u32
/// values with no encoding and no combiner.
struct RawMapper {
    key_space: u32,
}
impl Mapper for RawMapper {
    type InKey = u32;
    type InValue = u32;
    type OutKey = u32;
    type OutValue = u32;
    fn map(&self, _k: u32, id: u32, ctx: &mut TaskContext<u32, u32>) {
        ctx.emit(id % self.key_space.max(1), id);
    }
}

/// Sorts and dedups each raw group so both planes emit the same shape.
struct SortReducer;
impl Reducer for SortReducer {
    type InKey = u32;
    type InValue = u32;
    type OutKey = u32;
    type OutValue = Vec<u32>;
    fn reduce(&self, k: u32, mut vs: Vec<u32>, ctx: &mut TaskContext<u32, Vec<u32>>) {
        vs.sort_unstable();
        vs.dedup();
        ctx.emit(k, vs);
    }
}

proptest! {
    /// Satellite contract: with the encoding ON (IdRun values + merge
    /// combiner) and OFF (raw u32 values), the reduce groups are
    /// identical — same keys, same id sets, same order — while the
    /// encoded plane's priced SHUFFLE_BYTES equals the sum of its
    /// encoded run lengths, computed independently by replaying the
    /// engine's chunking and combine.
    #[test]
    fn encoded_and_raw_planes_agree(
        ids in proptest::collection::vec(0u32..50_000, 1..300),
        key_space in 1u32..40,
        num_maps in 1usize..8,
        reducers in 1usize..6,
    ) {
        let input: Vec<(u32, u32)> = ids.iter().map(|&x| (x, x)).collect();
        let cfg = JobConfig::named("wire-prop").reducers(reducers).workers(2);

        let raw = run_job(
            input.clone(), num_maps, &RawMapper { key_space }, &SortReducer, &cfg,
        ).unwrap();
        let enc = run_job_with_combiner(
            input.clone(), num_maps, &RunMapper { key_space }, &MergeCombiner,
            &DecodeReducer, &cfg,
        ).unwrap();
        prop_assert_eq!(&enc.output, &raw.output, "reduce groups must be identical");

        // Price the encoded plane by hand: replay the engine's
        // contiguous chunking, merge each map-local key group into one
        // run, and sum the wire widths of what actually crosses.
        let n = num_maps.max(1);
        let (base, extra) = (input.len() / n, input.len() % n);
        let mut expect_bytes = 0u64;
        let mut offset = 0;
        for i in 0..n {
            let size = base + usize::from(i < extra);
            let chunk = &input[offset..offset + size];
            offset += size;
            let mut by_key: std::collections::BTreeMap<u32, Vec<u32>> =
                std::collections::BTreeMap::new();
            for &(_, x) in chunk {
                by_key.entry(x % key_space.max(1)).or_default().push(x);
            }
            for (k, group_ids) in by_key {
                let run = IdRun::from_ids(group_ids);
                // One post-combine group: key, count prefix, one run.
                expect_bytes += (uvarint_len(u64::from(k))
                    + uvarint_len(1)
                    + run.wire_len()) as u64;
            }
        }
        prop_assert_eq!(
            enc.shuffled_bytes, expect_bytes,
            "priced bytes must equal the encoded run lengths"
        );
        // Each post-combine group is a single run, so pair traffic is
        // bounded by distinct (map, key) cells — never more than raw.
        prop_assert!(enc.shuffled_pairs <= raw.shuffled_pairs);
    }

    /// A custom `Mapper::partition` must route every key to the
    /// partition it names while leaving reduce-group contents intact.
    #[test]
    fn partition_override_is_honored(
        ids in proptest::collection::vec(0u32..10_000, 1..150),
        reducers in 1usize..6,
    ) {
        struct Routed { reducers: usize }
        impl Mapper for Routed {
            type InKey = u32;
            type InValue = u32;
            type OutKey = u32;
            type OutValue = u32;
            fn map(&self, _k: u32, id: u32, ctx: &mut TaskContext<u32, u32>) {
                ctx.emit(id, id);
            }
            fn partition(&self, key: &u32, reducers: usize) -> usize {
                debug_assert_eq!(reducers, self.reducers);
                // Range partition: contiguous key spans per reducer.
                ((*key as usize * reducers) / 10_000).min(reducers - 1)
            }
        }
        let input: Vec<(u32, u32)> = ids.iter().map(|&x| (x, x)).collect();
        let cfg = JobConfig::named("wire-route").reducers(reducers).workers(2);
        let got = run_job(input, 4, &Routed { reducers }, &SortReducer, &cfg).unwrap();
        // Range partitioning + per-partition key sort ⇒ globally sorted
        // output, something `partition_of` hashing cannot promise.
        let keys: Vec<u32> = got.output.iter().map(|(k, _)| *k).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        prop_assert_eq!(keys, sorted);
        let _ = partition_of(&0u32, reducers); // default still linked
    }
}

/// Walk a run id-by-id through its cursor — the streaming analogue of
/// `IdRun::decode`, written out independently so the equivalence test
/// below keeps meaning even if `decode` changes implementation.
fn cursor_walk(run: &IdRun) -> Result<Vec<u32>, mrmc_mapreduce::WireError> {
    let mut cur = run.cursor()?;
    let mut ids = Vec::new();
    while let Some(id) = cur.try_next()? {
        ids.push(id);
    }
    Ok(ids)
}

proptest! {
    /// Tentpole contract: the streaming k-way merge produces the exact
    /// bytes of the legacy decode-concat-sort-reencode merge over
    /// arbitrary run sets — overlapping, disjoint, empty and singleton
    /// runs alike — and so does the dispatching `IdRun::merge`.
    #[test]
    fn streaming_merge_matches_decode_merge_oracle(
        parts in proptest::collection::vec(
            proptest::collection::vec(0u32..5_000, 0..60), 0..7)
    ) {
        let runs: Vec<IdRun> = parts.iter().map(|p| IdRun::from_ids(p.clone())).collect();
        let legacy = IdRun::merge_via_decode(&runs).expect("oracle merge");
        let streamed = IdRun::merge_cursors(&runs).expect("streaming merge");
        prop_assert_eq!(streamed.as_bytes(), legacy.as_bytes());
        prop_assert_eq!(IdRun::merge(&runs).expect("merge").as_bytes(), legacy.as_bytes());

        // Re-split the union into consecutive slices: disjoint ordered
        // runs, the splice fast path's shape. Bytes must still match.
        let mut union: Vec<u32> = parts.concat();
        union.sort_unstable();
        union.dedup();
        let splits: Vec<IdRun> = union
            .chunks(7)
            .map(|c| IdRun::from_sorted(c).expect("sorted slice"))
            .collect();
        let spliced = IdRun::merge_cursors(&splits).expect("splice merge");
        prop_assert_eq!(
            spliced.as_bytes(),
            IdRun::from_sorted(&union).expect("sorted union").as_bytes()
        );
    }

    /// `IdRunCursor` is id-for-id equivalent to `decode()` on valid
    /// runs and error-for-error equivalent on corrupt payloads: any
    /// byte buffer whatsoever — random bytes, or a valid encoding with
    /// a mutation — yields the same `Result` from both paths.
    #[test]
    fn cursor_equivalent_to_decode_on_any_bytes(
        ids in proptest::collection::vec(any::<u32>(), 0..40),
        mutation in 0usize..4,
        at_sel in any::<usize>(),
        byte in any::<u8>(),
        random in proptest::collection::vec(any::<u8>(), 0..50),
    ) {
        let mut bytes = IdRun::from_ids(ids).as_bytes().to_vec();
        match mutation {
            0 => {} // pristine
            1 => {
                bytes.truncate(at_sel % (bytes.len() + 1));
            }
            2 => {
                let at = at_sel % bytes.len().max(1);
                if !bytes.is_empty() {
                    bytes[at] = byte;
                }
            }
            _ => bytes = random, // arbitrary garbage
        }
        let run = IdRun::from_encoded_unchecked(bytes);
        prop_assert_eq!(cursor_walk(&run), run.decode());
        // `validate` agrees on the error too.
        prop_assert_eq!(run.validate().err(), run.decode().err());
        // `try_count` errors exactly when the count prefix is the
        // culprit, and `count` falls back to the documented sentinel.
        match run.try_count() {
            Ok(c) => prop_assert_eq!(run.count(), c),
            Err(_) => prop_assert_eq!(run.count(), 0),
        }
    }
}
