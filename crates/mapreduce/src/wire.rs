//! Compact wire formats for the shuffle data plane.
//!
//! The sort-merge shuffle (DESIGN.md §3a) moves *runs* of
//! `(key, value-block)` groups between map and reduce tasks. For the
//! similarity plane those payloads are extremely regular — sorted read
//! ids and bit-packed `(band, signature)` bucket keys — and the wire
//! representation exploits that:
//!
//! * **Varints** ([`put_uvarint`]/[`get_uvarint`]): LEB128, 7 bits per
//!   byte, little-endian groups, so small integers (counts, read ids,
//!   deltas) cost 1–3 bytes instead of a fixed 4 or 8.
//! * **[`IdRun`]**: a strictly-increasing run of `u32` ids stored as
//!   `varint(count) · varint(first) · varint(delta)*` — consecutive ids
//!   cost one byte each. This is the typed payload the banded stages
//!   shuffle instead of raw `u32` ids or `(u32, u32)` pairs.
//! * **[`BandKeyCodec`]**: packs a `(band, signature)` bucket key into
//!   the low `band_bits + sig_bits` bits of a `u64` (band in the top
//!   bits, signature truncated to the low bits) and prices it at the
//!   packed byte width.
//!
//! The hot path is allocation-free (DESIGN.md §3a.1 addendum):
//! map-side emission goes through a per-task [`RunArena`] (runs become
//! O(1) slices of a shared chunk via [`TaskContext::emit_singleton_run`]),
//! reduce-side consumption walks the varint stream in place with
//! [`IdRunCursor`], and combiner/reducer merges stream N cursors into
//! one output buffer ([`IdRun::merge_cursors`]) instead of decoding to
//! `Vec<u32>` and re-encoding. The encoded bytes these paths produce
//! are bit-identical to the materializing paths they replaced, which
//! the property tests in `tests/wire.rs` pin against the retained
//! [`IdRun::merge_via_decode`] oracle.
//!
//! Pricing rule: every encoder here reports its size through
//! [`ShuffleSized`], so `SHUFFLE_BYTES` equals the *encoded* bytes of
//! the post-combine groups — priced exactly once, at the moment the
//! group enters its sorted run.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use bytes::Bytes;

use crate::job::{ShuffleSized, TaskContext};

/// Decode errors. Encoding is infallible; decoding validates framing
/// so a corrupted or mis-typed payload fails loudly instead of
/// yielding wrong groups.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended inside a varint or before the declared count.
    Truncated,
    /// A varint ran past 10 bytes / 64 bits.
    Overflow,
    /// The ids were not strictly increasing (a delta of 0 on the wire,
    /// or unsorted input handed to a strict encoder).
    NonMonotonic,
    /// Bytes remained after the declared run was decoded.
    TrailingBytes,
    /// An id exceeded `u32::MAX` after delta accumulation.
    IdRange,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "wire payload truncated"),
            WireError::Overflow => write!(f, "varint overflows u64"),
            WireError::NonMonotonic => write!(f, "id run is not strictly increasing"),
            WireError::TrailingBytes => write!(f, "trailing bytes after id run"),
            WireError::IdRange => write!(f, "decoded id exceeds u32::MAX"),
        }
    }
}

impl std::error::Error for WireError {}

/// Append `v` to `buf` as a LEB128 varint. Returns the encoded width.
pub fn put_uvarint(buf: &mut Vec<u8>, mut v: u64) -> usize {
    let mut n = 0;
    while v >= 0x80 {
        buf.push((v as u8) | 0x80);
        v >>= 7;
        n += 1;
    }
    buf.push(v as u8);
    n + 1
}

/// Decode one LEB128 varint from the front of `buf`, returning the
/// value and the bytes consumed.
pub fn get_uvarint(buf: &[u8]) -> Result<(u64, usize), WireError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    for (i, &b) in buf.iter().enumerate() {
        if shift >= 64 || (shift == 63 && b > 1) {
            return Err(WireError::Overflow);
        }
        v |= u64::from(b & 0x7f) << shift;
        if b < 0x80 {
            return Ok((v, i + 1));
        }
        shift += 7;
    }
    Err(WireError::Truncated)
}

/// Encoded width of `v` as a LEB128 varint (1–10 bytes).
pub fn uvarint_len(v: u64) -> usize {
    (64 - v.max(1).leading_zeros() as usize).div_ceil(7)
}

/// Storage behind an [`IdRun`]: either a run-owned buffer (wire
/// ingress, merge outputs) or an O(1) window into a shared
/// [`RunArena`] chunk (map-side emission). Both views hold exactly the
/// encoded bytes; every comparison/hash below goes through the byte
/// slice so the two reprs are indistinguishable to consumers.
#[derive(Clone)]
enum Repr {
    Owned(Vec<u8>),
    Shared(Bytes),
}

/// A delta/varint-encoded run of strictly-increasing `u32` ids — the
/// typed shuffle payload of the banded similarity plane.
///
/// Wire layout: `varint(count) · varint(ids[0]) · varint(ids[i] −
/// ids[i−1])*`. The struct stores exactly the encoded bytes, so the
/// value a combiner forwards is the value the reducer fetches, and
/// [`ShuffleSized`] pricing is the true on-the-wire size.
#[derive(Clone)]
pub struct IdRun {
    repr: Repr,
}

impl std::fmt::Debug for IdRun {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IdRun").field("buf", &self.bytes()).finish()
    }
}

// Equality/ordering/hashing are over the encoded bytes — the same
// semantics the former `Vec<u8>` field derived, independent of repr.
impl PartialEq for IdRun {
    fn eq(&self, other: &IdRun) -> bool {
        self.bytes() == other.bytes()
    }
}

impl Eq for IdRun {}

impl PartialOrd for IdRun {
    fn partial_cmp(&self, other: &IdRun) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for IdRun {
    fn cmp(&self, other: &IdRun) -> std::cmp::Ordering {
        self.bytes().cmp(other.bytes())
    }
}

impl std::hash::Hash for IdRun {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.bytes().hash(state);
    }
}

/// Count varint headroom reserved at the front of streaming-merge
/// output buffers: the final count is unknown until the merge
/// finishes, so deltas are written after a 10-byte gap (the widest
/// possible varint) and the count is backfilled into the gap's tail.
const COUNT_GAP: usize = 10;

impl IdRun {
    /// A run holding the single id `id`.
    pub fn singleton(id: u32) -> IdRun {
        let mut buf = Vec::with_capacity(1 + uvarint_len(u64::from(id)));
        put_uvarint(&mut buf, 1);
        put_uvarint(&mut buf, u64::from(id));
        IdRun {
            repr: Repr::Owned(buf),
        }
    }

    /// Encode an arbitrary id list: sorts and dedups first.
    pub fn from_ids(mut ids: Vec<u32>) -> IdRun {
        ids.sort_unstable();
        ids.dedup();
        IdRun::from_sorted(&ids).expect("sorted+deduped ids are strictly increasing")
    }

    /// Encode a strictly-increasing id slice; rejects unsorted or
    /// duplicated ids instead of silently re-ordering.
    pub fn from_sorted(ids: &[u32]) -> Result<IdRun, WireError> {
        if ids.windows(2).any(|w| w[0] >= w[1]) {
            return Err(WireError::NonMonotonic);
        }
        let mut buf = Vec::with_capacity(1 + 2 * ids.len());
        put_uvarint(&mut buf, ids.len() as u64);
        let mut prev = 0u64;
        for (i, &id) in ids.iter().enumerate() {
            let id = u64::from(id);
            if i == 0 {
                put_uvarint(&mut buf, id);
            } else {
                put_uvarint(&mut buf, id - prev);
            }
            prev = id;
        }
        Ok(IdRun {
            repr: Repr::Owned(buf),
        })
    }

    /// Wrap already-encoded bytes without validating them — the shape
    /// of a run arriving off the wire. [`IdRun::decode`] performs the
    /// full validation, so corrupt bytes surface as a [`WireError`]
    /// at the consumer, never as silently wrong ids.
    pub fn from_encoded_unchecked(buf: Vec<u8>) -> IdRun {
        IdRun {
            repr: Repr::Owned(buf),
        }
    }

    /// The encoded bytes, whichever repr holds them.
    #[inline]
    fn bytes(&self) -> &[u8] {
        match &self.repr {
            Repr::Owned(buf) => buf,
            Repr::Shared(bytes) => bytes,
        }
    }

    /// Open a streaming cursor over the run. Parses (and validates)
    /// only the count prefix; ids are validated lazily as
    /// [`IdRunCursor::try_next`] walks the stream.
    pub fn cursor(&self) -> Result<IdRunCursor<'_>, WireError> {
        let buf = self.bytes();
        let (count, at) = get_uvarint(buf)?;
        Ok(IdRunCursor {
            buf,
            at,
            remaining: count,
            prev: 0,
            started: false,
            failed: false,
        })
    }

    /// Decode back to the id list, validating framing, monotonicity
    /// and the `u32` id range. Capacity is clamped to the remaining
    /// buffer length (every id costs ≥ 1 wire byte), so a hostile
    /// count prefix cannot force a large speculative allocation.
    pub fn decode(&self) -> Result<Vec<u32>, WireError> {
        let mut cur = self.cursor()?;
        let mut ids = Vec::with_capacity((cur.remaining() as usize).min(cur.bytes_left()));
        while let Some(id) = cur.try_next()? {
            ids.push(id);
        }
        Ok(ids)
    }

    /// Walk the whole run without materializing ids, surfacing any
    /// framing/monotonicity/range error [`IdRun::decode`] would.
    pub fn validate(&self) -> Result<(), WireError> {
        let mut cur = self.cursor()?;
        while cur.try_next()?.is_some() {}
        Ok(())
    }

    /// Number of ids in the run (the wire count prefix).
    ///
    /// Returns the sentinel `0` when the count prefix itself is
    /// corrupt (truncated or overflowing) — indistinguishable from a
    /// genuinely empty run. Use [`IdRun::try_count`] where that
    /// distinction matters.
    pub fn count(&self) -> u64 {
        self.try_count().unwrap_or(0)
    }

    /// Number of ids in the run, or the decode error for a corrupt
    /// count prefix.
    pub fn try_count(&self) -> Result<u64, WireError> {
        get_uvarint(self.bytes()).map(|(c, _)| c)
    }

    /// Exact on-the-wire size in bytes.
    pub fn wire_len(&self) -> usize {
        self.bytes().len()
    }

    /// The raw encoded bytes.
    pub fn as_bytes(&self) -> &[u8] {
        self.bytes()
    }

    /// Merge several runs into one sorted, deduped run — the combiner
    /// and reducer primitive. Decoding failures propagate.
    ///
    /// 0- and 1-run merges short-circuit: the empty merge is the
    /// canonical empty run, and a single run is validated and returned
    /// as-is (every encoder in this module produces canonical bytes,
    /// so the input encoding *is* the merged encoding). Larger merges
    /// stream through [`IdRun::merge_cursors`].
    pub fn merge(runs: &[IdRun]) -> Result<IdRun, WireError> {
        match runs {
            [] => Ok(IdRun::from_sorted(&[]).expect("empty run is sorted")),
            [one] => {
                one.validate()?;
                Ok(one.clone())
            }
            many => IdRun::merge_cursors(many),
        }
    }

    /// The legacy merge: decode every run to `Vec<u32>`, concatenate,
    /// sort, dedup, re-encode. Kept as the byte-identity oracle for
    /// the streaming merge (property tests, `shuffle_bench`).
    pub fn merge_via_decode(runs: &[IdRun]) -> Result<IdRun, WireError> {
        let mut ids = Vec::new();
        for run in runs {
            ids.extend(run.decode()?);
        }
        Ok(IdRun::from_ids(ids))
    }

    /// K-way streaming merge: heap-merges N cursors, writing
    /// `count · first · deltas` directly into one output buffer —
    /// no intermediate `Vec<u32>`, no re-sort. When the runs are
    /// pairwise disjoint and already ordered (the common combiner
    /// shape: ascending singletons from one map task) a splice fast
    /// path copies each run's delta tail verbatim.
    ///
    /// Output bytes are identical to [`IdRun::merge_via_decode`]: the
    /// encoding of a sorted deduped id set is canonical, so any merge
    /// that produces the same set produces the same bytes.
    pub fn merge_cursors(runs: &[IdRun]) -> Result<IdRun, WireError> {
        if let Some(spliced) = IdRun::try_splice(runs)? {
            return Ok(spliced);
        }

        let mut cursors = Vec::with_capacity(runs.len());
        let mut heap = BinaryHeap::with_capacity(runs.len());
        for (i, run) in runs.iter().enumerate() {
            let mut cur = run.cursor()?;
            if let Some(first) = cur.try_next()? {
                heap.push(Reverse((first, i)));
            }
            cursors.push(cur);
        }

        // Merging never widens an id's varint (the running prev only
        // grows), so the inputs' total wire length plus the count gap
        // bounds the output — one allocation, no growth.
        let cap: usize = runs.iter().map(IdRun::wire_len).sum();
        let mut out = Vec::with_capacity(cap + COUNT_GAP);
        out.resize(COUNT_GAP, 0);
        let mut count = 0u64;
        let mut prev = 0u64;
        // Replace-top instead of pop+push: advancing a cursor sifts
        // the heap once (on PeekMut drop) rather than twice.
        while let Some(mut top) = heap.peek_mut() {
            let Reverse((id, i)) = *top;
            let id = u64::from(id);
            if count == 0 {
                put_uvarint(&mut out, id);
                count = 1;
                prev = id;
            } else if id > prev {
                put_uvarint(&mut out, id - prev);
                count += 1;
                prev = id;
            }
            match cursors[i].try_next() {
                Ok(Some(next)) => *top = Reverse((next, i)),
                Ok(None) => {
                    std::collections::binary_heap::PeekMut::pop(top);
                }
                Err(e) => return Err(e),
            }
        }
        Ok(IdRun::backfill_count(out, count))
    }

    /// Splice fast path for [`IdRun::merge_cursors`]: when every
    /// non-empty run starts strictly after the previous one ends, the
    /// merged stream is `first-or-bridging-delta · verbatim tail` per
    /// run. Returns `Ok(None)` when runs overlap (caller falls back to
    /// the heap merge); decode errors propagate.
    fn try_splice(runs: &[IdRun]) -> Result<Option<IdRun>, WireError> {
        // Cheap pre-scan: first ids must be strictly ascending across
        // the non-empty runs, else the full pass cannot succeed and
        // its output buffer would be wasted.
        let mut prev_first = None;
        for run in runs {
            let mut cur = run.cursor()?;
            if let Some(first) = cur.try_next()? {
                if prev_first.is_some_and(|p| first <= p) {
                    return Ok(None);
                }
                prev_first = Some(first);
            }
        }

        let cap: usize = runs.iter().map(IdRun::wire_len).sum();
        let mut out = Vec::with_capacity(cap + COUNT_GAP);
        out.resize(COUNT_GAP, 0);
        let mut count = 0u64;
        let mut prev_last = 0u64;
        for run in runs {
            let mut cur = run.cursor()?;
            let Some(first) = cur.try_next()? else {
                continue;
            };
            let first = u64::from(first);
            if count == 0 {
                put_uvarint(&mut out, first);
            } else if first > prev_last {
                put_uvarint(&mut out, first - prev_last);
            } else {
                return Ok(None);
            }
            // Validate the tail, then copy its already-encoded delta
            // bytes verbatim — they are the same deltas the merged
            // encoding needs.
            let tail_start = cur.offset();
            let mut last = first;
            let mut tail_ids = 0u64;
            while let Some(id) = cur.try_next()? {
                last = u64::from(id);
                tail_ids += 1;
            }
            out.extend_from_slice(&run.bytes()[tail_start..cur.offset()]);
            count += 1 + tail_ids;
            prev_last = last;
        }
        Ok(Some(IdRun::backfill_count(out, count)))
    }

    /// Finish a streaming-merge buffer: encode `count` into the tail
    /// of the [`COUNT_GAP`] headroom and drop the unused prefix.
    fn backfill_count(mut out: Vec<u8>, count: u64) -> IdRun {
        let width = uvarint_len(count);
        let mut at = COUNT_GAP - width;
        let mut v = count;
        while v >= 0x80 {
            out[at] = (v as u8) | 0x80;
            v >>= 7;
            at += 1;
        }
        out[at] = v as u8;
        out.drain(..COUNT_GAP - width);
        IdRun {
            repr: Repr::Owned(out),
        }
    }
}

/// The encoded size *is* the shuffle size — this is what makes
/// `SHUFFLE_BYTES` equal the sum of encoded run lengths.
impl ShuffleSized for IdRun {
    fn shuffle_size(&self) -> usize {
        self.wire_len()
    }
}

/// Streaming decoder over an [`IdRun`]'s varint stream: yields ids in
/// place with the exact validation (and [`WireError`] taxonomy) of
/// [`IdRun::decode`], without materializing a `Vec<u32>`.
///
/// `Clone` is cheap (a slice and a few counters), which is what lets
/// the bucket reducer run its triangular pair expansion as nested
/// cursors over one merged run.
#[derive(Debug, Clone)]
pub struct IdRunCursor<'a> {
    buf: &'a [u8],
    at: usize,
    remaining: u64,
    prev: u64,
    started: bool,
    failed: bool,
}

impl IdRunCursor<'_> {
    /// Decode the next id, `Ok(None)` at a clean end of the run. The
    /// cursor fuses after an error: subsequent calls return
    /// `Ok(None)`.
    pub fn try_next(&mut self) -> Result<Option<u32>, WireError> {
        if self.failed {
            return Ok(None);
        }
        if self.remaining == 0 {
            if self.at != self.buf.len() {
                self.failed = true;
                return Err(WireError::TrailingBytes);
            }
            return Ok(None);
        }
        let (v, n) = match get_uvarint(&self.buf[self.at..]) {
            Ok(ok) => ok,
            Err(e) => {
                self.failed = true;
                return Err(e);
            }
        };
        self.at += n;
        let id = if !self.started {
            v
        } else {
            if v == 0 {
                self.failed = true;
                return Err(WireError::NonMonotonic);
            }
            match self.prev.checked_add(v) {
                Some(id) => id,
                None => {
                    self.failed = true;
                    return Err(WireError::IdRange);
                }
            }
        };
        if id > u64::from(u32::MAX) {
            self.failed = true;
            return Err(WireError::IdRange);
        }
        self.prev = id;
        self.started = true;
        self.remaining -= 1;
        Ok(Some(id as u32))
    }

    /// Ids left per the count prefix (assuming the stream is valid).
    pub fn remaining(&self) -> u64 {
        self.remaining
    }

    /// Byte offset of the cursor within the encoded run.
    pub fn offset(&self) -> usize {
        self.at
    }

    /// Bytes left in the buffer from the cursor position.
    pub fn bytes_left(&self) -> usize {
        self.buf.len() - self.at
    }
}

impl Iterator for IdRunCursor<'_> {
    type Item = Result<u32, WireError>;

    fn next(&mut self) -> Option<Result<u32, WireError>> {
        self.try_next().transpose()
    }
}

/// Default [`RunArena`] chunk size. Big enough that a map task sealing
/// thousands of singleton runs amortizes to ~2 allocations per chunk,
/// small enough that a task with a handful of emissions doesn't hold
/// pages it never touches.
pub const DEFAULT_ARENA_CHUNK_BYTES: usize = 16 * 1024;

/// Per-map-task append-only byte arena for run emission.
///
/// Emitting a run is a bump-pointer write into the current chunk plus
/// an end-offset mark; [`RunArena::seal`] freezes the chunk into one
/// shared [`Bytes`] allocation and hands back each marked run as an
/// O(1) slice of it. A map task emitting N singleton runs therefore
/// costs ~2 allocations per `chunk_size` bytes of encoded output
/// instead of N `Vec` allocations.
///
/// The encoded bytes of a sealed run are exactly what
/// [`IdRun::singleton`] (or [`IdRun::from_sorted`]) would have
/// produced — only the allocation strategy differs.
#[derive(Debug, Default)]
pub struct RunArena {
    chunk: Vec<u8>,
    /// End offset in `chunk` of each pending (not yet sealed) run.
    marks: Vec<usize>,
    chunk_size: usize,
}

impl RunArena {
    /// Arena with the default chunk size.
    pub fn new() -> RunArena {
        RunArena::with_chunk_size(DEFAULT_ARENA_CHUNK_BYTES)
    }

    /// Arena sealing chunks once they reach `chunk_size` bytes.
    pub fn with_chunk_size(chunk_size: usize) -> RunArena {
        RunArena {
            chunk: Vec::new(),
            marks: Vec::new(),
            chunk_size: chunk_size.max(16),
        }
    }

    /// Append a singleton run for `id`.
    pub fn push_singleton(&mut self, id: u32) {
        self.reserve_chunk();
        put_uvarint(&mut self.chunk, 1);
        put_uvarint(&mut self.chunk, u64::from(id));
        self.marks.push(self.chunk.len());
    }

    /// Append a run of strictly-increasing ids; rejects unsorted or
    /// duplicated ids (the chunk is left unchanged on error).
    pub fn push_sorted(&mut self, ids: &[u32]) -> Result<(), WireError> {
        if ids.windows(2).any(|w| w[0] >= w[1]) {
            return Err(WireError::NonMonotonic);
        }
        self.reserve_chunk();
        put_uvarint(&mut self.chunk, ids.len() as u64);
        let mut prev = 0u64;
        for (i, &id) in ids.iter().enumerate() {
            let id = u64::from(id);
            if i == 0 {
                put_uvarint(&mut self.chunk, id);
            } else {
                put_uvarint(&mut self.chunk, id - prev);
            }
            prev = id;
        }
        self.marks.push(self.chunk.len());
        Ok(())
    }

    /// Runs appended since the last [`RunArena::seal`].
    pub fn pending(&self) -> usize {
        self.marks.len()
    }

    /// Whether the current chunk is due for sealing.
    pub fn is_full(&self) -> bool {
        self.chunk.len() >= self.chunk_size
    }

    /// Freeze the current chunk into one shared allocation and emit
    /// each pending run, in append order, as an O(1) slice of it.
    pub fn seal(&mut self, mut sink: impl FnMut(IdRun)) {
        if self.marks.is_empty() {
            return;
        }
        let shared = Bytes::from(std::mem::take(&mut self.chunk));
        let mut start = 0usize;
        for &end in &self.marks {
            sink(IdRun {
                repr: Repr::Shared(shared.slice(start..end)),
            });
            start = end;
        }
        self.marks.clear();
    }

    fn reserve_chunk(&mut self) {
        if self.chunk.capacity() == 0 {
            self.chunk.reserve(self.chunk_size);
        }
    }
}

/// Arena-backed emission for mappers whose value type is [`IdRun`].
///
/// [`TaskContext::emit`] stays fully generic; this inherent impl adds
/// the hot-path entry point the banded mappers use. Pending arena runs
/// are flushed (in emission order) before any interleaved plain
/// `emit`, at chunk-full boundaries, and at `into_parts`, so the
/// emitted pair sequence is identical to calling
/// `emit(key, IdRun::singleton(id))` — only the allocation count
/// differs.
impl<K> TaskContext<K, IdRun> {
    /// Emit `(key, IdRun::singleton(id))` through the per-task arena.
    pub fn emit_singleton_run(&mut self, key: K, id: u32) {
        let chunk_bytes = self.arena_chunk_bytes;
        let arena = self
            .arena
            .get_or_insert_with(|| RunArena::with_chunk_size(chunk_bytes));
        arena.push_singleton(id);
        self.pending_keys.push(key);
        self.flush_pending = Some(TaskContext::<K, IdRun>::flush_arena_runs);
        if self.arena.as_ref().is_some_and(RunArena::is_full) {
            TaskContext::<K, IdRun>::flush_arena_runs(self);
        }
    }

    /// Seal the arena and move `(key, run)` pairs into the emitted
    /// buffer. Installed as the monomorphic `flush_pending` hook so
    /// fully generic code (`emit`, `into_parts`) can trigger it.
    fn flush_arena_runs(ctx: &mut TaskContext<K, IdRun>) {
        if ctx.pending_keys.is_empty() {
            return;
        }
        let TaskContext {
            emitted,
            pending_keys,
            arena,
            ..
        } = ctx;
        let arena = arena.as_mut().expect("pending keys imply an arena");
        let mut keys = pending_keys.drain(..);
        arena.seal(|run| {
            let key = keys.next().expect("one pending key per arena run");
            emitted.push((key, run));
        });
        debug_assert!(keys.next().is_none(), "one arena run per pending key");
    }
}

/// Bit-packer for `(band, signature)` bucket keys.
///
/// The band index occupies the top `band_bits` bits (just enough for
/// the scheme's band count), the signature is truncated to the low
/// `sig_bits` bits. Truncation can only *merge* buckets, never split
/// them, so banding recall is preserved; the (rare) spurious merges
/// add candidates that the verify stage discards, leaving clustering
/// output bit-identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BandKeyCodec {
    band_bits: u32,
    sig_bits: u32,
}

impl BandKeyCodec {
    /// Codec for `bands` bands keeping `sig_bits` signature bits.
    /// Fails when the packed key would not fit in 64 bits or either
    /// width is degenerate.
    pub fn new(bands: usize, sig_bits: u32) -> Result<BandKeyCodec, String> {
        if bands == 0 {
            return Err("band key codec needs ≥ 1 band".into());
        }
        if sig_bits == 0 || sig_bits > 64 {
            return Err(format!("sig_bits {sig_bits} outside 1..=64"));
        }
        let band_bits = if bands == 1 {
            0
        } else {
            64 - (bands as u64 - 1).leading_zeros()
        };
        if band_bits + sig_bits > 64 {
            return Err(format!(
                "packed band key needs {band_bits}+{sig_bits} bits > 64"
            ));
        }
        Ok(BandKeyCodec {
            band_bits,
            sig_bits,
        })
    }

    /// Signature mask: the low `sig_bits` bits.
    pub fn sig_mask(&self) -> u64 {
        if self.sig_bits == 64 {
            u64::MAX
        } else {
            (1u64 << self.sig_bits) - 1
        }
    }

    /// Pack `(band, signature)` into one key. The signature is
    /// truncated to `sig_bits`; the band must be within the codec's
    /// range (checked — this is where a silent `usize` truncation
    /// would otherwise corrupt bucket identity).
    pub fn pack(&self, band: u32, sig: u64) -> u64 {
        let max_band = if self.band_bits == 0 {
            1
        } else {
            1u64 << self.band_bits
        };
        assert!(
            u64::from(band) < max_band,
            "band {band} does not fit in {} band bits",
            self.band_bits
        );
        let band_part = if self.sig_bits == 64 {
            0 // band_bits is 0 here, so band is always 0
        } else {
            u64::from(band) << self.sig_bits
        };
        band_part | (sig & self.sig_mask())
    }

    /// Recover `(band, truncated signature)` from a packed key.
    pub fn unpack(&self, key: u64) -> (u32, u64) {
        let band = if self.sig_bits == 64 {
            0
        } else {
            (key >> self.sig_bits) as u32
        };
        (band, key & self.sig_mask())
    }

    /// On-the-wire width of a packed key in whole bytes.
    pub fn wire_bytes(&self) -> usize {
        (((self.band_bits + self.sig_bits) as usize).div_ceil(8)).max(1)
    }

    /// Configured signature width in bits.
    pub fn sig_bits(&self) -> u32 {
        self.sig_bits
    }

    /// Bits used for the band index.
    pub fn band_bits(&self) -> u32 {
        self.band_bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_widths() {
        for (v, w) in [
            (0u64, 1),
            (1, 1),
            (127, 1),
            (128, 2),
            (16_383, 2),
            (16_384, 3),
            (u64::from(u32::MAX), 5),
            (u64::MAX, 10),
        ] {
            let mut buf = Vec::new();
            assert_eq!(put_uvarint(&mut buf, v), w, "width of {v}");
            assert_eq!(uvarint_len(v), w, "predicted width of {v}");
            assert_eq!(get_uvarint(&buf).unwrap(), (v, w));
        }
    }

    #[test]
    fn varint_rejects_truncation_and_overflow() {
        assert_eq!(get_uvarint(&[]), Err(WireError::Truncated));
        assert_eq!(get_uvarint(&[0x80]), Err(WireError::Truncated));
        // 11 continuation bytes: past 64 bits.
        assert_eq!(get_uvarint(&[0xff; 11]), Err(WireError::Overflow));
    }

    #[test]
    fn idrun_roundtrip_and_pricing() {
        for ids in [
            vec![],
            vec![0u32],
            vec![5],
            vec![0, 1, 2, 3],
            vec![7, 1000, 1001, 4_000_000],
            vec![u32::MAX - 1, u32::MAX],
        ] {
            let run = IdRun::from_sorted(&ids).unwrap();
            assert_eq!(run.decode().unwrap(), ids);
            assert_eq!(run.count(), ids.len() as u64);
            assert_eq!(run.try_count().unwrap(), ids.len() as u64);
            assert_eq!(run.wire_len(), run.as_bytes().len());
            assert_eq!(run.shuffle_size(), run.wire_len());
        }
        // Consecutive ids cost one byte each after the first.
        let run = IdRun::from_sorted(&(100..200).collect::<Vec<u32>>()).unwrap();
        assert_eq!(run.wire_len(), 1 + 1 + 99, "count + first + 99 deltas");
    }

    #[test]
    fn idrun_rejects_bad_input_and_bad_wire() {
        assert_eq!(
            IdRun::from_sorted(&[3, 3]).unwrap_err(),
            WireError::NonMonotonic
        );
        assert_eq!(
            IdRun::from_sorted(&[5, 2]).unwrap_err(),
            WireError::NonMonotonic
        );
        assert_eq!(IdRun::from_ids(vec![5, 2, 5]).decode().unwrap(), vec![2, 5]);

        // Hand-rolled corrupt payloads.
        let truncated = IdRun::from_encoded_unchecked(vec![2, 1]); // count 2, only one id
        assert_eq!(truncated.decode().unwrap_err(), WireError::Truncated);
        let trailing = IdRun::from_encoded_unchecked(vec![1, 1, 9]); // count 1, one id, junk
        assert_eq!(trailing.decode().unwrap_err(), WireError::TrailingBytes);
        let zero_delta = IdRun::from_encoded_unchecked(vec![2, 4, 0]); // delta 0 ⇒ duplicate
        assert_eq!(zero_delta.decode().unwrap_err(), WireError::NonMonotonic);
        let mut overflow = Vec::new();
        put_uvarint(&mut overflow, 2);
        put_uvarint(&mut overflow, u64::from(u32::MAX));
        put_uvarint(&mut overflow, 1); // accumulates past u32::MAX
        assert_eq!(
            IdRun::from_encoded_unchecked(overflow)
                .decode()
                .unwrap_err(),
            WireError::IdRange
        );
    }

    #[test]
    fn idrun_hostile_count_is_cheap_and_rejected() {
        // A count prefix claiming u64::MAX ids over a 2-byte payload
        // must fail fast without a count-sized preallocation.
        let mut buf = Vec::new();
        put_uvarint(&mut buf, u64::MAX);
        buf.push(1);
        let hostile = IdRun::from_encoded_unchecked(buf);
        assert_eq!(hostile.decode().unwrap_err(), WireError::Truncated);
        assert_eq!(hostile.validate().unwrap_err(), WireError::Truncated);
        assert_eq!(hostile.try_count().unwrap(), u64::MAX);
    }

    #[test]
    fn idrun_delta_accumulation_cannot_wrap() {
        // first near u64::MAX (already out of u32 range) fails on the
        // first id; a huge delta after a valid first must fail with
        // IdRange, not wrap around silently.
        let mut buf = Vec::new();
        put_uvarint(&mut buf, 2);
        put_uvarint(&mut buf, 7);
        put_uvarint(&mut buf, u64::MAX - 3); // 7 + (u64::MAX - 3) overflows u64
        assert_eq!(
            IdRun::from_encoded_unchecked(buf).decode().unwrap_err(),
            WireError::IdRange
        );
    }

    #[test]
    fn count_sentinel_and_try_count_on_corrupt_prefix() {
        // Truncated count varint: `count` keeps its documented
        // sentinel 0, `try_count` surfaces the error.
        let corrupt = IdRun::from_encoded_unchecked(vec![0x80]);
        assert_eq!(corrupt.count(), 0);
        assert_eq!(corrupt.try_count().unwrap_err(), WireError::Truncated);
        let overflowing = IdRun::from_encoded_unchecked(vec![0xff; 11]);
        assert_eq!(overflowing.count(), 0);
        assert_eq!(overflowing.try_count().unwrap_err(), WireError::Overflow);
    }

    #[test]
    fn cursor_matches_decode_on_valid_runs() {
        for ids in [
            vec![],
            vec![0u32],
            vec![3, 4, 5, 900],
            vec![u32::MAX - 1, u32::MAX],
        ] {
            let run = IdRun::from_sorted(&ids).unwrap();
            let walked: Vec<u32> = run.cursor().unwrap().map(|r| r.unwrap()).collect();
            assert_eq!(walked, ids);
            run.validate().unwrap();
        }
    }

    #[test]
    fn cursor_fuses_after_error() {
        let trailing = IdRun::from_encoded_unchecked(vec![1, 1, 9]);
        let mut cur = trailing.cursor().unwrap();
        assert_eq!(cur.try_next().unwrap(), Some(1));
        assert_eq!(cur.try_next().unwrap_err(), WireError::TrailingBytes);
        assert_eq!(cur.try_next().unwrap(), None, "fused after error");
    }

    #[test]
    fn idrun_merge_sorts_and_dedups() {
        let a = IdRun::from_sorted(&[1, 5, 9]).unwrap();
        let b = IdRun::from_sorted(&[2, 5, 10]).unwrap();
        let c = IdRun::singleton(5);
        let merged = IdRun::merge(&[a, b, c]).unwrap();
        assert_eq!(merged.decode().unwrap(), vec![1, 2, 5, 9, 10]);
    }

    #[test]
    fn merge_short_circuits_are_canonical() {
        assert_eq!(
            IdRun::merge(&[]).unwrap().as_bytes(),
            IdRun::from_sorted(&[]).unwrap().as_bytes()
        );
        let single = IdRun::from_sorted(&[4, 9, 1000]).unwrap();
        let merged = IdRun::merge(std::slice::from_ref(&single)).unwrap();
        assert_eq!(merged.as_bytes(), single.as_bytes());
        // A corrupt single run still fails instead of passing through.
        let corrupt = IdRun::from_encoded_unchecked(vec![2, 1]);
        assert_eq!(IdRun::merge(&[corrupt]).unwrap_err(), WireError::Truncated);
    }

    #[test]
    fn streaming_merge_matches_decode_merge() {
        let cases: Vec<Vec<IdRun>> = vec![
            vec![],
            vec![IdRun::from_sorted(&[]).unwrap(); 3],
            // Disjoint + ordered: splice path.
            vec![
                IdRun::from_sorted(&[1, 2, 3]).unwrap(),
                IdRun::from_sorted(&[10, 11]).unwrap(),
                IdRun::singleton(40),
            ],
            // Adjacent boundary (consecutive ids across runs).
            vec![
                IdRun::from_sorted(&[1, 2]).unwrap(),
                IdRun::from_sorted(&[3, 4]).unwrap(),
            ],
            // Overlapping: heap path with dedup.
            vec![
                IdRun::from_sorted(&[1, 5, 9]).unwrap(),
                IdRun::from_sorted(&[2, 5, 10]).unwrap(),
                IdRun::singleton(5),
            ],
            // Ascending firsts but overlapping ranges: splice pre-scan
            // passes, full pass must fall back.
            vec![
                IdRun::from_sorted(&[1, 100]).unwrap(),
                IdRun::from_sorted(&[50, 200]).unwrap(),
            ],
            // Empty runs interleaved.
            vec![
                IdRun::from_sorted(&[]).unwrap(),
                IdRun::singleton(7),
                IdRun::from_sorted(&[]).unwrap(),
                IdRun::from_sorted(&[8, 9]).unwrap(),
            ],
        ];
        for runs in cases {
            let streamed = IdRun::merge_cursors(&runs).unwrap();
            let legacy = IdRun::merge_via_decode(&runs).unwrap();
            assert_eq!(streamed.as_bytes(), legacy.as_bytes(), "runs: {runs:?}");
            assert_eq!(
                IdRun::merge(&runs).unwrap().as_bytes(),
                legacy.as_bytes(),
                "merge() entry point, runs: {runs:?}"
            );
        }
    }

    #[test]
    fn streaming_merge_propagates_errors() {
        let good = IdRun::from_sorted(&[1, 2]).unwrap();
        let bad = IdRun::from_encoded_unchecked(vec![3, 1, 1]); // count 3, two ids
        assert_eq!(
            IdRun::merge_cursors(&[good.clone(), bad.clone()]).unwrap_err(),
            WireError::Truncated
        );
        assert_eq!(
            IdRun::merge(&[good, bad]).unwrap_err(),
            WireError::Truncated
        );
    }

    #[test]
    fn arena_runs_are_byte_identical_to_singletons() {
        let mut arena = RunArena::with_chunk_size(16);
        let ids = [0u32, 7, 300, 1 << 20, u32::MAX];
        let mut sealed = Vec::new();
        for &id in &ids {
            arena.push_singleton(id);
            if arena.is_full() {
                arena.seal(|run| sealed.push(run));
            }
        }
        arena.seal(|run| sealed.push(run));
        assert_eq!(arena.pending(), 0);
        assert_eq!(sealed.len(), ids.len());
        for (&id, run) in ids.iter().zip(&sealed) {
            let direct = IdRun::singleton(id);
            assert_eq!(run.as_bytes(), direct.as_bytes());
            assert_eq!(run, &direct, "repr-independent equality");
            assert_eq!(run.shuffle_size(), direct.shuffle_size());
        }
    }

    #[test]
    fn arena_push_sorted_matches_from_sorted() {
        let mut arena = RunArena::new();
        arena.push_sorted(&[2, 9, 10]).unwrap();
        assert_eq!(
            arena.push_sorted(&[5, 5]).unwrap_err(),
            WireError::NonMonotonic
        );
        let mut sealed = Vec::new();
        arena.seal(|run| sealed.push(run));
        assert_eq!(sealed.len(), 1, "rejected push leaves no run behind");
        assert_eq!(
            sealed[0].as_bytes(),
            IdRun::from_sorted(&[2, 9, 10]).unwrap().as_bytes()
        );
    }

    #[test]
    fn context_arena_emission_matches_plain_emit() {
        let mut arena_ctx: TaskContext<u64, IdRun> = TaskContext::new();
        let mut plain_ctx: TaskContext<u64, IdRun> = TaskContext::new();
        for i in 0..2000u32 {
            arena_ctx.emit_singleton_run(u64::from(i % 17), i);
            plain_ctx.emit(u64::from(i % 17), IdRun::singleton(i));
        }
        // Interleave a plain emit: pending arena runs must flush first
        // so global emission order is preserved.
        arena_ctx.emit(99, IdRun::from_sorted(&[1, 2]).unwrap());
        plain_ctx.emit(99, IdRun::from_sorted(&[1, 2]).unwrap());
        arena_ctx.emit_singleton_run(100, 5);
        plain_ctx.emit(100, IdRun::singleton(5));
        assert_eq!(arena_ctx.emitted_len(), plain_ctx.emitted_len());
        let (arena_pairs, _) = arena_ctx.into_parts();
        let (plain_pairs, _) = plain_ctx.into_parts();
        assert_eq!(arena_pairs, plain_pairs);
    }

    #[test]
    fn band_key_pack_unpack() {
        let codec = BandKeyCodec::new(3, 22).unwrap();
        assert_eq!(codec.band_bits(), 2);
        assert_eq!(codec.wire_bytes(), 3);
        for band in 0..3u32 {
            for sig in [0u64, 1, 0xdead_beef_dead_beef, u64::MAX] {
                let key = codec.pack(band, sig);
                let (b, s) = codec.unpack(key);
                assert_eq!(b, band);
                assert_eq!(s, sig & codec.sig_mask());
                assert!(key < 1 << 24, "packed key confined to 24 bits");
            }
        }
    }

    #[test]
    fn band_key_full_width_and_degenerate() {
        // One band needs zero band bits; 64 signature bits survive.
        let codec = BandKeyCodec::new(1, 64).unwrap();
        assert_eq!(codec.pack(0, u64::MAX), u64::MAX);
        assert_eq!(codec.unpack(u64::MAX), (0, u64::MAX));
        assert_eq!(codec.wire_bytes(), 8);

        assert!(BandKeyCodec::new(0, 8).is_err());
        assert!(BandKeyCodec::new(2, 0).is_err());
        assert!(BandKeyCodec::new(2, 64).is_err(), "65 bits cannot pack");
        assert!(BandKeyCodec::new(3, 65).is_err());
    }

    #[test]
    #[should_panic(expected = "band 4 does not fit")]
    fn band_key_out_of_range_band_panics() {
        let codec = BandKeyCodec::new(3, 22).unwrap();
        codec.pack(4, 0);
    }
}
