//! Compact wire formats for the shuffle data plane.
//!
//! The sort-merge shuffle (DESIGN.md §3a) moves *runs* of
//! `(key, value-block)` groups between map and reduce tasks. For the
//! similarity plane those payloads are extremely regular — sorted read
//! ids and bit-packed `(band, signature)` bucket keys — and the wire
//! representation exploits that:
//!
//! * **Varints** ([`put_uvarint`]/[`get_uvarint`]): LEB128, 7 bits per
//!   byte, little-endian groups, so small integers (counts, read ids,
//!   deltas) cost 1–3 bytes instead of a fixed 4 or 8.
//! * **[`IdRun`]**: a strictly-increasing run of `u32` ids stored as
//!   `varint(count) · varint(first) · varint(delta)*` — consecutive ids
//!   cost one byte each. This is the typed payload the banded stages
//!   shuffle instead of raw `u32` ids or `(u32, u32)` pairs.
//! * **[`BandKeyCodec`]**: packs a `(band, signature)` bucket key into
//!   the low `band_bits + sig_bits` bits of a `u64` (band in the top
//!   bits, signature truncated to the low bits) and prices it at the
//!   packed byte width.
//!
//! Pricing rule: every encoder here reports its size through
//! [`ShuffleSized`], so `SHUFFLE_BYTES` equals the *encoded* bytes of
//! the post-combine groups — priced exactly once, at the moment the
//! group enters its sorted run.

use crate::job::ShuffleSized;

/// Decode errors. Encoding is infallible; decoding validates framing
/// so a corrupted or mis-typed payload fails loudly instead of
/// yielding wrong groups.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended inside a varint or before the declared count.
    Truncated,
    /// A varint ran past 10 bytes / 64 bits.
    Overflow,
    /// The ids were not strictly increasing (a delta of 0 on the wire,
    /// or unsorted input handed to a strict encoder).
    NonMonotonic,
    /// Bytes remained after the declared run was decoded.
    TrailingBytes,
    /// An id exceeded `u32::MAX` after delta accumulation.
    IdRange,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "wire payload truncated"),
            WireError::Overflow => write!(f, "varint overflows u64"),
            WireError::NonMonotonic => write!(f, "id run is not strictly increasing"),
            WireError::TrailingBytes => write!(f, "trailing bytes after id run"),
            WireError::IdRange => write!(f, "decoded id exceeds u32::MAX"),
        }
    }
}

impl std::error::Error for WireError {}

/// Append `v` to `buf` as a LEB128 varint. Returns the encoded width.
pub fn put_uvarint(buf: &mut Vec<u8>, mut v: u64) -> usize {
    let mut n = 0;
    while v >= 0x80 {
        buf.push((v as u8) | 0x80);
        v >>= 7;
        n += 1;
    }
    buf.push(v as u8);
    n + 1
}

/// Decode one LEB128 varint from the front of `buf`, returning the
/// value and the bytes consumed.
pub fn get_uvarint(buf: &[u8]) -> Result<(u64, usize), WireError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    for (i, &b) in buf.iter().enumerate() {
        if shift >= 64 || (shift == 63 && b > 1) {
            return Err(WireError::Overflow);
        }
        v |= u64::from(b & 0x7f) << shift;
        if b < 0x80 {
            return Ok((v, i + 1));
        }
        shift += 7;
    }
    Err(WireError::Truncated)
}

/// Encoded width of `v` as a LEB128 varint (1–10 bytes).
pub fn uvarint_len(v: u64) -> usize {
    (64 - v.max(1).leading_zeros() as usize).div_ceil(7)
}

/// A delta/varint-encoded run of strictly-increasing `u32` ids — the
/// typed shuffle payload of the banded similarity plane.
///
/// Wire layout: `varint(count) · varint(ids[0]) · varint(ids[i] −
/// ids[i−1])*`. The struct stores exactly the encoded bytes, so the
/// value a combiner forwards is the value the reducer fetches, and
/// [`ShuffleSized`] pricing is the true on-the-wire size.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct IdRun {
    buf: Vec<u8>,
}

impl IdRun {
    /// A run holding the single id `id`.
    pub fn singleton(id: u32) -> IdRun {
        let mut buf = Vec::with_capacity(1 + uvarint_len(u64::from(id)));
        put_uvarint(&mut buf, 1);
        put_uvarint(&mut buf, u64::from(id));
        IdRun { buf }
    }

    /// Encode an arbitrary id list: sorts and dedups first.
    pub fn from_ids(mut ids: Vec<u32>) -> IdRun {
        ids.sort_unstable();
        ids.dedup();
        IdRun::from_sorted(&ids).expect("sorted+deduped ids are strictly increasing")
    }

    /// Encode a strictly-increasing id slice; rejects unsorted or
    /// duplicated ids instead of silently re-ordering.
    pub fn from_sorted(ids: &[u32]) -> Result<IdRun, WireError> {
        if ids.windows(2).any(|w| w[0] >= w[1]) {
            return Err(WireError::NonMonotonic);
        }
        let mut buf = Vec::with_capacity(1 + 2 * ids.len());
        put_uvarint(&mut buf, ids.len() as u64);
        let mut prev = 0u64;
        for (i, &id) in ids.iter().enumerate() {
            let id = u64::from(id);
            if i == 0 {
                put_uvarint(&mut buf, id);
            } else {
                put_uvarint(&mut buf, id - prev);
            }
            prev = id;
        }
        Ok(IdRun { buf })
    }

    /// Wrap already-encoded bytes without validating them — the shape
    /// of a run arriving off the wire. [`IdRun::decode`] performs the
    /// full validation, so corrupt bytes surface as a [`WireError`]
    /// at the consumer, never as silently wrong ids.
    pub fn from_encoded_unchecked(buf: Vec<u8>) -> IdRun {
        IdRun { buf }
    }

    /// Decode back to the id list, validating framing, monotonicity
    /// and the `u32` id range.
    pub fn decode(&self) -> Result<Vec<u32>, WireError> {
        let buf = &self.buf;
        let (count, mut at) = get_uvarint(buf)?;
        let mut ids = Vec::with_capacity(count.min(1 << 20) as usize);
        let mut prev = 0u64;
        for i in 0..count {
            let (v, n) = get_uvarint(&buf[at..])?;
            at += n;
            let id = if i == 0 {
                v
            } else {
                if v == 0 {
                    return Err(WireError::NonMonotonic);
                }
                prev + v
            };
            if id > u64::from(u32::MAX) {
                return Err(WireError::IdRange);
            }
            prev = id;
            ids.push(id as u32);
        }
        if at != buf.len() {
            return Err(WireError::TrailingBytes);
        }
        Ok(ids)
    }

    /// Number of ids in the run (the wire count prefix).
    pub fn count(&self) -> u64 {
        get_uvarint(&self.buf).map(|(c, _)| c).unwrap_or(0)
    }

    /// Exact on-the-wire size in bytes.
    pub fn wire_len(&self) -> usize {
        self.buf.len()
    }

    /// The raw encoded bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Merge several runs into one sorted, deduped run — the combiner
    /// and reducer primitive. Decoding failures propagate.
    pub fn merge(runs: &[IdRun]) -> Result<IdRun, WireError> {
        let mut ids = Vec::new();
        for run in runs {
            ids.extend(run.decode()?);
        }
        Ok(IdRun::from_ids(ids))
    }
}

/// The encoded size *is* the shuffle size — this is what makes
/// `SHUFFLE_BYTES` equal the sum of encoded run lengths.
impl ShuffleSized for IdRun {
    fn shuffle_size(&self) -> usize {
        self.wire_len()
    }
}

/// Bit-packer for `(band, signature)` bucket keys.
///
/// The band index occupies the top `band_bits` bits (just enough for
/// the scheme's band count), the signature is truncated to the low
/// `sig_bits` bits. Truncation can only *merge* buckets, never split
/// them, so banding recall is preserved; the (rare) spurious merges
/// add candidates that the verify stage discards, leaving clustering
/// output bit-identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BandKeyCodec {
    band_bits: u32,
    sig_bits: u32,
}

impl BandKeyCodec {
    /// Codec for `bands` bands keeping `sig_bits` signature bits.
    /// Fails when the packed key would not fit in 64 bits or either
    /// width is degenerate.
    pub fn new(bands: usize, sig_bits: u32) -> Result<BandKeyCodec, String> {
        if bands == 0 {
            return Err("band key codec needs ≥ 1 band".into());
        }
        if sig_bits == 0 || sig_bits > 64 {
            return Err(format!("sig_bits {sig_bits} outside 1..=64"));
        }
        let band_bits = if bands == 1 {
            0
        } else {
            64 - (bands as u64 - 1).leading_zeros()
        };
        if band_bits + sig_bits > 64 {
            return Err(format!(
                "packed band key needs {band_bits}+{sig_bits} bits > 64"
            ));
        }
        Ok(BandKeyCodec {
            band_bits,
            sig_bits,
        })
    }

    /// Signature mask: the low `sig_bits` bits.
    pub fn sig_mask(&self) -> u64 {
        if self.sig_bits == 64 {
            u64::MAX
        } else {
            (1u64 << self.sig_bits) - 1
        }
    }

    /// Pack `(band, signature)` into one key. The signature is
    /// truncated to `sig_bits`; the band must be within the codec's
    /// range (checked — this is where a silent `usize` truncation
    /// would otherwise corrupt bucket identity).
    pub fn pack(&self, band: u32, sig: u64) -> u64 {
        let max_band = if self.band_bits == 0 {
            1
        } else {
            1u64 << self.band_bits
        };
        assert!(
            u64::from(band) < max_band,
            "band {band} does not fit in {} band bits",
            self.band_bits
        );
        let band_part = if self.sig_bits == 64 {
            0 // band_bits is 0 here, so band is always 0
        } else {
            u64::from(band) << self.sig_bits
        };
        band_part | (sig & self.sig_mask())
    }

    /// Recover `(band, truncated signature)` from a packed key.
    pub fn unpack(&self, key: u64) -> (u32, u64) {
        let band = if self.sig_bits == 64 {
            0
        } else {
            (key >> self.sig_bits) as u32
        };
        (band, key & self.sig_mask())
    }

    /// On-the-wire width of a packed key in whole bytes.
    pub fn wire_bytes(&self) -> usize {
        (((self.band_bits + self.sig_bits) as usize).div_ceil(8)).max(1)
    }

    /// Configured signature width in bits.
    pub fn sig_bits(&self) -> u32 {
        self.sig_bits
    }

    /// Bits used for the band index.
    pub fn band_bits(&self) -> u32 {
        self.band_bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_widths() {
        for (v, w) in [
            (0u64, 1),
            (1, 1),
            (127, 1),
            (128, 2),
            (16_383, 2),
            (16_384, 3),
            (u64::from(u32::MAX), 5),
            (u64::MAX, 10),
        ] {
            let mut buf = Vec::new();
            assert_eq!(put_uvarint(&mut buf, v), w, "width of {v}");
            assert_eq!(uvarint_len(v), w, "predicted width of {v}");
            assert_eq!(get_uvarint(&buf).unwrap(), (v, w));
        }
    }

    #[test]
    fn varint_rejects_truncation_and_overflow() {
        assert_eq!(get_uvarint(&[]), Err(WireError::Truncated));
        assert_eq!(get_uvarint(&[0x80]), Err(WireError::Truncated));
        // 11 continuation bytes: past 64 bits.
        assert_eq!(get_uvarint(&[0xff; 11]), Err(WireError::Overflow));
    }

    #[test]
    fn idrun_roundtrip_and_pricing() {
        for ids in [
            vec![],
            vec![0u32],
            vec![5],
            vec![0, 1, 2, 3],
            vec![7, 1000, 1001, 4_000_000],
            vec![u32::MAX - 1, u32::MAX],
        ] {
            let run = IdRun::from_sorted(&ids).unwrap();
            assert_eq!(run.decode().unwrap(), ids);
            assert_eq!(run.count(), ids.len() as u64);
            assert_eq!(run.wire_len(), run.as_bytes().len());
            assert_eq!(run.shuffle_size(), run.wire_len());
        }
        // Consecutive ids cost one byte each after the first.
        let run = IdRun::from_sorted(&(100..200).collect::<Vec<u32>>()).unwrap();
        assert_eq!(run.wire_len(), 1 + 1 + 99, "count + first + 99 deltas");
    }

    #[test]
    fn idrun_rejects_bad_input_and_bad_wire() {
        assert_eq!(
            IdRun::from_sorted(&[3, 3]).unwrap_err(),
            WireError::NonMonotonic
        );
        assert_eq!(
            IdRun::from_sorted(&[5, 2]).unwrap_err(),
            WireError::NonMonotonic
        );
        assert_eq!(IdRun::from_ids(vec![5, 2, 5]).decode().unwrap(), vec![2, 5]);

        // Hand-rolled corrupt payloads.
        let truncated = IdRun {
            buf: vec![2, 1], // count 2, only one id
        };
        assert_eq!(truncated.decode().unwrap_err(), WireError::Truncated);
        let trailing = IdRun {
            buf: vec![1, 1, 9], // count 1, one id, junk byte
        };
        assert_eq!(trailing.decode().unwrap_err(), WireError::TrailingBytes);
        let zero_delta = IdRun {
            buf: vec![2, 4, 0], // delta 0 ⇒ duplicate id
        };
        assert_eq!(zero_delta.decode().unwrap_err(), WireError::NonMonotonic);
        let mut overflow = Vec::new();
        put_uvarint(&mut overflow, 2);
        put_uvarint(&mut overflow, u64::from(u32::MAX));
        put_uvarint(&mut overflow, 1); // accumulates past u32::MAX
        assert_eq!(
            IdRun { buf: overflow }.decode().unwrap_err(),
            WireError::IdRange
        );
    }

    #[test]
    fn idrun_merge_sorts_and_dedups() {
        let a = IdRun::from_sorted(&[1, 5, 9]).unwrap();
        let b = IdRun::from_sorted(&[2, 5, 10]).unwrap();
        let c = IdRun::singleton(5);
        let merged = IdRun::merge(&[a, b, c]).unwrap();
        assert_eq!(merged.decode().unwrap(), vec![1, 2, 5, 9, 10]);
    }

    #[test]
    fn band_key_pack_unpack() {
        let codec = BandKeyCodec::new(3, 22).unwrap();
        assert_eq!(codec.band_bits(), 2);
        assert_eq!(codec.wire_bytes(), 3);
        for band in 0..3u32 {
            for sig in [0u64, 1, 0xdead_beef_dead_beef, u64::MAX] {
                let key = codec.pack(band, sig);
                let (b, s) = codec.unpack(key);
                assert_eq!(b, band);
                assert_eq!(s, sig & codec.sig_mask());
                assert!(key < 1 << 24, "packed key confined to 24 bits");
            }
        }
    }

    #[test]
    fn band_key_full_width_and_degenerate() {
        // One band needs zero band bits; 64 signature bits survive.
        let codec = BandKeyCodec::new(1, 64).unwrap();
        assert_eq!(codec.pack(0, u64::MAX), u64::MAX);
        assert_eq!(codec.unpack(u64::MAX), (0, u64::MAX));
        assert_eq!(codec.wire_bytes(), 8);

        assert!(BandKeyCodec::new(0, 8).is_err());
        assert!(BandKeyCodec::new(2, 0).is_err());
        assert!(BandKeyCodec::new(2, 64).is_err(), "65 bits cannot pack");
        assert!(BandKeyCodec::new(3, 65).is_err());
    }

    #[test]
    #[should_panic(expected = "band 4 does not fit")]
    fn band_key_out_of_range_band_panics() {
        let codec = BandKeyCodec::new(3, 22).unwrap();
        codec.pack(4, 0);
    }
}
