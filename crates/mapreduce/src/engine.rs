//! The multi-threaded job executor.
//!
//! Runs map tasks on a bounded worker pool (sized like the simulated
//! cluster's task slots), performs a hash-partitioned, sort-based
//! shuffle, then runs reduce tasks per partition. Task wall-times are
//! recorded so the [`crate::simcluster`] layer can re-schedule the same
//! work onto a virtual 2–12 node cluster.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use parking_lot::Mutex;

use crate::error::MrError;
use crate::job::{
    partition_of, Combiner, Counters, JobConfig, JobResult, Mapper, Reducer, TaskContext, TaskStats,
};

/// Default worker pool size: the machine's parallelism.
fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

/// Run `n` tasks on `threads` workers, collecting results in task
/// order. A task body that panics is retried up to `attempts` times
/// (Hadoop's task-attempt semantics); exhausted attempts become
/// [`MrError::TaskFailed`]. Returns the results plus the number of
/// retries that occurred.
fn run_parallel<T, F>(
    phase: &'static str,
    n: usize,
    threads: usize,
    attempts: usize,
    f: F,
) -> Result<(Vec<T>, u64), MrError>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if n == 0 {
        return Ok((Vec::new(), 0));
    }
    let attempts = attempts.max(1);
    let results: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let failure: Mutex<Option<(usize, String)>> = Mutex::new(None);
    let retries = std::sync::atomic::AtomicU64::new(0);
    let next = AtomicUsize::new(0);
    let workers = threads.clamp(1, n);

    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let mut last_msg = String::new();
                let mut done = false;
                for attempt in 0..attempts {
                    match catch_unwind(AssertUnwindSafe(|| f(i))) {
                        Ok(v) => {
                            *results[i].lock() = Some(v);
                            done = true;
                            break;
                        }
                        Err(payload) => {
                            last_msg = payload
                                .downcast_ref::<&str>()
                                .map(|s| s.to_string())
                                .or_else(|| payload.downcast_ref::<String>().cloned())
                                .unwrap_or_else(|| "task panicked".to_string());
                            if attempt + 1 < attempts {
                                retries.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                }
                if !done {
                    let mut slot = failure.lock();
                    if slot.is_none() {
                        *slot = Some((i, last_msg));
                    }
                }
            });
        }
    });

    if let Some((task, message)) = failure.into_inner() {
        return Err(MrError::TaskFailed {
            phase,
            task,
            message,
        });
    }
    let out = results
        .into_iter()
        .map(|m| m.into_inner().expect("task completed"))
        .collect();
    Ok((out, retries.into_inner()))
}

/// Split `input` into `n` contiguous chunks of near-equal length.
fn chunk_input<T>(mut input: Vec<T>, n: usize) -> Vec<Vec<T>> {
    let n = n.max(1);
    let total = input.len();
    let base = total / n;
    let extra = total % n;
    let mut chunks = Vec::with_capacity(n);
    // Pop from the back to avoid O(n²) moves, then reverse.
    let mut sizes: Vec<usize> = (0..n).map(|i| base + usize::from(i < extra)).collect();
    sizes.reverse();
    for size in sizes {
        let tail = input.split_off(input.len() - size);
        chunks.push(tail);
    }
    chunks.reverse();
    chunks
}

/// Pairs emitted by one map task plus its stats/counters.
type MapPhaseResult<K, V> = (Vec<MapTaskOutput<K, V>>, u64);

struct MapTaskOutput<K, V> {
    partitions: Vec<Vec<(K, V)>>,
    stats: TaskStats,
    counters: Counters,
}

/// Run the map phase only; returns the concatenated mapper output in
/// task order (no shuffle, no reduce). Useful for `FOREACH`-style
/// record-parallel transforms that Pig lowers to map-only jobs.
pub fn run_map_only<M>(
    input: Vec<(M::InKey, M::InValue)>,
    num_map_tasks: usize,
    mapper: &M,
    config: &JobConfig,
) -> Result<JobResult<M::OutKey, M::OutValue>, MrError>
where
    M: Mapper,
    M::InKey: Clone + Sync,
    M::InValue: Clone + Sync,
{
    let workers = config.worker_threads.unwrap_or_else(default_workers);
    // Chunks stay intact so a retried attempt can re-read its input.
    let chunks: Vec<Vec<(M::InKey, M::InValue)>> = chunk_input(input, num_map_tasks);

    let (outputs, retries) =
        run_parallel("map", chunks.len(), workers, config.max_attempts, |i| {
            let chunk = chunks[i].clone();
            let start = Instant::now();
            let records_in = chunk.len() as u64;
            let mut ctx = TaskContext::new();
            for (k, v) in chunk {
                mapper.map(k, v, &mut ctx);
            }
            let (pairs, counters) = ctx.into_parts();
            let stats = TaskStats {
                task: i,
                duration: start.elapsed(),
                records_in,
                records_out: pairs.len() as u64,
            };
            (pairs, stats, counters)
        })?;

    let counters = Counters::new();
    counters.add("TASK_RETRIES", retries);
    let mut all = Vec::new();
    let mut map_stats = Vec::new();
    for (pairs, stats, task_counters) in outputs {
        counters.merge(&task_counters);
        counters.add("MAP_INPUT_RECORDS", stats.records_in);
        counters.add("MAP_OUTPUT_RECORDS", stats.records_out);
        map_stats.push(stats);
        all.extend(pairs);
    }
    Ok(JobResult {
        output: all,
        counters,
        map_stats,
        reduce_stats: Vec::new(),
        shuffled_pairs: 0,
    })
}

/// Run a full map → shuffle → reduce job without a combiner.
pub fn run_job<M, R>(
    input: Vec<(M::InKey, M::InValue)>,
    num_map_tasks: usize,
    mapper: &M,
    reducer: &R,
    config: &JobConfig,
) -> Result<JobResult<R::OutKey, R::OutValue>, MrError>
where
    M: Mapper,
    M::InKey: Clone + Sync,
    M::InValue: Clone + Sync,
    R: Reducer<InKey = M::OutKey, InValue = M::OutValue>,
{
    run_job_impl(
        input,
        num_map_tasks,
        mapper,
        None::<&NoCombiner<M::OutKey, M::OutValue>>,
        reducer,
        config,
    )
}

/// Run a full job with a combiner applied to each map task's local
/// output before the shuffle.
pub fn run_job_with_combiner<M, C, R>(
    input: Vec<(M::InKey, M::InValue)>,
    num_map_tasks: usize,
    mapper: &M,
    combiner: &C,
    reducer: &R,
    config: &JobConfig,
) -> Result<JobResult<R::OutKey, R::OutValue>, MrError>
where
    M: Mapper,
    M::InKey: Clone + Sync,
    M::InValue: Clone + Sync,
    C: Combiner<Key = M::OutKey, Value = M::OutValue>,
    R: Reducer<InKey = M::OutKey, InValue = M::OutValue>,
{
    run_job_impl(
        input,
        num_map_tasks,
        mapper,
        Some(combiner),
        reducer,
        config,
    )
}

/// A never-instantiated combiner standing in for `None`. The
/// `fn() -> _` phantom keeps it `Send + Sync` regardless of `K`/`V`.
struct NoCombiner<K, V>(std::marker::PhantomData<fn() -> (K, V)>);
impl<K: crate::job::MrKey, V: crate::job::MrValue> Combiner for NoCombiner<K, V> {
    type Key = K;
    type Value = V;
    fn combine(&self, _key: &K, values: Vec<V>) -> Vec<V> {
        values
    }
}
// PhantomData<(K,V)> is not Send/Sync-friendly for raw pointers, but
// K/V here are Send so the auto-impls apply.

fn run_job_impl<M, C, R>(
    input: Vec<(M::InKey, M::InValue)>,
    num_map_tasks: usize,
    mapper: &M,
    combiner: Option<&C>,
    reducer: &R,
    config: &JobConfig,
) -> Result<JobResult<R::OutKey, R::OutValue>, MrError>
where
    M: Mapper,
    M::InKey: Clone + Sync,
    M::InValue: Clone + Sync,
    C: Combiner<Key = M::OutKey, Value = M::OutValue>,
    R: Reducer<InKey = M::OutKey, InValue = M::OutValue>,
{
    if config.num_reducers == 0 {
        return Err(MrError::BadConfig("num_reducers must be ≥ 1".into()));
    }
    let reducers = config.num_reducers;
    let workers = config.worker_threads.unwrap_or_else(default_workers);

    // ---- Map phase ----
    let chunks: Vec<Vec<(M::InKey, M::InValue)>> = chunk_input(input, num_map_tasks);

    let (map_outputs, map_retries): MapPhaseResult<M::OutKey, M::OutValue> =
        run_parallel("map", chunks.len(), workers, config.max_attempts, |i| {
            let chunk = chunks[i].clone();
            let start = Instant::now();
            let records_in = chunk.len() as u64;
            let mut ctx = TaskContext::new();
            for (k, v) in chunk {
                mapper.map(k, v, &mut ctx);
            }
            let (mut pairs, counters) = ctx.into_parts();
            // Local combine: sort + group + combine, like Hadoop's
            // in-memory combiner on spill.
            if let Some(c) = combiner {
                pairs.sort_by(|a, b| a.0.cmp(&b.0));
                let mut combined = Vec::with_capacity(pairs.len());
                let mut iter = pairs.into_iter().peekable();
                while let Some((key, first)) = iter.next() {
                    let mut group = vec![first];
                    while iter.peek().is_some_and(|(k, _)| *k == key) {
                        group.push(iter.next().expect("peeked").1);
                    }
                    for v in c.combine(&key, group) {
                        combined.push((key.clone(), v));
                    }
                }
                pairs = combined;
            }
            let records_out = pairs.len() as u64;
            // Partition.
            let mut partitions: Vec<Vec<(M::OutKey, M::OutValue)>> =
                (0..reducers).map(|_| Vec::new()).collect();
            for (k, v) in pairs {
                let p = partition_of(&k, reducers);
                partitions[p].push((k, v));
            }
            MapTaskOutput {
                partitions,
                stats: TaskStats {
                    task: i,
                    duration: start.elapsed(),
                    records_in,
                    records_out,
                },
                counters,
            }
        })?;

    // ---- Shuffle: gather each partition across map tasks ----
    let counters = Counters::new();
    counters.add("TASK_RETRIES", map_retries);
    let mut map_stats = Vec::with_capacity(map_outputs.len());
    let mut partitions: Vec<Vec<(M::OutKey, M::OutValue)>> =
        (0..reducers).map(|_| Vec::new()).collect();
    let mut shuffled_pairs = 0u64;
    for out in map_outputs {
        counters.merge(&out.counters);
        counters.add("MAP_INPUT_RECORDS", out.stats.records_in);
        counters.add("MAP_OUTPUT_RECORDS", out.stats.records_out);
        shuffled_pairs += out.stats.records_out;
        map_stats.push(out.stats);
        for (p, pairs) in out.partitions.into_iter().enumerate() {
            partitions[p].extend(pairs);
        }
    }
    counters.add("SHUFFLED_PAIRS", shuffled_pairs);

    // ---- Reduce phase ----
    let partition_slots: Vec<Vec<(M::OutKey, M::OutValue)>> = partitions;

    let (reduce_outputs, reduce_retries) =
        run_parallel("reduce", reducers, workers, config.max_attempts, |p| {
            let mut pairs = partition_slots[p].clone();
            let start = Instant::now();
            let records_in = pairs.len() as u64;
            // Sort-based grouping (stable so value order is deterministic
            // given task order).
            pairs.sort_by(|a, b| a.0.cmp(&b.0));
            let mut ctx = TaskContext::new();
            let mut iter = pairs.into_iter().peekable();
            while let Some((key, first)) = iter.next() {
                let mut group = vec![first];
                while iter.peek().is_some_and(|(k, _)| *k == key) {
                    group.push(iter.next().expect("peeked").1);
                }
                reducer.reduce(key, group, &mut ctx);
            }
            let (out, task_counters) = ctx.into_parts();
            let stats = TaskStats {
                task: p,
                duration: start.elapsed(),
                records_in,
                records_out: out.len() as u64,
            };
            (out, stats, task_counters)
        })?;

    counters.add("TASK_RETRIES", reduce_retries);
    let mut output = Vec::new();
    let mut reduce_stats = Vec::with_capacity(reducers);
    for (out, stats, task_counters) in reduce_outputs {
        counters.merge(&task_counters);
        counters.add("REDUCE_INPUT_RECORDS", stats.records_in);
        counters.add("REDUCE_OUTPUT_RECORDS", stats.records_out);
        reduce_stats.push(stats);
        output.extend(out);
    }

    Ok(JobResult {
        output,
        counters,
        map_stats,
        reduce_stats,
        shuffled_pairs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Classic word count over (line_no, line) records.
    struct WcMapper;
    impl Mapper for WcMapper {
        type InKey = usize;
        type InValue = String;
        type OutKey = String;
        type OutValue = u64;
        fn map(&self, _k: usize, line: String, ctx: &mut TaskContext<String, u64>) {
            for w in line.split_whitespace() {
                ctx.emit(w.to_string(), 1);
            }
            ctx.count("lines", 1);
        }
    }

    struct SumReducer;
    impl Reducer for SumReducer {
        type InKey = String;
        type InValue = u64;
        type OutKey = String;
        type OutValue = u64;
        fn reduce(&self, key: String, values: Vec<u64>, ctx: &mut TaskContext<String, u64>) {
            ctx.emit(key, values.iter().sum());
        }
    }

    struct SumCombiner;
    impl Combiner for SumCombiner {
        type Key = String;
        type Value = u64;
        fn combine(&self, _key: &String, values: Vec<u64>) -> Vec<u64> {
            vec![values.iter().sum()]
        }
    }

    fn wc_input() -> Vec<(usize, String)> {
        let text = "the quick brown fox\nthe lazy dog\nthe fox";
        text.lines()
            .enumerate()
            .map(|(i, l)| (i, l.to_string()))
            .collect()
    }

    fn sorted(output: Vec<(String, u64)>) -> Vec<(String, u64)> {
        let mut v = output;
        v.sort();
        v
    }

    fn expected_wc() -> Vec<(String, u64)> {
        vec![
            ("brown".into(), 1),
            ("dog".into(), 1),
            ("fox".into(), 2),
            ("lazy".into(), 1),
            ("quick".into(), 1),
            ("the".into(), 3),
        ]
    }

    #[test]
    fn word_count_end_to_end() {
        let cfg = JobConfig::named("wc").reducers(3).workers(4);
        let result = run_job(wc_input(), 2, &WcMapper, &SumReducer, &cfg).unwrap();
        assert_eq!(sorted(result.output), expected_wc());
        assert_eq!(result.counters.get("lines"), 3);
        assert_eq!(result.counters.get("MAP_INPUT_RECORDS"), 3);
        assert_eq!(result.map_stats.len(), 2);
        assert_eq!(result.reduce_stats.len(), 3);
    }

    #[test]
    fn combiner_reduces_shuffle_volume_same_answer() {
        let cfg = JobConfig::named("wc").reducers(2).workers(2);
        let plain = run_job(wc_input(), 3, &WcMapper, &SumReducer, &cfg).unwrap();
        let combined =
            run_job_with_combiner(wc_input(), 3, &WcMapper, &SumCombiner, &SumReducer, &cfg)
                .unwrap();
        assert_eq!(sorted(plain.output), sorted(combined.output));
        assert!(
            combined.shuffled_pairs <= plain.shuffled_pairs,
            "combiner must not inflate shuffle: {} vs {}",
            combined.shuffled_pairs,
            plain.shuffled_pairs
        );
    }

    #[test]
    fn deterministic_across_worker_counts() {
        let outs: Vec<Vec<(String, u64)>> = [1usize, 2, 8]
            .iter()
            .map(|&w| {
                let cfg = JobConfig::named("wc").reducers(4).workers(w);
                sorted(
                    run_job(wc_input(), 4, &WcMapper, &SumReducer, &cfg)
                        .unwrap()
                        .output,
                )
            })
            .collect();
        assert_eq!(outs[0], outs[1]);
        assert_eq!(outs[1], outs[2]);
    }

    #[test]
    fn empty_input_empty_output() {
        let cfg = JobConfig::named("wc").reducers(2);
        let result = run_job(Vec::new(), 4, &WcMapper, &SumReducer, &cfg).unwrap();
        assert!(result.output.is_empty());
    }

    #[test]
    fn more_reducers_than_keys_is_fine() {
        let cfg = JobConfig::named("wc").reducers(64);
        let result = run_job(wc_input(), 2, &WcMapper, &SumReducer, &cfg).unwrap();
        assert_eq!(sorted(result.output), expected_wc());
    }

    #[test]
    fn zero_reducers_rejected() {
        let cfg = JobConfig::named("bad").reducers(0);
        assert!(matches!(
            run_job(wc_input(), 1, &WcMapper, &SumReducer, &cfg),
            Err(MrError::BadConfig(_))
        ));
    }

    #[test]
    fn map_only_preserves_task_order() {
        let cfg = JobConfig::named("m").workers(4);
        let input: Vec<(usize, String)> = (0..100).map(|i| (i, format!("w{i}"))).collect();
        struct Echo;
        impl Mapper for Echo {
            type InKey = usize;
            type InValue = String;
            type OutKey = usize;
            type OutValue = String;
            fn map(&self, k: usize, v: String, ctx: &mut TaskContext<usize, String>) {
                ctx.emit(k, v);
            }
        }
        let result = run_map_only(input, 7, &Echo, &cfg).unwrap();
        let keys: Vec<usize> = result.output.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, (0..100).collect::<Vec<_>>());
        assert_eq!(result.map_stats.len(), 7);
    }

    #[test]
    fn task_panic_becomes_error() {
        struct Bomb;
        impl Mapper for Bomb {
            type InKey = usize;
            type InValue = String;
            type OutKey = String;
            type OutValue = u64;
            fn map(&self, k: usize, _v: String, _ctx: &mut TaskContext<String, u64>) {
                if k == 1 {
                    panic!("injected fault");
                }
            }
        }
        let cfg = JobConfig::named("boom").reducers(1).workers(2);
        match run_job(wc_input(), 3, &Bomb, &SumReducer, &cfg) {
            Err(MrError::TaskFailed { phase, message, .. }) => {
                assert_eq!(phase, "map");
                assert!(message.contains("injected fault"));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn flaky_task_succeeds_with_retries() {
        use std::sync::atomic::AtomicU32;

        /// Fails its first two executions, then works — a crashy
        /// datanode, Hadoop-style.
        struct Flaky {
            failures_left: AtomicU32,
        }
        impl Mapper for Flaky {
            type InKey = usize;
            type InValue = String;
            type OutKey = String;
            type OutValue = u64;
            fn map(&self, _k: usize, line: String, ctx: &mut TaskContext<String, u64>) {
                let left = self.failures_left.load(Ordering::SeqCst);
                if left > 0
                    && self
                        .failures_left
                        .compare_exchange(left, left - 1, Ordering::SeqCst, Ordering::SeqCst)
                        .is_ok()
                {
                    panic!("transient fault");
                }
                for w in line.split_whitespace() {
                    ctx.emit(w.to_string(), 1);
                }
            }
        }

        // Without retries: the job fails.
        let flaky = Flaky {
            failures_left: AtomicU32::new(2),
        };
        let cfg = JobConfig::named("flaky").reducers(2).workers(1);
        assert!(run_job(wc_input(), 2, &flaky, &SumReducer, &cfg).is_err());

        // With an attempt budget: the job recovers and the answer is
        // exactly the clean run's.
        let flaky = Flaky {
            failures_left: AtomicU32::new(2),
        };
        let cfg = JobConfig::named("flaky").reducers(2).workers(1).attempts(4);
        let result = run_job(wc_input(), 2, &flaky, &SumReducer, &cfg).unwrap();
        assert_eq!(sorted(result.output), expected_wc());
        assert!(result.counters.get("TASK_RETRIES") >= 1);
    }

    #[test]
    fn attempts_builder_floors_at_one() {
        assert_eq!(JobConfig::named("x").attempts(0).max_attempts, 1);
        assert_eq!(JobConfig::named("x").attempts(3).max_attempts, 3);
    }

    #[test]
    fn chunking_is_balanced_and_complete() {
        let chunks = chunk_input((0..10).collect::<Vec<_>>(), 3);
        assert_eq!(chunks.len(), 3);
        let sizes: Vec<usize> = chunks.iter().map(|c| c.len()).collect();
        assert_eq!(sizes, vec![4, 3, 3]);
        let all: Vec<i32> = chunks.into_iter().flatten().collect();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn chunking_more_tasks_than_items() {
        let chunks = chunk_input(vec![1, 2], 5);
        assert_eq!(chunks.len(), 5);
        let total: usize = chunks.iter().map(|c| c.len()).sum();
        assert_eq!(total, 2);
    }

    #[test]
    fn reduce_output_sorted_within_partition() {
        // With one reducer, all output keys arrive sorted.
        let cfg = JobConfig::named("sorted").reducers(1);
        let result = run_job(wc_input(), 2, &WcMapper, &SumReducer, &cfg).unwrap();
        let keys: Vec<&String> = result.output.iter().map(|(k, _)| k).collect();
        let mut expect = keys.clone();
        expect.sort();
        assert_eq!(keys, expect);
    }
}
