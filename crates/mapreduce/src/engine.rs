//! The multi-threaded job executor.
//!
//! Runs map tasks on a bounded worker pool (sized like the simulated
//! cluster's task slots), performs a hash-partitioned **sort-merge
//! shuffle**, then runs reduce tasks per partition. Task wall-times are
//! recorded so the [`crate::simcluster`] layer can re-schedule the same
//! work onto a virtual 2–12 node cluster.
//!
//! The data plane mirrors Hadoop's spill/merge design (see DESIGN.md
//! §3a): map tasks read their input through `Arc`-shared chunks (so
//! retries and speculative backups never re-clone the chunk buffer)
//! and hash-group their emissions into per-key value blocks, so each
//! pair is touched once instead of sort-moved `log n` times and the
//! per-key value order is exactly what a stable spill sort would
//! produce. The combiner consumes whole groups in place (Hadoop's
//! combine-on-spill), then each task emits one *sorted run of distinct
//! keys per reduce partition* — the sort prices by distinct keys, not
//! pairs. The shuffle barrier **moves** those runs into per-reducer
//! slots; nothing is concatenated or copied. Each reduce task then
//! k-way-merges its runs group-at-a-time with a binary heap, breaking
//! key ties toward the lowest map index, which reproduces
//! bit-identically the order the old concatenate-then-stable-sort path
//! produced.
//!
//! # Fault tolerance
//!
//! Every entry point has a `*_with_faults` variant taking a
//! [`FaultInjector`] (see [`mrmc_chaos`]). The plain variants run with
//! [`NoFaults`]. The recovery mechanics are *real*, not accounting:
//!
//! * a panicking task attempt (injected or genuine) is retried up to
//!   [`crate::job::JobConfig::max_attempts`] times; exhausted budgets
//!   fail the job with the **lowest** failing task index (deterministic
//!   under concurrency);
//! * a straggling attempt (injected slowdown) triggers a speculative
//!   backup attempt in the same worker pool; the first finisher wins —
//!   decided deterministically: a completed backup always beats its
//!   straggling original, so recovery counters are reproducible;
//! * each map task is pinned to a virtual node (`task % virtual_nodes`,
//!   a stand-in for locality-aware placement); when the injector kills
//!   nodes at the map→reduce barrier, the engine blacklists them and
//!   re-executes the map tasks whose (node-local, uncommitted) output
//!   died with them — Hadoop's lost-map-output semantics;
//! * a shuffle fetch that keeps failing past the retry limit declares
//!   the map output lost and re-executes that map task too.
//!
//! Everything the runtime did to survive is tallied in
//! [`RecoveryCounters`] on the [`JobResult`].

use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use mrmc_chaos::{FaultInjector, NoFaults, Phase, RecoveryCounters, TaskFault};
use mrmc_obs::{Category, SpanDraft, SpanId, Tracer};

use crate::error::MrError;
use crate::job::{
    Combiner, Counters, JobConfig, JobResult, Mapper, Reducer, TaskContext, TaskStats,
};

/// Shuffle fetches retried per (map, partition) before the map output
/// is declared lost and the map task re-executed (Hadoop's
/// `max.fetch.failures.per.mapper` idea, scaled down).
const FETCH_RETRY_LIMIT: u32 = 3;

/// Default worker pool size: the machine's parallelism.
fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

/// One queued execution of a task: `slot` indexes the phase's task
/// list, `attempt` is the per-task attempt ordinal handed to the
/// injector, `backup` marks speculative executions.
#[derive(Debug, Clone, Copy)]
struct Item {
    slot: usize,
    attempt: usize,
    backup: bool,
}

/// Per-task bookkeeping inside the pool.
struct TaskCell<T> {
    result: Option<T>,
    /// A successful result has been recorded.
    done: bool,
    /// The winning result came from a speculative backup.
    won_by_backup: bool,
    /// A speculative backup has been queued for this task.
    backup_launched: bool,
    /// The launched backup failed (the original's result stands).
    backup_failed: bool,
    /// The original finished while its backup was still outstanding.
    original_succeeded: bool,
    /// Regular (non-speculative) executions consumed from the attempt
    /// budget.
    regular_execs: usize,
    /// Next attempt ordinal to hand out (retries and backups alike).
    next_attempt: usize,
    /// Executions currently queued or running.
    outstanding: usize,
    last_error: Option<String>,
}

struct PoolState<T> {
    queue: VecDeque<Item>,
    /// Items queued or being processed; workers exit when it reaches 0.
    live: usize,
    cells: Vec<TaskCell<T>>,
    retried: u64,
    /// Completed executions, for the trace ledger. Workers push one
    /// record inside the lock section they already take to commit
    /// their result — tracing adds no extra lock traffic.
    attempts: Vec<AttemptRec>,
}

/// One completed task-attempt execution. Collected by the pool in
/// whatever order workers finish, then annotated and sorted by
/// (task, attempt) before reaching the tracer — so the emitted span
/// sequence depends only on the fault plan, never on thread timing.
/// Executions found moot at pull time (their task already finished)
/// never run a body and are *not* recorded: whether a queued retry
/// goes moot is the one timing-dependent bit of the pool, and the
/// ledger must stay deterministic.
#[derive(Debug, Clone)]
struct AttemptRec {
    slot: usize,
    task: usize,
    attempt: usize,
    backup: bool,
    /// The injector stalled this execution (straggler model).
    slowdown: bool,
    /// This execution triggered the launch of a speculative backup.
    spawned_backup: bool,
    /// Succeeded, but a speculative backup's result was used instead.
    superseded: bool,
    /// This backup's result won over the straggling original.
    won: bool,
    error: Option<String>,
    start: Instant,
    end: Instant,
}

/// Everything one phase pass produced: per-task results, the recovery
/// ledger, and the attempt records for tracing.
struct PhaseOutput<T> {
    results: Vec<T>,
    recovery: RecoveryCounters,
    attempts: Vec<AttemptRec>,
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "task panicked".to_string())
}

/// Execution parameters of one phase pass, shared by every task.
///
/// `attempt_offset` shifts the attempt ordinals handed to the injector
/// — re-execution passes (after node loss or lost shuffle output) use
/// it so their attempts are distinguishable from the primary pass.
struct PhaseSpec<'a> {
    phase: Phase,
    threads: usize,
    attempts: usize,
    attempt_offset: usize,
    speculate: bool,
    injector: &'a dyn FaultInjector,
}

/// Run the tasks in `task_ids` on the spec's workers, consulting its
/// injector before every attempt. Returns results aligned with
/// `task_ids` plus the recovery ledger (retries + speculative wins).
fn run_phase<T, F>(
    spec: &PhaseSpec<'_>,
    task_ids: &[usize],
    f: F,
) -> Result<PhaseOutput<T>, MrError>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let PhaseSpec {
        phase,
        threads,
        attempts,
        attempt_offset,
        speculate,
        injector,
    } = *spec;
    let n = task_ids.len();
    if n == 0 {
        return Ok(PhaseOutput {
            results: Vec::new(),
            recovery: RecoveryCounters::new(),
            attempts: Vec::new(),
        });
    }
    let attempts = attempts.max(1);
    let state = Mutex::new(PoolState {
        queue: (0..n)
            .map(|slot| Item {
                slot,
                attempt: 0,
                backup: false,
            })
            .collect(),
        live: n,
        cells: (0..n)
            .map(|_| TaskCell {
                result: None,
                done: false,
                won_by_backup: false,
                backup_launched: false,
                backup_failed: false,
                original_succeeded: false,
                regular_execs: 1,
                next_attempt: 1,
                outstanding: 1,
                last_error: None,
            })
            .collect(),
        retried: 0,
        attempts: Vec::new(),
    });
    let cvar = Condvar::new();
    let workers = threads.clamp(1, n);

    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                // Pull the next execution, or exit once the pool drains.
                let item = {
                    let mut g = state.lock().expect("pool lock");
                    loop {
                        if let Some(it) = g.queue.pop_front() {
                            break it;
                        }
                        if g.live == 0 {
                            return;
                        }
                        g = cvar.wait(g).expect("pool lock");
                    }
                };
                // A queued retry/backup for an already-finished task is
                // moot: drop it without consulting the injector.
                let moot = state.lock().expect("pool lock").cells[item.slot].done;
                let task_id = task_ids[item.slot];
                let fault = if moot {
                    None
                } else {
                    injector.task_fault(phase, task_id, attempt_offset + item.attempt)
                };

                // A straggling original gets a speculative backup
                // queued *before* it stalls, then really stalls.
                let exec_start = Instant::now();
                let mut spawned_backup = false;
                if let Some(TaskFault::Slowdown(delay)) = &fault {
                    if !item.backup && speculate {
                        let mut g = state.lock().expect("pool lock");
                        let mut launch = None;
                        {
                            let cell = &mut g.cells[item.slot];
                            if !cell.backup_launched && !cell.done {
                                cell.backup_launched = true;
                                cell.outstanding += 1;
                                launch = Some(Item {
                                    slot: item.slot,
                                    attempt: cell.next_attempt,
                                    backup: true,
                                });
                                cell.next_attempt += 1;
                            }
                        }
                        if let Some(it) = launch {
                            spawned_backup = true;
                            g.queue.push_back(it);
                            g.live += 1;
                            cvar.notify_one();
                        }
                    }
                    std::thread::sleep(*delay);
                }

                let exec: Option<Result<T, String>> = if moot {
                    None
                } else {
                    Some(
                        catch_unwind(AssertUnwindSafe(|| {
                            if let Some(TaskFault::Panic(msg)) = &fault {
                                panic!("{}", msg.clone());
                            }
                            f(task_id)
                        }))
                        .map_err(panic_message),
                    )
                };
                let exec_end = Instant::now();

                let mut g = state.lock().expect("pool lock");
                if let Some(res) = &exec {
                    g.attempts.push(AttemptRec {
                        slot: item.slot,
                        task: task_id,
                        attempt: item.attempt,
                        backup: item.backup,
                        slowdown: matches!(&fault, Some(TaskFault::Slowdown(_))),
                        spawned_backup,
                        superseded: false,
                        won: false,
                        error: res.as_ref().err().cloned(),
                        start: exec_start,
                        end: exec_end,
                    });
                }
                let mut retry = None;
                {
                    let cell = &mut g.cells[item.slot];
                    cell.outstanding -= 1;
                    match exec {
                        None => {}
                        Some(Ok(v)) => {
                            if item.backup {
                                // First-finisher-wins, decided
                                // deterministically: a successful backup
                                // always beats its straggling original,
                                // whatever the thread timing was.
                                cell.result = Some(v);
                                cell.won_by_backup = true;
                                cell.done = true;
                            } else if !cell.done {
                                if cell.result.is_none() {
                                    cell.result = Some(v);
                                }
                                // While a backup is outstanding the
                                // task stays open: its plan-determined
                                // outcome (not thread timing) decides
                                // the winner.
                                if !cell.backup_launched || cell.backup_failed {
                                    cell.done = true;
                                } else {
                                    cell.original_succeeded = true;
                                }
                            }
                        }
                        Some(Err(msg)) => {
                            cell.last_error = Some(msg);
                            if item.backup {
                                // Failed backups are abandoned (they
                                // were a bonus); a finished original
                                // now stands.
                                cell.backup_failed = true;
                                if cell.original_succeeded {
                                    cell.done = true;
                                }
                            }
                            // Failed regular attempts retry while
                            // budget remains.
                            if !item.backup && !cell.done && cell.regular_execs < attempts {
                                cell.regular_execs += 1;
                                cell.outstanding += 1;
                                retry = Some(Item {
                                    slot: item.slot,
                                    attempt: cell.next_attempt,
                                    backup: false,
                                });
                                cell.next_attempt += 1;
                            }
                        }
                    }
                }
                if let Some(it) = retry {
                    g.retried += 1;
                    g.queue.push_back(it);
                    g.live += 1;
                    cvar.notify_one();
                }
                g.live -= 1;
                if g.live == 0 {
                    cvar.notify_all();
                }
            });
        }
    });

    let state = state.into_inner().expect("pool lock");
    // Deterministic first-failure choice: the lowest failing task
    // index, regardless of which worker recorded its failure first.
    if let Some((slot, cell)) = state.cells.iter().enumerate().find(|(_, c)| !c.done) {
        return Err(MrError::TaskFailed {
            phase: phase.name(),
            task: task_ids[slot],
            attempts: cell.regular_execs,
            message: cell
                .last_error
                .clone()
                .unwrap_or_else(|| "task produced no result".to_string()),
        });
    }
    let recovery = RecoveryCounters {
        tasks_retried: state.retried,
        speculative_wins: state.cells.iter().filter(|c| c.won_by_backup).count() as u64,
        ..RecoveryCounters::new()
    };
    // Annotate winners/supersessions now that the race is settled,
    // then put the records into canonical (task, attempt) order — the
    // order the tracer will see, independent of worker scheduling.
    let mut attempt_recs = state.attempts;
    for rec in &mut attempt_recs {
        if rec.error.is_none() && state.cells[rec.slot].won_by_backup {
            if rec.backup {
                rec.won = true;
            } else {
                rec.superseded = true;
            }
        }
    }
    attempt_recs.sort_by_key(|r| (r.task, r.attempt, r.backup));
    let results = state
        .cells
        .into_iter()
        .map(|c| c.result.expect("task completed"))
        .collect();
    Ok(PhaseOutput {
        results,
        recovery,
        attempts: attempt_recs,
    })
}

/// Per-job trace emission context: the job ordinal plus the span
/// chain heads used to wire retry and barrier dependency edges.
struct TraceCtx<'a> {
    tracer: &'a Tracer,
    job: u32,
    /// Latest span per (phase, task): retries, speculative backups and
    /// re-execution passes chain onto their predecessor through it,
    /// and the map-phase entries become the shuffle barrier's deps.
    last_span: HashMap<(u8, usize), SpanId>,
}

fn phase_key(phase: Phase) -> u8 {
    match phase {
        Phase::Map => 0,
        Phase::Reduce => 1,
    }
}

impl<'a> TraceCtx<'a> {
    fn begin(tracer: &'a Tracer, job_name: &str) -> TraceCtx<'a> {
        TraceCtx {
            job: tracer.begin_job(job_name),
            tracer,
            last_span: HashMap::new(),
        }
    }

    fn event(&self, name: &str, ts_ns: u64, meta: Vec<(String, String)>) {
        self.tracer.add_event(self.job, name, ts_ns, meta);
    }

    /// Emit one span per attempt record of a finished phase pass.
    /// Called from the single-threaded post-phase merge point with
    /// records already in canonical order, so span ids and edges are
    /// deterministic. `pass` labels re-execution passes ("node_loss" /
    /// "fetch_fail"); `extra_deps` adds barrier edges (reduce ←
    /// shuffle).
    fn emit_phase(
        &mut self,
        phase: Phase,
        pass: Option<&str>,
        attempt_offset: usize,
        recs: &[AttemptRec],
        extra_deps: &[SpanId],
    ) {
        let key = phase_key(phase);
        for rec in recs {
            let attempt = attempt_offset + rec.attempt;
            // First regular attempts of the primary pass are the real
            // work; everything else only exists because of a fault.
            let category = if rec.backup || rec.attempt > 0 || pass.is_some() {
                Category::Recovery
            } else {
                Category::Compute
            };
            let start_ns = self.tracer.ns_of(rec.start);
            let end_ns = self.tracer.ns_of(rec.end);
            let mut draft = SpanDraft::new(self.job, phase.name(), category)
                .task_attempt(rec.task, attempt)
                .at(start_ns, end_ns.saturating_sub(start_ns))
                .deps(self.last_span.get(&(key, rec.task)).copied())
                .deps(extra_deps.iter().copied());
            if rec.backup {
                draft = draft.meta("backup", "true");
            }
            if rec.slowdown {
                draft = draft.meta("straggler", "true");
            }
            if rec.superseded {
                draft = draft.meta("superseded", "true");
            }
            if let Some(p) = pass {
                draft = draft.meta("pass", p);
            }
            if let Some(err) = &rec.error {
                draft = draft.meta("error", err.as_str());
            }
            let id = self.tracer.add_span(draft);
            self.last_span.insert((key, rec.task), id);
            if rec.spawned_backup {
                self.event(
                    "speculative_launch",
                    start_ns,
                    vec![("task".into(), rec.task.to_string())],
                );
            }
            if rec.error.is_some() {
                self.event(
                    "panic",
                    end_ns,
                    vec![
                        ("task".into(), rec.task.to_string()),
                        ("attempt".into(), attempt.to_string()),
                    ],
                );
            }
            if rec.won {
                self.event(
                    "speculative_win",
                    end_ns,
                    vec![("task".into(), rec.task.to_string())],
                );
            }
        }
    }

    /// The gating span of each map task (latest attempt), sorted by
    /// task index: the shuffle barrier's dependency set.
    fn map_frontier(&self) -> Vec<SpanId> {
        let mut tasks: Vec<(usize, SpanId)> = self
            .last_span
            .iter()
            .filter(|((k, _), _)| *k == phase_key(Phase::Map))
            .map(|((_, task), &id)| (*task, id))
            .collect();
        tasks.sort_unstable();
        tasks.into_iter().map(|(_, id)| id).collect()
    }
}

/// Map tasks assigned to virtual nodes that died at the map→reduce
/// barrier. Task→node placement is the engine's round-robin
/// `task % virtual_nodes`.
fn tasks_lost_to(deaths: &[usize], num_tasks: usize, nodes: usize) -> Vec<usize> {
    (0..num_tasks)
        .filter(|i| deaths.contains(&(i % nodes)))
        .collect()
}

/// Consult the injector for node deaths, blacklist them, and
/// re-execute the map tasks whose output died. Returns an error only
/// if every virtual node died.
fn recover_node_deaths<T, F>(
    outputs: &mut [T],
    recovery: &mut RecoveryCounters,
    config: &JobConfig,
    workers: usize,
    injector: &dyn FaultInjector,
    trace: &mut Option<TraceCtx<'_>>,
    f: F,
) -> Result<(), MrError>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let nodes = config.virtual_nodes.max(1);
    let mut deaths: Vec<usize> = injector
        .node_deaths_after_map()
        .into_iter()
        .filter(|&d| d < nodes)
        .collect();
    deaths.sort_unstable();
    deaths.dedup();
    if deaths.is_empty() {
        return Ok(());
    }
    if let Some(ctx) = trace {
        let now = ctx.tracer.now_ns();
        for &d in &deaths {
            ctx.event("node_death", now, vec![("node".into(), d.to_string())]);
        }
    }
    if deaths.len() >= nodes {
        return Err(MrError::BadConfig(format!(
            "chaos: all {nodes} virtual nodes died; no survivors to re-run on"
        )));
    }
    let lost = tasks_lost_to(&deaths, outputs.len(), nodes);
    if lost.is_empty() {
        return Ok(());
    }
    // Surviving nodes re-run the lost maps; attempt ordinals are
    // offset past the primary pass so the injector can tell them
    // apart.
    let attempt_offset = config.max_attempts + 2;
    let redo = run_phase(
        &PhaseSpec {
            phase: Phase::Map,
            threads: workers,
            attempts: config.max_attempts,
            attempt_offset,
            speculate: config.speculative,
            injector,
        },
        &lost,
        f,
    )?;
    if let Some(ctx) = trace {
        let now = ctx.tracer.now_ns();
        for &task in &lost {
            ctx.event(
                "map_reexec",
                now,
                vec![
                    ("task".into(), task.to_string()),
                    ("cause".into(), "node_loss".into()),
                ],
            );
        }
        ctx.emit_phase(
            Phase::Map,
            Some("node_loss"),
            attempt_offset,
            &redo.attempts,
            &[],
        );
    }
    recovery.merge(&redo.recovery);
    recovery.maps_reexecuted_node_loss += lost.len() as u64;
    for (&slot, out) in lost.iter().zip(redo.results) {
        outputs[slot] = out;
    }
    Ok(())
}

/// The contiguous near-equal ranges `chunk_input` splits a `len`-record
/// input into across `tasks` map tasks (front-loaded remainder). Public
/// so layers above the engine — e.g. the Pig columnar GROUP, which
/// shuffles row *indices* and gathers from a shared batch — can
/// partition side data exactly along the engine's map-task boundaries.
pub fn chunk_ranges(len: usize, tasks: usize) -> Vec<std::ops::Range<usize>> {
    let n = tasks.max(1);
    let base = len / n;
    let extra = len % n;
    let mut ranges = Vec::with_capacity(n);
    let mut start = 0usize;
    for i in 0..n {
        let size = base + usize::from(i < extra);
        ranges.push(start..start + size);
        start += size;
    }
    ranges
}

/// Split `input` into `n` contiguous chunks of near-equal length
/// (boundaries per [`chunk_ranges`]).
fn chunk_input<T>(mut input: Vec<T>, n: usize) -> Vec<Vec<T>> {
    let ranges = chunk_ranges(input.len(), n);
    let mut chunks = Vec::with_capacity(ranges.len());
    // Pop from the back to avoid O(n²) moves, then reverse.
    for range in ranges.iter().rev() {
        let tail = input.split_off(range.start);
        chunks.push(tail);
    }
    chunks.reverse();
    chunks
}

/// K-way merge of key-sorted grouped runs, streamed group-at-a-time
/// into `f` without ever materializing a merged pair list. The runs are
/// shared read-only (retried or speculative reduce attempts re-read
/// them), so value blocks are cloned out — but each *key* is cloned
/// once per merged group, not once per pair. Ties break toward the
/// lowest run index, so a key's values concatenate in map-task order —
/// exactly the order the old concat-then-stable-sort path produced.
fn merge_groups<K: Ord + Clone, V: Clone>(runs: &[Vec<(K, Vec<V>)>], mut f: impl FnMut(K, Vec<V>)) {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    let mut pos = vec![0usize; runs.len()];
    let mut heap: BinaryHeap<Reverse<(&K, usize)>> = runs
        .iter()
        .enumerate()
        .filter(|(_, run)| !run.is_empty())
        .map(|(r, run)| Reverse((&run[0].0, r)))
        .collect();
    while let Some(Reverse((key, r))) = heap.pop() {
        let mut values = runs[r][pos[r]].1.clone();
        pos[r] += 1;
        if let Some(next) = runs[r].get(pos[r]) {
            heap.push(Reverse((&next.0, r)));
        }
        // Later runs holding the same key append their value blocks in
        // run (= map task) order.
        while let Some(Reverse((next_key, r2))) = heap.peek().copied() {
            if next_key != key {
                break;
            }
            heap.pop();
            values.extend_from_slice(&runs[r2][pos[r2]].1);
            pos[r2] += 1;
            if let Some(next) = runs[r2].get(pos[r2]) {
                heap.push(Reverse((&next.0, r2)));
            }
        }
        f(key.clone(), values);
    }
}

/// An input chunk shared by every attempt of a map task (retries,
/// speculative backups, post-death re-executions).
type SharedChunk<M> = Arc<[(<M as Mapper>::InKey, <M as Mapper>::InValue)]>;

/// One map-side sorted run: distinct keys, each with its value block
/// in the map task's emission order.
type SortedRun<K, V> = Vec<(K, Vec<V>)>;

struct MapTaskOutput<K, V> {
    /// One key-sorted run of `(key, values)` groups per reduce
    /// partition; keys are distinct within a run and values keep the
    /// map task's emission order.
    runs: Vec<SortedRun<K, V>>,
    /// Payload bytes across all runs, per the [`Mapper`] wire-size
    /// hooks (key once per group, plus value count and values).
    bytes: u64,
    /// Pairs the mapper emitted before the combiner ran (equals
    /// `stats.records_out` when no combiner is configured); the
    /// tracer's combiner-activity events report the in/out ratio.
    raw_pairs: u64,
    stats: TaskStats,
    counters: Counters,
}

/// Run the map phase only; returns the concatenated mapper output in
/// task order (no shuffle, no reduce). Useful for `FOREACH`-style
/// record-parallel transforms that Pig lowers to map-only jobs.
pub fn run_map_only<M>(
    input: Vec<(M::InKey, M::InValue)>,
    num_map_tasks: usize,
    mapper: &M,
    config: &JobConfig,
) -> Result<JobResult<M::OutKey, M::OutValue>, MrError>
where
    M: Mapper,
    M::InKey: Clone + Sync,
    M::InValue: Clone + Sync,
{
    run_map_only_with_faults(input, num_map_tasks, mapper, config, &NoFaults)
}

/// [`run_map_only`] under a fault injector. Map outputs count as
/// node-local until the job commits, so a node death at the end of the
/// map phase re-executes that node's tasks even in a map-only job.
pub fn run_map_only_with_faults<M>(
    input: Vec<(M::InKey, M::InValue)>,
    num_map_tasks: usize,
    mapper: &M,
    config: &JobConfig,
    injector: &dyn FaultInjector,
) -> Result<JobResult<M::OutKey, M::OutValue>, MrError>
where
    M: Mapper,
    M::InKey: Clone + Sync,
    M::InValue: Clone + Sync,
{
    injector.begin_job(&config.name);
    let workers = config.worker_threads.unwrap_or_else(default_workers);
    let mut trace = config
        .tracer
        .as_deref()
        .map(|t| TraceCtx::begin(t, &config.name));
    let setup_start = trace.as_ref().map(|ctx| ctx.tracer.now_ns());
    // Chunks are Arc-shared: every attempt (retry, speculative backup,
    // post-death re-execution) reads the same buffer through its own
    // handle instead of cloning the chunk.
    let chunks: Vec<SharedChunk<M>> = chunk_input(input, num_map_tasks)
        .into_iter()
        .map(Arc::from)
        .collect();
    if let (Some(ctx), Some(t0)) = (&trace, setup_start) {
        let now = ctx.tracer.now_ns();
        ctx.tracer.add_span(
            SpanDraft::new(ctx.job, "job:setup", Category::Overhead)
                .at(t0, now.saturating_sub(t0))
                .meta("map_tasks", chunks.len()),
        );
    }

    let map_task = |i: usize| {
        let chunk = Arc::clone(&chunks[i]);
        let start = Instant::now();
        let records_in = chunk.len() as u64;
        let mut ctx = TaskContext::new();
        for (k, v) in chunk.iter() {
            mapper.map(k.clone(), v.clone(), &mut ctx);
        }
        let (pairs, counters) = ctx.into_parts();
        let stats = TaskStats {
            task: i,
            duration: start.elapsed(),
            records_in,
            records_out: pairs.len() as u64,
        };
        (pairs, stats, counters)
    };

    let ids: Vec<usize> = (0..chunks.len()).collect();
    let map_phase = run_phase(
        &PhaseSpec {
            phase: Phase::Map,
            threads: workers,
            attempts: config.max_attempts,
            attempt_offset: 0,
            speculate: config.speculative,
            injector,
        },
        &ids,
        map_task,
    )?;
    let mut outputs = map_phase.results;
    let mut recovery = map_phase.recovery;
    if let Some(ctx) = &mut trace {
        ctx.emit_phase(Phase::Map, None, 0, &map_phase.attempts, &[]);
    }
    recover_node_deaths(
        &mut outputs,
        &mut recovery,
        config,
        workers,
        injector,
        &mut trace,
        map_task,
    )?;

    let counters = Counters::new();
    counters.add("TASK_RETRIES", recovery.tasks_retried);
    let mut all = Vec::new();
    let mut map_stats = Vec::new();
    for (pairs, stats, task_counters) in outputs {
        counters.merge(&task_counters);
        counters.add("MAP_INPUT_RECORDS", stats.records_in);
        counters.add("MAP_OUTPUT_RECORDS", stats.records_out);
        map_stats.push(stats);
        all.extend(pairs);
    }
    // Map-only jobs shuffle nothing, but report the shuffle counters
    // anyway so every JobResult snapshot carries the same key set
    // (consumers iterate counters uniformly across stage kinds).
    counters.add("SHUFFLED_PAIRS", 0);
    counters.add("SHUFFLE_BYTES", 0);
    counters.add("SHUFFLE_RUNS", 0);
    Ok(JobResult {
        output: all,
        counters,
        map_stats,
        reduce_stats: Vec::new(),
        shuffled_pairs: 0,
        shuffled_bytes: 0,
        shuffle_runs: 0,
        recovery,
    })
}

/// Run a full map → shuffle → reduce job without a combiner.
pub fn run_job<M, R>(
    input: Vec<(M::InKey, M::InValue)>,
    num_map_tasks: usize,
    mapper: &M,
    reducer: &R,
    config: &JobConfig,
) -> Result<JobResult<R::OutKey, R::OutValue>, MrError>
where
    M: Mapper,
    M::InKey: Clone + Sync,
    M::InValue: Clone + Sync,
    R: Reducer<InKey = M::OutKey, InValue = M::OutValue>,
{
    run_job_impl(
        input,
        num_map_tasks,
        mapper,
        None::<&NoCombiner<M::OutKey, M::OutValue>>,
        reducer,
        config,
        &NoFaults,
    )
}

/// [`run_job`] under a fault injector.
pub fn run_job_with_faults<M, R>(
    input: Vec<(M::InKey, M::InValue)>,
    num_map_tasks: usize,
    mapper: &M,
    reducer: &R,
    config: &JobConfig,
    injector: &dyn FaultInjector,
) -> Result<JobResult<R::OutKey, R::OutValue>, MrError>
where
    M: Mapper,
    M::InKey: Clone + Sync,
    M::InValue: Clone + Sync,
    R: Reducer<InKey = M::OutKey, InValue = M::OutValue>,
{
    run_job_impl(
        input,
        num_map_tasks,
        mapper,
        None::<&NoCombiner<M::OutKey, M::OutValue>>,
        reducer,
        config,
        injector,
    )
}

/// Run a full job with a combiner applied to each map task's local
/// output before the shuffle.
pub fn run_job_with_combiner<M, C, R>(
    input: Vec<(M::InKey, M::InValue)>,
    num_map_tasks: usize,
    mapper: &M,
    combiner: &C,
    reducer: &R,
    config: &JobConfig,
) -> Result<JobResult<R::OutKey, R::OutValue>, MrError>
where
    M: Mapper,
    M::InKey: Clone + Sync,
    M::InValue: Clone + Sync,
    C: Combiner<Key = M::OutKey, Value = M::OutValue>,
    R: Reducer<InKey = M::OutKey, InValue = M::OutValue>,
{
    run_job_impl(
        input,
        num_map_tasks,
        mapper,
        Some(combiner),
        reducer,
        config,
        &NoFaults,
    )
}

/// [`run_job_with_combiner`] under a fault injector.
pub fn run_job_with_combiner_and_faults<M, C, R>(
    input: Vec<(M::InKey, M::InValue)>,
    num_map_tasks: usize,
    mapper: &M,
    combiner: &C,
    reducer: &R,
    config: &JobConfig,
    injector: &dyn FaultInjector,
) -> Result<JobResult<R::OutKey, R::OutValue>, MrError>
where
    M: Mapper,
    M::InKey: Clone + Sync,
    M::InValue: Clone + Sync,
    C: Combiner<Key = M::OutKey, Value = M::OutValue>,
    R: Reducer<InKey = M::OutKey, InValue = M::OutValue>,
{
    run_job_impl(
        input,
        num_map_tasks,
        mapper,
        Some(combiner),
        reducer,
        config,
        injector,
    )
}

/// A never-instantiated combiner standing in for `None`. The
/// `fn() -> _` phantom keeps it `Send + Sync` regardless of `K`/`V`.
struct NoCombiner<K, V>(std::marker::PhantomData<fn() -> (K, V)>);
impl<K: crate::job::MrKey, V: crate::job::MrValue> Combiner for NoCombiner<K, V> {
    type Key = K;
    type Value = V;
    fn combine(&self, _key: &K, values: Vec<V>) -> Vec<V> {
        values
    }
}
// PhantomData<(K,V)> is not Send/Sync-friendly for raw pointers, but
// K/V here are Send so the auto-impls apply.

/// Map-side spill-buffer pool: emit buffers and grouping maps from
/// finished map tasks are recycled into later tasks on the same job,
/// so steady-state mapping reuses their capacity instead of
/// reallocating per chunk. Purely an allocation optimization — a task
/// always clears what it takes, and a task that panics simply never
/// returns its buffers (losing capacity, never correctness).
struct SpillPool<K, V> {
    emit_bufs: Mutex<Vec<Vec<(K, V)>>>,
    group_maps: Mutex<Vec<HashMap<K, Vec<V>>>>,
}

impl<K, V> SpillPool<K, V> {
    fn new() -> SpillPool<K, V> {
        SpillPool {
            emit_bufs: Mutex::new(Vec::new()),
            group_maps: Mutex::new(Vec::new()),
        }
    }

    fn take_emit_buf(&self) -> Vec<(K, V)> {
        self.emit_bufs.lock().unwrap().pop().unwrap_or_default()
    }

    fn put_emit_buf(&self, mut buf: Vec<(K, V)>) {
        buf.clear();
        self.emit_bufs.lock().unwrap().push(buf);
    }

    fn take_group_map(&self) -> HashMap<K, Vec<V>> {
        self.group_maps.lock().unwrap().pop().unwrap_or_default()
    }

    fn put_group_map(&self, mut map: HashMap<K, Vec<V>>) {
        map.clear();
        self.group_maps.lock().unwrap().push(map);
    }
}

fn run_job_impl<M, C, R>(
    input: Vec<(M::InKey, M::InValue)>,
    num_map_tasks: usize,
    mapper: &M,
    combiner: Option<&C>,
    reducer: &R,
    config: &JobConfig,
    injector: &dyn FaultInjector,
) -> Result<JobResult<R::OutKey, R::OutValue>, MrError>
where
    M: Mapper,
    M::InKey: Clone + Sync,
    M::InValue: Clone + Sync,
    C: Combiner<Key = M::OutKey, Value = M::OutValue>,
    R: Reducer<InKey = M::OutKey, InValue = M::OutValue>,
{
    if config.num_reducers == 0 {
        return Err(MrError::BadConfig("num_reducers must be ≥ 1".into()));
    }
    injector.begin_job(&config.name);
    let reducers = config.num_reducers;
    let workers = config.worker_threads.unwrap_or_else(default_workers);
    let mut trace = config
        .tracer
        .as_deref()
        .map(|t| TraceCtx::begin(t, &config.name));
    let setup_start = trace.as_ref().map(|ctx| ctx.tracer.now_ns());

    // ---- Map phase ----
    // Chunks are Arc-shared: every attempt (retry, speculative backup,
    // post-death re-execution) reads the same buffer through its own
    // handle instead of cloning the chunk.
    let chunks: Vec<SharedChunk<M>> = chunk_input(input, num_map_tasks)
        .into_iter()
        .map(Arc::from)
        .collect();
    if let (Some(ctx), Some(t0)) = (&trace, setup_start) {
        let now = ctx.tracer.now_ns();
        ctx.tracer.add_span(
            SpanDraft::new(ctx.job, "job:setup", Category::Overhead)
                .at(t0, now.saturating_sub(t0))
                .meta("map_tasks", chunks.len())
                .meta("reducers", reducers),
        );
    }

    let spill_pool: SpillPool<M::OutKey, M::OutValue> = SpillPool::new();
    let map_task = |i: usize| {
        let chunk = Arc::clone(&chunks[i]);
        let start = Instant::now();
        let records_in = chunk.len() as u64;
        let mut ctx = TaskContext::with_buffer(spill_pool.take_emit_buf());
        for (k, v) in chunk.iter() {
            mapper.map(k.clone(), v.clone(), &mut ctx);
        }
        let (mut pairs, counters) = ctx.into_parts();
        let raw_pairs = pairs.len() as u64;
        // Group map-side in emission order: the hash grouping touches
        // each pair once instead of sort-moving it log n times, and the
        // per-key value order it preserves is exactly what the old
        // stable spill sort produced. The combiner then consumes whole
        // groups in place — Hadoop's combine-on-spill.
        let mut grouped: HashMap<M::OutKey, Vec<M::OutValue>> = spill_pool.take_group_map();
        for (k, v) in pairs.drain(..) {
            grouped.entry(k).or_default().push(v);
        }
        spill_pool.put_emit_buf(pairs);
        let mut records_out = 0u64;
        let mut bytes = 0u64;
        let mut runs: Vec<SortedRun<M::OutKey, M::OutValue>> =
            (0..reducers).map(|_| Vec::new()).collect();
        for (k, vs) in grouped.drain() {
            let vs = match combiner {
                Some(c) => c.combine(&k, vs),
                None => vs,
            };
            // A combiner may collapse a group to nothing; the old
            // plane simply never emitted such keys.
            if vs.is_empty() {
                continue;
            }
            records_out += vs.len() as u64;
            // Price the group exactly as the sort-merge run frames it:
            // the key once, a varint value count, then each surviving
            // value. (The old per-pair pricing charged the key once per
            // *value*, overstating SHUFFLE_BYTES for every multi-value
            // group.)
            bytes += (mapper.key_wire_size(&k) + crate::wire::uvarint_len(vs.len() as u64)) as u64;
            for v in &vs {
                bytes += mapper.value_wire_size(v) as u64;
            }
            let p = mapper.partition(&k, reducers);
            assert!(
                p < reducers,
                "Mapper::partition returned {p} for {reducers} reducers"
            );
            runs[p].push((k, vs));
        }
        // Keys are distinct within a run, so this cheap key-only sort
        // is deterministic despite the hash map's iteration order —
        // it prices by distinct keys, not by pairs. These are the
        // sorted spill segments reducers will merge.
        for run in &mut runs {
            run.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        }
        spill_pool.put_group_map(grouped);
        MapTaskOutput {
            runs,
            bytes,
            raw_pairs,
            stats: TaskStats {
                task: i,
                duration: start.elapsed(),
                records_in,
                records_out,
            },
            counters,
        }
    };

    let ids: Vec<usize> = (0..chunks.len()).collect();
    let map_phase = run_phase(
        &PhaseSpec {
            phase: Phase::Map,
            threads: workers,
            attempts: config.max_attempts,
            attempt_offset: 0,
            speculate: config.speculative,
            injector,
        },
        &ids,
        map_task,
    )?;
    let mut map_outputs = map_phase.results;
    let mut recovery = map_phase.recovery;
    if let Some(ctx) = &mut trace {
        ctx.emit_phase(Phase::Map, None, 0, &map_phase.attempts, &[]);
    }

    // ---- Node deaths at the map→reduce barrier ----
    recover_node_deaths(
        &mut map_outputs,
        &mut recovery,
        config,
        workers,
        injector,
        &mut trace,
        map_task,
    )?;

    // ---- Shuffle fetch failures ----
    // Each (map, partition) fetch is retried; past the limit the map
    // output is declared lost and the map task re-executed.
    let mut lost_maps = Vec::new();
    for m in 0..map_outputs.len() {
        let mut lost = false;
        for p in 0..reducers {
            let fails = injector.shuffle_fetch_failures(m, p);
            if fails == 0 {
                continue;
            }
            recovery.shuffle_fetch_retries += u64::from(fails.min(FETCH_RETRY_LIMIT));
            if let Some(ctx) = &trace {
                ctx.event(
                    "fetch_retry",
                    ctx.tracer.now_ns(),
                    vec![
                        ("map".into(), m.to_string()),
                        ("partition".into(), p.to_string()),
                        ("failures".into(), fails.to_string()),
                    ],
                );
            }
            if fails > FETCH_RETRY_LIMIT {
                lost = true;
            }
        }
        if lost {
            lost_maps.push(m);
        }
    }
    for m in lost_maps {
        let attempt_offset = config.max_attempts + 8;
        let redo = run_phase(
            &PhaseSpec {
                phase: Phase::Map,
                threads: workers,
                attempts: config.max_attempts,
                attempt_offset,
                speculate: config.speculative,
                injector,
            },
            &[m],
            map_task,
        )?;
        if let Some(ctx) = &mut trace {
            ctx.event(
                "map_reexec",
                ctx.tracer.now_ns(),
                vec![
                    ("task".into(), m.to_string()),
                    ("cause".into(), "fetch_fail".into()),
                ],
            );
            ctx.emit_phase(
                Phase::Map,
                Some("fetch_fail"),
                attempt_offset,
                &redo.attempts,
                &[],
            );
        }
        recovery.merge(&redo.recovery);
        recovery.maps_reexecuted_fetch_fail += 1;
        map_outputs[m] = redo.results.into_iter().next().expect("one task re-run");
    }

    // ---- Shuffle barrier: move each map's runs into reducer slots ----
    // No concatenation, no copy: a run Vec is *moved* into its
    // reducer's slot list, keeping map order (the merge's tie-break).
    let counters = Counters::new();
    let mut map_stats = Vec::with_capacity(map_outputs.len());
    let num_maps = map_outputs.len();
    let mut partition_slots: Vec<Vec<SortedRun<M::OutKey, M::OutValue>>> = (0..reducers)
        .map(|_| Vec::with_capacity(num_maps))
        .collect();
    let mut shuffled_pairs = 0u64;
    let mut shuffled_bytes = 0u64;
    let mut shuffle_runs = 0u64;
    let shuffle_start = trace.as_ref().map(|ctx| ctx.tracer.now_ns());
    for out in map_outputs {
        counters.merge(&out.counters);
        counters.add("MAP_INPUT_RECORDS", out.stats.records_in);
        counters.add("MAP_OUTPUT_RECORDS", out.stats.records_out);
        shuffled_pairs += out.stats.records_out;
        shuffled_bytes += out.bytes;
        if let Some(ctx) = &trace {
            if combiner.is_some() {
                ctx.event(
                    "combine",
                    ctx.tracer.now_ns(),
                    vec![
                        ("task".into(), out.stats.task.to_string()),
                        ("pairs_in".into(), out.raw_pairs.to_string()),
                        ("pairs_out".into(), out.stats.records_out.to_string()),
                    ],
                );
            }
        }
        let map_task_idx = out.stats.task;
        map_stats.push(out.stats);
        for (p, run) in out.runs.into_iter().enumerate() {
            if run.is_empty() {
                continue;
            }
            shuffle_runs += 1;
            if let Some(ctx) = &trace {
                ctx.event(
                    "shuffle_run",
                    ctx.tracer.now_ns(),
                    vec![
                        ("map".into(), map_task_idx.to_string()),
                        ("partition".into(), p.to_string()),
                        ("groups".into(), run.len().to_string()),
                    ],
                );
            }
            partition_slots[p].push(run);
        }
    }
    counters.add("SHUFFLED_PAIRS", shuffled_pairs);
    counters.add("SHUFFLE_BYTES", shuffled_bytes);
    counters.add("SHUFFLE_RUNS", shuffle_runs);
    let shuffle_span = trace.as_ref().zip(shuffle_start).map(|(ctx, t0)| {
        let now = ctx.tracer.now_ns();
        ctx.tracer.add_span(
            SpanDraft::new(ctx.job, "shuffle", Category::Shuffle)
                .at(t0, now.saturating_sub(t0))
                .deps(ctx.map_frontier())
                .meta("pairs", shuffled_pairs)
                .meta("bytes", shuffled_bytes)
                .meta("runs", shuffle_runs),
        )
    });

    // ---- Reduce phase ----
    let reduce_task = |p: usize| {
        let start = Instant::now();
        // Runs stay shared read-only: a retried or speculative attempt
        // merges the same slots again. Equal keys come out ordered by
        // (map task, emission order) — the old stable sort's order.
        let runs = &partition_slots[p];
        let records_in = runs
            .iter()
            .flat_map(|r| r.iter())
            .map(|(_, vs)| vs.len() as u64)
            .sum();
        let mut ctx = TaskContext::new();
        merge_groups(runs, |key, values| reducer.reduce(key, values, &mut ctx));
        let (out, task_counters) = ctx.into_parts();
        let stats = TaskStats {
            task: p,
            duration: start.elapsed(),
            records_in,
            records_out: out.len() as u64,
        };
        (out, stats, task_counters)
    };

    let reduce_ids: Vec<usize> = (0..reducers).collect();
    let reduce_phase = run_phase(
        &PhaseSpec {
            phase: Phase::Reduce,
            threads: workers,
            attempts: config.max_attempts,
            attempt_offset: 0,
            speculate: config.speculative,
            injector,
        },
        &reduce_ids,
        reduce_task,
    )?;
    recovery.merge(&reduce_phase.recovery);
    if let Some(ctx) = &mut trace {
        let barrier: Vec<SpanId> = shuffle_span.into_iter().collect();
        ctx.emit_phase(Phase::Reduce, None, 0, &reduce_phase.attempts, &barrier);
    }

    counters.add("TASK_RETRIES", recovery.tasks_retried);
    let mut output = Vec::new();
    let mut reduce_stats = Vec::with_capacity(reducers);
    for (out, stats, task_counters) in reduce_phase.results {
        counters.merge(&task_counters);
        counters.add("REDUCE_INPUT_RECORDS", stats.records_in);
        counters.add("REDUCE_OUTPUT_RECORDS", stats.records_out);
        reduce_stats.push(stats);
        output.extend(out);
    }

    Ok(JobResult {
        output,
        counters,
        map_stats,
        reduce_stats,
        shuffled_pairs,
        shuffled_bytes,
        shuffle_runs,
        recovery,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrmc_chaos::FaultPlan;
    use std::sync::atomic::Ordering;

    /// Classic word count over (line_no, line) records.
    struct WcMapper;
    impl Mapper for WcMapper {
        type InKey = usize;
        type InValue = String;
        type OutKey = String;
        type OutValue = u64;
        fn map(&self, _k: usize, line: String, ctx: &mut TaskContext<String, u64>) {
            for w in line.split_whitespace() {
                ctx.emit(w.to_string(), 1);
            }
            ctx.count("lines", 1);
        }
    }

    struct SumReducer;
    impl Reducer for SumReducer {
        type InKey = String;
        type InValue = u64;
        type OutKey = String;
        type OutValue = u64;
        fn reduce(&self, key: String, values: Vec<u64>, ctx: &mut TaskContext<String, u64>) {
            ctx.emit(key, values.iter().sum());
        }
    }

    struct SumCombiner;
    impl Combiner for SumCombiner {
        type Key = String;
        type Value = u64;
        fn combine(&self, _key: &String, values: Vec<u64>) -> Vec<u64> {
            vec![values.iter().sum()]
        }
    }

    fn wc_input() -> Vec<(usize, String)> {
        let text = "the quick brown fox\nthe lazy dog\nthe fox";
        text.lines()
            .enumerate()
            .map(|(i, l)| (i, l.to_string()))
            .collect()
    }

    fn sorted(output: Vec<(String, u64)>) -> Vec<(String, u64)> {
        let mut v = output;
        v.sort();
        v
    }

    fn expected_wc() -> Vec<(String, u64)> {
        vec![
            ("brown".into(), 1),
            ("dog".into(), 1),
            ("fox".into(), 2),
            ("lazy".into(), 1),
            ("quick".into(), 1),
            ("the".into(), 3),
        ]
    }

    #[test]
    fn word_count_end_to_end() {
        let cfg = JobConfig::named("wc").reducers(3).workers(4);
        let result = run_job(wc_input(), 2, &WcMapper, &SumReducer, &cfg).unwrap();
        assert_eq!(sorted(result.output), expected_wc());
        assert_eq!(result.counters.get("lines"), 3);
        assert_eq!(result.counters.get("MAP_INPUT_RECORDS"), 3);
        assert_eq!(result.map_stats.len(), 2);
        assert_eq!(result.reduce_stats.len(), 3);
        assert!(result.recovery.is_clean());
    }

    #[test]
    fn combiner_reduces_shuffle_volume_same_answer() {
        let cfg = JobConfig::named("wc").reducers(2).workers(2);
        let plain = run_job(wc_input(), 3, &WcMapper, &SumReducer, &cfg).unwrap();
        let combined =
            run_job_with_combiner(wc_input(), 3, &WcMapper, &SumCombiner, &SumReducer, &cfg)
                .unwrap();
        assert_eq!(sorted(plain.output), sorted(combined.output));
        assert!(
            combined.shuffled_pairs <= plain.shuffled_pairs,
            "combiner must not inflate shuffle: {} vs {}",
            combined.shuffled_pairs,
            plain.shuffled_pairs
        );
    }

    #[test]
    fn deterministic_across_worker_counts() {
        let outs: Vec<Vec<(String, u64)>> = [1usize, 2, 8]
            .iter()
            .map(|&w| {
                let cfg = JobConfig::named("wc").reducers(4).workers(w);
                sorted(
                    run_job(wc_input(), 4, &WcMapper, &SumReducer, &cfg)
                        .unwrap()
                        .output,
                )
            })
            .collect();
        assert_eq!(outs[0], outs[1]);
        assert_eq!(outs[1], outs[2]);
    }

    #[test]
    fn empty_input_empty_output() {
        let cfg = JobConfig::named("wc").reducers(2);
        let result = run_job(Vec::new(), 4, &WcMapper, &SumReducer, &cfg).unwrap();
        assert!(result.output.is_empty());
    }

    #[test]
    fn more_reducers_than_keys_is_fine() {
        let cfg = JobConfig::named("wc").reducers(64);
        let result = run_job(wc_input(), 2, &WcMapper, &SumReducer, &cfg).unwrap();
        assert_eq!(sorted(result.output), expected_wc());
    }

    #[test]
    fn zero_reducers_rejected() {
        let cfg = JobConfig::named("bad").reducers(0);
        assert!(matches!(
            run_job(wc_input(), 1, &WcMapper, &SumReducer, &cfg),
            Err(MrError::BadConfig(_))
        ));
    }

    #[test]
    fn map_only_preserves_task_order() {
        let cfg = JobConfig::named("m").workers(4);
        let input: Vec<(usize, String)> = (0..100).map(|i| (i, format!("w{i}"))).collect();
        struct Echo;
        impl Mapper for Echo {
            type InKey = usize;
            type InValue = String;
            type OutKey = usize;
            type OutValue = String;
            fn map(&self, k: usize, v: String, ctx: &mut TaskContext<usize, String>) {
                ctx.emit(k, v);
            }
        }
        let result = run_map_only(input, 7, &Echo, &cfg).unwrap();
        let keys: Vec<usize> = result.output.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, (0..100).collect::<Vec<_>>());
        assert_eq!(result.map_stats.len(), 7);
    }

    #[test]
    fn task_panic_becomes_error() {
        struct Bomb;
        impl Mapper for Bomb {
            type InKey = usize;
            type InValue = String;
            type OutKey = String;
            type OutValue = u64;
            fn map(&self, k: usize, _v: String, _ctx: &mut TaskContext<String, u64>) {
                if k == 1 {
                    panic!("injected fault");
                }
            }
        }
        let cfg = JobConfig::named("boom").reducers(1).workers(2);
        match run_job(wc_input(), 3, &Bomb, &SumReducer, &cfg) {
            Err(MrError::TaskFailed {
                phase,
                message,
                attempts,
                ..
            }) => {
                assert_eq!(phase, "map");
                assert!(message.contains("injected fault"));
                assert_eq!(attempts, 1);
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn first_failure_is_lowest_task_index() {
        /// Panics on every task: the reported failure must always be
        /// the lowest task index, whatever order workers finish in.
        struct AllBomb;
        impl Mapper for AllBomb {
            type InKey = usize;
            type InValue = String;
            type OutKey = String;
            type OutValue = u64;
            fn map(&self, k: usize, _v: String, _ctx: &mut TaskContext<String, u64>) {
                panic!("task input {k} bad");
            }
        }
        for workers in [1, 2, 8] {
            let cfg = JobConfig::named("boom").reducers(1).workers(workers);
            match run_job(wc_input(), 3, &AllBomb, &SumReducer, &cfg) {
                Err(MrError::TaskFailed { task, .. }) => assert_eq!(task, 0, "workers={workers}"),
                other => panic!("unexpected: {other:?}"),
            }
        }
    }

    #[test]
    fn flaky_task_succeeds_with_retries() {
        use std::sync::atomic::AtomicU32;

        /// Fails its first two executions, then works — a crashy
        /// datanode, Hadoop-style.
        struct Flaky {
            failures_left: AtomicU32,
        }
        impl Mapper for Flaky {
            type InKey = usize;
            type InValue = String;
            type OutKey = String;
            type OutValue = u64;
            fn map(&self, _k: usize, line: String, ctx: &mut TaskContext<String, u64>) {
                let left = self.failures_left.load(Ordering::SeqCst);
                if left > 0
                    && self
                        .failures_left
                        .compare_exchange(left, left - 1, Ordering::SeqCst, Ordering::SeqCst)
                        .is_ok()
                {
                    panic!("transient fault");
                }
                for w in line.split_whitespace() {
                    ctx.emit(w.to_string(), 1);
                }
            }
        }

        // Without retries: the job fails.
        let flaky = Flaky {
            failures_left: AtomicU32::new(2),
        };
        let cfg = JobConfig::named("flaky").reducers(2).workers(1);
        assert!(run_job(wc_input(), 2, &flaky, &SumReducer, &cfg).is_err());

        // With an attempt budget: the job recovers and the answer is
        // exactly the clean run's.
        let flaky = Flaky {
            failures_left: AtomicU32::new(2),
        };
        let cfg = JobConfig::named("flaky").reducers(2).workers(1).attempts(4);
        let result = run_job(wc_input(), 2, &flaky, &SumReducer, &cfg).unwrap();
        assert_eq!(sorted(result.output), expected_wc());
        assert!(result.counters.get("TASK_RETRIES") >= 1);
        assert!(result.recovery.tasks_retried >= 1);
    }

    #[test]
    fn attempts_builder_floors_at_one() {
        assert_eq!(JobConfig::named("x").attempts(0).max_attempts, 1);
        assert_eq!(JobConfig::named("x").attempts(3).max_attempts, 3);
    }

    #[test]
    fn chunking_is_balanced_and_complete() {
        let chunks = chunk_input((0..10).collect::<Vec<_>>(), 3);
        assert_eq!(chunks.len(), 3);
        let sizes: Vec<usize> = chunks.iter().map(|c| c.len()).collect();
        assert_eq!(sizes, vec![4, 3, 3]);
        let all: Vec<i32> = chunks.into_iter().flatten().collect();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn chunking_more_tasks_than_items() {
        let chunks = chunk_input(vec![1, 2], 5);
        assert_eq!(chunks.len(), 5);
        let total: usize = chunks.iter().map(|c| c.len()).sum();
        assert_eq!(total, 2);
    }

    #[test]
    fn chunk_ranges_mirror_chunk_input_boundaries() {
        for (len, tasks) in [(10, 3), (2, 5), (0, 4), (7, 1), (16, 4), (13, 8)] {
            let ranges = chunk_ranges(len, tasks);
            let chunks = chunk_input((0..len).collect::<Vec<_>>(), tasks);
            assert_eq!(ranges.len(), chunks.len());
            for (range, chunk) in ranges.iter().zip(&chunks) {
                assert_eq!(&range.clone().collect::<Vec<_>>(), chunk);
            }
        }
        // tasks = 0 is clamped like chunk_input clamps.
        assert_eq!(chunk_ranges(3, 0), vec![0..3]);
    }

    #[test]
    fn reduce_output_sorted_within_partition() {
        // With one reducer, all output keys arrive sorted.
        let cfg = JobConfig::named("sorted").reducers(1);
        let result = run_job(wc_input(), 2, &WcMapper, &SumReducer, &cfg).unwrap();
        let keys: Vec<&String> = result.output.iter().map(|(k, _)| k).collect();
        let mut expect = keys.clone();
        expect.sort();
        assert_eq!(keys, expect);
    }

    // ---- Fault-injected recovery ----

    #[test]
    fn injected_panics_recovered_identically() {
        let cfg = JobConfig::named("wc").reducers(3).workers(4).attempts(4);
        let clean = run_job(wc_input(), 3, &WcMapper, &SumReducer, &cfg).unwrap();
        let inj = FaultPlan::new()
            .task_panic(0, Phase::Map, 0, 2)
            .task_panic(0, Phase::Map, 2, 1)
            .task_panic(0, Phase::Reduce, 1, 1)
            .injector();
        let chaotic =
            run_job_with_faults(wc_input(), 3, &WcMapper, &SumReducer, &cfg, &inj).unwrap();
        assert_eq!(sorted(clean.output), sorted(chaotic.output));
        assert_eq!(chaotic.recovery.tasks_retried, 4);
        assert_eq!(chaotic.counters.get("TASK_RETRIES"), 4);
    }

    #[test]
    fn exhausted_attempts_fail_with_attempt_count() {
        let cfg = JobConfig::named("wc").reducers(2).workers(2).attempts(3);
        let inj = FaultPlan::new()
            .task_panic(0, Phase::Map, 1, usize::MAX)
            .injector();
        match run_job_with_faults(wc_input(), 3, &WcMapper, &SumReducer, &cfg, &inj) {
            Err(MrError::TaskFailed {
                phase,
                task,
                attempts,
                message,
            }) => {
                assert_eq!(phase, "map");
                assert_eq!(task, 1);
                assert_eq!(attempts, 3);
                assert!(message.contains("chaos: injected panic"));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn node_death_reexecutes_its_maps() {
        let cfg = JobConfig::named("wc").reducers(3).workers(4).nodes(3);
        let clean = run_job(wc_input(), 3, &WcMapper, &SumReducer, &cfg).unwrap();
        // Node 1 held map task 1 (task % 3 nodes); killing it at the
        // barrier forces one re-execution.
        let inj = FaultPlan::new().node_death_after_map(0, 1).injector();
        let chaotic =
            run_job_with_faults(wc_input(), 3, &WcMapper, &SumReducer, &cfg, &inj).unwrap();
        assert_eq!(sorted(clean.output), sorted(chaotic.output));
        assert_eq!(chaotic.recovery.maps_reexecuted_node_loss, 1);
    }

    #[test]
    fn all_nodes_dead_is_an_error() {
        let cfg = JobConfig::named("wc").reducers(1).workers(2).nodes(2);
        let inj = FaultPlan::new()
            .node_death_after_map(0, 0)
            .node_death_after_map(0, 1)
            .injector();
        assert!(matches!(
            run_job_with_faults(wc_input(), 2, &WcMapper, &SumReducer, &cfg, &inj),
            Err(MrError::BadConfig(_))
        ));
    }

    #[test]
    fn speculative_backup_wins_over_straggler() {
        let cfg = JobConfig::named("wc").reducers(2).workers(4);
        let clean = run_job(wc_input(), 3, &WcMapper, &SumReducer, &cfg).unwrap();
        let inj = FaultPlan::new()
            .task_slowdown(0, Phase::Map, 1, 30)
            .injector();
        let chaotic =
            run_job_with_faults(wc_input(), 3, &WcMapper, &SumReducer, &cfg, &inj).unwrap();
        assert_eq!(sorted(clean.output), sorted(chaotic.output));
        assert_eq!(chaotic.recovery.speculative_wins, 1);
    }

    #[test]
    fn speculation_disabled_still_completes() {
        let cfg = JobConfig::named("wc")
            .reducers(2)
            .workers(4)
            .speculative(false);
        let inj = FaultPlan::new()
            .task_slowdown(0, Phase::Map, 1, 10)
            .injector();
        let result =
            run_job_with_faults(wc_input(), 3, &WcMapper, &SumReducer, &cfg, &inj).unwrap();
        assert_eq!(sorted(result.output), expected_wc());
        assert_eq!(result.recovery.speculative_wins, 0);
    }

    #[test]
    fn fetch_failures_retry_then_reexecute() {
        let cfg = JobConfig::named("wc").reducers(2).workers(2);
        let clean = run_job(wc_input(), 3, &WcMapper, &SumReducer, &cfg).unwrap();
        // 2 failures: retried, output kept. 5 failures: output lost,
        // map 1 re-executed.
        let inj = FaultPlan::new()
            .shuffle_fetch_fail(0, 0, 1, 2)
            .shuffle_fetch_fail(0, 1, 0, 5)
            .injector();
        let chaotic =
            run_job_with_faults(wc_input(), 3, &WcMapper, &SumReducer, &cfg, &inj).unwrap();
        assert_eq!(sorted(clean.output), sorted(chaotic.output));
        assert_eq!(chaotic.recovery.shuffle_fetch_retries, 2 + 3);
        assert_eq!(chaotic.recovery.maps_reexecuted_fetch_fail, 1);
    }

    #[test]
    fn recovery_counters_reproducible_across_runs_and_workers() {
        let plan = FaultPlan::new()
            .task_panic(0, Phase::Map, 0, 1)
            .task_slowdown(0, Phase::Map, 2, 20)
            .node_death_after_map(0, 2)
            .shuffle_fetch_fail(0, 1, 1, 5);
        let mut ledgers = Vec::new();
        for workers in [1, 2, 4, 4] {
            let cfg = JobConfig::named("wc")
                .reducers(3)
                .workers(workers)
                .attempts(3)
                .nodes(4);
            let inj = plan.clone().injector();
            let result =
                run_job_with_faults(wc_input(), 4, &WcMapper, &SumReducer, &cfg, &inj).unwrap();
            assert_eq!(sorted(result.output), expected_wc());
            ledgers.push(result.recovery);
        }
        assert!(
            ledgers.windows(2).all(|w| w[0] == w[1]),
            "recovery counters must not depend on worker count or timing: {ledgers:?}"
        );
    }
}
