//! The Mapper / Reducer / Combiner programming model.
//!
//! Typed, in-process analogue of Hadoop's API: a [`Mapper`] turns one
//! input record into intermediate `(K, V)` pairs via a [`TaskContext`];
//! the engine shuffles pairs by key; a [`Reducer`] folds each key's
//! value group into output records. An optional [`Combiner`] runs on
//! each map task's local output before the shuffle, cutting shuffle
//! volume exactly like Hadoop's combiner.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::time::Duration;

use parking_lot::Mutex;

/// Requirements on intermediate keys: hashed for partitioning, ordered
/// for the sort-based group-by, cloned into combiner runs.
pub trait MrKey: Clone + Ord + Hash + Send + Sync {}
impl<T: Clone + Ord + Hash + Send + Sync> MrKey for T {}

/// Requirements on intermediate values.
pub trait MrValue: Clone + Send + Sync {}
impl<T: Clone + Send + Sync> MrValue for T {}

/// A map function: `(in_key, in_value) → (out_key, out_value)*`.
pub trait Mapper: Send + Sync {
    /// Input key (e.g. record offset or sequence id).
    type InKey: Send;
    /// Input value (e.g. a FASTA record).
    type InValue: Send;
    /// Intermediate key.
    type OutKey: MrKey;
    /// Intermediate value.
    type OutValue: MrValue;

    /// Process one record, emitting through the context.
    fn map(
        &self,
        key: Self::InKey,
        value: Self::InValue,
        ctx: &mut TaskContext<Self::OutKey, Self::OutValue>,
    );

    /// Wire size in bytes of one intermediate *key*. Keys cross the
    /// shuffle once per post-combine group (the sort-merge runs store
    /// each distinct key once, followed by its value block), so the
    /// engine charges this exactly once per group:
    /// `key + varint(value_count) + Σ values`. The default is the
    /// shallow in-memory width — exact for plain-old-data keys; jobs
    /// shuffling heap-backed or encoded keys override it, usually by
    /// delegating to [`ShuffleSized`].
    fn key_wire_size(&self, _key: &Self::OutKey) -> usize {
        std::mem::size_of::<Self::OutKey>()
    }

    /// Wire size in bytes of one intermediate *value*, charged once
    /// per value surviving the combiner. Same default/override rules
    /// as [`Mapper::key_wire_size`].
    fn value_wire_size(&self, _value: &Self::OutValue) -> usize {
        std::mem::size_of::<Self::OutValue>()
    }

    /// Assign an intermediate key to a reduce partition in
    /// `0..reducers`. Defaults to the Hadoop-style hash partitioner
    /// ([`partition_of`]); jobs with structure in their key space
    /// override it to colocate related keys (e.g. range-partitioning
    /// candidate pairs by read id so each read's similarity
    /// neighborhood lands on one reducer). Must be a pure function of
    /// `(key, reducers)` — retried and speculative attempts recompute
    /// it and must agree.
    fn partition(&self, key: &Self::OutKey, reducers: usize) -> usize {
        partition_of(key, reducers)
    }
}

/// Serialized payload size of a key or value crossing the simulated
/// shuffle wire: fixed-width scalars count their width; length-carrying
/// types count a 4-byte length prefix plus their elements (the framing
/// Hadoop's `Writable`s use); compact-encoded payloads (see
/// [`crate::wire`]) count their exact encoded bytes. Implementations
/// exist for the types jobs in this workspace actually shuffle;
/// [`Mapper::key_wire_size`]/[`Mapper::value_wire_size`] overrides
/// delegate to it.
pub trait ShuffleSized {
    /// Estimated serialized size in bytes.
    fn shuffle_size(&self) -> usize;
}

macro_rules! impl_shuffle_sized_pod {
    ($($t:ty),*) => {$(
        impl ShuffleSized for $t {
            fn shuffle_size(&self) -> usize {
                std::mem::size_of::<$t>()
            }
        }
    )*};
}

impl_shuffle_sized_pod!(
    u8, u16, u32, u64, u128, i8, i16, i32, i64, i128, usize, isize, f32, f64, bool, char
);

impl ShuffleSized for () {
    fn shuffle_size(&self) -> usize {
        0
    }
}

impl ShuffleSized for String {
    fn shuffle_size(&self) -> usize {
        4 + self.len()
    }
}

impl<T: ShuffleSized> ShuffleSized for Vec<T> {
    fn shuffle_size(&self) -> usize {
        4 + self.iter().map(ShuffleSized::shuffle_size).sum::<usize>()
    }
}

impl<T: ShuffleSized> ShuffleSized for Option<T> {
    fn shuffle_size(&self) -> usize {
        1 + self.as_ref().map_or(0, ShuffleSized::shuffle_size)
    }
}

impl<A: ShuffleSized> ShuffleSized for (A,) {
    fn shuffle_size(&self) -> usize {
        self.0.shuffle_size()
    }
}

impl<A: ShuffleSized, B: ShuffleSized> ShuffleSized for (A, B) {
    fn shuffle_size(&self) -> usize {
        self.0.shuffle_size() + self.1.shuffle_size()
    }
}

impl<A: ShuffleSized, B: ShuffleSized, C: ShuffleSized> ShuffleSized for (A, B, C) {
    fn shuffle_size(&self) -> usize {
        self.0.shuffle_size() + self.1.shuffle_size() + self.2.shuffle_size()
    }
}

/// A reduce function: `(key, values) → (out_key, out_value)*`.
pub trait Reducer: Send + Sync {
    /// Intermediate key (matches the mapper's `OutKey`).
    type InKey: MrKey;
    /// Intermediate value (matches the mapper's `OutValue`).
    type InValue: MrValue;
    /// Output key.
    type OutKey: Send;
    /// Output value.
    type OutValue: Send;

    /// Fold one key group, emitting through the context.
    fn reduce(
        &self,
        key: Self::InKey,
        values: Vec<Self::InValue>,
        ctx: &mut TaskContext<Self::OutKey, Self::OutValue>,
    );
}

/// A combiner pre-aggregates one map task's local pairs for one key.
/// Must be semantically idempotent with the reducer's aggregation
/// (same contract as Hadoop).
pub trait Combiner: Send + Sync {
    /// Key type (the mapper's `OutKey`).
    type Key: MrKey;
    /// Value type (the mapper's `OutValue`).
    type Value: MrValue;

    /// Collapse a local value group into (usually fewer) values.
    fn combine(&self, key: &Self::Key, values: Vec<Self::Value>) -> Vec<Self::Value>;
}

/// Shared job counters (Hadoop-style named counters).
#[derive(Debug, Default)]
pub struct Counters {
    inner: Mutex<HashMap<String, u64>>,
}

impl Counters {
    /// New, empty counter set.
    pub fn new() -> Counters {
        Counters::default()
    }

    /// Add `delta` to a named counter.
    pub fn add(&self, name: &str, delta: u64) {
        *self.inner.lock().entry(name.to_string()).or_insert(0) += delta;
    }

    /// Read a counter (0 when never written).
    pub fn get(&self, name: &str) -> u64 {
        self.inner.lock().get(name).copied().unwrap_or(0)
    }

    /// Snapshot all counters, sorted by name.
    pub fn snapshot(&self) -> Vec<(String, u64)> {
        let mut v: Vec<(String, u64)> = self
            .inner
            .lock()
            .iter()
            .map(|(k, &n)| (k.clone(), n))
            .collect();
        v.sort();
        v
    }

    /// Merge another counter set into this one.
    pub fn merge(&self, other: &Counters) {
        let other = other.inner.lock();
        let mut mine = self.inner.lock();
        for (k, &v) in other.iter() {
            *mine.entry(k.clone()).or_insert(0) += v;
        }
    }
}

/// Per-task emit buffer + local counters, handed to map/reduce calls.
///
/// Mappers whose value type is [`crate::wire::IdRun`] additionally get
/// the arena-backed `emit_singleton_run` fast path (see
/// `crate::wire`): runs accumulate in a per-task [`crate::wire::RunArena`]
/// and are flushed — in emission order — before any plain `emit`, at
/// chunk boundaries, and at [`TaskContext::into_parts`].
pub struct TaskContext<K, V> {
    pub(crate) emitted: Vec<(K, V)>,
    pub(crate) counters: Counters,
    /// Lazily-created arena for `emit_singleton_run` (wire.rs).
    pub(crate) arena: Option<crate::wire::RunArena>,
    /// Keys of arena runs appended since the last flush, in order.
    pub(crate) pending_keys: Vec<K>,
    /// Monomorphic flush hook installed by the arena emit path, so
    /// the fully generic `emit`/`into_parts` can drain pending runs
    /// without knowing `V = IdRun`.
    pub(crate) flush_pending: Option<fn(&mut TaskContext<K, V>)>,
    /// Chunk size for the lazily-created arena.
    pub(crate) arena_chunk_bytes: usize,
}

impl<K, V> TaskContext<K, V> {
    /// Fresh context.
    pub fn new() -> TaskContext<K, V> {
        TaskContext::with_buffer(Vec::new())
    }

    /// Fresh context reusing `buf` (cleared) as the emit buffer — the
    /// engine's spill pool hands back buffers from finished tasks so
    /// steady-state mapping stops reallocating them.
    pub fn with_buffer(mut buf: Vec<(K, V)>) -> TaskContext<K, V> {
        buf.clear();
        TaskContext {
            emitted: buf,
            counters: Counters::new(),
            arena: None,
            pending_keys: Vec::new(),
            flush_pending: None,
            arena_chunk_bytes: crate::wire::DEFAULT_ARENA_CHUNK_BYTES,
        }
    }

    /// Override the arena chunk size used by `emit_singleton_run`
    /// (bytes of encoded runs per shared allocation).
    pub fn set_arena_chunk_bytes(&mut self, bytes: usize) {
        self.arena_chunk_bytes = bytes.max(16);
    }

    /// Emit one pair.
    #[inline]
    pub fn emit(&mut self, key: K, value: V) {
        if !self.pending_keys.is_empty() {
            self.flush_runs();
        }
        self.emitted.push((key, value));
    }

    /// Drain pending arena runs into the emit buffer.
    fn flush_runs(&mut self) {
        if let Some(flush) = self.flush_pending {
            flush(self);
        }
    }

    /// Bump a named counter.
    pub fn count(&self, name: &str, delta: u64) {
        self.counters.add(name, delta);
    }

    /// Consume the context.
    pub fn into_parts(mut self) -> (Vec<(K, V)>, Counters) {
        self.flush_runs();
        (self.emitted, self.counters)
    }

    /// Number of pairs emitted so far (including arena runs not yet
    /// flushed into the buffer).
    pub fn emitted_len(&self) -> usize {
        self.emitted.len() + self.pending_keys.len()
    }
}

impl<K, V> Default for TaskContext<K, V> {
    fn default() -> Self {
        TaskContext::new()
    }
}

/// Job configuration.
#[derive(Debug, Clone)]
pub struct JobConfig {
    /// Human-readable job name (appears in reports).
    pub name: String,
    /// Number of reduce tasks (partitions). Hadoop default heuristics
    /// don't apply here; callers set it per job.
    pub num_reducers: usize,
    /// Worker threads executing tasks. `None` = number of simulated
    /// node slots decided by the caller/engine.
    pub worker_threads: Option<usize>,
    /// Attempts per task before the job fails (Hadoop's
    /// `mapreduce.map.maxattempts`, default 4 there; 1 here so tests
    /// fail fast unless retries are requested).
    pub max_attempts: usize,
    /// Virtual nodes map tasks are pinned to (`task % virtual_nodes`)
    /// for the fault model: a node death at the map→reduce barrier
    /// loses its tasks' uncommitted output.
    pub virtual_nodes: usize,
    /// Launch speculative backup attempts for straggling tasks
    /// (Hadoop's `mapreduce.map.speculative`, on by default there too).
    pub speculative: bool,
    /// Optional structured trace sink. When set, the engine records
    /// task attempt lifecycle, shuffle runs, combiner activity and
    /// recovery actions into the shared ledger (our JobHistory
    /// analogue — see `mrmc_obs`).
    pub tracer: Option<std::sync::Arc<mrmc_obs::Tracer>>,
}

impl JobConfig {
    /// A config with sensible defaults: 4 reducers, engine-chosen
    /// pool, no retries.
    pub fn named(name: impl Into<String>) -> JobConfig {
        JobConfig {
            name: name.into(),
            num_reducers: 4,
            worker_threads: None,
            max_attempts: 1,
            virtual_nodes: 8,
            speculative: true,
            tracer: None,
        }
    }

    /// Builder-style reducer count.
    pub fn reducers(mut self, n: usize) -> JobConfig {
        self.num_reducers = n;
        self
    }

    /// Builder-style worker pool size.
    pub fn workers(mut self, n: usize) -> JobConfig {
        self.worker_threads = Some(n);
        self
    }

    /// Builder-style per-task attempt budget (≥ 1).
    pub fn attempts(mut self, n: usize) -> JobConfig {
        self.max_attempts = n.max(1);
        self
    }

    /// Builder-style virtual node count (≥ 1).
    pub fn nodes(mut self, n: usize) -> JobConfig {
        self.virtual_nodes = n.max(1);
        self
    }

    /// Builder-style speculative-execution toggle.
    pub fn speculative(mut self, on: bool) -> JobConfig {
        self.speculative = on;
        self
    }

    /// Builder-style trace sink.
    pub fn traced(mut self, tracer: std::sync::Arc<mrmc_obs::Tracer>) -> JobConfig {
        self.tracer = Some(tracer);
        self
    }
}

/// Wall-clock statistics for one task.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskStats {
    /// Task index within its phase.
    pub task: usize,
    /// Wall-clock duration of the task body.
    pub duration: Duration,
    /// Input records consumed.
    pub records_in: u64,
    /// Pairs/records emitted.
    pub records_out: u64,
}

/// The result of running a job.
#[derive(Debug)]
pub struct JobResult<K, V> {
    /// All reducer outputs, concatenated (ordered by partition, then by
    /// key within the partition — the engine's sort guarantees this).
    pub output: Vec<(K, V)>,
    /// Merged job counters.
    pub counters: Counters,
    /// Per-map-task stats.
    pub map_stats: Vec<TaskStats>,
    /// Per-reduce-task stats.
    pub reduce_stats: Vec<TaskStats>,
    /// Total intermediate pairs that crossed the shuffle (post-combine).
    pub shuffled_pairs: u64,
    /// Bytes the post-combine groups occupy on the wire, priced
    /// exactly once per group as
    /// `key_wire_size + varint(value_count) + Σ value_wire_size`
    /// (the sort-merge run framing: each distinct key appears once,
    /// followed by its length-prefixed value block). Jobs that
    /// override the [`Mapper`] size hooks get real payload bytes;
    /// the defaults charge shallow record widths.
    pub shuffled_bytes: u64,
    /// Sorted map-side runs moved through the shuffle barrier — one per
    /// non-empty (map task, reducer) cell. Each run is a fetch on a
    /// real cluster, so the count feeds the simulator's per-fetch
    /// overhead term ([`crate::simcluster::JobCostModel::shuffle_run_cost`]).
    pub shuffle_runs: u64,
    /// Everything the runtime did to survive faults while producing
    /// this result (all zero on a clean run).
    pub recovery: mrmc_chaos::RecoveryCounters,
}

/// Default Hadoop-style partitioner: `hash(key) % reducers`.
pub fn partition_of<K: Hash>(key: &K, reducers: usize) -> usize {
    debug_assert!(reducers > 0);
    let mut h = std::collections::hash_map::DefaultHasher::new();
    key.hash(&mut h);
    (h.finish() % reducers as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_add_get_merge() {
        let c = Counters::new();
        c.add("x", 2);
        c.add("x", 3);
        assert_eq!(c.get("x"), 5);
        assert_eq!(c.get("missing"), 0);

        let d = Counters::new();
        d.add("x", 1);
        d.add("y", 7);
        c.merge(&d);
        assert_eq!(c.get("x"), 6);
        assert_eq!(c.get("y"), 7);
        assert_eq!(c.snapshot(), vec![("x".into(), 6), ("y".into(), 7)]);
    }

    #[test]
    fn context_collects_pairs_and_counts() {
        let mut ctx: TaskContext<String, u32> = TaskContext::new();
        ctx.emit("a".into(), 1);
        ctx.emit("b".into(), 2);
        ctx.count("records", 2);
        assert_eq!(ctx.emitted_len(), 2);
        let (pairs, counters) = ctx.into_parts();
        assert_eq!(pairs.len(), 2);
        assert_eq!(counters.get("records"), 2);
    }

    #[test]
    fn partitioner_stable_and_in_range() {
        for key in ["a", "b", "sequence_12345", ""] {
            let p = partition_of(&key, 7);
            assert!(p < 7);
            assert_eq!(p, partition_of(&key, 7));
        }
    }

    #[test]
    fn config_builders() {
        let c = JobConfig::named("j").reducers(9).workers(3);
        assert_eq!(c.name, "j");
        assert_eq!(c.num_reducers, 9);
        assert_eq!(c.worker_threads, Some(3));
        assert_eq!(c.virtual_nodes, 8);
        assert!(c.speculative);
        let c = c.nodes(0).speculative(false);
        assert_eq!(c.virtual_nodes, 1, "node count floors at 1");
        assert!(!c.speculative);
    }
}
