//! The Mapper / Reducer / Combiner programming model.
//!
//! Typed, in-process analogue of Hadoop's API: a [`Mapper`] turns one
//! input record into intermediate `(K, V)` pairs via a [`TaskContext`];
//! the engine shuffles pairs by key; a [`Reducer`] folds each key's
//! value group into output records. An optional [`Combiner`] runs on
//! each map task's local output before the shuffle, cutting shuffle
//! volume exactly like Hadoop's combiner.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::time::Duration;

use parking_lot::Mutex;

/// Requirements on intermediate keys: hashed for partitioning, ordered
/// for the sort-based group-by, cloned into combiner runs.
pub trait MrKey: Clone + Ord + Hash + Send + Sync {}
impl<T: Clone + Ord + Hash + Send + Sync> MrKey for T {}

/// Requirements on intermediate values.
pub trait MrValue: Clone + Send + Sync {}
impl<T: Clone + Send + Sync> MrValue for T {}

/// A map function: `(in_key, in_value) → (out_key, out_value)*`.
pub trait Mapper: Send + Sync {
    /// Input key (e.g. record offset or sequence id).
    type InKey: Send;
    /// Input value (e.g. a FASTA record).
    type InValue: Send;
    /// Intermediate key.
    type OutKey: MrKey;
    /// Intermediate value.
    type OutValue: MrValue;

    /// Process one record, emitting through the context.
    fn map(
        &self,
        key: Self::InKey,
        value: Self::InValue,
        ctx: &mut TaskContext<Self::OutKey, Self::OutValue>,
    );
}

/// A reduce function: `(key, values) → (out_key, out_value)*`.
pub trait Reducer: Send + Sync {
    /// Intermediate key (matches the mapper's `OutKey`).
    type InKey: MrKey;
    /// Intermediate value (matches the mapper's `OutValue`).
    type InValue: MrValue;
    /// Output key.
    type OutKey: Send;
    /// Output value.
    type OutValue: Send;

    /// Fold one key group, emitting through the context.
    fn reduce(
        &self,
        key: Self::InKey,
        values: Vec<Self::InValue>,
        ctx: &mut TaskContext<Self::OutKey, Self::OutValue>,
    );
}

/// A combiner pre-aggregates one map task's local pairs for one key.
/// Must be semantically idempotent with the reducer's aggregation
/// (same contract as Hadoop).
pub trait Combiner: Send + Sync {
    /// Key type (the mapper's `OutKey`).
    type Key: MrKey;
    /// Value type (the mapper's `OutValue`).
    type Value: MrValue;

    /// Collapse a local value group into (usually fewer) values.
    fn combine(&self, key: &Self::Key, values: Vec<Self::Value>) -> Vec<Self::Value>;
}

/// Shared job counters (Hadoop-style named counters).
#[derive(Debug, Default)]
pub struct Counters {
    inner: Mutex<HashMap<String, u64>>,
}

impl Counters {
    /// New, empty counter set.
    pub fn new() -> Counters {
        Counters::default()
    }

    /// Add `delta` to a named counter.
    pub fn add(&self, name: &str, delta: u64) {
        *self.inner.lock().entry(name.to_string()).or_insert(0) += delta;
    }

    /// Read a counter (0 when never written).
    pub fn get(&self, name: &str) -> u64 {
        self.inner.lock().get(name).copied().unwrap_or(0)
    }

    /// Snapshot all counters, sorted by name.
    pub fn snapshot(&self) -> Vec<(String, u64)> {
        let mut v: Vec<(String, u64)> = self
            .inner
            .lock()
            .iter()
            .map(|(k, &n)| (k.clone(), n))
            .collect();
        v.sort();
        v
    }

    /// Merge another counter set into this one.
    pub fn merge(&self, other: &Counters) {
        let other = other.inner.lock();
        let mut mine = self.inner.lock();
        for (k, &v) in other.iter() {
            *mine.entry(k.clone()).or_insert(0) += v;
        }
    }
}

/// Per-task emit buffer + local counters, handed to map/reduce calls.
pub struct TaskContext<K, V> {
    emitted: Vec<(K, V)>,
    counters: Counters,
}

impl<K, V> TaskContext<K, V> {
    /// Fresh context.
    pub fn new() -> TaskContext<K, V> {
        TaskContext {
            emitted: Vec::new(),
            counters: Counters::new(),
        }
    }

    /// Emit one pair.
    #[inline]
    pub fn emit(&mut self, key: K, value: V) {
        self.emitted.push((key, value));
    }

    /// Bump a named counter.
    pub fn count(&self, name: &str, delta: u64) {
        self.counters.add(name, delta);
    }

    /// Consume the context.
    pub fn into_parts(self) -> (Vec<(K, V)>, Counters) {
        (self.emitted, self.counters)
    }

    /// Number of pairs emitted so far.
    pub fn emitted_len(&self) -> usize {
        self.emitted.len()
    }
}

impl<K, V> Default for TaskContext<K, V> {
    fn default() -> Self {
        TaskContext::new()
    }
}

/// Job configuration.
#[derive(Debug, Clone)]
pub struct JobConfig {
    /// Human-readable job name (appears in reports).
    pub name: String,
    /// Number of reduce tasks (partitions). Hadoop default heuristics
    /// don't apply here; callers set it per job.
    pub num_reducers: usize,
    /// Worker threads executing tasks. `None` = number of simulated
    /// node slots decided by the caller/engine.
    pub worker_threads: Option<usize>,
    /// Attempts per task before the job fails (Hadoop's
    /// `mapreduce.map.maxattempts`, default 4 there; 1 here so tests
    /// fail fast unless retries are requested).
    pub max_attempts: usize,
    /// Virtual nodes map tasks are pinned to (`task % virtual_nodes`)
    /// for the fault model: a node death at the map→reduce barrier
    /// loses its tasks' uncommitted output.
    pub virtual_nodes: usize,
    /// Launch speculative backup attempts for straggling tasks
    /// (Hadoop's `mapreduce.map.speculative`, on by default there too).
    pub speculative: bool,
}

impl JobConfig {
    /// A config with sensible defaults: 4 reducers, engine-chosen
    /// pool, no retries.
    pub fn named(name: impl Into<String>) -> JobConfig {
        JobConfig {
            name: name.into(),
            num_reducers: 4,
            worker_threads: None,
            max_attempts: 1,
            virtual_nodes: 8,
            speculative: true,
        }
    }

    /// Builder-style reducer count.
    pub fn reducers(mut self, n: usize) -> JobConfig {
        self.num_reducers = n;
        self
    }

    /// Builder-style worker pool size.
    pub fn workers(mut self, n: usize) -> JobConfig {
        self.worker_threads = Some(n);
        self
    }

    /// Builder-style per-task attempt budget (≥ 1).
    pub fn attempts(mut self, n: usize) -> JobConfig {
        self.max_attempts = n.max(1);
        self
    }

    /// Builder-style virtual node count (≥ 1).
    pub fn nodes(mut self, n: usize) -> JobConfig {
        self.virtual_nodes = n.max(1);
        self
    }

    /// Builder-style speculative-execution toggle.
    pub fn speculative(mut self, on: bool) -> JobConfig {
        self.speculative = on;
        self
    }
}

/// Wall-clock statistics for one task.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskStats {
    /// Task index within its phase.
    pub task: usize,
    /// Wall-clock duration of the task body.
    pub duration: Duration,
    /// Input records consumed.
    pub records_in: u64,
    /// Pairs/records emitted.
    pub records_out: u64,
}

/// The result of running a job.
#[derive(Debug)]
pub struct JobResult<K, V> {
    /// All reducer outputs, concatenated (ordered by partition, then by
    /// key within the partition — the engine's sort guarantees this).
    pub output: Vec<(K, V)>,
    /// Merged job counters.
    pub counters: Counters,
    /// Per-map-task stats.
    pub map_stats: Vec<TaskStats>,
    /// Per-reduce-task stats.
    pub reduce_stats: Vec<TaskStats>,
    /// Total intermediate pairs that crossed the shuffle (post-combine).
    pub shuffled_pairs: u64,
    /// Bytes those pairs occupy on the wire, modelled as the shallow
    /// in-memory record width `size_of::<(K, V)>()` per pair (heap
    /// payloads of boxed values are not chased — the counter tracks
    /// *relative* shuffle volume across stages, which is what the
    /// simulated cluster's bandwidth term consumes).
    pub shuffled_bytes: u64,
    /// Everything the runtime did to survive faults while producing
    /// this result (all zero on a clean run).
    pub recovery: mrmc_chaos::RecoveryCounters,
}

/// Default Hadoop-style partitioner: `hash(key) % reducers`.
pub fn partition_of<K: Hash>(key: &K, reducers: usize) -> usize {
    debug_assert!(reducers > 0);
    let mut h = std::collections::hash_map::DefaultHasher::new();
    key.hash(&mut h);
    (h.finish() % reducers as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_add_get_merge() {
        let c = Counters::new();
        c.add("x", 2);
        c.add("x", 3);
        assert_eq!(c.get("x"), 5);
        assert_eq!(c.get("missing"), 0);

        let d = Counters::new();
        d.add("x", 1);
        d.add("y", 7);
        c.merge(&d);
        assert_eq!(c.get("x"), 6);
        assert_eq!(c.get("y"), 7);
        assert_eq!(c.snapshot(), vec![("x".into(), 6), ("y".into(), 7)]);
    }

    #[test]
    fn context_collects_pairs_and_counts() {
        let mut ctx: TaskContext<String, u32> = TaskContext::new();
        ctx.emit("a".into(), 1);
        ctx.emit("b".into(), 2);
        ctx.count("records", 2);
        assert_eq!(ctx.emitted_len(), 2);
        let (pairs, counters) = ctx.into_parts();
        assert_eq!(pairs.len(), 2);
        assert_eq!(counters.get("records"), 2);
    }

    #[test]
    fn partitioner_stable_and_in_range() {
        for key in ["a", "b", "sequence_12345", ""] {
            let p = partition_of(&key, 7);
            assert!(p < 7);
            assert_eq!(p, partition_of(&key, 7));
        }
    }

    #[test]
    fn config_builders() {
        let c = JobConfig::named("j").reducers(9).workers(3);
        assert_eq!(c.name, "j");
        assert_eq!(c.num_reducers, 9);
        assert_eq!(c.worker_threads, Some(3));
        assert_eq!(c.virtual_nodes, 8);
        assert!(c.speculative);
        let c = c.nodes(0).speculative(false);
        assert_eq!(c.virtual_nodes, 1, "node count floors at 1");
        assert!(!c.speculative);
    }
}
