//! Errors for the Map-Reduce substrate.

use std::fmt;

/// Errors surfaced by the DFS and the job engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MrError {
    /// Path does not exist in the DFS namespace.
    FileNotFound(String),
    /// Path already exists and overwrite was not requested.
    FileExists(String),
    /// A block id was present in file metadata but missing from the
    /// block store — indicates corruption (or an injected fault).
    MissingBlock {
        /// Owning file.
        path: String,
        /// Index of the missing block within the file.
        block_index: usize,
    },
    /// Every replica of a block failed its checksum — the data is
    /// unrecoverable (all copies corrupted or lost).
    CorruptBlock {
        /// Owning file.
        path: String,
        /// Index of the corrupt block within the file.
        block_index: usize,
    },
    /// Invalid configuration (zero nodes, zero reducers, …).
    BadConfig(String),
    /// A map or reduce task panicked on every attempt.
    TaskFailed {
        /// "map" or "reduce".
        phase: &'static str,
        /// Task index within the phase.
        task: usize,
        /// Regular attempts consumed before giving up.
        attempts: usize,
        /// Panic payload of the last attempt, rendered to a string.
        message: String,
    },
}

impl fmt::Display for MrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MrError::FileNotFound(p) => write!(f, "DFS file not found: {p}"),
            MrError::FileExists(p) => write!(f, "DFS file already exists: {p}"),
            MrError::MissingBlock { path, block_index } => {
                write!(f, "missing block {block_index} of {path}")
            }
            MrError::CorruptBlock { path, block_index } => {
                write!(
                    f,
                    "all replicas of block {block_index} of {path} are corrupt"
                )
            }
            MrError::BadConfig(m) => write!(f, "bad configuration: {m}"),
            MrError::TaskFailed {
                phase,
                task,
                attempts,
                message,
            } => write!(
                f,
                "{phase} task {task} failed after {attempts} attempt(s): {message}"
            ),
        }
    }
}

impl std::error::Error for MrError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_contains_detail() {
        assert!(MrError::FileNotFound("/x".into())
            .to_string()
            .contains("/x"));
        let e = MrError::TaskFailed {
            phase: "map",
            task: 3,
            attempts: 4,
            message: "boom".into(),
        };
        let s = e.to_string();
        assert!(s.contains("map") && s.contains('3') && s.contains('4') && s.contains("boom"));
        let c = MrError::CorruptBlock {
            path: "/reads.fa".into(),
            block_index: 2,
        };
        let s = c.to_string();
        assert!(s.contains("/reads.fa") && s.contains('2') && s.contains("corrupt"));
    }
}
