//! Multi-job pipelines with accumulated reporting.
//!
//! Pig lowers one script to a *chain* of Map-Reduce jobs; a
//! [`Pipeline`] runs such a chain, keeping per-stage task statistics so
//! the whole pipeline can afterwards be re-scheduled on a simulated
//! cluster ([`ClusterSpec`]) for the Figure 2 scaling study.

use std::sync::Arc;
use std::time::Duration;

use mrmc_chaos::{FaultInjector, NoFaults, RecoveryCounters};
use mrmc_obs::{MetricsRegistry, Tracer};

use crate::engine::{
    run_job_with_combiner_and_faults, run_job_with_faults, run_map_only_with_faults,
};
use crate::error::MrError;
use crate::job::{Combiner, JobConfig, Mapper, MrKey, MrValue, Reducer, TaskContext, TaskStats};
use crate::simcluster::{ClusterSpec, JobCostModel, ShuffleVolume, SimJobReport};

/// Statistics for one executed stage.
#[derive(Debug, Clone)]
pub struct StageReport {
    /// Stage (job) name.
    pub name: String,
    /// Map-task statistics.
    pub map_stats: Vec<TaskStats>,
    /// Reduce-task statistics (empty for map-only stages).
    pub reduce_stats: Vec<TaskStats>,
    /// Intermediate pairs crossing the shuffle.
    pub shuffled_pairs: u64,
    /// Shuffle payload bytes (via the [`Mapper`] wire-size hooks;
    /// each post-combine group priced exactly once).
    pub shuffled_bytes: u64,
    /// Sorted map-side runs fetched by reducers.
    pub shuffle_runs: u64,
    /// Snapshot of the job's named counters, sorted by name. This is
    /// where algorithm-level accounting (PAIRS_COMPUTED,
    /// CANDIDATES_EMITTED, …) survives past the job, so benchmark
    /// binaries can report it per stage.
    pub counters: Vec<(String, u64)>,
    /// Real wall-clock spent executing the stage in-process.
    pub wall: Duration,
    /// Recovery work the stage performed (all zero without faults).
    pub recovery: RecoveryCounters,
}

impl StageReport {
    /// Map task durations in seconds (for the simulator).
    pub fn map_costs(&self) -> Vec<f64> {
        self.map_stats
            .iter()
            .map(|s| s.duration.as_secs_f64())
            .collect()
    }

    /// Reduce task durations in seconds.
    pub fn reduce_costs(&self) -> Vec<f64> {
        self.reduce_stats
            .iter()
            .map(|s| s.duration.as_secs_f64())
            .collect()
    }

    /// Read a named counter from the stage snapshot (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .binary_search_by(|(k, _)| k.as_str().cmp(name))
            .map(|i| self.counters[i].1)
            .unwrap_or(0)
    }

    /// The stage's shuffle traffic on all three axes the simulator
    /// prices — the single source every consumer (simulation, report
    /// bins, traces) should read instead of picking fields ad hoc.
    pub fn shuffle_volume(&self) -> ShuffleVolume {
        ShuffleVolume {
            records: self.shuffled_pairs,
            bytes: self.shuffled_bytes,
            runs: self.shuffle_runs,
        }
    }
}

/// Output rows of a stage.
pub type StageOutput<K, V> = Vec<(K, V)>;

/// The identity group reducer behind [`Pipeline::run_group_stage`]:
/// emits each merged key group whole, moving the value block the
/// k-way merge assembled rather than folding it.
pub struct Gather<K, V> {
    _types: std::marker::PhantomData<fn() -> (K, V)>,
}

impl<K, V> Gather<K, V> {
    /// A fresh gatherer (stateless).
    pub fn new() -> Gather<K, V> {
        Gather {
            _types: std::marker::PhantomData,
        }
    }
}

impl<K, V> Default for Gather<K, V> {
    fn default() -> Gather<K, V> {
        Gather::new()
    }
}

impl<K: MrKey, V: MrValue> Reducer for Gather<K, V> {
    type InKey = K;
    type InValue = V;
    type OutKey = K;
    type OutValue = Vec<V>;

    fn reduce(&self, key: K, values: Vec<V>, ctx: &mut TaskContext<K, Vec<V>>) {
        ctx.emit(key, values);
    }
}

/// A chain of jobs executed in sequence.
#[derive(Debug, Default)]
pub struct Pipeline {
    /// Pipeline name.
    pub name: String,
    stages: Vec<StageReport>,
    tracer: Option<Arc<Tracer>>,
}

impl Pipeline {
    /// Fresh pipeline.
    pub fn new(name: impl Into<String>) -> Pipeline {
        Pipeline {
            name: name.into(),
            stages: Vec::new(),
            tracer: None,
        }
    }

    /// Attach a trace sink: every stage's job runs with it, so one
    /// ledger accumulates the whole chain in stage order.
    pub fn traced(mut self, tracer: Arc<Tracer>) -> Pipeline {
        self.tracer = Some(tracer);
        self
    }

    /// The attached trace sink, if any.
    pub fn tracer(&self) -> Option<&Arc<Tracer>> {
        self.tracer.as_ref()
    }

    /// The stage's effective config: the pipeline's tracer is injected
    /// unless the caller already attached one of their own.
    fn stage_config(&self, config: &JobConfig) -> JobConfig {
        let mut config = config.clone();
        if config.tracer.is_none() {
            config.tracer = self.tracer.clone();
        }
        config
    }

    /// Run a full map/shuffle/reduce stage, recording its report, and
    /// return its output for the next stage.
    pub fn run_stage<M, R>(
        &mut self,
        input: Vec<(M::InKey, M::InValue)>,
        num_map_tasks: usize,
        mapper: &M,
        reducer: &R,
        config: &JobConfig,
    ) -> Result<StageOutput<R::OutKey, R::OutValue>, MrError>
    where
        M: Mapper,
        M::InKey: Clone + Sync,
        M::InValue: Clone + Sync,
        R: Reducer<InKey = M::OutKey, InValue = M::OutValue>,
    {
        self.run_stage_with_faults(input, num_map_tasks, mapper, reducer, config, &NoFaults)
    }

    /// [`Pipeline::run_stage`] under a fault injector.
    pub fn run_stage_with_faults<M, R>(
        &mut self,
        input: Vec<(M::InKey, M::InValue)>,
        num_map_tasks: usize,
        mapper: &M,
        reducer: &R,
        config: &JobConfig,
        injector: &dyn FaultInjector,
    ) -> Result<StageOutput<R::OutKey, R::OutValue>, MrError>
    where
        M: Mapper,
        M::InKey: Clone + Sync,
        M::InValue: Clone + Sync,
        R: Reducer<InKey = M::OutKey, InValue = M::OutValue>,
    {
        let start = std::time::Instant::now();
        let config = self.stage_config(config);
        let result = run_job_with_faults(input, num_map_tasks, mapper, reducer, &config, injector)?;
        self.stages.push(StageReport {
            name: config.name.clone(),
            map_stats: result.map_stats,
            reduce_stats: result.reduce_stats,
            shuffled_pairs: result.shuffled_pairs,
            shuffled_bytes: result.shuffled_bytes,
            shuffle_runs: result.shuffle_runs,
            counters: result.counters.snapshot(),
            wall: start.elapsed(),
            recovery: result.recovery,
        });
        Ok(result.output)
    }

    /// Run a full stage with a combiner applied to each map task's
    /// local output before the shuffle (Hadoop's combine-on-spill).
    pub fn run_stage_with_combiner<M, C, R>(
        &mut self,
        input: Vec<(M::InKey, M::InValue)>,
        num_map_tasks: usize,
        mapper: &M,
        combiner: &C,
        reducer: &R,
        config: &JobConfig,
    ) -> Result<StageOutput<R::OutKey, R::OutValue>, MrError>
    where
        M: Mapper,
        M::InKey: Clone + Sync,
        M::InValue: Clone + Sync,
        C: Combiner<Key = M::OutKey, Value = M::OutValue>,
        R: Reducer<InKey = M::OutKey, InValue = M::OutValue>,
    {
        self.run_stage_with_combiner_and_faults(
            input,
            num_map_tasks,
            mapper,
            combiner,
            reducer,
            config,
            &NoFaults,
        )
    }

    /// [`Pipeline::run_stage_with_combiner`] under a fault injector.
    #[allow(clippy::too_many_arguments)]
    pub fn run_stage_with_combiner_and_faults<M, C, R>(
        &mut self,
        input: Vec<(M::InKey, M::InValue)>,
        num_map_tasks: usize,
        mapper: &M,
        combiner: &C,
        reducer: &R,
        config: &JobConfig,
        injector: &dyn FaultInjector,
    ) -> Result<StageOutput<R::OutKey, R::OutValue>, MrError>
    where
        M: Mapper,
        M::InKey: Clone + Sync,
        M::InValue: Clone + Sync,
        C: Combiner<Key = M::OutKey, Value = M::OutValue>,
        R: Reducer<InKey = M::OutKey, InValue = M::OutValue>,
    {
        let start = std::time::Instant::now();
        let config = self.stage_config(config);
        let result = run_job_with_combiner_and_faults(
            input,
            num_map_tasks,
            mapper,
            combiner,
            reducer,
            &config,
            injector,
        )?;
        self.stages.push(StageReport {
            name: config.name.clone(),
            map_stats: result.map_stats,
            reduce_stats: result.reduce_stats,
            shuffled_pairs: result.shuffled_pairs,
            shuffled_bytes: result.shuffled_bytes,
            shuffle_runs: result.shuffle_runs,
            counters: result.counters.snapshot(),
            wall: start.elapsed(),
            recovery: result.recovery,
        });
        Ok(result.output)
    }

    /// Run a group-by stage: map, shuffle, and hand back each key's
    /// merged value block *as grouped by the sort-merge shuffle* —
    /// `(key, Vec<value>)` rows in partition-then-key order. The
    /// internal reducer just moves each merged group through
    /// ([`Gather`]), so no per-value work happens reduce-side; this is
    /// the zero-copy handoff the Pig columnar GROUP rides (it shuffles
    /// row indices and gathers columns afterwards).
    pub fn run_group_stage<M>(
        &mut self,
        input: Vec<(M::InKey, M::InValue)>,
        num_map_tasks: usize,
        mapper: &M,
        config: &JobConfig,
    ) -> Result<StageOutput<M::OutKey, Vec<M::OutValue>>, MrError>
    where
        M: Mapper,
        M::InKey: Clone + Sync,
        M::InValue: Clone + Sync,
    {
        self.run_stage(input, num_map_tasks, mapper, &Gather::new(), config)
    }

    /// Run a map-only stage (Pig `FOREACH` with no grouping).
    pub fn run_map_stage<M>(
        &mut self,
        input: Vec<(M::InKey, M::InValue)>,
        num_map_tasks: usize,
        mapper: &M,
        config: &JobConfig,
    ) -> Result<StageOutput<M::OutKey, M::OutValue>, MrError>
    where
        M: Mapper,
        M::InKey: Clone + Sync,
        M::InValue: Clone + Sync,
    {
        self.run_map_stage_with_faults(input, num_map_tasks, mapper, config, &NoFaults)
    }

    /// [`Pipeline::run_map_stage`] under a fault injector.
    pub fn run_map_stage_with_faults<M>(
        &mut self,
        input: Vec<(M::InKey, M::InValue)>,
        num_map_tasks: usize,
        mapper: &M,
        config: &JobConfig,
        injector: &dyn FaultInjector,
    ) -> Result<StageOutput<M::OutKey, M::OutValue>, MrError>
    where
        M: Mapper,
        M::InKey: Clone + Sync,
        M::InValue: Clone + Sync,
    {
        let start = std::time::Instant::now();
        let config = self.stage_config(config);
        let result = run_map_only_with_faults(input, num_map_tasks, mapper, &config, injector)?;
        self.stages.push(StageReport {
            name: config.name.clone(),
            map_stats: result.map_stats,
            reduce_stats: Vec::new(),
            shuffled_pairs: result.shuffled_pairs,
            shuffled_bytes: result.shuffled_bytes,
            shuffle_runs: result.shuffle_runs,
            counters: result.counters.snapshot(),
            wall: start.elapsed(),
            recovery: result.recovery,
        });
        Ok(result.output)
    }

    /// Reports for all executed stages, in order.
    pub fn stages(&self) -> &[StageReport] {
        &self.stages
    }

    /// Total in-process wall-clock across stages.
    pub fn total_wall(&self) -> Duration {
        self.stages.iter().map(|s| s.wall).sum()
    }

    /// Sum of a named counter across every stage.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.stages.iter().map(|s| s.counter(name)).sum()
    }

    /// Recovery work accumulated across every stage.
    pub fn total_recovery(&self) -> RecoveryCounters {
        let mut total = RecoveryCounters::new();
        for s in &self.stages {
            total.merge(&s.recovery);
        }
        total
    }

    /// Re-schedule every stage's measured task costs onto a virtual
    /// cluster, returning per-stage simulated reports. The pipeline's
    /// simulated total is the sum (jobs run sequentially, as Pig does).
    pub fn simulate_on(&self, cluster: &ClusterSpec, model: &JobCostModel) -> Vec<SimJobReport> {
        self.stages
            .iter()
            .map(|s| {
                cluster.simulate_job_shuffle(
                    model,
                    &s.map_costs(),
                    s.shuffle_volume(),
                    &s.reduce_costs(),
                    s.recovery,
                )
            })
            .collect()
    }

    /// [`Pipeline::simulate_on`] that also writes a simulated-time
    /// trace into `tracer`: one ledger job per stage, chained on the
    /// simulated clock (stage N starts where stage N−1 ended, as Pig
    /// runs jobs sequentially). Returns the same reports
    /// `simulate_on` would.
    pub fn simulate_on_traced(
        &self,
        cluster: &ClusterSpec,
        model: &JobCostModel,
        tracer: &Tracer,
    ) -> Vec<SimJobReport> {
        let mut clock_s = 0.0f64;
        self.stages
            .iter()
            .map(|s| {
                let report = cluster.simulate_job_traced(
                    model,
                    &s.map_costs(),
                    s.shuffle_volume(),
                    &s.reduce_costs(),
                    s.recovery,
                    tracer,
                    &s.name,
                    clock_s,
                );
                // Advance the clock with the same association the span
                // emitter used, so the next stage's setup span starts
                // exactly (bit-for-bit) where this stage's last span
                // ended and the critical path can bridge the stages.
                let setup_end = clock_s + report.overhead;
                let shuffle_start = setup_end + report.map_time;
                let reduce_start = shuffle_start + report.shuffle_time;
                clock_s = reduce_start + report.reduce_time;
                report
            })
            .collect()
    }

    /// Simulated total seconds on a virtual cluster.
    pub fn simulated_total(&self, cluster: &ClusterSpec, model: &JobCostModel) -> f64 {
        self.simulate_on(cluster, model)
            .iter()
            .map(|r| r.total())
            .sum()
    }

    /// Export every stage's accounting into `metrics` under the
    /// `engine.*` key family (see DESIGN.md §6 for the glossary).
    ///
    /// This is the metrics plane's engine instrumentation: it runs
    /// once per pipeline, *after* execution, off every hot path — the
    /// per-record code keeps its existing task-local [`Counters`] and
    /// this method folds the already-aggregated [`StageReport`]s into
    /// the registry. Everything exported is derived from record
    /// counts, shuffle volumes and recovery actions, never from
    /// wall-clock, so a fixed seed (and fixed chaos plan) makes the
    /// resulting snapshot byte-identical across runs.
    ///
    /// [`Counters`]: crate::job::Counters
    pub fn export_metrics(&self, metrics: &MetricsRegistry) {
        for stage in &self.stages {
            export_stage_metrics(metrics, stage);
        }
    }
}

/// Fold one [`StageReport`] into the registry (the per-stage half of
/// [`Pipeline::export_metrics`]). The ad-hoc counter keys the stages
/// already carry (`SHUFFLED_PAIRS`, `PAIRS_COMPUTED`, …) surface
/// unchanged under `engine.counter.<NAME>`, so every existing report
/// key is reachable through the one registry namespace.
pub fn export_stage_metrics(metrics: &MetricsRegistry, stage: &StageReport) {
    metrics.counter_add("engine.stages", 1);
    metrics.counter_add("engine.map.tasks", stage.map_stats.len() as u64);
    metrics.counter_add("engine.reduce.tasks", stage.reduce_stats.len() as u64);
    metrics.counter_add("engine.shuffle.pairs", stage.shuffled_pairs);
    metrics.counter_add("engine.shuffle.bytes", stage.shuffled_bytes);
    metrics.counter_add("engine.shuffle.runs", stage.shuffle_runs);
    for (name, value) in &stage.counters {
        metrics.counter_add(&format!("engine.counter.{name}"), *value);
    }
    let r = &stage.recovery;
    for (key, value) in [
        ("engine.recovery.tasks_retried", r.tasks_retried),
        (
            "engine.recovery.maps_reexecuted_node_loss",
            r.maps_reexecuted_node_loss,
        ),
        (
            "engine.recovery.maps_reexecuted_fetch_fail",
            r.maps_reexecuted_fetch_fail,
        ),
        ("engine.recovery.speculative_wins", r.speculative_wins),
        (
            "engine.recovery.shuffle_fetch_retries",
            r.shuffle_fetch_retries,
        ),
        ("engine.recovery.blocks_rereplicated", r.blocks_rereplicated),
        (
            "engine.recovery.corrupt_replicas_detected",
            r.corrupt_replicas_detected,
        ),
    ] {
        metrics.counter_add(key, value);
    }
    for t in &stage.map_stats {
        metrics.observe("engine.map.records_in", t.records_in);
        metrics.observe("engine.map.records_out", t.records_out);
    }
    for t in &stage.reduce_stats {
        metrics.observe("engine.reduce.records_in", t.records_in);
        metrics.observe("engine.reduce.records_out", t.records_out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::TaskContext;

    struct Tokenize;
    impl Mapper for Tokenize {
        type InKey = usize;
        type InValue = String;
        type OutKey = String;
        type OutValue = u64;
        fn map(&self, _k: usize, v: String, ctx: &mut TaskContext<String, u64>) {
            for w in v.split_whitespace() {
                ctx.emit(w.to_string(), 1);
            }
        }
        fn key_wire_size(&self, key: &String) -> usize {
            use crate::job::ShuffleSized;
            key.shuffle_size()
        }
        fn value_wire_size(&self, value: &u64) -> usize {
            use crate::job::ShuffleSized;
            value.shuffle_size()
        }
    }

    struct Sum;
    impl Reducer for Sum {
        type InKey = String;
        type InValue = u64;
        type OutKey = String;
        type OutValue = u64;
        fn reduce(&self, k: String, vs: Vec<u64>, ctx: &mut TaskContext<String, u64>) {
            ctx.emit(k, vs.iter().sum());
        }
    }

    /// Second stage: histogram of counts.
    struct CountToKey;
    impl Mapper for CountToKey {
        type InKey = String;
        type InValue = u64;
        type OutKey = u64;
        type OutValue = u64;
        fn map(&self, _w: String, c: u64, ctx: &mut TaskContext<u64, u64>) {
            ctx.emit(c, 1);
        }
    }

    struct Sum2;
    impl Reducer for Sum2 {
        type InKey = u64;
        type InValue = u64;
        type OutKey = u64;
        type OutValue = u64;
        fn reduce(&self, k: u64, vs: Vec<u64>, ctx: &mut TaskContext<u64, u64>) {
            ctx.emit(k, vs.iter().sum());
        }
    }

    #[test]
    fn two_stage_pipeline_chains_output() {
        let mut p = Pipeline::new("wc-then-hist");
        let input = vec![(0usize, "a b a c".to_string()), (1, "b a".to_string())];
        let counts = p
            .run_stage(
                input,
                2,
                &Tokenize,
                &Sum,
                &JobConfig::named("wc").reducers(2),
            )
            .unwrap();
        // a:3, b:2, c:1
        let hist = p
            .run_stage(
                counts,
                2,
                &CountToKey,
                &Sum2,
                &JobConfig::named("hist").reducers(2),
            )
            .unwrap();
        let mut hist = hist;
        hist.sort();
        assert_eq!(hist, vec![(1, 1), (2, 1), (3, 1)]);
        assert_eq!(p.stages().len(), 2);
        assert!(p.total_wall() > Duration::ZERO);
        // Counter snapshots and shuffle-byte accounting ride on the
        // stage reports.
        let wc = &p.stages()[0];
        assert_eq!(wc.counter("SHUFFLED_PAIRS"), wc.shuffled_pairs);
        assert_eq!(wc.counter("SHUFFLE_BYTES"), wc.shuffled_bytes);
        assert!(wc.shuffled_bytes > wc.shuffled_pairs, "bytes > records");
        assert_eq!(wc.counter("SHUFFLE_RUNS"), wc.shuffle_runs);
        assert!(wc.shuffle_runs > 0, "a shuffling stage fetches runs");
        assert_eq!(wc.counter("NOT_A_COUNTER"), 0);
        assert_eq!(
            p.counter_total("SHUFFLED_PAIRS"),
            p.stages().iter().map(|s| s.shuffled_pairs).sum::<u64>()
        );
    }

    #[test]
    fn pipeline_simulation_sums_stages() {
        let mut p = Pipeline::new("sim");
        let input = vec![(0usize, "x y z".to_string())];
        p.run_stage(
            input,
            1,
            &Tokenize,
            &Sum,
            &JobConfig::named("wc").reducers(1),
        )
        .unwrap();
        let cluster = ClusterSpec::m1_large(4);
        let model = JobCostModel::default();
        let reports = p.simulate_on(&cluster, &model);
        assert_eq!(reports.len(), 1);
        let total = p.simulated_total(&cluster, &model);
        assert!((total - reports[0].total()).abs() < 1e-12);
        assert!(total >= model.job_overhead);
    }

    #[test]
    fn group_stage_hands_back_merged_value_blocks() {
        let mut p = Pipeline::new("grp");
        let input = vec![(0usize, "a b a c".to_string()), (1, "b a".to_string())];
        let groups = p
            .run_group_stage(input, 2, &Tokenize, &JobConfig::named("grp").reducers(2))
            .unwrap();
        let mut sorted: Vec<(String, Vec<u64>)> = groups;
        sorted.sort();
        assert_eq!(
            sorted,
            vec![
                ("a".to_string(), vec![1, 1, 1]),
                ("b".to_string(), vec![1, 1]),
                ("c".to_string(), vec![1]),
            ]
        );
        // The stage shuffles like any grouping job: the handoff is on
        // the reduce side only.
        assert_eq!(p.stages()[0].shuffled_pairs, 6);
        assert!(p.stages()[0].shuffled_bytes > 0);
    }

    #[test]
    fn map_only_stage_recorded() {
        let mut p = Pipeline::new("m");
        struct Echo;
        impl Mapper for Echo {
            type InKey = usize;
            type InValue = u64;
            type OutKey = usize;
            type OutValue = u64;
            fn map(&self, k: usize, v: u64, ctx: &mut TaskContext<usize, u64>) {
                ctx.emit(k, v * 2);
            }
        }
        let out = p
            .run_map_stage(
                vec![(0usize, 1u64), (1, 2)],
                2,
                &Echo,
                &JobConfig::named("double"),
            )
            .unwrap();
        assert_eq!(out, vec![(0, 2), (1, 4)]);
        assert_eq!(p.stages()[0].shuffled_pairs, 0);
        assert!(p.total_recovery().is_clean());
    }

    #[test]
    fn injected_stage_recovers_and_accumulates_ledger() {
        use mrmc_chaos::{FaultPlan, Phase};

        let input = vec![(0usize, "a b a c".to_string()), (1, "b a".to_string())];
        let mut clean = Pipeline::new("clean");
        let mut expect = clean
            .run_stage(
                input.clone(),
                2,
                &Tokenize,
                &Sum,
                &JobConfig::named("wc").reducers(2),
            )
            .unwrap();
        expect.sort();

        let inj = FaultPlan::new()
            .task_panic(0, Phase::Map, 0, 1)
            .node_death_after_map(0, 1)
            .injector();
        let mut chaotic = Pipeline::new("chaotic");
        let mut got = chaotic
            .run_stage_with_faults(
                input,
                2,
                &Tokenize,
                &Sum,
                &JobConfig::named("wc").reducers(2).attempts(4).nodes(2),
                &inj,
            )
            .unwrap();
        got.sort();
        assert_eq!(got, expect);
        let rec = chaotic.total_recovery();
        assert_eq!(rec.tasks_retried, 1);
        assert_eq!(rec.maps_reexecuted_node_loss, 1);
        // The recovery ledger rides into the simulated reports.
        let cluster = ClusterSpec::m1_large(4);
        let model = JobCostModel::default();
        let reports = chaotic.simulate_on(&cluster, &model);
        assert_eq!(reports[0].recovery, rec);
        assert!(clean.simulate_on(&cluster, &model)[0].recovery.is_clean());
    }
}
