//! The simulated-cluster time model.
//!
//! The paper benchmarks on Amazon Elastic MapReduce with 2–12 M1 Large
//! nodes (§IV-C) and reports job runtimes versus node count and input
//! size (Figure 2). We do not own that testbed; instead, task
//! durations — *really measured* by the engine, or synthesized from
//! per-record costs for input sizes a single machine cannot execute —
//! are **list-scheduled** onto `nodes × slots` virtual task slots, plus
//! the fixed overheads a Hadoop job pays regardless of input size
//! (JVM start-up, job setup/teardown, scheduling heartbeats).
//!
//! This preserves the two phenomena Figure 2 shows: runtime falling
//! roughly as `overhead + work/N` for large inputs, and a flat line for
//! inputs too small to keep even two nodes busy.

/// A virtual Hadoop cluster.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterSpec {
    /// Worker node count (the paper varies 2–12).
    pub nodes: usize,
    /// Concurrent map tasks per node (M1 Large ran 2).
    pub map_slots_per_node: usize,
    /// Concurrent reduce tasks per node.
    pub reduce_slots_per_node: usize,
}

impl ClusterSpec {
    /// A cluster of `nodes` M1-Large-like workers (2 map slots, 1
    /// reduce slot each).
    pub fn m1_large(nodes: usize) -> ClusterSpec {
        ClusterSpec {
            nodes,
            map_slots_per_node: 2,
            reduce_slots_per_node: 1,
        }
    }

    /// Total map slots.
    pub fn map_slots(&self) -> usize {
        (self.nodes * self.map_slots_per_node).max(1)
    }

    /// Total reduce slots.
    pub fn reduce_slots(&self) -> usize {
        (self.nodes * self.reduce_slots_per_node).max(1)
    }
}

/// Fixed and per-unit costs of a Hadoop job, in seconds.
///
/// Defaults are calibrated to the ballpark of 2013-era EMR (tens of
/// seconds of fixed overhead per job): the absolute values only shift
/// Figure 2 vertically; the *shape* comes from the scheduling model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobCostModel {
    /// Per-job fixed overhead (setup + teardown), seconds.
    pub job_overhead: f64,
    /// Per-task scheduling/launch overhead, seconds.
    pub task_overhead: f64,
    /// Seconds to move one shuffled record between nodes, *per node* of
    /// aggregate bandwidth (total shuffle time = records × cost / nodes).
    pub shuffle_record_cost: f64,
    /// Seconds per shuffled *byte*, per node of aggregate bandwidth —
    /// the volume term that separates wide records (sketch rows) from
    /// narrow ones (band buckets) which a pure per-record cost cannot.
    pub shuffle_byte_cost: f64,
    /// Seconds per shuffled *run* (one sorted map-side spill segment
    /// fetched by one reducer), per node of aggregate bandwidth. Models
    /// the per-fetch overhead of Hadoop's copy phase — connection
    /// setup, HTTP round-trip, merge bookkeeping — which scales with
    /// `maps × reducers`, not with payload volume.
    pub shuffle_run_cost: f64,
    /// Straggler model: the slowest map task runs this many times its
    /// nominal cost (1.0 = no stragglers). EMR-era Hadoop commonly saw
    /// 5–10× stragglers from contended spot instances.
    pub straggler_slowdown: f64,
    /// Hadoop's speculative execution: when a task lags, a backup copy
    /// is scheduled on a free slot; the task finishes when either copy
    /// does. Bounds the straggler's effective cost at (detection delay
    /// + one nominal run).
    pub speculative_execution: bool,
}

impl Default for JobCostModel {
    fn default() -> Self {
        JobCostModel {
            job_overhead: 20.0,
            task_overhead: 1.5,
            shuffle_record_cost: 2e-6,
            shuffle_byte_cost: 1e-8,
            shuffle_run_cost: 1e-3,
            straggler_slowdown: 1.0,
            speculative_execution: false,
        }
    }
}

impl JobCostModel {
    /// Fraction of a task's nominal runtime that elapses before the
    /// speculative backup launches (Hadoop waits for progress-rate
    /// evidence).
    const SPECULATION_DELAY: f64 = 1.0;

    /// Effective cost of the straggling task under this model.
    fn straggler_cost(&self, nominal: f64) -> f64 {
        let slowed = nominal * self.straggler_slowdown;
        if self.speculative_execution {
            // Backup launches after the detection delay and runs at
            // nominal speed; the original might still win.
            slowed.min(nominal * Self::SPECULATION_DELAY + nominal)
        } else {
            slowed
        }
    }
}

/// What one job pushed through its shuffle, as measured by the engine:
/// the three axes the cost model prices independently.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShuffleVolume {
    /// Intermediate pairs that crossed the barrier (post-combine).
    pub records: u64,
    /// Payload bytes those pairs occupy on the wire.
    pub bytes: u64,
    /// Sorted map-side runs fetched by reducers — one per non-empty
    /// (map task, reducer) cell.
    pub runs: u64,
}

/// Breakdown of a simulated job execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimJobReport {
    /// Makespan of the map phase (seconds).
    pub map_time: f64,
    /// Time for the shuffle transfer (seconds).
    pub shuffle_time: f64,
    /// Makespan of the reduce phase (seconds).
    pub reduce_time: f64,
    /// Fixed job overhead (seconds).
    pub overhead: f64,
    /// Recovery work the real engine performed producing the measured
    /// task costs (zero for purely synthetic simulations).
    pub recovery: mrmc_chaos::RecoveryCounters,
}

impl SimJobReport {
    /// Total simulated wall-clock for the job.
    pub fn total(&self) -> f64 {
        self.map_time + self.shuffle_time + self.reduce_time + self.overhead
    }
}

/// One task's placement in a list schedule: which slot ran it and
/// when, in seconds from the phase start.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScheduledTask {
    /// Index into the phase's cost list.
    pub task: usize,
    /// Slot (virtual lane) the task ran on.
    pub slot: usize,
    /// Start offset within the phase, seconds.
    pub start: f64,
    /// End offset within the phase, seconds.
    pub end: f64,
}

/// Longest-processing-time list scheduling with full placements: sort
/// tasks by decreasing cost (stable, so equal costs keep index order),
/// repeatedly assign to the least-loaded slot. Tasks stack contiguously
/// on each slot from time zero — the schedule has no idle gaps below
/// the makespan on the loaded lanes, which is what lets the trace
/// layer attribute the whole simulated phase to task spans.
pub fn lpt_schedule(costs: &[f64], slots: usize) -> Vec<ScheduledTask> {
    let slots = slots.max(1);
    let mut order: Vec<usize> = (0..costs.len()).collect();
    order.sort_by(|&a, &b| costs[b].partial_cmp(&costs[a]).expect("finite costs"));
    // A binary heap of loads would be O(n log m); for the task counts
    // here a linear scan over ≤ 24 slots is simpler and just as fast.
    let mut loads = vec![0.0f64; slots];
    let mut placed = Vec::with_capacity(costs.len());
    for task in order {
        let (slot, load) = loads
            .iter()
            .copied()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite loads"))
            .expect("slots ≥ 1");
        placed.push(ScheduledTask {
            task,
            slot,
            start: load,
            end: load + costs[task],
        });
        loads[slot] = load + costs[task];
    }
    placed
}

/// Makespan of the LPT list schedule — the classic (4/3 − 1/3m)-
/// approximation, a faithful stand-in for Hadoop's greedy slot
/// scheduler.
pub fn lpt_makespan(costs: &[f64], slots: usize) -> f64 {
    lpt_schedule(costs, slots)
        .into_iter()
        .fold(0.0, |acc, t| acc.max(t.end))
}

impl ClusterSpec {
    /// Simulate one job: map task costs, shuffled record count, reduce
    /// task costs → phase times and total on this cluster.
    pub fn simulate_job(
        &self,
        model: &JobCostModel,
        map_costs: &[f64],
        shuffled_records: u64,
        reduce_costs: &[f64],
    ) -> SimJobReport {
        self.simulate_job_recovered(
            model,
            map_costs,
            shuffled_records,
            reduce_costs,
            mrmc_chaos::RecoveryCounters::new(),
        )
    }

    /// [`ClusterSpec::simulate_job`] for a job that performed recovery
    /// work: every retried or re-executed map attempt is scheduled as
    /// an extra mean-cost map task (the cluster really ran it), and the
    /// ledger is carried on the report. Shuffle volume is charged per
    /// record only; see [`ClusterSpec::simulate_job_bytes`] for the
    /// bandwidth-aware variant.
    pub fn simulate_job_recovered(
        &self,
        model: &JobCostModel,
        map_costs: &[f64],
        shuffled_records: u64,
        reduce_costs: &[f64],
        recovery: mrmc_chaos::RecoveryCounters,
    ) -> SimJobReport {
        self.simulate_job_bytes(
            model,
            map_costs,
            shuffled_records,
            0,
            reduce_costs,
            recovery,
        )
    }

    /// Full-fidelity simulation: like
    /// [`ClusterSpec::simulate_job_recovered`] but also charges the
    /// shuffle's byte volume against per-node aggregate bandwidth, so
    /// stages that move many narrow records price differently from
    /// stages that move few wide ones.
    pub fn simulate_job_bytes(
        &self,
        model: &JobCostModel,
        map_costs: &[f64],
        shuffled_records: u64,
        shuffled_bytes: u64,
        reduce_costs: &[f64],
        recovery: mrmc_chaos::RecoveryCounters,
    ) -> SimJobReport {
        self.simulate_job_shuffle(
            model,
            map_costs,
            ShuffleVolume {
                records: shuffled_records,
                bytes: shuffled_bytes,
                runs: 0,
            },
            reduce_costs,
            recovery,
        )
    }

    /// Like [`ClusterSpec::simulate_job_bytes`] but also charges the
    /// per-fetch overhead of the copy phase: each sorted map-side run a
    /// reducer pulls costs [`JobCostModel::shuffle_run_cost`] seconds of
    /// aggregate cluster bandwidth on top of the record and byte terms.
    /// This is the entry point fed by the engine's per-run accounting
    /// ([`crate::JobResult::shuffle_runs`]).
    pub fn simulate_job_shuffle(
        &self,
        model: &JobCostModel,
        map_costs: &[f64],
        volume: ShuffleVolume,
        reduce_costs: &[f64],
        recovery: mrmc_chaos::RecoveryCounters,
    ) -> SimJobReport {
        let eff = self.effective_costs(model, map_costs, reduce_costs, recovery);
        let map_time = lpt_makespan(&eff.map_costs, self.map_slots());
        let reduce_time = lpt_makespan(&eff.reduce_costs, self.reduce_slots());
        SimJobReport {
            map_time,
            shuffle_time: self.shuffle_seconds(model, volume),
            reduce_time,
            overhead: model.job_overhead,
            recovery,
        }
    }

    /// Shuffle transfer time under the three-axis cost model, charged
    /// against per-node aggregate bandwidth.
    fn shuffle_seconds(&self, model: &JobCostModel, volume: ShuffleVolume) -> f64 {
        (volume.records as f64 * model.shuffle_record_cost
            + volume.bytes as f64 * model.shuffle_byte_cost
            + volume.runs as f64 * model.shuffle_run_cost)
            / self.nodes.max(1) as f64
    }

    /// The cost lists the scheduler actually sees: per-task launch
    /// overhead added, recovery re-executions appended as mean-cost
    /// map tasks, the straggler slowdown applied to the longest map.
    fn effective_costs(
        &self,
        model: &JobCostModel,
        map_costs: &[f64],
        reduce_costs: &[f64],
        recovery: mrmc_chaos::RecoveryCounters,
    ) -> EffectiveCosts {
        let with_task_overhead =
            |costs: &[f64]| -> Vec<f64> { costs.iter().map(|c| c + model.task_overhead).collect() };
        let mut eff_map = with_task_overhead(map_costs);
        let primary_maps = eff_map.len();
        // Recovery work is real work: every extra map execution the
        // engine ran (retries, node-loss and fetch-failure
        // re-executions, winning backups) occupies a slot for a
        // mean-cost task.
        let extra_execs = recovery.tasks_retried
            + recovery.maps_reexecuted_node_loss
            + recovery.maps_reexecuted_fetch_fail
            + recovery.speculative_wins;
        if extra_execs > 0 && !eff_map.is_empty() {
            let mean = eff_map.iter().sum::<f64>() / eff_map.len() as f64;
            eff_map.extend(std::iter::repeat_n(mean, extra_execs as usize));
        }
        // Straggler injection: the longest map task is slowed (and
        // possibly rescued by speculation).
        let mut straggler = None;
        if model.straggler_slowdown > 1.0 {
            if let Some(idx) = eff_map
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
                .map(|(i, _)| i)
            {
                eff_map[idx] = model.straggler_cost(eff_map[idx]);
                straggler = Some(idx);
            }
        }
        EffectiveCosts {
            map_costs: eff_map,
            primary_maps,
            straggler,
            reduce_costs: with_task_overhead(reduce_costs),
        }
    }

    /// [`ClusterSpec::simulate_job_shuffle`] that also emits a
    /// *simulated-time* trace into `tracer`: per-job overhead as an
    /// explicit span, one launch-overhead + body span pair per
    /// scheduled task slot (recovery re-executions categorized as
    /// recovery work), a shuffle span depending on every map lane, and
    /// reduce lanes depending on the shuffle. Timestamps are simulated
    /// seconds rendered as nanoseconds since `start_s` — fully
    /// deterministic, and the spans tile every loaded lane without
    /// gaps, so the critical path reconstructs the report's makespan
    /// exactly. Returns the same report `simulate_job_shuffle` would.
    #[allow(clippy::too_many_arguments)]
    pub fn simulate_job_traced(
        &self,
        model: &JobCostModel,
        map_costs: &[f64],
        volume: ShuffleVolume,
        reduce_costs: &[f64],
        recovery: mrmc_chaos::RecoveryCounters,
        tracer: &mrmc_obs::Tracer,
        job_name: &str,
        start_s: f64,
    ) -> SimJobReport {
        use mrmc_obs::{Category, SpanDraft, SpanId};

        let ns = |s: f64| -> u64 { (s * 1e9).round() as u64 };
        let eff = self.effective_costs(model, map_costs, reduce_costs, recovery);
        let job = tracer.begin_job(job_name);

        let setup_end = start_s + model.job_overhead;
        let setup = tracer.add_span(
            SpanDraft::new(job, "job:setup", Category::Overhead)
                .lane(0)
                .at(ns(start_s), ns(setup_end).saturating_sub(ns(start_s)))
                .meta("nodes", self.nodes),
        );

        // Emit one overhead + body span pair per scheduled task,
        // chained along its lane so lane order becomes dependency
        // order. Spans on a lane are contiguous (list scheduling
        // stacks tasks from zero), so the longest lane's chain covers
        // the whole phase makespan.
        let emit_phase = |sched: &[ScheduledTask],
                          base_s: f64,
                          name: &str,
                          recovery_from: usize,
                          straggler: Option<usize>,
                          entry_dep: SpanId|
         -> (Vec<SpanId>, f64) {
            let mut order: Vec<&ScheduledTask> = sched.iter().collect();
            order.sort_by(|a, b| {
                (a.slot, a.start)
                    .partial_cmp(&(b.slot, b.start))
                    .expect("finite times")
            });
            let mut lane_last: Vec<(usize, SpanId)> = Vec::new();
            let mut makespan = 0.0f64;
            for t in order {
                makespan = makespan.max(t.end);
                let prev = lane_last
                    .iter()
                    .find(|(slot, _)| *slot == t.slot)
                    .map(|&(_, id)| id)
                    .unwrap_or(entry_dep);
                let launch_end = (base_s + t.start + model.task_overhead).min(base_s + t.end);
                let launch = tracer.add_span(
                    SpanDraft::new(job, format!("{name}:launch"), Category::Overhead)
                        .task_attempt(t.task, 0)
                        .lane(t.slot)
                        .at(
                            ns(base_s + t.start),
                            ns(launch_end).saturating_sub(ns(base_s + t.start)),
                        )
                        .dep(prev),
                );
                let category = if t.task >= recovery_from {
                    Category::Recovery
                } else {
                    Category::Compute
                };
                let mut body = SpanDraft::new(job, name, category)
                    .task_attempt(t.task, 0)
                    .lane(t.slot)
                    .at(
                        ns(launch_end),
                        ns(base_s + t.end).saturating_sub(ns(launch_end)),
                    )
                    .dep(launch);
                if straggler == Some(t.task) {
                    body = body.meta("straggler", "true");
                }
                let id = tracer.add_span(body);
                match lane_last.iter_mut().find(|(slot, _)| *slot == t.slot) {
                    Some(entry) => entry.1 = id,
                    None => lane_last.push((t.slot, id)),
                }
            }
            lane_last.sort_unstable();
            (lane_last.into_iter().map(|(_, id)| id).collect(), makespan)
        };

        let map_sched = lpt_schedule(&eff.map_costs, self.map_slots());
        let (map_frontier, map_time) = emit_phase(
            &map_sched,
            setup_end,
            "map",
            eff.primary_maps,
            eff.straggler,
            setup,
        );

        let shuffle_time = self.shuffle_seconds(model, volume);
        let shuffle_start = setup_end + map_time;
        let shuffle = tracer.add_span(
            SpanDraft::new(job, "shuffle", Category::Shuffle)
                .lane(0)
                .at(
                    ns(shuffle_start),
                    ns(shuffle_start + shuffle_time).saturating_sub(ns(shuffle_start)),
                )
                .deps(if map_frontier.is_empty() {
                    vec![setup]
                } else {
                    map_frontier
                })
                .meta("records", volume.records)
                .meta("bytes", volume.bytes)
                .meta("runs", volume.runs),
        );

        let reduce_sched = lpt_schedule(&eff.reduce_costs, self.reduce_slots());
        let (_, reduce_time) = emit_phase(
            &reduce_sched,
            shuffle_start + shuffle_time,
            "reduce",
            usize::MAX,
            None,
            shuffle,
        );

        SimJobReport {
            map_time,
            shuffle_time,
            reduce_time,
            overhead: model.job_overhead,
            recovery,
        }
    }
}

/// Output of [`ClusterSpec::effective_costs`].
struct EffectiveCosts {
    map_costs: Vec<f64>,
    /// Map cost indices below this are primary executions; at or above
    /// it, recovery re-executions.
    primary_maps: usize,
    /// Index of the straggler-slowed map task, if any.
    straggler: Option<usize>,
    reduce_costs: Vec<f64>,
}

/// A map task for locality-aware scheduling: its compute cost and the
/// datanodes holding its input block (from
/// [`crate::dfs::InputSplit::preferred_nodes`]).
#[derive(Debug, Clone)]
pub struct LocalityTask {
    /// Nominal compute cost, seconds.
    pub cost: f64,
    /// Nodes with a local replica of the input.
    pub preferred_nodes: Vec<usize>,
}

/// Result of a locality-aware schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LocalitySchedule {
    /// Makespan of the map phase, seconds.
    pub makespan: f64,
    /// Fraction of tasks that ran data-local (Hadoop's
    /// `DATA_LOCAL_MAPS / TOTAL_MAPS`).
    pub local_fraction: f64,
}

impl ClusterSpec {
    /// Schedule map tasks onto *named nodes* honouring data locality:
    /// a task running on a node without a local replica pays
    /// `remote_penalty ×` its cost (the input streams over the
    /// network — Hadoop's rack-remote case). Greedy LPT over per-node
    /// slots, choosing for each task the placement with the earliest
    /// finish time. An empty `preferred_nodes` means "local anywhere"
    /// (e.g. generated input).
    pub fn schedule_with_locality(
        &self,
        tasks: &[LocalityTask],
        remote_penalty: f64,
    ) -> LocalitySchedule {
        assert!(remote_penalty >= 1.0, "penalty must be ≥ 1");
        if tasks.is_empty() {
            return LocalitySchedule {
                makespan: 0.0,
                local_fraction: 1.0,
            };
        }
        // Slot loads per node.
        let slots = self.map_slots_per_node.max(1);
        let mut loads: Vec<Vec<f64>> = vec![vec![0.0; slots]; self.nodes.max(1)];

        let mut order: Vec<usize> = (0..tasks.len()).collect();
        order.sort_by(|&a, &b| {
            tasks[b]
                .cost
                .partial_cmp(&tasks[a].cost)
                .expect("finite costs")
        });

        let mut local = 0usize;
        let mut makespan = 0.0f64;
        for &t in &order {
            let task = &tasks[t];
            // (finish, node, slot, was_local) of the best placement.
            let mut best: Option<(f64, usize, usize, bool)> = None;
            for (node, node_loads) in loads.iter().enumerate() {
                let is_local =
                    task.preferred_nodes.contains(&node) || task.preferred_nodes.is_empty();
                let eff = if is_local {
                    task.cost
                } else {
                    task.cost * remote_penalty
                };
                let (slot, load) = node_loads
                    .iter()
                    .enumerate()
                    .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
                    .expect("slots ≥ 1");
                let finish = load + eff;
                if best.map(|(f, ..)| finish < f).unwrap_or(true) {
                    best = Some((finish, node, slot, is_local));
                }
            }
            let (finish, node, slot, is_local) = best.expect("nodes ≥ 1");
            loads[node][slot] = finish;
            makespan = makespan.max(finish);
            local += usize::from(is_local);
        }
        LocalitySchedule {
            makespan,
            local_fraction: local as f64 / tasks.len() as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lpt_basics() {
        assert_eq!(lpt_makespan(&[], 4), 0.0);
        assert_eq!(lpt_makespan(&[5.0], 4), 5.0);
        // 4 unit tasks on 2 slots → 2.0
        assert!((lpt_makespan(&[1.0; 4], 2) - 2.0).abs() < 1e-12);
        // LPT on {3,3,2,2,2} with 2 slots: loads (3,2,2)=7 and (3,2)=5
        // — the classic instance where LPT (7) misses the optimum (6).
        assert!((lpt_makespan(&[3.0, 3.0, 2.0, 2.0, 2.0], 2) - 7.0).abs() < 1e-12);
    }

    #[test]
    fn makespan_never_below_bounds() {
        let costs = [4.0, 3.0, 2.5, 2.0, 1.0, 0.5];
        for slots in 1..6 {
            let mk = lpt_makespan(&costs, slots);
            let total: f64 = costs.iter().sum();
            let max = 4.0f64;
            assert!(mk >= total / slots as f64 - 1e-12);
            assert!(mk >= max);
            assert!(mk <= total);
        }
    }

    #[test]
    fn more_nodes_never_slower() {
        let model = JobCostModel::default();
        let map_costs: Vec<f64> = (0..96).map(|i| 1.0 + (i % 7) as f64 * 0.3).collect();
        let reduce_costs = vec![2.0; 8];
        let mut prev = f64::INFINITY;
        for nodes in 2..=12 {
            let t = ClusterSpec::m1_large(nodes)
                .simulate_job(&model, &map_costs, 1_000_000, &reduce_costs)
                .total();
            assert!(t <= prev + 1e-9, "nodes={nodes}: {t} > {prev}");
            prev = t;
        }
    }

    #[test]
    fn tiny_job_flat_in_nodes() {
        // One short map task: adding nodes cannot help (Figure 2's
        // 1000-read line).
        let model = JobCostModel::default();
        let t2 = ClusterSpec::m1_large(2)
            .simulate_job(&model, &[0.5], 100, &[0.1])
            .total();
        let t12 = ClusterSpec::m1_large(12)
            .simulate_job(&model, &[0.5], 100, &[0.1])
            .total();
        assert!((t2 - t12).abs() < 0.01, "t2={t2} t12={t12}");
    }

    #[test]
    fn overhead_floors_runtime() {
        let model = JobCostModel::default();
        let r = ClusterSpec::m1_large(12).simulate_job(&model, &[], 0, &[]);
        assert!((r.total() - model.job_overhead).abs() < 1e-12);
    }

    #[test]
    fn shuffle_scales_with_nodes() {
        let model = JobCostModel {
            shuffle_record_cost: 1e-3,
            ..Default::default()
        };
        let r4 = ClusterSpec::m1_large(4).simulate_job(&model, &[], 10_000, &[]);
        let r8 = ClusterSpec::m1_large(8).simulate_job(&model, &[], 10_000, &[]);
        assert!((r4.shuffle_time / r8.shuffle_time - 2.0).abs() < 1e-9);
    }

    #[test]
    fn locality_schedule_prefers_replicas() {
        let cluster = ClusterSpec::m1_large(4);
        // Every task's block lives on nodes 0 and 1 (replication 2).
        let tasks: Vec<LocalityTask> = (0..8)
            .map(|_| LocalityTask {
                cost: 4.0,
                preferred_nodes: vec![0, 1],
            })
            .collect();
        // Harsh remote penalty: the scheduler should still use remote
        // nodes once local slots are saturated, trading penalty for
        // parallelism — but most tasks stay local.
        let sched = cluster.schedule_with_locality(&tasks, 3.0);
        assert!(sched.local_fraction >= 0.5, "{sched:?}");
        // With zero penalty, locality is irrelevant and the makespan
        // equals plain LPT over all slots.
        let free = cluster.schedule_with_locality(&tasks, 1.0);
        assert!((free.makespan - 4.0).abs() < 1e-9, "{free:?}");
        assert!(sched.makespan >= free.makespan);
    }

    #[test]
    fn locality_well_replicated_input_runs_fully_local() {
        let cluster = ClusterSpec::m1_large(3);
        // Blocks replicated on every node — everything is local.
        let tasks: Vec<LocalityTask> = (0..6)
            .map(|i| LocalityTask {
                cost: 1.0 + i as f64 * 0.1,
                preferred_nodes: vec![0, 1, 2],
            })
            .collect();
        let sched = cluster.schedule_with_locality(&tasks, 10.0);
        assert_eq!(sched.local_fraction, 1.0);
    }

    #[test]
    fn locality_empty_tasks_and_empty_preference() {
        let cluster = ClusterSpec::m1_large(2);
        let empty = cluster.schedule_with_locality(&[], 2.0);
        assert_eq!(empty.makespan, 0.0);
        assert_eq!(empty.local_fraction, 1.0);
        let anywhere = cluster.schedule_with_locality(
            &[LocalityTask {
                cost: 2.0,
                preferred_nodes: vec![],
            }],
            5.0,
        );
        assert_eq!(anywhere.local_fraction, 1.0);
        assert!((anywhere.makespan - 2.0).abs() < 1e-12);
    }

    #[test]
    fn stragglers_hurt_and_speculation_rescues() {
        let base = JobCostModel::default();
        let straggling = JobCostModel {
            straggler_slowdown: 8.0,
            ..base
        };
        let speculative = JobCostModel {
            speculative_execution: true,
            ..straggling
        };
        let costs = vec![5.0; 16];
        let cluster = ClusterSpec::m1_large(4);
        let clean = cluster.simulate_job(&base, &costs, 0, &[]).total();
        let slow = cluster.simulate_job(&straggling, &costs, 0, &[]).total();
        let rescued = cluster.simulate_job(&speculative, &costs, 0, &[]).total();
        assert!(
            slow > clean * 1.5,
            "straggler must dominate: {slow} vs {clean}"
        );
        assert!(rescued < slow, "speculation must help: {rescued} vs {slow}");
        // Speculation bounds the straggler at ~2 nominal runs.
        assert!(rescued <= clean * 1.6, "rescued {rescued} vs clean {clean}");
    }

    #[test]
    fn no_slowdown_means_model_is_identity() {
        let base = JobCostModel::default();
        let with_spec = JobCostModel {
            speculative_execution: true,
            ..base
        };
        let costs = vec![2.0, 3.0, 1.0];
        let c = ClusterSpec::m1_large(2);
        assert_eq!(
            c.simulate_job(&base, &costs, 10, &[]).total(),
            c.simulate_job(&with_spec, &costs, 10, &[]).total()
        );
    }

    #[test]
    fn recovered_simulation_charges_extra_work() {
        let model = JobCostModel::default();
        let cluster = ClusterSpec::m1_large(2);
        let costs = vec![2.0; 8];
        let clean = cluster.simulate_job(&model, &costs, 0, &[]);
        let recovery = mrmc_chaos::RecoveryCounters {
            tasks_retried: 2,
            maps_reexecuted_node_loss: 4,
            ..mrmc_chaos::RecoveryCounters::new()
        };
        let recovered = cluster.simulate_job_recovered(&model, &costs, 0, &[], recovery);
        assert!(
            recovered.map_time > clean.map_time,
            "6 extra executions on 4 slots must lengthen the map phase"
        );
        assert_eq!(recovered.recovery, recovery);
        assert!(clean.recovery.is_clean());
        // Zero recovery must be the identity.
        let same = cluster.simulate_job_recovered(
            &model,
            &costs,
            0,
            &[],
            mrmc_chaos::RecoveryCounters::new(),
        );
        assert_eq!(same, clean);
    }

    #[test]
    fn byte_volume_prices_into_shuffle() {
        let model = JobCostModel {
            shuffle_record_cost: 0.0,
            shuffle_byte_cost: 1e-6,
            ..Default::default()
        };
        let cluster = ClusterSpec::m1_large(4);
        let clean = mrmc_chaos::RecoveryCounters::new();
        let narrow = cluster.simulate_job_bytes(&model, &[], 1_000, 8_000, &[], clean);
        let wide = cluster.simulate_job_bytes(&model, &[], 1_000, 80_000, &[], clean);
        assert!((wide.shuffle_time / narrow.shuffle_time - 10.0).abs() < 1e-9);
        // Zero bytes reduces to the record-only model.
        let record_only = cluster.simulate_job(&model, &[], 1_000, &[]);
        assert_eq!(record_only.shuffle_time, 0.0);
    }

    #[test]
    fn run_count_prices_into_shuffle() {
        let model = JobCostModel {
            shuffle_record_cost: 0.0,
            shuffle_byte_cost: 0.0,
            shuffle_run_cost: 1e-2,
            ..Default::default()
        };
        let cluster = ClusterSpec::m1_large(4);
        let clean = mrmc_chaos::RecoveryCounters::new();
        let vol = |runs| ShuffleVolume {
            records: 1_000,
            bytes: 8_000,
            runs,
        };
        let few = cluster.simulate_job_shuffle(&model, &[], vol(8), &[], clean);
        let many = cluster.simulate_job_shuffle(&model, &[], vol(80), &[], clean);
        assert!((many.shuffle_time / few.shuffle_time - 10.0).abs() < 1e-9);
        // Zero runs reduces exactly to the bytes-aware model.
        let zero = cluster.simulate_job_shuffle(&model, &[], vol(0), &[], clean);
        let bytes_only = cluster.simulate_job_bytes(&model, &[], 1_000, 8_000, &[], clean);
        assert_eq!(zero, bytes_only);
        // The run term shares aggregate bandwidth: more nodes, faster copy.
        let wide = ClusterSpec::m1_large(8).simulate_job_shuffle(&model, &[], vol(80), &[], clean);
        assert!((many.shuffle_time / wide.shuffle_time - 2.0).abs() < 1e-9);
    }

    #[test]
    fn slots_computed() {
        let c = ClusterSpec::m1_large(5);
        assert_eq!(c.map_slots(), 10);
        assert_eq!(c.reduce_slots(), 5);
    }
}
