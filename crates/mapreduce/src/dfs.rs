//! An in-memory distributed filesystem modelling HDFS.
//!
//! Files are stored once (cheaply shareable [`Bytes`]) and *described*
//! as a sequence of fixed-size blocks, each with a replica set placed
//! on simulated datanodes. The namenode role — path → block metadata,
//! replica tracking, split computation — is what the Map-Reduce engine
//! consumes: an [`InputSplit`] per block with locality hints.
//!
//! # Checksums and corruption
//!
//! Like HDFS, every block carries a checksum computed at write time,
//! and every replica records the checksum of the bytes it holds. A
//! read verifies the replica checksum against the recomputed content
//! checksum; a mismatch means bit-rot on that replica. The reader then
//! falls back to a surviving good replica, quarantines the corrupt
//! copies, and re-replicates the block back to full strength on live
//! nodes — only when *every* replica is corrupt does the read fail
//! with [`MrError::CorruptBlock`]. Repairs are tallied in the DFS's
//! [`RecoveryCounters`] (see [`Dfs::recovery`]).
//!
//! Corruption arrives two ways: directly via
//! [`Dfs::corrupt_replica`], or scheduled through a
//! [`FaultInjector`] ([`Dfs::with_injector`]) whose
//! `replica_corrupted` answers are applied once per block on first
//! read. Node deaths ([`Dfs::kill_node`]) and whole-block loss
//! ([`Dfs::drop_block`]) exercise the under-replication and data-loss
//! paths.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use mrmc_chaos::{FaultInjector, NoFaults, RecoveryCounters};
use parking_lot::RwLock;

use crate::error::MrError;

/// DFS tuning parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DfsConfig {
    /// Block size in bytes (HDFS default is 64–128 MiB; tests use small
    /// values so multi-block paths are exercised).
    pub block_size: usize,
    /// Replication factor (HDFS default 3).
    pub replication: usize,
    /// Number of simulated datanodes.
    pub nodes: usize,
}

impl Default for DfsConfig {
    fn default() -> Self {
        DfsConfig {
            block_size: 64 * 1024 * 1024,
            replication: 3,
            nodes: 8,
        }
    }
}

/// Globally unique block id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u64);

/// One replica of a block on one datanode.
#[derive(Debug, Clone, Copy)]
struct Replica {
    /// Datanode holding the copy.
    node: usize,
    /// Checksum of the bytes this copy holds; diverges from the
    /// block's content checksum when the copy rots.
    checksum: u64,
}

#[derive(Debug, Clone)]
struct BlockMeta {
    /// Byte range of this block within its file.
    range: std::ops::Range<usize>,
    /// Checksum of the block's content, computed at write time.
    checksum: u64,
    /// Replicas currently holding a copy.
    replicas: Vec<Replica>,
    /// Injector-scheduled corruption has been applied (it fires once
    /// per block, on first read, so repairs are not re-corrupted).
    faults_applied: bool,
}

#[derive(Debug, Clone)]
struct FileMeta {
    content: Bytes,
    blocks: Vec<BlockId>,
}

/// One unit of map input: a block-aligned byte range of a file, with
/// the nodes that hold it locally.
#[derive(Debug, Clone)]
pub struct InputSplit {
    /// Path of the file this split belongs to.
    pub path: String,
    /// Index of the split within the file.
    pub index: usize,
    /// The *whole* file contents (cheap refcounted handle); readers use
    /// `range` plus record-boundary rules, exactly like an HDFS reader
    /// that can read past its block for a record tail.
    pub file: Bytes,
    /// The byte range this split owns.
    pub range: std::ops::Range<usize>,
    /// Datanodes holding the underlying block (locality hints).
    pub preferred_nodes: Vec<usize>,
}

/// The in-memory DFS.
pub struct Dfs {
    config: DfsConfig,
    files: RwLock<HashMap<String, FileMeta>>,
    blocks: RwLock<HashMap<BlockId, BlockMeta>>,
    next_block: AtomicU64,
    /// Datanodes marked dead by fault injection.
    dead_nodes: RwLock<Vec<bool>>,
    /// Scheduled corruption source (NoFaults by default).
    injector: Arc<dyn FaultInjector>,
    corrupt_detected: AtomicU64,
    blocks_rereplicated: AtomicU64,
    /// Optional trace sink: checksum repairs are recorded as instant
    /// events under a dedicated "dfs" job lane.
    traced: RwLock<Option<(Arc<mrmc_obs::Tracer>, u32)>>,
}

impl Dfs {
    /// Create a DFS with the given configuration and no fault
    /// injection.
    pub fn new(config: DfsConfig) -> Result<Dfs, MrError> {
        Dfs::with_injector(config, Arc::new(NoFaults))
    }

    /// Create a DFS whose reads consult `injector` for scheduled
    /// replica corruption.
    pub fn with_injector(
        config: DfsConfig,
        injector: Arc<dyn FaultInjector>,
    ) -> Result<Dfs, MrError> {
        if config.nodes == 0 {
            return Err(MrError::BadConfig("DFS needs at least one node".into()));
        }
        if config.block_size == 0 {
            return Err(MrError::BadConfig("block size must be positive".into()));
        }
        if config.replication == 0 || config.replication > config.nodes {
            return Err(MrError::BadConfig(format!(
                "replication {} invalid for {} nodes",
                config.replication, config.nodes
            )));
        }
        Ok(Dfs {
            config,
            files: RwLock::new(HashMap::new()),
            blocks: RwLock::new(HashMap::new()),
            next_block: AtomicU64::new(0),
            dead_nodes: RwLock::new(vec![false; config.nodes]),
            injector,
            corrupt_detected: AtomicU64::new(0),
            blocks_rereplicated: AtomicU64::new(0),
            traced: RwLock::new(None),
        })
    }

    /// Attach a trace sink. Subsequent corruption detections and
    /// re-replications emit instant events into `tracer` under a
    /// "dfs" job. Reads are sequenced by their callers, so event
    /// order is as deterministic as the fault schedule.
    pub fn set_tracer(&self, tracer: Arc<mrmc_obs::Tracer>) {
        let job = tracer.begin_job("dfs");
        *self.traced.write() = Some((tracer, job));
    }

    fn trace_event(&self, name: &str, meta: Vec<(String, String)>) {
        if let Some((tracer, job)) = self.traced.read().as_ref() {
            let ts = tracer.now_ns();
            tracer.add_event(*job, name, ts, meta);
        }
    }

    /// The configuration this DFS was built with.
    pub fn config(&self) -> DfsConfig {
        self.config
    }

    /// What the DFS has done to survive corruption so far (only the
    /// `corrupt_replicas_detected` / `blocks_rereplicated` fields are
    /// meaningful here).
    pub fn recovery(&self) -> RecoveryCounters {
        RecoveryCounters {
            corrupt_replicas_detected: self.corrupt_detected.load(Ordering::Relaxed),
            blocks_rereplicated: self.blocks_rereplicated.load(Ordering::Relaxed),
            ..RecoveryCounters::new()
        }
    }

    /// Store a file. Errors if the path exists and `overwrite` is false.
    pub fn put(
        &self,
        path: &str,
        content: impl Into<Bytes>,
        overwrite: bool,
    ) -> Result<(), MrError> {
        let content: Bytes = content.into();
        let mut files = self.files.write();
        if files.contains_key(path) && !overwrite {
            return Err(MrError::FileExists(path.to_string()));
        }
        // Compute block layout and replica placement. Placement is the
        // classic round-robin-from-hash scheme: replicas of block i go
        // to consecutive live nodes starting at (hash(path) + i).
        let mut blocks = self.blocks.write();
        if let Some(old) = files.remove(path) {
            for b in old.blocks {
                blocks.remove(&b);
            }
        }
        let dead = self.dead_nodes.read();
        let live: Vec<usize> = (0..self.config.nodes).filter(|&n| !dead[n]).collect();
        if live.len() < self.config.replication {
            return Err(MrError::BadConfig(format!(
                "only {} live nodes, replication {} impossible",
                live.len(),
                self.config.replication
            )));
        }
        let base = path_hash(path) as usize;
        let n_blocks = content.len().div_ceil(self.config.block_size).max(1);
        let mut ids = Vec::with_capacity(n_blocks);
        for i in 0..n_blocks {
            let start = i * self.config.block_size;
            let end = ((i + 1) * self.config.block_size).min(content.len());
            let id = BlockId(self.next_block.fetch_add(1, Ordering::Relaxed));
            let checksum = content_checksum(&content[start..end]);
            let replicas = (0..self.config.replication)
                .map(|r| Replica {
                    node: live[(base + i + r) % live.len()],
                    checksum,
                })
                .collect();
            blocks.insert(
                id,
                BlockMeta {
                    range: start..end,
                    checksum,
                    replicas,
                    faults_applied: false,
                },
            );
            ids.push(id);
        }
        files.insert(
            path.to_string(),
            FileMeta {
                content,
                blocks: ids,
            },
        );
        Ok(())
    }

    /// Read a whole file, verifying every block's checksum.
    ///
    /// A replica whose checksum mismatches is quarantined; the read
    /// falls back to a surviving good replica and the block is
    /// re-replicated onto live nodes. Fails with
    /// [`MrError::MissingBlock`] when a block has lost all replicas,
    /// [`MrError::CorruptBlock`] when every replica is corrupt.
    pub fn read(&self, path: &str) -> Result<Bytes, MrError> {
        let (content, ids) = {
            let files = self.files.read();
            let meta = files
                .get(path)
                .ok_or_else(|| MrError::FileNotFound(path.to_string()))?;
            (meta.content.clone(), meta.blocks.clone())
        };
        let dead = self.dead_nodes.read();
        let live: Vec<usize> = (0..self.config.nodes).filter(|&n| !dead[n]).collect();
        let mut blocks = self.blocks.write();
        for (i, id) in ids.iter().enumerate() {
            let b = blocks.get_mut(id).ok_or(MrError::MissingBlock {
                path: path.to_string(),
                block_index: i,
            })?;
            if b.replicas.is_empty() {
                return Err(MrError::MissingBlock {
                    path: path.to_string(),
                    block_index: i,
                });
            }
            // Scheduled bit-rot lands once per block, on first read.
            if !b.faults_applied {
                b.faults_applied = true;
                for (ord, r) in b.replicas.iter_mut().enumerate() {
                    if self.injector.replica_corrupted(path, i, ord) {
                        r.checksum ^= CORRUPTION_MASK;
                    }
                }
            }
            // Verify against the recomputed content checksum, like an
            // HDFS client checksumming what the datanode streamed.
            let expected = content_checksum(&content[b.range.clone()]);
            let corrupt = b.replicas.iter().filter(|r| r.checksum != expected).count();
            if corrupt == 0 {
                continue;
            }
            self.corrupt_detected
                .fetch_add(corrupt as u64, Ordering::Relaxed);
            self.trace_event(
                "dfs.corrupt_replica_detected",
                vec![
                    ("path".to_string(), path.to_string()),
                    ("block".to_string(), i.to_string()),
                    ("replicas".to_string(), corrupt.to_string()),
                ],
            );
            if corrupt == b.replicas.len() {
                return Err(MrError::CorruptBlock {
                    path: path.to_string(),
                    block_index: i,
                });
            }
            // Fall back to a good replica (the content we already hold
            // stands in for its bytes), quarantine the corrupt copies,
            // and restore full replication on live nodes.
            b.replicas.retain(|r| r.checksum == expected);
            replicate_onto_live(b, expected, &live, self.config.replication);
            self.blocks_rereplicated.fetch_add(1, Ordering::Relaxed);
            self.trace_event(
                "dfs.rereplicate",
                vec![
                    ("path".to_string(), path.to_string()),
                    ("block".to_string(), i.to_string()),
                ],
            );
        }
        Ok(content)
    }

    /// Whether a path exists.
    pub fn exists(&self, path: &str) -> bool {
        self.files.read().contains_key(path)
    }

    /// Remove a file and its blocks.
    pub fn delete(&self, path: &str) -> Result<(), MrError> {
        let mut files = self.files.write();
        let meta = files
            .remove(path)
            .ok_or_else(|| MrError::FileNotFound(path.to_string()))?;
        let mut blocks = self.blocks.write();
        for b in meta.blocks {
            blocks.remove(&b);
        }
        Ok(())
    }

    /// List paths with a given prefix, sorted.
    pub fn list(&self, prefix: &str) -> Vec<String> {
        let mut v: Vec<String> = self
            .files
            .read()
            .keys()
            .filter(|p| p.starts_with(prefix))
            .cloned()
            .collect();
        v.sort();
        v
    }

    /// File length in bytes.
    pub fn len_of(&self, path: &str) -> Result<usize, MrError> {
        self.files
            .read()
            .get(path)
            .map(|m| m.content.len())
            .ok_or_else(|| MrError::FileNotFound(path.to_string()))
    }

    /// Compute the input splits (one per block) for a file.
    pub fn splits(&self, path: &str) -> Result<Vec<InputSplit>, MrError> {
        let files = self.files.read();
        let meta = files
            .get(path)
            .ok_or_else(|| MrError::FileNotFound(path.to_string()))?;
        let blocks = self.blocks.read();
        meta.blocks
            .iter()
            .enumerate()
            .map(|(i, id)| {
                let b = blocks.get(id).ok_or(MrError::MissingBlock {
                    path: path.to_string(),
                    block_index: i,
                })?;
                Ok(InputSplit {
                    path: path.to_string(),
                    index: i,
                    file: meta.content.clone(),
                    range: b.range.clone(),
                    preferred_nodes: b.replicas.iter().map(|r| r.node).collect(),
                })
            })
            .collect()
    }

    /// Fault injection: drop every replica of one block of a file.
    pub fn drop_block(&self, path: &str, block_index: usize) -> Result<(), MrError> {
        let files = self.files.read();
        let meta = files
            .get(path)
            .ok_or_else(|| MrError::FileNotFound(path.to_string()))?;
        let id = *meta.blocks.get(block_index).ok_or(MrError::MissingBlock {
            path: path.to_string(),
            block_index,
        })?;
        self.blocks
            .write()
            .get_mut(&id)
            .expect("meta consistent")
            .replicas
            .clear();
        Ok(())
    }

    /// Fault injection: flip the bits of replica `replica` (ordinal in
    /// the block's current replica list) so its checksum no longer
    /// matches. Detected — and repaired, if a good copy survives — on
    /// the next read.
    pub fn corrupt_replica(
        &self,
        path: &str,
        block_index: usize,
        replica: usize,
    ) -> Result<(), MrError> {
        let files = self.files.read();
        let meta = files
            .get(path)
            .ok_or_else(|| MrError::FileNotFound(path.to_string()))?;
        let id = *meta.blocks.get(block_index).ok_or(MrError::MissingBlock {
            path: path.to_string(),
            block_index,
        })?;
        let mut blocks = self.blocks.write();
        let b = blocks.get_mut(&id).expect("meta consistent");
        let r = b.replicas.get_mut(replica).ok_or(MrError::MissingBlock {
            path: path.to_string(),
            block_index,
        })?;
        r.checksum ^= CORRUPTION_MASK;
        Ok(())
    }

    /// Fault injection: kill a datanode — its replicas vanish. Files
    /// stay readable while any replica survives elsewhere.
    pub fn kill_node(&self, node: usize) {
        let mut dead = self.dead_nodes.write();
        if node < dead.len() {
            dead[node] = true;
        }
        drop(dead);
        let mut blocks = self.blocks.write();
        for b in blocks.values_mut() {
            b.replicas.retain(|r| r.node != node);
        }
    }

    /// Restore every under-replicated (but not lost) block to full
    /// replication on live nodes — the namenode's background
    /// re-replication sweep after a datanode death. Returns the number
    /// of blocks repaired.
    pub fn rereplicate_all(&self) -> usize {
        let dead = self.dead_nodes.read();
        let live: Vec<usize> = (0..self.config.nodes).filter(|&n| !dead[n]).collect();
        let mut blocks = self.blocks.write();
        let mut repaired = 0;
        for b in blocks.values_mut() {
            if b.replicas.is_empty() || b.replicas.len() >= self.config.replication {
                continue;
            }
            let before = b.replicas.len();
            let checksum = b.checksum;
            replicate_onto_live(b, checksum, &live, self.config.replication);
            if b.replicas.len() > before {
                repaired += 1;
            }
        }
        self.blocks_rereplicated
            .fetch_add(repaired as u64, Ordering::Relaxed);
        repaired
    }

    /// Number of blocks whose replica count is below the configured
    /// replication factor (but nonzero).
    pub fn under_replicated(&self) -> usize {
        self.blocks
            .read()
            .values()
            .filter(|b| !b.replicas.is_empty() && b.replicas.len() < self.config.replication)
            .count()
    }

    /// Number of blocks with no replicas at all (data loss).
    pub fn lost_blocks(&self) -> usize {
        self.blocks
            .read()
            .values()
            .filter(|b| b.replicas.is_empty())
            .count()
    }

    /// Total blocks stored.
    pub fn total_blocks(&self) -> usize {
        self.blocks.read().len()
    }
}

/// XOR mask standing in for arbitrary bit-rot of a replica's bytes.
const CORRUPTION_MASK: u64 = 0xDEAD_BEEF_0BAD_F00D;

/// Add good replicas on live nodes until the block reaches
/// `replication` copies (or live nodes run out).
fn replicate_onto_live(b: &mut BlockMeta, checksum: u64, live: &[usize], replication: usize) {
    for &n in live {
        if b.replicas.len() >= replication {
            break;
        }
        if b.replicas.iter().all(|r| r.node != n) {
            b.replicas.push(Replica { node: n, checksum });
        }
    }
}

/// FNV-1a over block content — the write-time checksum.
fn content_checksum(data: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in data {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// FNV-1a hash for placement decisions.
fn path_hash(path: &str) -> u64 {
    content_checksum(path.as_bytes())
}

/// Reads the records of a FASTA-like file that *start* inside a split.
///
/// Follows the Hadoop `TextInputFormat` convention adapted to FASTA:
/// a record starts at a `>` that is at offset 0 or preceded by `\n`;
/// a split owns every record whose start lies in `[range.start,
/// range.end)` and may read past `range.end` for the tail of its last
/// record. Every record of the file is therefore owned by exactly one
/// split.
pub struct FastaSplitReader;

impl FastaSplitReader {
    /// Extract the raw record byte-slices owned by `split`.
    pub fn records(split: &InputSplit) -> Vec<Bytes> {
        Self::records_in(&split.file, split.range.clone())
    }

    /// Core boundary logic, testable without a DFS.
    pub fn records_in(file: &Bytes, range: std::ops::Range<usize>) -> Vec<Bytes> {
        let data = file.as_ref();
        let mut out = Vec::new();
        if range.start >= data.len() {
            return out;
        }
        let is_record_start =
            |pos: usize| data[pos] == b'>' && (pos == 0 || data[pos - 1] == b'\n');
        // Find the first record start at or after range.start.
        let mut pos = range.start;
        while pos < data.len() && !is_record_start(pos) {
            pos += 1;
        }
        while pos < data.len() && pos < range.end {
            // Find the start of the next record.
            let mut next = pos + 1;
            while next < data.len() && !is_record_start(next) {
                next += 1;
            }
            out.push(file.slice(pos..next));
            pos = next;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrmc_chaos::FaultPlan;

    fn small_dfs(block: usize) -> Dfs {
        Dfs::new(DfsConfig {
            block_size: block,
            replication: 2,
            nodes: 4,
        })
        .unwrap()
    }

    #[test]
    fn put_read_round_trip() {
        let dfs = small_dfs(8);
        dfs.put("/a.fa", &b">r1\nACGT\n"[..], false).unwrap();
        assert_eq!(dfs.read("/a.fa").unwrap().as_ref(), b">r1\nACGT\n");
        assert!(dfs.exists("/a.fa"));
        assert!(dfs.recovery().is_clean());
    }

    #[test]
    fn overwrite_rules() {
        let dfs = small_dfs(8);
        dfs.put("/f", &b"one"[..], false).unwrap();
        assert!(matches!(
            dfs.put("/f", &b"two"[..], false),
            Err(MrError::FileExists(_))
        ));
        dfs.put("/f", &b"two"[..], true).unwrap();
        assert_eq!(dfs.read("/f").unwrap().as_ref(), b"two");
    }

    #[test]
    fn blocking_and_splits() {
        let dfs = small_dfs(4);
        dfs.put("/f", &b"0123456789"[..], false).unwrap(); // 3 blocks: 4+4+2
        let splits = dfs.splits("/f").unwrap();
        assert_eq!(splits.len(), 3);
        assert_eq!(splits[0].range, 0..4);
        assert_eq!(splits[2].range, 8..10);
        for s in &splits {
            assert_eq!(s.preferred_nodes.len(), 2);
        }
    }

    #[test]
    fn empty_file_has_one_block() {
        let dfs = small_dfs(4);
        dfs.put("/e", &b""[..], false).unwrap();
        assert_eq!(dfs.splits("/e").unwrap().len(), 1);
        assert_eq!(dfs.read("/e").unwrap().len(), 0);
    }

    #[test]
    fn delete_removes_blocks() {
        let dfs = small_dfs(2);
        dfs.put("/f", &b"abcdef"[..], false).unwrap();
        assert_eq!(dfs.total_blocks(), 3);
        dfs.delete("/f").unwrap();
        assert_eq!(dfs.total_blocks(), 0);
        assert!(matches!(dfs.read("/f"), Err(MrError::FileNotFound(_))));
    }

    #[test]
    fn list_with_prefix() {
        let dfs = small_dfs(8);
        dfs.put("/in/a", &b"x"[..], false).unwrap();
        dfs.put("/in/b", &b"y"[..], false).unwrap();
        dfs.put("/out/c", &b"z"[..], false).unwrap();
        assert_eq!(dfs.list("/in/"), vec!["/in/a".to_string(), "/in/b".into()]);
    }

    #[test]
    fn kill_node_degrades_then_loses_data() {
        let dfs = small_dfs(4);
        dfs.put("/f", &b"0123456789"[..], false).unwrap();
        // Kill nodes until replicas vanish.
        dfs.kill_node(0);
        // Replication 2 on 4 nodes: after one node dies some blocks are
        // under-replicated but all still readable.
        assert!(dfs.read("/f").is_ok());
        dfs.kill_node(1);
        dfs.kill_node(2);
        dfs.kill_node(3);
        assert!(dfs.lost_blocks() > 0);
        assert!(matches!(dfs.read("/f"), Err(MrError::MissingBlock { .. })));
    }

    #[test]
    fn drop_block_makes_file_unreadable() {
        let dfs = small_dfs(4);
        dfs.put("/f", &b"0123456789"[..], false).unwrap();
        dfs.drop_block("/f", 1).unwrap();
        match dfs.read("/f") {
            Err(MrError::MissingBlock { block_index, .. }) => assert_eq!(block_index, 1),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(dfs.lost_blocks(), 1);
    }

    #[test]
    fn bad_configs_rejected() {
        assert!(Dfs::new(DfsConfig {
            block_size: 0,
            replication: 1,
            nodes: 1
        })
        .is_err());
        assert!(Dfs::new(DfsConfig {
            block_size: 1,
            replication: 3,
            nodes: 2
        })
        .is_err());
        assert!(Dfs::new(DfsConfig {
            block_size: 1,
            replication: 1,
            nodes: 0
        })
        .is_err());
    }

    // ---- Checksums, corruption and repair ----

    #[test]
    fn corrupt_replica_repaired_from_survivor() {
        let dfs = small_dfs(4);
        dfs.put("/f", &b"0123456789"[..], false).unwrap();
        dfs.corrupt_replica("/f", 1, 0).unwrap();
        // The read detects the bad copy, serves from the survivor, and
        // restores full replication.
        assert_eq!(dfs.read("/f").unwrap().as_ref(), b"0123456789");
        let rec = dfs.recovery();
        assert_eq!(rec.corrupt_replicas_detected, 1);
        assert_eq!(rec.blocks_rereplicated, 1);
        assert_eq!(dfs.under_replicated(), 0);
        // The repair is durable: the next read is clean.
        assert!(dfs.read("/f").is_ok());
        assert_eq!(dfs.recovery().corrupt_replicas_detected, 1);
    }

    #[test]
    fn all_replicas_corrupt_is_fatal() {
        let dfs = small_dfs(4);
        dfs.put("/f", &b"0123456789"[..], false).unwrap();
        dfs.corrupt_replica("/f", 2, 0).unwrap();
        dfs.corrupt_replica("/f", 2, 1).unwrap();
        match dfs.read("/f") {
            Err(MrError::CorruptBlock { path, block_index }) => {
                assert_eq!(path, "/f");
                assert_eq!(block_index, 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn injector_scheduled_corruption_detected_once() {
        let inj = FaultPlan::new().corrupt_replica("/f", 0, 1).injector();
        let dfs = Dfs::with_injector(
            DfsConfig {
                block_size: 4,
                replication: 2,
                nodes: 4,
            },
            Arc::new(inj),
        )
        .unwrap();
        dfs.put("/f", &b"01234567"[..], false).unwrap();
        assert_eq!(dfs.read("/f").unwrap().as_ref(), b"01234567");
        let rec = dfs.recovery();
        assert_eq!(rec.corrupt_replicas_detected, 1);
        assert_eq!(rec.blocks_rereplicated, 1);
        // Scheduled rot fires once per block: repeated reads stay clean.
        assert!(dfs.read("/f").is_ok());
        assert_eq!(dfs.recovery().corrupt_replicas_detected, 1);
    }

    #[test]
    fn rereplicate_all_heals_node_death() {
        let dfs = small_dfs(4);
        dfs.put("/f", &b"0123456789abcdef"[..], false).unwrap();
        dfs.kill_node(0);
        let degraded = dfs.under_replicated();
        assert!(degraded > 0, "killing a node should degrade some block");
        let repaired = dfs.rereplicate_all();
        assert_eq!(repaired, degraded);
        assert_eq!(dfs.under_replicated(), 0);
        assert_eq!(dfs.recovery().blocks_rereplicated, repaired as u64);
        // Repaired replicas live only on live nodes.
        for s in dfs.splits("/f").unwrap() {
            assert!(!s.preferred_nodes.contains(&0));
        }
    }

    // ---- Degenerate paths (satellite: zero replicas, exact edges) ----

    #[test]
    fn zero_replica_read_reports_path_and_block() {
        let dfs = small_dfs(4);
        dfs.put("/reads.fa", &b"0123456789"[..], false).unwrap();
        dfs.drop_block("/reads.fa", 0).unwrap();
        match dfs.read("/reads.fa") {
            Err(MrError::MissingBlock { path, block_index }) => {
                assert_eq!(path, "/reads.fa");
                assert_eq!(block_index, 0);
                assert!(MrError::MissingBlock { path, block_index }
                    .to_string()
                    .contains("/reads.fa"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn record_starting_exactly_at_block_edge_owned_by_right_split() {
        // Block size 8 puts the second record's '>' exactly at byte 8,
        // the first byte of block 1.
        let body = b">a\nACGT\n>b\nTTTT\n";
        assert_eq!(body[8], b'>');
        let dfs = Dfs::new(DfsConfig {
            block_size: 8,
            replication: 2,
            nodes: 4,
        })
        .unwrap();
        dfs.put("/x.fa", &body[..], false).unwrap();
        let splits = dfs.splits("/x.fa").unwrap();
        assert_eq!(splits.len(), 2);
        let first = FastaSplitReader::records(&splits[0]);
        let second = FastaSplitReader::records(&splits[1]);
        assert_eq!(first.len(), 1, "split 0 owns only the record it starts");
        assert_eq!(
            second.len(),
            1,
            "split 1 owns the record starting at its edge"
        );
        assert_eq!(first[0].as_ref(), b">a\nACGT\n");
        assert_eq!(second[0].as_ref(), b">b\nTTTT\n");
    }

    #[test]
    fn split_past_end_of_file_owns_nothing() {
        let fasta = Bytes::from_static(b">a\nAC\n");
        assert!(FastaSplitReader::records_in(&fasta, 6..6).is_empty());
        assert!(FastaSplitReader::records_in(&fasta, 10..20).is_empty());
    }

    #[test]
    fn fasta_split_reader_each_record_owned_once() {
        let fasta = Bytes::from_static(b">r1\nACGT\n>r2\nTT\n>r3\nGGGG\n");
        // Split the file at arbitrary byte boundaries; union of records
        // across splits must be exactly the records of the file.
        for cut in 1..fasta.len() {
            let a = FastaSplitReader::records_in(&fasta, 0..cut);
            let b = FastaSplitReader::records_in(&fasta, cut..fasta.len());
            let total: Vec<Bytes> = a.into_iter().chain(b).collect();
            assert_eq!(total.len(), 3, "cut at {cut}");
            let joined: Vec<u8> = total.iter().flat_map(|b| b.as_ref().to_vec()).collect();
            assert_eq!(joined, fasta.as_ref(), "cut at {cut}");
        }
    }

    #[test]
    fn fasta_split_reader_via_dfs_splits() {
        let body = b">a\nAC\n>b\nGT\n>c\nTTTT\n>d\nAAA\n";
        let dfs = small_dfs(7);
        dfs.put("/x.fa", &body[..], false).unwrap();
        let splits = dfs.splits("/x.fa").unwrap();
        let mut n = 0;
        for s in &splits {
            n += FastaSplitReader::records(s).len();
        }
        assert_eq!(n, 4);
    }

    #[test]
    fn fasta_split_reader_greater_inside_sequence_not_a_boundary() {
        // '>' not preceded by newline must not start a record.
        let fasta = Bytes::from_static(b">r1 x>y\nACGT\n>r2\nTT\n");
        let recs = FastaSplitReader::records_in(&fasta, 0..fasta.len());
        assert_eq!(recs.len(), 2);
    }
}
