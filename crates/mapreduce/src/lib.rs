//! A from-scratch, in-process Map-Reduce runtime modelling the Hadoop
//! stack MrMC-MinH runs on.
//!
//! The paper deploys on Amazon Elastic MapReduce: FASTA files on HDFS,
//! Pig-compiled Map-Reduce jobs, 2–12 M1-Large nodes. We reproduce that
//! stack in one process:
//!
//! * [`dfs`] — an in-memory distributed filesystem: files split into
//!   fixed-size blocks, blocks placed on simulated nodes with a
//!   replication factor, record-boundary-aware input splits (the HDFS +
//!   `InputFormat` contract);
//! * [`job`] — the Mapper / Reducer / Combiner programming model with
//!   typed keys and values, per-task contexts and counters;
//! * [`engine`] — a multi-threaded executor: map tasks run on a worker
//!   pool sized to the simulated cluster, a hash-partitioned sort-based
//!   shuffle groups intermediate pairs, reduce tasks run per partition;
//!   per-task wall-clock timings are recorded;
//! * [`simcluster`] — the cluster *time* model: measured (or synthetic)
//!   task durations are list-scheduled onto N node slots with fixed
//!   per-job overheads, producing the cluster-level makespans that
//!   Figure 2 of the paper plots for 2–12 nodes. This is the documented
//!   substitution for the EMR testbed (see DESIGN.md §2);
//! * [`pipeline`] — chaining of jobs (Pig lowers a script to several).
//!
//! The executor really runs in parallel (worker threads, channels); the
//! simulated cluster adds the *accounting* layer that maps that work
//! onto a virtual 2–12 node Hadoop deployment.
//!
//! Fault injection and recovery live in the [`mrmc_chaos`] crate
//! (re-exported here as [`chaos`]): every entry point has a
//! `*_with_faults` variant taking a [`FaultInjector`], and the engine
//! and DFS implement the *real* recovery Hadoop would perform — task
//! retries, speculative backups, lost-map-output re-execution after a
//! node death, checksum fallback and re-replication — with the tally
//! surfaced as [`RecoveryCounters`] on job results.
//!
//! Structured tracing lives in the [`mrmc_obs`] crate (re-exported
//! here as [`obs`]): attach a [`Tracer`] via
//! [`JobConfig::traced`](job::JobConfig::traced) or
//! [`Pipeline::traced`](pipeline::Pipeline::traced) and the engine
//! records task attempt lifecycle, shuffle movement and every
//! recovery action as a deterministic span ledger; the simulated
//! cluster produces an equivalent simulated-time trace
//! ([`ClusterSpec::simulate_job_traced`]).

pub mod dfs;
pub mod engine;
pub mod error;
pub mod job;
pub mod pipeline;
pub mod simcluster;
pub mod wire;

pub use mrmc_chaos as chaos;
pub use mrmc_obs as obs;

pub use dfs::{Dfs, DfsConfig, FastaSplitReader, InputSplit};
pub use engine::{
    chunk_ranges, run_job, run_job_with_faults, run_map_only, run_map_only_with_faults,
};
pub use error::MrError;
pub use job::{
    Combiner, Counters, JobConfig, JobResult, Mapper, MrKey, MrValue, Reducer, ShuffleSized,
    TaskContext, TaskStats,
};
pub use mrmc_chaos::{
    ChaosProfile, FaultInjector, FaultPlan, NoFaults, Phase, PlanInjector, RecoveryCounters,
    TaskFault,
};
pub use mrmc_obs::{chrome_trace, critical_path, render_gantt, CriticalPath, TraceLedger, Tracer};
pub use pipeline::{Gather, Pipeline};
pub use simcluster::{
    lpt_makespan, lpt_schedule, ClusterSpec, JobCostModel, LocalitySchedule, LocalityTask,
    ScheduledTask, ShuffleVolume, SimJobReport,
};
pub use wire::{BandKeyCodec, IdRun, IdRunCursor, RunArena, WireError};
