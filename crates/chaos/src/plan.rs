//! Seeded, deterministic fault schedules.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

use rand::{Rng, SeedableRng};

use crate::injector::{FaultInjector, Phase, TaskFault};

/// One injectable fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultKind {
    /// Attempts `0..fail_attempts` of the task panic; later attempts
    /// succeed. `fail_attempts ≥ max_attempts` makes the task
    /// permanently broken.
    TaskPanic {
        /// Phase the task belongs to.
        phase: Phase,
        /// Task index within the phase.
        task: usize,
        /// How many leading attempts fail.
        fail_attempts: usize,
    },
    /// Attempt 0 of the task runs `millis` ms slower than nominal — a
    /// straggler. The engine launches a speculative backup.
    TaskSlowdown {
        /// Phase the task belongs to.
        phase: Phase,
        /// Task index within the phase.
        task: usize,
        /// Extra wall-clock of the straggling attempt.
        millis: u64,
    },
    /// Virtual node `node` dies at the map→reduce barrier: its map
    /// outputs are lost and it accepts no further work.
    NodeDeathAfterMap {
        /// Node that dies.
        node: usize,
    },
    /// Fetching partition `partition` of map task `map_task`'s output
    /// fails `failures` times before succeeding (or, past the
    /// engine's retry limit, forces map re-execution).
    ShuffleFetchFail {
        /// Source map task.
        map_task: usize,
        /// Requested partition.
        partition: usize,
        /// Consecutive fetch failures.
        failures: u32,
    },
    /// Replica `replica` (ordinal) of block `block_index` of the DFS
    /// file `path` is corrupted: its checksum no longer matches.
    CorruptReplica {
        /// DFS path.
        path: String,
        /// Block index within the file.
        block_index: usize,
        /// Replica ordinal within the block's replica list.
        replica: usize,
    },
}

/// A fault plus the job it applies to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fault {
    /// Job ordinal (0-based submission order) the fault targets;
    /// `None` applies to every job. DFS faults ignore this field.
    pub job: Option<usize>,
    /// What goes wrong.
    pub kind: FaultKind,
}

/// A deterministic schedule of faults.
///
/// Build one explicitly with the builder methods, or derive one from a
/// seed with [`FaultPlan::random`]. Identical plans (same builder
/// calls, or same seed and profile) inject identical faults and —
/// because the runtime's recovery is itself deterministic — produce
/// identical [`crate::RecoveryCounters`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// The scheduled faults, in insertion order.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Schedule a task panic. See [`FaultKind::TaskPanic`].
    pub fn task_panic(
        mut self,
        job: impl Into<Option<usize>>,
        phase: Phase,
        task: usize,
        fail_attempts: usize,
    ) -> FaultPlan {
        self.faults.push(Fault {
            job: job.into(),
            kind: FaultKind::TaskPanic {
                phase,
                task,
                fail_attempts,
            },
        });
        self
    }

    /// Schedule a straggling task. See [`FaultKind::TaskSlowdown`].
    pub fn task_slowdown(
        mut self,
        job: impl Into<Option<usize>>,
        phase: Phase,
        task: usize,
        millis: u64,
    ) -> FaultPlan {
        self.faults.push(Fault {
            job: job.into(),
            kind: FaultKind::TaskSlowdown {
                phase,
                task,
                millis,
            },
        });
        self
    }

    /// Schedule a node death at the map→reduce barrier.
    pub fn node_death_after_map(mut self, job: impl Into<Option<usize>>, node: usize) -> FaultPlan {
        self.faults.push(Fault {
            job: job.into(),
            kind: FaultKind::NodeDeathAfterMap { node },
        });
        self
    }

    /// Schedule shuffle fetch failures.
    pub fn shuffle_fetch_fail(
        mut self,
        job: impl Into<Option<usize>>,
        map_task: usize,
        partition: usize,
        failures: u32,
    ) -> FaultPlan {
        self.faults.push(Fault {
            job: job.into(),
            kind: FaultKind::ShuffleFetchFail {
                map_task,
                partition,
                failures,
            },
        });
        self
    }

    /// Schedule replica corruption in the DFS.
    pub fn corrupt_replica(
        mut self,
        path: impl Into<String>,
        block_index: usize,
        replica: usize,
    ) -> FaultPlan {
        self.faults.push(Fault {
            job: None,
            kind: FaultKind::CorruptReplica {
                path: path.into(),
                block_index,
                replica,
            },
        });
        self
    }

    /// Generate a plan from a seed and an intensity profile. The same
    /// `(seed, profile)` pair always yields the same plan.
    pub fn random(seed: u64, profile: &ChaosProfile) -> FaultPlan {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut plan = FaultPlan::new();
        let jobs = profile.jobs.max(1);
        let tasks = profile.map_tasks.max(1);
        for _ in 0..profile.task_panics {
            let job = rng.random_range(0..jobs);
            let task = rng.random_range(0..tasks);
            let fail = 1 + rng.random_range(0..profile.max_fail_attempts.max(1));
            plan = plan.task_panic(job, Phase::Map, task, fail);
        }
        for _ in 0..profile.slowdowns {
            let job = rng.random_range(0..jobs);
            let task = rng.random_range(0..tasks);
            let ms = 5 + rng.random_range(0..profile.max_slowdown_ms.max(1));
            plan = plan.task_slowdown(job, Phase::Map, task, ms);
        }
        for _ in 0..profile.node_deaths {
            let job = rng.random_range(0..jobs);
            let node = rng.random_range(0..profile.nodes.max(1));
            plan = plan.node_death_after_map(job, node);
        }
        for _ in 0..profile.fetch_failures {
            let job = rng.random_range(0..jobs);
            let map_task = rng.random_range(0..tasks);
            let partition = rng.random_range(0..profile.partitions.max(1));
            plan = plan.shuffle_fetch_fail(job, map_task, partition, 1 + rng.random_range(0..2u32));
        }
        plan
    }

    /// Wrap the plan in its deterministic injector.
    pub fn injector(self) -> PlanInjector {
        PlanInjector {
            plan: self,
            current_job: AtomicUsize::new(usize::MAX),
            jobs_begun: AtomicUsize::new(0),
        }
    }
}

/// Intensity profile for [`FaultPlan::random`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosProfile {
    /// Jobs in the pipeline under test.
    pub jobs: usize,
    /// Map tasks per job (targets are drawn below this).
    pub map_tasks: usize,
    /// Virtual nodes in the engine.
    pub nodes: usize,
    /// Shuffle partitions per job.
    pub partitions: usize,
    /// Number of task-panic faults to draw.
    pub task_panics: usize,
    /// Max leading attempts a drawn panic fault fails (≥ 1).
    pub max_fail_attempts: usize,
    /// Number of straggler faults to draw.
    pub slowdowns: usize,
    /// Max extra milliseconds of a drawn straggler.
    pub max_slowdown_ms: u64,
    /// Number of node deaths to draw.
    pub node_deaths: usize,
    /// Number of shuffle-fetch faults to draw.
    pub fetch_failures: usize,
}

impl Default for ChaosProfile {
    fn default() -> Self {
        ChaosProfile {
            jobs: 2,
            map_tasks: 4,
            nodes: 8,
            partitions: 4,
            task_panics: 1,
            max_fail_attempts: 2,
            slowdowns: 1,
            max_slowdown_ms: 40,
            node_deaths: 1,
            fetch_failures: 1,
        }
    }
}

/// A [`FaultInjector`] driven entirely by a [`FaultPlan`].
///
/// The only mutable state is the job ordinal, advanced by
/// [`FaultInjector::begin_job`]; every answer is a pure function of
/// `(plan, job ordinal, hook arguments)`.
#[derive(Debug)]
pub struct PlanInjector {
    plan: FaultPlan,
    current_job: AtomicUsize,
    jobs_begun: AtomicUsize,
}

impl PlanInjector {
    fn job(&self) -> usize {
        let j = self.current_job.load(Ordering::SeqCst);
        if j == usize::MAX {
            0
        } else {
            j
        }
    }

    fn applies(&self, fault_job: Option<usize>) -> bool {
        fault_job.map(|j| j == self.job()).unwrap_or(true)
    }

    /// The wrapped plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }
}

impl FaultInjector for PlanInjector {
    fn begin_job(&self, _name: &str) {
        let j = self.jobs_begun.fetch_add(1, Ordering::SeqCst);
        self.current_job.store(j, Ordering::SeqCst);
    }

    fn task_fault(&self, phase: Phase, task: usize, attempt: usize) -> Option<TaskFault> {
        for f in &self.plan.faults {
            if !self.applies(f.job) {
                continue;
            }
            match &f.kind {
                FaultKind::TaskPanic {
                    phase: p,
                    task: t,
                    fail_attempts,
                } if *p == phase && *t == task && attempt < *fail_attempts => {
                    return Some(TaskFault::Panic(format!(
                        "chaos: injected panic (job {}, {} task {}, attempt {})",
                        self.job(),
                        phase.name(),
                        task,
                        attempt
                    )));
                }
                FaultKind::TaskSlowdown {
                    phase: p,
                    task: t,
                    millis,
                } if *p == phase && *t == task && attempt == 0 => {
                    return Some(TaskFault::Slowdown(Duration::from_millis(*millis)));
                }
                _ => {}
            }
        }
        None
    }

    fn node_deaths_after_map(&self) -> Vec<usize> {
        let mut nodes: Vec<usize> = self
            .plan
            .faults
            .iter()
            .filter(|f| self.applies(f.job))
            .filter_map(|f| match f.kind {
                FaultKind::NodeDeathAfterMap { node } => Some(node),
                _ => None,
            })
            .collect();
        nodes.sort_unstable();
        nodes.dedup();
        nodes
    }

    fn shuffle_fetch_failures(&self, map_task: usize, partition: usize) -> u32 {
        self.plan
            .faults
            .iter()
            .filter(|f| self.applies(f.job))
            .map(|f| match f.kind {
                FaultKind::ShuffleFetchFail {
                    map_task: m,
                    partition: p,
                    failures,
                } if m == map_task && p == partition => failures,
                _ => 0,
            })
            .sum()
    }

    fn replica_corrupted(&self, path: &str, block_index: usize, replica: usize) -> bool {
        self.plan.faults.iter().any(|f| match &f.kind {
            FaultKind::CorruptReplica {
                path: fp,
                block_index: b,
                replica: r,
            } => fp == path && *b == block_index && *r == replica,
            _ => false,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates_in_order() {
        let plan = FaultPlan::new()
            .task_panic(0, Phase::Map, 3, 2)
            .task_slowdown(1, Phase::Reduce, 0, 25)
            .node_death_after_map(None, 5)
            .shuffle_fetch_fail(0, 2, 1, 3)
            .corrupt_replica("/f", 0, 1);
        assert_eq!(plan.faults().len(), 5);
        assert_eq!(plan.faults()[2].job, None);
    }

    #[test]
    fn injector_answers_follow_plan() {
        let inj = FaultPlan::new()
            .task_panic(0, Phase::Map, 1, 2)
            .task_slowdown(0, Phase::Map, 2, 30)
            .node_death_after_map(1, 4)
            .shuffle_fetch_fail(0, 0, 3, 2)
            .corrupt_replica("/x", 1, 0)
            .injector();
        inj.begin_job("first");
        // Panic on attempts 0 and 1 only.
        assert!(matches!(
            inj.task_fault(Phase::Map, 1, 0),
            Some(TaskFault::Panic(_))
        ));
        assert!(matches!(
            inj.task_fault(Phase::Map, 1, 1),
            Some(TaskFault::Panic(_))
        ));
        assert_eq!(inj.task_fault(Phase::Map, 1, 2), None);
        // Slowdown on attempt 0 only (the backup runs clean).
        assert_eq!(
            inj.task_fault(Phase::Map, 2, 0),
            Some(TaskFault::Slowdown(Duration::from_millis(30)))
        );
        assert_eq!(inj.task_fault(Phase::Map, 2, 1), None);
        // Wrong phase/task: nothing.
        assert_eq!(inj.task_fault(Phase::Reduce, 1, 0), None);
        // Node death targets job 1, not job 0.
        assert!(inj.node_deaths_after_map().is_empty());
        assert_eq!(inj.shuffle_fetch_failures(0, 3), 2);
        assert_eq!(inj.shuffle_fetch_failures(0, 2), 0);
        inj.begin_job("second");
        assert_eq!(inj.node_deaths_after_map(), vec![4]);
        assert_eq!(inj.shuffle_fetch_failures(0, 3), 0);
        // DFS faults are job-independent.
        assert!(inj.replica_corrupted("/x", 1, 0));
        assert!(!inj.replica_corrupted("/x", 1, 1));
        assert!(!inj.replica_corrupted("/y", 1, 0));
    }

    #[test]
    fn before_begin_job_faults_apply_to_job_zero() {
        let inj = FaultPlan::new().task_panic(0, Phase::Map, 0, 1).injector();
        assert!(inj.task_fault(Phase::Map, 0, 0).is_some());
    }

    #[test]
    fn random_plans_are_deterministic_per_seed() {
        let profile = ChaosProfile::default();
        let a = FaultPlan::random(7, &profile);
        let b = FaultPlan::random(7, &profile);
        let c = FaultPlan::random(8, &profile);
        assert_eq!(a, b);
        assert_ne!(a, c, "different seeds should differ for this profile");
        let drawn =
            profile.task_panics + profile.slowdowns + profile.node_deaths + profile.fetch_failures;
        assert_eq!(a.faults().len(), drawn);
    }

    #[test]
    fn random_plan_respects_bounds() {
        let profile = ChaosProfile {
            jobs: 3,
            map_tasks: 5,
            nodes: 4,
            partitions: 2,
            task_panics: 10,
            max_fail_attempts: 2,
            slowdowns: 10,
            max_slowdown_ms: 20,
            node_deaths: 10,
            fetch_failures: 10,
        };
        let plan = FaultPlan::random(42, &profile);
        for f in plan.faults() {
            if let Some(j) = f.job {
                assert!(j < 3);
            }
            match &f.kind {
                FaultKind::TaskPanic {
                    task,
                    fail_attempts,
                    ..
                } => {
                    assert!(*task < 5);
                    assert!((1..=2).contains(fail_attempts));
                }
                FaultKind::TaskSlowdown { task, millis, .. } => {
                    assert!(*task < 5);
                    assert!((5..25).contains(millis));
                }
                FaultKind::NodeDeathAfterMap { node } => assert!(*node < 4),
                FaultKind::ShuffleFetchFail {
                    map_task,
                    partition,
                    failures,
                } => {
                    assert!(*map_task < 5);
                    assert!(*partition < 2);
                    assert!((1..=2).contains(failures));
                }
                FaultKind::CorruptReplica { .. } => unreachable!("not drawn randomly"),
            }
        }
    }
}
