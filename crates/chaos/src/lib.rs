//! Deterministic fault injection for the simulated Hadoop substrate.
//!
//! The paper runs MrMC-MinH on Elastic MapReduce precisely because
//! Hadoop *survives* task and node failures on commodity spot
//! instances (§IV-C). This crate supplies the machinery to prove our
//! substrate earns the same property:
//!
//! * a [`FaultPlan`] — a seeded, fully deterministic schedule of
//!   injectable faults (task panics on given attempts, task
//!   slowdowns/stragglers, node death between the map and reduce
//!   barriers, DFS replica corruption, shuffle-partition fetch
//!   failures);
//! * the [`FaultInjector`] trait — the hook-point interface the
//!   Map-Reduce engine, the DFS and the pipeline consult while they
//!   run (`mrmc-mapreduce` depends on this crate, not the other way
//!   round, so the hooks cost one virtual call and nothing else);
//! * [`PlanInjector`] — the plan-driven injector whose answers depend
//!   only on the plan, never on wall-clock or thread timing, so an
//!   identical plan produces identical faults *and identical recovery
//!   counters* on every run;
//! * [`RecoveryCounters`] — the ledger of what the runtime actually
//!   did to survive (retries, re-executed maps after node loss,
//!   speculative wins, re-replicated blocks), surfaced through
//!   `JobResult`, `StageReport` and `SimJobReport`.
//!
//! The recovery mechanics themselves (blacklisting, lost-map-output
//! re-execution, first-finisher-wins speculation, checksum fallback
//! and re-replication) live in the layers that own the state; this
//! crate defines *what goes wrong and when*, and counts what it took
//! to recover.

pub mod injector;
pub mod plan;
pub mod recovery;

pub use injector::{FaultInjector, NoFaults, Phase, TaskFault};
pub use plan::{ChaosProfile, Fault, FaultKind, FaultPlan, PlanInjector};
pub use recovery::RecoveryCounters;
