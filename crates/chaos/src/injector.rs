//! The hook-point interface the runtime consults while executing.

use std::time::Duration;

/// Which phase of a job a task belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// The map phase.
    Map,
    /// The reduce phase.
    Reduce,
}

impl Phase {
    /// Stable lowercase name (matches `MrError::TaskFailed::phase`).
    pub fn name(self) -> &'static str {
        match self {
            Phase::Map => "map",
            Phase::Reduce => "reduce",
        }
    }
}

/// A fault injected into one task attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TaskFault {
    /// The attempt panics with this message before doing any work — a
    /// crashing JVM / lost TaskTracker heartbeat.
    Panic(String),
    /// The attempt runs to completion but takes this much *extra*
    /// wall-clock — a straggler on a contended spot instance. The
    /// engine responds by launching a speculative backup attempt.
    Slowdown(Duration),
}

/// Hook points the engine, DFS and pipeline consult at runtime.
///
/// Every method has a no-fault default, so implementing a custom
/// injector means overriding only the faults you care about. All
/// methods take `&self` and implementations must be `Send + Sync`:
/// worker threads consult the injector concurrently. Answers must
/// depend only on the arguments (plus per-job state advanced by
/// [`FaultInjector::begin_job`]), never on timing, or recovery
/// counters stop being reproducible.
pub trait FaultInjector: Send + Sync {
    /// Called by the engine once at the start of each job, in
    /// submission order. Plan-driven injectors use it to advance
    /// their job ordinal.
    fn begin_job(&self, _name: &str) {}

    /// Fault (if any) for attempt `attempt` of task `task` in `phase`
    /// of the current job. Attempt ids count every execution of the
    /// task: retries and speculative backups each get a fresh id.
    fn task_fault(&self, _phase: Phase, _task: usize, _attempt: usize) -> Option<TaskFault> {
        None
    }

    /// Virtual nodes that die at the barrier between the map and
    /// reduce phases of the current job — after every map task has
    /// run, before any map output is consumed. The engine blacklists
    /// them and re-executes the map tasks whose output they held.
    fn node_deaths_after_map(&self) -> Vec<usize> {
        Vec::new()
    }

    /// Number of times fetching partition `partition` of map task
    /// `map_task`'s output fails in the current job. The engine
    /// retries each failure; past its retry limit it declares the map
    /// output lost and re-executes the map task.
    fn shuffle_fetch_failures(&self, _map_task: usize, _partition: usize) -> u32 {
        0
    }

    /// Whether replica number `replica` (ordinal in the block's
    /// replica list) of block `block_index` of `path` is corrupted.
    /// The DFS detects this via checksum verification on read, falls
    /// back to a surviving replica and re-replicates.
    fn replica_corrupted(&self, _path: &str, _block_index: usize, _replica: usize) -> bool {
        false
    }
}

/// The injector that injects nothing — the default for every
/// non-chaos execution path.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoFaults;

impl FaultInjector for NoFaults {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_faults_injects_nothing() {
        let inj = NoFaults;
        inj.begin_job("job");
        assert_eq!(inj.task_fault(Phase::Map, 0, 0), None);
        assert!(inj.node_deaths_after_map().is_empty());
        assert_eq!(inj.shuffle_fetch_failures(0, 0), 0);
        assert!(!inj.replica_corrupted("/f", 0, 0));
    }

    #[test]
    fn phase_names() {
        assert_eq!(Phase::Map.name(), "map");
        assert_eq!(Phase::Reduce.name(), "reduce");
    }
}
