//! The recovery ledger: what the runtime did to survive its faults.

/// Counts of recovery actions taken while executing a job (or a whole
/// pipeline — counters merge additively across stages).
///
/// Every field is driven solely by the fault plan and the input, never
/// by thread timing, so an identical [`crate::FaultPlan`] yields an
/// identical ledger on every run — the property the chaos integration
/// tests assert.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RecoveryCounters {
    /// Failed task attempts that were followed by another attempt
    /// (Hadoop's `maxattempts` retry loop, map and reduce combined).
    pub tasks_retried: u64,
    /// Map tasks re-executed because the node holding their output
    /// died before the output was consumed (Hadoop's lost-map-output
    /// semantics).
    pub maps_reexecuted_node_loss: u64,
    /// Map tasks re-executed after repeated shuffle fetch failures
    /// marked their output lost.
    pub maps_reexecuted_fetch_fail: u64,
    /// Speculative backup attempts that finished ahead of their
    /// straggling original (first finisher wins).
    pub speculative_wins: u64,
    /// Shuffle partition fetches that failed and were retried.
    pub shuffle_fetch_retries: u64,
    /// DFS blocks restored to full replication after replica loss or
    /// corruption.
    pub blocks_rereplicated: u64,
    /// Replica reads rejected by checksum verification (each triggers
    /// fallback to a surviving replica).
    pub corrupt_replicas_detected: u64,
}

impl RecoveryCounters {
    /// An all-zero ledger.
    pub fn new() -> RecoveryCounters {
        RecoveryCounters::default()
    }

    /// Add another ledger into this one, field by field.
    pub fn merge(&mut self, other: &RecoveryCounters) {
        self.tasks_retried += other.tasks_retried;
        self.maps_reexecuted_node_loss += other.maps_reexecuted_node_loss;
        self.maps_reexecuted_fetch_fail += other.maps_reexecuted_fetch_fail;
        self.speculative_wins += other.speculative_wins;
        self.shuffle_fetch_retries += other.shuffle_fetch_retries;
        self.blocks_rereplicated += other.blocks_rereplicated;
        self.corrupt_replicas_detected += other.corrupt_replicas_detected;
    }

    /// Total recovery events of any kind.
    pub fn total_events(&self) -> u64 {
        self.tasks_retried
            + self.maps_reexecuted_node_loss
            + self.maps_reexecuted_fetch_fail
            + self.speculative_wins
            + self.shuffle_fetch_retries
            + self.blocks_rereplicated
            + self.corrupt_replicas_detected
    }

    /// True when no recovery was needed (a fault-free run).
    pub fn is_clean(&self) -> bool {
        self.total_events() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_is_fieldwise_addition() {
        let mut a = RecoveryCounters {
            tasks_retried: 1,
            speculative_wins: 2,
            ..Default::default()
        };
        let b = RecoveryCounters {
            tasks_retried: 3,
            blocks_rereplicated: 5,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.tasks_retried, 4);
        assert_eq!(a.speculative_wins, 2);
        assert_eq!(a.blocks_rereplicated, 5);
        assert_eq!(a.total_events(), 11);
        assert!(!a.is_clean());
        assert!(RecoveryCounters::new().is_clean());
    }
}
