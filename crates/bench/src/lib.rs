//! Shared harness code for the table/figure-regenerating binaries.
//!
//! Every binary accepts `--scale <f>` (dataset shrink factor, default
//! per binary) and `--seed <u64>`; `table3`/`table4`/`table5` also take
//! `--samples a,b,c` to restrict the row set, and the table binaries
//! accept `--json <path>` to additionally emit machine-readable rows
//! for downstream plotting. Run them with
//! `cargo run -p mrmc-bench --release --bin tableN`.

pub mod alloc;
pub mod json;

use std::time::Instant;

/// Every bench binary runs under the counting allocator so allocation
/// counts are reportable (and gate-able) next to wall-clock.
#[global_allocator]
static GLOBAL_ALLOC: alloc::CountingAllocator = alloc::CountingAllocator;

use json::Json;
use mrmc::{Mode, MrMcConfig, MrMcMinH};
use mrmc_baselines::{
    CdHitLike, Clusterer, DoturLike, EspritLike, McLsh, MetaClusterLike, MothurLike, UclustLike,
};
use mrmc_cluster::ClusterAssignment;
use mrmc_metrics::{weighted_accuracy, weighted_similarity, SimilarityOptions};
use mrmc_seqio::SeqRecord;
use mrmc_simulate::Dataset;

/// Minimal CLI: `--scale`, `--seed`, `--samples`, `--json`, `--trace`,
/// `--min-banded-ratio`.
#[derive(Debug, Clone)]
pub struct HarnessArgs {
    /// Dataset shrink factor in (0, 1].
    pub scale: f64,
    /// Generator seed.
    pub seed: u64,
    /// Optional row filter (sample ids).
    pub samples: Option<Vec<String>>,
    /// Optional path for a JSON copy of the rows.
    pub json: Option<String>,
    /// Optional path for a Chrome trace of the run (binaries that run
    /// the real engine attach a [`mrmc_mapreduce::Tracer`] when set).
    pub trace: Option<String>,
    /// Regression gate for `shuffle_bench`: exit non-zero if the
    /// banded pipeline's raw/compact shuffle-byte ratio drops below
    /// this floor.
    pub min_banded_ratio: Option<f64>,
    /// Regression gate for `pig_bench`: exit non-zero if the columnar
    /// engine's wall-clock speedup over the row engine drops below
    /// this floor.
    pub min_speedup: Option<f64>,
    /// Regression gate for `shuffle_bench`: exit non-zero if the
    /// streaming merge path performs more than this many allocations
    /// per input run (fractional; the legacy decode-merge costs ≥ 1).
    pub max_merge_allocs_per_run: Option<f64>,
    /// Regression gate for the metrics plane (`server_report`,
    /// `shuffle_bench`): exit non-zero if keeping the metrics registry
    /// fed costs more than this percentage of the instrumented work.
    pub max_metrics_overhead_pct: Option<f64>,
}

impl HarnessArgs {
    /// Parse `std::env::args`, with a binary-specific default scale.
    pub fn parse(default_scale: f64) -> HarnessArgs {
        let mut args = HarnessArgs {
            scale: default_scale,
            seed: 42,
            samples: None,
            json: None,
            trace: None,
            min_banded_ratio: None,
            min_speedup: None,
            max_merge_allocs_per_run: None,
            max_metrics_overhead_pct: None,
        };
        let argv: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < argv.len() {
            match argv[i].as_str() {
                "--scale" => {
                    args.scale = argv
                        .get(i + 1)
                        .and_then(|s| s.parse().ok())
                        .expect("--scale needs a number in (0,1]");
                    i += 2;
                }
                "--seed" => {
                    args.seed = argv
                        .get(i + 1)
                        .and_then(|s| s.parse().ok())
                        .expect("--seed needs an integer");
                    i += 2;
                }
                "--samples" => {
                    args.samples = Some(
                        argv.get(i + 1)
                            .expect("--samples needs a comma-separated list")
                            .split(',')
                            .map(str::to_string)
                            .collect(),
                    );
                    i += 2;
                }
                "--json" => {
                    args.json = Some(argv.get(i + 1).expect("--json needs a file path").clone());
                    i += 2;
                }
                "--trace" => {
                    args.trace = Some(argv.get(i + 1).expect("--trace needs a file path").clone());
                    i += 2;
                }
                "--min-banded-ratio" => {
                    args.min_banded_ratio = Some(
                        argv.get(i + 1)
                            .and_then(|s| s.parse().ok())
                            .expect("--min-banded-ratio needs a number"),
                    );
                    i += 2;
                }
                "--min-speedup" => {
                    args.min_speedup = Some(
                        argv.get(i + 1)
                            .and_then(|s| s.parse().ok())
                            .expect("--min-speedup needs a number"),
                    );
                    i += 2;
                }
                "--max-merge-allocs-per-run" => {
                    args.max_merge_allocs_per_run = Some(
                        argv.get(i + 1)
                            .and_then(|s| s.parse().ok())
                            .expect("--max-merge-allocs-per-run needs a number"),
                    );
                    i += 2;
                }
                "--max-metrics-overhead-pct" => {
                    args.max_metrics_overhead_pct = Some(
                        argv.get(i + 1)
                            .and_then(|s| s.parse().ok())
                            .expect("--max-metrics-overhead-pct needs a number"),
                    );
                    i += 2;
                }
                other => panic!(
                    "unknown argument {other:?} \
                     (supported: --scale, --seed, --samples, --json, --trace, \
                     --min-banded-ratio, --min-speedup, --max-merge-allocs-per-run, \
                     --max-metrics-overhead-pct)"
                ),
            }
        }
        args
    }

    /// Whether a sample id passes the `--samples` filter.
    pub fn wants(&self, sid: &str) -> bool {
        self.samples
            .as_ref()
            .map(|list| list.iter().any(|s| s == sid))
            .unwrap_or(true)
    }
}

/// One measured clustering outcome.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// Clusters (with the size floor applied where the caller wants).
    pub assignment: ClusterAssignment,
    /// Wall-clock seconds.
    pub seconds: f64,
}

/// Run a clusterer with timing.
pub fn timed<F: FnOnce() -> ClusterAssignment>(f: F) -> Outcome {
    let t = Instant::now();
    let assignment = f();
    Outcome {
        assignment,
        seconds: t.elapsed().as_secs_f64(),
    }
}

/// Format W.Acc for a dataset (blank when unlabeled, like the paper's
/// "-" for R1).
pub fn fmt_acc(assignment: &ClusterAssignment, dataset: &Dataset, min_size: usize) -> String {
    dataset
        .labels
        .as_ref()
        .and_then(|truth| weighted_accuracy(assignment, truth, min_size))
        .map(|a| format!("{a:.2}"))
        .unwrap_or_else(|| "-".to_string())
}

/// Format W.Sim with pair sampling.
pub fn fmt_sim(assignment: &ClusterAssignment, reads: &[SeqRecord], max_pairs: usize) -> String {
    weighted_similarity(
        assignment,
        reads,
        &SimilarityOptions {
            max_pairs_per_cluster: max_pairs,
            ..Default::default()
        },
    )
    .map(|s| format!("{s:.2}"))
    .unwrap_or_else(|| "-".to_string())
}

/// Format seconds the way the paper mixes units ("4m 25s" / "8.4").
pub fn fmt_time(seconds: f64) -> String {
    if seconds >= 60.0 {
        format!(
            "{}m {:02}s",
            (seconds / 60.0) as u64,
            (seconds % 60.0) as u64
        )
    } else {
        format!("{seconds:.2}s")
    }
}

/// The paper's cluster-size reporting floor, scaled with the dataset:
/// the paper uses 50 at full size; a scaled run keeps the same
/// *fraction* so cluster counts stay comparable.
pub fn size_floor(scale: f64) -> usize {
    ((50.0 * scale).round() as usize).max(2)
}

/// MrMC-MinH runners with the Table III (whole-metagenome) settings.
pub fn mrmc_whole(mode: Mode, theta: f64) -> MrMcMinH {
    MrMcMinH::new(MrMcConfig {
        theta,
        mode,
        ..MrMcConfig::whole_metagenome()
    })
}

/// MrMC-MinH runners with the Table V (16S) settings.
pub fn mrmc_16s(mode: Mode, theta: f64) -> MrMcMinH {
    MrMcMinH::new(MrMcConfig {
        theta,
        mode,
        ..MrMcConfig::sixteen_s()
    })
}

/// A named clustering method closure (Table IV/V row).
pub type NamedMethod = (&'static str, Box<dyn Fn(&[SeqRecord]) -> ClusterAssignment>);

/// The eight Table IV / Table V methods, in the paper's row order.
pub fn sixteen_s_methods(theta: f64) -> Vec<NamedMethod> {
    vec![
        (
            "MrMC-MinH^h",
            Box::new(move |reads: &[SeqRecord]| {
                mrmc_16s(Mode::Hierarchical, theta)
                    .run(reads)
                    .expect("run")
                    .assignment
            }) as Box<dyn Fn(&[SeqRecord]) -> ClusterAssignment>,
        ),
        (
            "MrMC-MinH^g",
            Box::new(move |reads| {
                mrmc_16s(Mode::Greedy, theta)
                    .run(reads)
                    .expect("run")
                    .assignment
            }),
        ),
        (
            "MC-LSH",
            Box::new(move |reads| {
                McLsh {
                    theta,
                    ..Default::default()
                }
                .cluster(reads)
            }),
        ),
        (
            "UCLUST",
            Box::new(move |reads| {
                UclustLike {
                    theta,
                    ..Default::default()
                }
                .cluster(reads)
            }),
        ),
        (
            "CD-HIT",
            Box::new(move |reads| {
                CdHitLike {
                    theta,
                    ..Default::default()
                }
                .cluster(reads)
            }),
        ),
        (
            "ESPRIT",
            Box::new(move |reads| {
                EspritLike {
                    theta,
                    ..Default::default()
                }
                .cluster(reads)
            }),
        ),
        (
            "DOTUR",
            Box::new(move |reads| DoturLike { theta }.cluster(reads)),
        ),
        (
            "Mothur",
            Box::new(move |reads| MothurLike { theta }.cluster(reads)),
        ),
    ]
}

/// The MetaCluster baseline with defaults.
pub fn metacluster() -> MetaClusterLike {
    MetaClusterLike::default()
}

/// One machine-readable result row (serialized by `--json`).
#[derive(Debug, Clone)]
pub struct JsonRow {
    /// Sample id ("S1", "53R", …).
    pub sample: String,
    /// Method name.
    pub method: String,
    /// Extra dimension (error level, θ, node count) when applicable;
    /// omitted from the JSON when `None`.
    pub variant: Option<String>,
    /// Cluster count after the reporting floor.
    pub clusters: usize,
    /// Weighted accuracy in %, when ground truth exists (omitted when
    /// `None`).
    pub w_acc: Option<f64>,
    /// Weighted similarity in %, when computable (omitted when `None`).
    pub w_sim: Option<f64>,
    /// Wall-clock seconds.
    pub seconds: f64,
}

impl JsonRow {
    /// The row as a [`Json`] object; `None` optionals are omitted, not
    /// null.
    pub fn to_json(&self) -> Json {
        let mut fields: Vec<(String, Json)> = vec![
            ("sample".into(), self.sample.as_str().into()),
            ("method".into(), self.method.as_str().into()),
        ];
        if let Some(variant) = &self.variant {
            fields.push(("variant".into(), variant.as_str().into()));
        }
        fields.push(("clusters".into(), self.clusters.into()));
        if let Some(acc) = self.w_acc {
            fields.push(("w_acc".into(), acc.into()));
        }
        if let Some(sim) = self.w_sim {
            fields.push(("w_sim".into(), sim.into()));
        }
        fields.push(("seconds".into(), self.seconds.into()));
        Json::Obj(fields)
    }
}

/// Render rows as a pretty JSON array (matching what
/// `serde_json::to_string_pretty` produced before the offline
/// dependency stand-ins replaced serde).
pub fn rows_to_json(rows: &[JsonRow]) -> String {
    Json::arr(rows.iter().map(JsonRow::to_json)).pretty()
}

/// Write rows as pretty JSON when `--json` was given.
pub fn maybe_write_json(args: &HarnessArgs, rows: &[JsonRow]) {
    if let Some(path) = &args.json {
        let body = rows_to_json(rows);
        std::fs::write(path, body).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        eprintln!("wrote {} rows to {path}", rows.len());
    }
}

/// Simple fixed-width table printer.
pub fn print_row(cells: &[String], widths: &[usize]) {
    let line: Vec<String> = cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}", w = w))
        .collect();
    println!("{}", line.join("  "));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_time_units() {
        assert_eq!(fmt_time(8.4), "8.40s");
        assert_eq!(fmt_time(265.0), "4m 25s");
        assert_eq!(fmt_time(60.0), "1m 00s");
    }

    #[test]
    fn size_floor_scales() {
        assert_eq!(size_floor(1.0), 50);
        assert_eq!(size_floor(0.1), 5);
        assert_eq!(size_floor(0.001), 2);
    }

    #[test]
    fn methods_list_matches_paper_rows() {
        let m = sixteen_s_methods(0.95);
        let names: Vec<&str> = m.iter().map(|(n, _)| *n).collect();
        assert_eq!(
            names,
            vec![
                "MrMC-MinH^h",
                "MrMC-MinH^g",
                "MC-LSH",
                "UCLUST",
                "CD-HIT",
                "ESPRIT",
                "DOTUR",
                "Mothur"
            ]
        );
    }

    #[test]
    fn json_rows_render_valid_pretty_json() {
        let rows = vec![
            JsonRow {
                sample: "S1".into(),
                method: "MrMC-MinH^h".into(),
                variant: Some("θ=0.95".into()),
                clusters: 12,
                w_acc: Some(98.5),
                w_sim: None,
                seconds: 1.25,
            },
            JsonRow {
                sample: "quote\"back\\slash".into(),
                method: "m".into(),
                variant: None,
                clusters: 0,
                w_acc: None,
                w_sim: Some(f64::NAN),
                seconds: 0.5,
            },
        ];
        let body = rows_to_json(&rows);
        assert!(body.starts_with("[\n"));
        assert!(body.ends_with("\n]"));
        assert!(body.contains("\"variant\": \"θ=0.95\""));
        assert!(body.contains("\"w_acc\": 98.5"));
        assert!(body.contains("\"w_sim\": null"));
        assert!(body.contains("quote\\\"back\\\\slash"));
        // Omitted optionals truly absent, not null.
        assert_eq!(body.matches("\"variant\"").count(), 1);
        assert_eq!(rows_to_json(&[]), "[]");
    }

    #[test]
    fn harness_wants_filters() {
        let args = HarnessArgs {
            scale: 0.1,
            seed: 0,
            samples: Some(vec!["S1".into(), "S3".into()]),
            json: None,
            trace: None,
            min_banded_ratio: None,
            min_speedup: None,
            max_merge_allocs_per_run: None,
            max_metrics_overhead_pct: None,
        };
        assert!(args.wants("S1"));
        assert!(!args.wants("S2"));
        let all = HarnessArgs {
            samples: None,
            ..args
        };
        assert!(all.wants("anything"));
    }
}
