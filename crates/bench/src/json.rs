//! Re-export of the shared JSON builder, which moved to `mrmc-obs`
//! so the metrics plane (which sits below this crate in the workspace
//! graph) can render snapshots with the same document type the
//! harness binaries emit. Existing `mrmc_bench::json::` call sites
//! keep compiling unchanged.

pub use mrmc_obs::json::*;
