//! Global counting allocator for the bench binaries.
//!
//! Wraps the system allocator and counts every `alloc`/`alloc_zeroed`/
//! `realloc` with relaxed atomics, so benches can report *allocation
//! counts* alongside wall-clock — the metric the allocation-free wire
//! plane (DESIGN.md §3a.1) is gated on in CI. Counting is always on in
//! `mrmc-bench` binaries (the two relaxed fetch-adds are noise next to
//! the allocator call itself) and deliberately not installed anywhere
//! else in the workspace.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static ALLOCATED_BYTES: AtomicU64 = AtomicU64::new(0);

/// System allocator with relaxed-atomic allocation counting.
pub struct CountingAllocator;

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        ALLOCATED_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        ALLOCATED_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A grow is a fresh allocation from the counting perspective:
        // the bytes move even when the block extends in place.
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        ALLOCATED_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

/// Total allocations since process start.
pub fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Total bytes requested since process start (grows included, frees
/// not subtracted).
pub fn allocated_bytes() -> u64 {
    ALLOCATED_BYTES.load(Ordering::Relaxed)
}

/// Run `f`, returning its result plus the allocations it performed.
/// Single-threaded sections only — concurrent allocations elsewhere
/// would be charged to `f`.
pub fn count_allocs<R>(f: impl FnOnce() -> R) -> (R, u64) {
    let before = allocations();
    let out = f();
    (out, allocations() - before)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_move_when_allocating() {
        let (v, n) = count_allocs(|| vec![0u8; 4096]);
        assert_eq!(v.len(), 4096);
        assert!(n >= 1, "a fresh Vec must register at least one alloc");
        assert!(allocated_bytes() >= 4096);
    }
}
