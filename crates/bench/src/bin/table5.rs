//! Regenerates **Table V** — clustering results on the eight 16S
//! environmental samples, all eight methods (k = 15, 50 hashes,
//! θ = 0.95), reporting cluster counts, W.Sim and times.
//!
//! ```sh
//! cargo run -p mrmc-bench --release --bin table5 [-- --scale 0.02 --samples 53R,55R]
//! ```

use mrmc_bench::{
    fmt_sim, fmt_time, maybe_write_json, print_row, sixteen_s_methods, timed, HarnessArgs, JsonRow,
};
use mrmc_simulate::environmental_samples;

fn main() {
    let args = HarnessArgs::parse(0.02);
    let theta = 0.95;
    println!(
        "Table V — 16S environmental samples (scale {}, θ = {theta}, k = 15, 50 hashes)\n",
        args.scale
    );
    let widths = [14usize, 7, 9, 8, 10];
    print_row(
        &["Method", "SID", "#Cluster", "W.Sim", "Time"].map(str::to_string),
        &widths,
    );
    let mut json_rows: Vec<JsonRow> = Vec::new();

    for cfg in environmental_samples() {
        if !args.wants(cfg.sid) {
            continue;
        }
        let dataset = cfg.generate(args.scale, args.seed);
        for (name, method) in sixteen_s_methods(theta) {
            let outcome = timed(|| method(&dataset.reads));
            let sim = fmt_sim(&outcome.assignment, &dataset.reads, 40);
            print_row(
                &[
                    name.to_string(),
                    cfg.sid.to_string(),
                    outcome.assignment.num_clusters_at_least(2).to_string(),
                    sim.clone(),
                    fmt_time(outcome.seconds),
                ],
                &widths,
            );
            json_rows.push(JsonRow {
                sample: cfg.sid.to_string(),
                method: name.to_string(),
                variant: None,
                clusters: outcome.assignment.num_clusters_at_least(2),
                w_acc: None,
                w_sim: sim.parse().ok(),
                seconds: outcome.seconds,
            });
        }
        println!();
    }
    maybe_write_json(&args, &json_rows);
    println!(
        "Expected shape: MrMC-MinH^h matches DOTUR/Mothur cluster counts and W.Sim at a\n\
         100-200x (and quadratically growing) time discount; greedy variants are fastest.\n\
         (The paper's CD-HIT under-clustering does not transfer to fixed-window amplicons\n\
         — see EXPERIMENTS.md.)"
    );
}
