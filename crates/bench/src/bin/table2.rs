//! Regenerates **Table II** — the whole-metagenome sample catalogue —
//! and checks the generated communities' GC contents against the
//! bracketed values of the paper.
//!
//! ```sh
//! cargo run -p mrmc-bench --release --bin table2 [-- --scale 0.01]
//! ```

use mrmc_bench::HarnessArgs;
use mrmc_seqio::stats::gc_content;
use mrmc_simulate::{whole_metagenome_samples, ErrorModel};

fn main() {
    let args = HarnessArgs::parse(0.01);
    println!(
        "Table II — WHOLE METAGENOMIC SEQUENCE READS (generated at scale {})\n",
        args.scale
    );
    println!(
        "{:<5} {:<55} {:>10} {:>9} {:>8} {:>8}",
        "SID", "Species [target GC -> generated GC]", "Ratio", "TaxDiff", "#Clust", "#Reads"
    );
    for cfg in whole_metagenome_samples() {
        if !args.wants(cfg.sid) {
            continue;
        }
        let dataset = cfg.generate(args.scale, ErrorModel::with_total_rate(0.002), args.seed);
        // Mean GC per species over its generated reads (checks the
        // generator hits the Table II brackets).
        let mut gc_line = Vec::new();
        if let Some(labels) = &dataset.labels {
            for (idx, (name, target_gc, _)) in cfg.species.iter().enumerate() {
                let seqs: Vec<&mrmc_seqio::SeqRecord> = dataset
                    .reads
                    .iter()
                    .zip(labels)
                    .filter(|(_, &l)| l == idx)
                    .map(|(r, _)| r)
                    .collect();
                let gc =
                    seqs.iter().map(|r| gc_content(&r.seq)).sum::<f64>() / seqs.len().max(1) as f64;
                let short: String = name
                    .split_whitespace()
                    .take(2)
                    .collect::<Vec<_>>()
                    .join(" ");
                gc_line.push(format!("{short} [{target_gc:.2}->{gc:.2}]"));
            }
        } else {
            gc_line.push(format!(
                "{} (unlabeled real-style sample)",
                cfg.species.len()
            ));
        }
        let ratio = cfg
            .species
            .iter()
            .map(|s| format!("{}", s.2 as u64))
            .collect::<Vec<_>>()
            .join(":");
        println!(
            "{:<5} {:<55} {:>10} {:>9} {:>8} {:>8}",
            cfg.sid,
            gc_line.join(", "),
            ratio,
            format!("{:?}", cfg.rank),
            cfg.expected_clusters(),
            cfg.reads,
        );
    }
    println!("\n#Reads = paper's full-size count; each generated sample shrinks by --scale.");
}
