//! `pig_bench` — row vs columnar Pig engine on Algorithm 3.
//!
//! Runs the paper's Algorithm 3 script (FASTA load → sequence
//! normalisation → k-mer translation → GROUP BY read → minwise
//! sketching → pairwise similarity → hierarchical + greedy
//! clustering) end to end on a synthesized metagenome under both
//! execution engines of the Pig layer:
//!
//! * **row** — the boxed row-at-a-time plane: every tuple a
//!   `Vec<Value>`, every UDF call one boxed invocation, GROUP
//!   shuffling whole cloned rows;
//! * **columnar** — the batched plane: typed `ColumnBatch` storage,
//!   batch-at-a-time UDF kernels for the hot Algorithm-3 operators,
//!   and a GROUP stage that shuffles `u32` row indices (priced at the
//!   rows' wire size) and gathers group bags in one pass.
//!
//! The engines are interleaved best-of-N, STORE outputs are asserted
//! byte-identical every iteration, and the per-stage shuffle
//! accounting is asserted equal (the index shuffle prices itself at
//! the boxed rows' wire size by construction). `--min-speedup <s>`
//! turns the wall-clock ratio into a CI gate: the process exits
//! non-zero if the columnar engine drops below `s`× the row engine.
//! `--trace <path>` re-runs the columnar engine with a tracer and
//! writes a Chrome trace plus a per-operator critical-path report.
//!
//! ```sh
//! cargo run -p mrmc-bench --release --bin pig_bench -- \
//!     --json results/BENCH_pig.json --min-speedup 2.0
//! ```

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use mrmc::{algorithm3_script, register_mrmc_udfs};
use mrmc_bench::json::{write_file, Json};
use mrmc_bench::HarnessArgs;
use mrmc_mapreduce::dfs::{Dfs, DfsConfig};
use mrmc_mapreduce::{chrome_trace, critical_path, Tracer};
use mrmc_pig::{parse_script, PigEngine, PigRunner, Script, UdfRegistry};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const ITERS: usize = 3;
const KMER: i64 = 6;
const NUMHASH: i64 = 24;
const DIV: i64 = 1_048_583;
const INPUT: &str = "/in/reads.fa";
const OUTPUTS: [&str; 2] = ["/out/hier", "/out/greedy"];

fn registry() -> UdfRegistry {
    let mut r = UdfRegistry::with_builtins();
    register_mrmc_udfs(&mut r);
    r
}

/// Synthesize a FASTA corpus: `n` reads of 800–1200 bp drawn from a
/// handful of seeded templates with point mutations, so the pairwise
/// stage sees real cluster structure instead of uniform noise.
fn synth_fasta(n: usize, rng: &mut StdRng) -> Vec<u8> {
    const BASES: &[u8; 4] = b"ACGT";
    let templates: Vec<Vec<u8>> = (0..8)
        .map(|_| {
            let len = rng.random_range(800..1200);
            (0..len)
                .map(|_| BASES[rng.random_range(0..4usize)])
                .collect()
        })
        .collect();
    let mut out = Vec::new();
    for i in 0..n {
        let template = &templates[rng.random_range(0..templates.len())];
        out.extend_from_slice(format!(">r{i:05}\n").as_bytes());
        for &b in template {
            // ~2% point mutation rate keeps intra-template identity high.
            if rng.random_range(0..100) < 2 {
                out.push(BASES[rng.random_range(0..4usize)]);
            } else {
                out.push(b);
            }
        }
        out.push(b'\n');
    }
    out
}

struct RunResult {
    secs: f64,
    /// Concatenated STORE outputs, in script order.
    output: Vec<u8>,
    /// `(stage name, shuffled pairs, shuffled bytes)` per shuffle stage.
    shuffle: Vec<(String, u64, u64)>,
}

fn run_engine(
    fasta: &[u8],
    script: &Script,
    engine: PigEngine,
    workers: usize,
    tracer: Option<Arc<Tracer>>,
) -> RunResult {
    let dfs = Arc::new(
        Dfs::new(DfsConfig {
            block_size: 64 * 1024,
            replication: 1,
            nodes: 2,
        })
        .expect("dfs"),
    );
    dfs.put(INPUT, fasta.to_vec(), false).expect("put input");
    let mut runner = PigRunner::new(Arc::clone(&dfs), registry()).with_engine(engine);
    runner.workers = Some(workers);
    if let Some(t) = tracer {
        runner = runner.traced(t);
    }
    let t = Instant::now();
    let report = runner.run(script).expect("Algorithm 3 run");
    let secs = t.elapsed().as_secs_f64();
    let mut output = Vec::new();
    for path in OUTPUTS {
        output.extend_from_slice(&dfs.read(path).expect("stored output"));
    }
    let shuffle = report
        .pipeline
        .stages()
        .iter()
        .filter(|s| s.shuffled_pairs > 0)
        .map(|s| (s.name.clone(), s.shuffled_pairs, s.shuffled_bytes))
        .collect();
    RunResult {
        secs,
        output,
        shuffle,
    }
}

fn main() {
    let args = HarnessArgs::parse(1.0);
    let reads = ((300.0 * args.scale).round() as usize).max(20);
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let mut rng = StdRng::seed_from_u64(args.seed);
    let fasta = synth_fasta(reads, &mut rng);

    let mut params = HashMap::new();
    for (k, v) in [
        ("INPUT", INPUT.to_string()),
        ("KMER", KMER.to_string()),
        ("NUMHASH", NUMHASH.to_string()),
        ("DIV", DIV.to_string()),
        ("LINK", "average".to_string()),
        ("CUTOFF", "0.9".to_string()),
        ("OUTPUT1", OUTPUTS[0].to_string()),
        ("OUTPUT2", OUTPUTS[1].to_string()),
    ] {
        params.insert(k.to_string(), v);
    }
    let script = parse_script(algorithm3_script(), &params).expect("Algorithm 3 parses");

    eprintln!(
        "pig_bench: {reads} reads ({} bytes FASTA), k={KMER}, numhash={NUMHASH}, \
         {workers} workers, {ITERS} iters, seed {}",
        fasta.len(),
        args.seed
    );

    // Interleave the engines so neither systematically benefits from a
    // warm allocator; keep the best time of each, assert bit-identity
    // every iteration.
    let mut row_best = f64::INFINITY;
    let mut col_best = f64::INFINITY;
    let mut row_last = None;
    let mut col_last = None;
    for iter in 0..ITERS {
        let row = run_engine(&fasta, &script, PigEngine::Row, workers, None);
        row_best = row_best.min(row.secs);
        let col = run_engine(&fasta, &script, PigEngine::Columnar, workers, None);
        col_best = col_best.min(col.secs);
        assert_eq!(
            row.output, col.output,
            "columnar engine must be bit-identical to the row engine"
        );
        assert_eq!(
            row.shuffle, col.shuffle,
            "engines must agree on per-stage shuffle accounting"
        );
        eprintln!(
            "iter {iter}: row {:.3}s, columnar {:.3}s",
            row.secs, col.secs
        );
        row_last = Some(row);
        col_last = Some(col);
    }
    let row = row_last.expect("ITERS > 0");
    let col = col_last.expect("ITERS > 0");
    let speedup = row_best / col_best;

    println!("\npig engine bench — Algorithm 3, row vs columnar data plane\n");
    println!(
        "{:>10} {:>12} {:>14} {:>9}",
        "engine", "best (s)", "output (B)", "speedup"
    );
    println!(
        "{:>10} {:>12.3} {:>14} {:>9}",
        "row",
        row_best,
        row.output.len(),
        ""
    );
    println!(
        "{:>10} {:>12.3} {:>14} {:>8.2}x",
        "columnar",
        col_best,
        col.output.len(),
        speedup
    );
    println!("\nshuffle accounting (identical across engines):");
    for (name, pairs, bytes) in &row.shuffle {
        println!("{name:>24} {pairs:>10} pairs {bytes:>12} bytes");
    }

    // Optional: trace one columnar run and attribute wall-clock to the
    // per-operator `Category::Pig` spans on the critical path.
    let mut trace_json = Json::from(false);
    if let Some(path) = &args.trace {
        let tracer = Arc::new(Tracer::new());
        let traced = run_engine(
            &fasta,
            &script,
            PigEngine::Columnar,
            workers,
            Some(Arc::clone(&tracer)),
        );
        assert_eq!(traced.output, row.output, "traced run diverged");
        let ledger = tracer.ledger();
        std::fs::write(path, chrome_trace(&ledger))
            .unwrap_or_else(|e| panic!("writing {path}: {e}"));
        let cp = critical_path(&ledger);
        println!("\ncolumnar critical path (traced run):\n{}", cp.report());
        trace_json = Json::obj([
            ("path", Json::from(path.as_str())),
            ("spans", ledger.spans.len().into()),
            ("coverage", Json::fixed(cp.coverage(), 6)),
            (
                "categories_seconds",
                Json::obj(
                    mrmc_mapreduce::obs::trace::CATEGORIES
                        .iter()
                        .map(|&c| (c.name(), Json::fixed(cp.category_ns(c) as f64 / 1e9, 6))),
                ),
            ),
        ]);
        eprintln!("wrote columnar Chrome trace to {path}");
    }

    let doc = Json::obj([
        ("scale", Json::from(args.scale)),
        ("seed", args.seed.into()),
        ("reads", reads.into()),
        ("fasta_bytes", fasta.len().into()),
        ("kmer", KMER.into()),
        ("numhash", NUMHASH.into()),
        ("workers", workers.into()),
        ("iters", ITERS.into()),
        ("row_secs", Json::fixed(row_best, 6)),
        ("columnar_secs", Json::fixed(col_best, 6)),
        ("speedup", Json::fixed(speedup, 3)),
        ("identical", true.into()),
        ("output_bytes", row.output.len().into()),
        (
            "shuffle_stages",
            Json::arr(row.shuffle.iter().map(|(name, pairs, bytes)| {
                Json::obj([
                    ("stage", Json::from(name.as_str())),
                    ("shuffled_pairs", (*pairs).into()),
                    ("shuffled_bytes", (*bytes).into()),
                ])
            })),
        ),
        ("trace", trace_json),
    ]);
    println!("\n{}", doc.pretty());
    if let Some(path) = &args.json {
        write_file(path, &doc);
        eprintln!("wrote pig engine bench summary to {path}");
    }

    if let Some(floor) = args.min_speedup {
        if speedup < floor {
            eprintln!(
                "FAIL: columnar speedup {speedup:.3}x fell below the \
                 --min-speedup floor {floor:.3}x"
            );
            std::process::exit(1);
        }
        eprintln!("columnar speedup {speedup:.3}x ≥ floor {floor:.3}x — gate passed");
    }
}
