//! Ablation (DESIGN.md §4): DFS block size vs. mapper count vs.
//! simulated job time. Hadoop's block size decides how many map tasks
//! an input spawns; too few tasks starve the cluster, too many drown
//! it in per-task overhead. The sweet spot moves with cluster size.
//!
//! ```sh
//! cargo run -p mrmc-bench --release --bin ablation_blocksize
//! ```

use mrmc_mapreduce::dfs::{Dfs, DfsConfig, FastaSplitReader};
use mrmc_mapreduce::{ClusterSpec, JobCostModel};
use mrmc_seqio::write_fasta;
use mrmc_simulate::{whole_metagenome_samples, ErrorModel};

fn main() {
    // Stage a real generated sample (S1 at 2 %: ~1000 × 1 kb reads ≈ 1 MB).
    let cfg = &whole_metagenome_samples()[0];
    let dataset = cfg.generate(0.02, ErrorModel::perfect(), 5);
    let mut fasta = Vec::new();
    write_fasta(&mut fasta, &dataset.reads, 0).expect("serialize");
    let file_len = fasta.len();
    println!(
        "input: {} reads, {} bytes on DFS; sketch cost model 0.6 ms/read\n",
        dataset.len(),
        file_len
    );

    let model = JobCostModel::default();
    let per_read_cost = 0.6e-3; // measured ballpark from figure2 calibration
    println!(
        "{:>12} {:>8} {:>14} {:>12} {:>12}",
        "block", "splits", "reads/split", "t(4 nodes)", "t(12 nodes)"
    );
    for block_kb in [16usize, 64, 256, 1024] {
        let dfs = Dfs::new(DfsConfig {
            block_size: block_kb * 1024,
            replication: 1,
            nodes: 12,
        })
        .expect("config");
        dfs.put("/in.fa", fasta.clone(), false).expect("stage");
        let splits = dfs.splits("/in.fa").expect("splits");
        let records: Vec<usize> = splits
            .iter()
            .map(|s| FastaSplitReader::records(s).len())
            .collect();
        let costs: Vec<f64> = records.iter().map(|&r| r as f64 * per_read_cost).collect();
        let t4 = ClusterSpec::m1_large(4)
            .simulate_job(&model, &costs, dataset.len() as u64, &[])
            .total();
        let t12 = ClusterSpec::m1_large(12)
            .simulate_job(&model, &costs, dataset.len() as u64, &[])
            .total();
        let mean_records = records.iter().sum::<usize>() as f64 / records.len() as f64;
        println!(
            "{:>10}kB {:>8} {:>14.1} {:>11.1}s {:>11.1}s",
            block_kb,
            splits.len(),
            mean_records,
            t4,
            t12
        );
    }
    println!(
        "\nExpected: small blocks → many short tasks (task overhead dominates);\n\
         huge blocks → one task (no parallelism; both cluster sizes identical);\n\
         the minimum sits where splits ≈ a small multiple of the slot count."
    );
}
