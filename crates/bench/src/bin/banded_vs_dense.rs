//! `banded_vs_dense` — pruning ratio, recall, and wall-clock of the
//! banded-LSH candidate pipeline against the dense all-pairs oracle.
//!
//! For each corpus size the binary sketches a Huse-style 16S corpus,
//! counts the true θ-edge set with a parallel dense scan (no matrix is
//! materialized — 50 k reads would need ~5 GB), runs the three banded
//! Map-Reduce stages, and reports:
//!
//! * **pruning** — all pairs / similarity evaluations actually made;
//! * **recall** — banded θ-edges / true θ-edges (the auto-tuned scheme
//!   guarantees 1.0; anything less is a failure);
//! * wall-clock of both paths and the banded shuffle volume.
//!
//! Two probes guard the exactness contract: greedy and hierarchical
//! clustering must be identical dense-vs-banded on a small corpus, and
//! a chaos run (task panics in both banding *reducers*) must yield a
//! bit-identical sparse graph. Any recall < 1, probe mismatch, or — at
//! sizes ≥ 10 000 reads — pruning below 5× exits non-zero (the CI
//! `banded-smoke` gate).
//!
//! ```sh
//! cargo run -p mrmc-bench --release --bin banded_vs_dense
//! cargo run -p mrmc-bench --release --bin banded_vs_dense -- --scale 0.01
//! ```

use std::time::Instant;

use mrmc::banded::{banded_graph_stage, banded_graph_stage_with};
use mrmc::stages::{sketch_similarity, sketch_stage};
use mrmc::{CandidateGen, Mode, MrMcConfig, MrMcMinH};
use mrmc_bench::HarnessArgs;
use mrmc_mapreduce::chaos::{FaultPlan, Phase};
use mrmc_mapreduce::pipeline::Pipeline;
use mrmc_simulate::huse_16s;
use rayon::prelude::*;

struct Row {
    reads: usize,
    total_pairs: u64,
    verified: u64,
    truth_edges: u64,
    banded_edges: u64,
    recall: f64,
    pruning: f64,
    shuffle_bytes: u64,
    dense_secs: f64,
    banded_secs: f64,
}

fn config() -> MrMcConfig {
    MrMcConfig::sixteen_s().banded()
}

/// True θ-edge count by brute force, parallel over rows, nothing
/// materialized.
fn dense_truth(sketches: &[mrmc_minhash::Sketch], cfg: &MrMcConfig) -> u64 {
    let n = sketches.len();
    let rows: Vec<usize> = (0..n).collect();
    let counts: Vec<u64> = rows
        .into_par_iter()
        .map(|i| {
            let mut c = 0u64;
            for j in i + 1..n {
                if sketch_similarity(&sketches[i], &sketches[j], cfg.estimator) >= cfg.theta {
                    c += 1;
                }
            }
            c
        })
        .collect();
    counts.iter().sum()
}

fn measure(size: usize, args: &HarnessArgs, failures: &mut Vec<String>) -> Row {
    let cfg = config();
    let dataset = huse_16s(0.03, size as f64 / 345_000.0, args.seed);
    let reads = dataset.reads;
    let n = reads.len();

    let mut pipeline = Pipeline::new("banded-vs-dense");
    let sketches = sketch_stage(&reads, &cfg, &mut pipeline).expect("sketch stage");

    let t = Instant::now();
    let truth_edges = dense_truth(&sketches, &cfg);
    let dense_secs = t.elapsed().as_secs_f64();

    let t = Instant::now();
    let graph = banded_graph_stage(&sketches, &cfg, &mut pipeline).expect("banded stages");
    let banded_secs = t.elapsed().as_secs_f64();

    let banded_edges = graph.num_edges() as u64;
    let verified = pipeline.counter_total("PAIRS_COMPUTED");
    let total_pairs = (n as u64) * (n as u64 - 1) / 2;
    // Every banded edge passed the same `sim ≥ θ` test the truth scan
    // applies, so banded ⊆ truth and the ratio *is* the recall.
    let recall = if truth_edges == 0 {
        1.0
    } else {
        banded_edges as f64 / truth_edges as f64
    };
    let pruning = total_pairs as f64 / verified.max(1) as f64;

    if recall < 1.0 {
        failures.push(format!(
            "{n} reads: recall {recall:.6} < 1.0 ({banded_edges} of {truth_edges} edges)"
        ));
    }
    if n >= 10_000 && pruning < 5.0 {
        failures.push(format!(
            "{n} reads: pruning {pruning:.2}× below the 5× floor"
        ));
    }

    Row {
        reads: n,
        total_pairs,
        verified,
        truth_edges,
        banded_edges,
        recall,
        pruning,
        shuffle_bytes: pipeline.stages().iter().map(|s| s.shuffled_bytes).sum(),
        dense_secs,
        banded_secs,
    }
}

/// Clustering bit-identity probe: greedy and hierarchical assignments
/// must match dense-vs-banded on a small 16S corpus.
fn identity_probe(args: &HarnessArgs, failures: &mut Vec<String>) {
    let dataset = huse_16s(0.03, 400.0 / 345_000.0, args.seed);
    for mode in [Mode::Greedy, Mode::Hierarchical] {
        let dense = MrMcMinH::new(MrMcConfig {
            mode,
            ..config().dense()
        })
        .run(&dataset.reads)
        .expect("dense run");
        let banded = MrMcMinH::new(MrMcConfig { mode, ..config() })
            .run(&dataset.reads)
            .expect("banded run");
        if banded.assignment != dense.assignment {
            failures.push(format!(
                "{mode:?}: banded clustering differs from dense ({} vs {} clusters)",
                banded.num_clusters(),
                dense.num_clusters()
            ));
        } else {
            eprintln!(
                "identity probe [{mode:?}]: banded == dense ({} clusters)",
                dense.num_clusters()
            );
        }
    }
}

/// Chaos probe: panics in the bucket and dedup *reducers* (the banded
/// pipeline's new recovery surface) must leave the graph bit-identical.
fn chaos_probe(args: &HarnessArgs, failures: &mut Vec<String>) {
    let cfg = config();
    let dataset = huse_16s(0.03, 400.0 / 345_000.0, args.seed);
    let mut p = Pipeline::new("chaos-clean");
    let sketches = sketch_stage(&dataset.reads, &cfg, &mut p).expect("sketch stage");
    let clean = banded_graph_stage(&sketches, &cfg, &mut p).expect("clean banded");

    // Job ordinals under this injector: 0 = band-signatures,
    // 1 = candidate-dedup, 2 = verify.
    let inj = FaultPlan::new()
        .task_panic(0, Phase::Reduce, 0, 2)
        .task_panic(1, Phase::Reduce, 1, 1)
        .task_panic(2, Phase::Map, 0, 1)
        .injector();
    let mut chaotic_p = Pipeline::new("chaos-faulty");
    let faulty = banded_graph_stage_with(&sketches, &cfg, &mut chaotic_p, &inj);
    match faulty {
        Ok(g) if g == clean => {
            let rec = chaotic_p.total_recovery();
            eprintln!(
                "chaos probe: graph bit-identical after {} recovery events",
                rec.total_events()
            );
            if rec.tasks_retried < 4 {
                failures.push(format!(
                    "chaos probe: expected ≥ 4 retries (2+1 reduce, 1 map), saw {}",
                    rec.tasks_retried
                ));
            }
        }
        Ok(_) => failures.push("chaos probe: recovered graph differs from clean".into()),
        Err(e) => failures.push(format!("chaos probe: banded run failed: {e}")),
    }
}

fn main() {
    // Injected panics are retried by the engine; silence their traces.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<String>()
            .map(|s| s.starts_with("chaos: injected panic"))
            .unwrap_or(false);
        if !injected {
            default_hook(info);
        }
    }));

    let args = HarnessArgs::parse(1.0);
    let cfg = config();
    let scheme = cfg.banding_scheme();
    let CandidateGen::Banded { bands, rows } = cfg.candidates else {
        unreachable!("config() is banded");
    };
    eprintln!(
        "banded_vs_dense: θ = {}, n = {} hashes, scheme {bands} bands × {rows} rows \
         (exact-recall threshold {:.4}), seed {}",
        cfg.theta,
        cfg.num_hashes,
        scheme.exact_recall_threshold(cfg.num_hashes),
        args.seed
    );

    let mut failures: Vec<String> = Vec::new();
    let sizes: Vec<usize> = [10_000usize, 25_000, 50_000]
        .iter()
        .map(|&s| ((s as f64 * args.scale).round() as usize).max(40))
        .collect();

    println!(
        "{:>8} {:>14} {:>12} {:>10} {:>10} {:>8} {:>9} {:>12} {:>10} {:>10}",
        "reads",
        "all pairs",
        "verified",
        "truth",
        "edges",
        "recall",
        "pruning",
        "shuffle B",
        "dense s",
        "banded s"
    );
    let mut rows_out = Vec::new();
    for &size in &sizes {
        let row = measure(size, &args, &mut failures);
        println!(
            "{:>8} {:>14} {:>12} {:>10} {:>10} {:>8.4} {:>8.1}x {:>12} {:>10.2} {:>10.2}",
            row.reads,
            row.total_pairs,
            row.verified,
            row.truth_edges,
            row.banded_edges,
            row.recall,
            row.pruning,
            row.shuffle_bytes,
            row.dense_secs,
            row.banded_secs
        );
        rows_out.push(row);
    }

    identity_probe(&args, &mut failures);
    chaos_probe(&args, &mut failures);

    let body: Vec<String> = rows_out
        .iter()
        .map(|r| {
            format!(
                "    {{\"reads\": {}, \"total_pairs\": {}, \"verified\": {}, \
                 \"truth_edges\": {}, \"banded_edges\": {}, \"recall\": {}, \
                 \"pruning\": {}, \"shuffle_bytes\": {}, \"dense_secs\": {}, \
                 \"banded_secs\": {}}}",
                r.reads,
                r.total_pairs,
                r.verified,
                r.truth_edges,
                r.banded_edges,
                r.recall,
                r.pruning,
                r.shuffle_bytes,
                r.dense_secs,
                r.banded_secs
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"theta\": {},\n  \"bands\": {bands},\n  \"rows\": {rows},\n  \
         \"seed\": {},\n  \"ok\": {},\n  \"sizes\": [\n{}\n  ]\n}}",
        cfg.theta,
        args.seed,
        failures.is_empty(),
        body.join(",\n")
    );
    if let Some(path) = &args.json {
        std::fs::write(path, &json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        eprintln!("wrote results to {path}");
    }

    if failures.is_empty() {
        eprintln!("banded_vs_dense: all checks passed (recall 1.0 everywhere)");
    } else {
        for f in &failures {
            eprintln!("banded_vs_dense: FAILURE — {f}");
        }
        std::process::exit(1);
    }
}
