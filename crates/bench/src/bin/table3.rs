//! Regenerates **Table III** — clustering performance on simulated and
//! real whole-metagenome reads: MrMC-MinH^h vs MrMC-MinH^g vs
//! MetaCluster on S1–S12 and R1 (k = 5, 100 hash functions).
//!
//! ```sh
//! cargo run -p mrmc-bench --release --bin table3 [-- --scale 0.01 --samples S1,S2]
//! ```

use mrmc::Mode;
use mrmc_baselines::Clusterer;
use mrmc_bench::{
    fmt_acc, fmt_sim, fmt_time, maybe_write_json, metacluster, mrmc_whole, print_row, size_floor,
    timed, HarnessArgs, JsonRow,
};
use mrmc_simulate::{whole_metagenome_samples, ErrorModel};

fn main() {
    let args = HarnessArgs::parse(0.01);
    let min_size = size_floor(args.scale);

    println!(
        "Table III — whole-metagenome clustering (scale {}, θ per-sample via Otsu, k = 5, 100 hashes, cluster floor {min_size})\n",
        args.scale
    );
    let widths = [5usize, 22, 9, 8, 8, 9];
    print_row(
        &["SID", "algorithm", "#Cluster", "W.Acc", "W.Sim", "Time"].map(str::to_string),
        &widths,
    );
    let mut json_rows: Vec<JsonRow> = Vec::new();

    for cfg in whole_metagenome_samples() {
        if !args.wants(cfg.sid) {
            continue;
        }
        // S13/S14 are described in Table II but not reported in
        // Table III; keep the paper's row set by default.
        if matches!(cfg.sid, "S13" | "S14") && args.samples.is_none() {
            continue;
        }
        let dataset = cfg.generate(args.scale, ErrorModel::with_total_rate(0.002), args.seed);
        // The paper never states θ for Table III; select it
        // unsupervised per sample (Otsu on a similarity subsample —
        // see mrmc::threshold).
        let theta = mrmc::suggest_theta(&dataset.reads, &mrmc::MrMcConfig::whole_metagenome(), 100);

        let hier = timed(|| {
            mrmc_whole(Mode::Hierarchical, theta)
                .run(&dataset.reads)
                .expect("run")
                .assignment
        });
        let greedy = timed(|| {
            mrmc_whole(Mode::Greedy, theta)
                .run(&dataset.reads)
                .expect("run")
                .assignment
        });
        let meta = timed(|| metacluster().cluster(&dataset.reads));

        for (name, outcome) in [
            ("MrMC-MinH^h", &hier),
            ("MrMC-MinH^g", &greedy),
            ("MetaCluster", &meta),
        ] {
            let acc = fmt_acc(&outcome.assignment, &dataset, min_size);
            let sim = fmt_sim(&outcome.assignment, &dataset.reads, 100);
            print_row(
                &[
                    cfg.sid.to_string(),
                    name.to_string(),
                    outcome
                        .assignment
                        .num_clusters_at_least(min_size)
                        .to_string(),
                    acc.clone(),
                    sim.clone(),
                    fmt_time(outcome.seconds),
                ],
                &widths,
            );
            json_rows.push(JsonRow {
                sample: cfg.sid.to_string(),
                method: name.to_string(),
                variant: Some(format!("theta={theta:.3}")),
                clusters: outcome.assignment.num_clusters_at_least(min_size),
                w_acc: acc.parse().ok(),
                w_sim: sim.parse().ok(),
                seconds: outcome.seconds,
            });
        }
    }
    maybe_write_json(&args, &json_rows);
    println!(
        "\nExpected shape: hierarchical ≥ greedy on W.Acc/W.Sim; MetaCluster slowest on the\n\
         large samples. The greedy-vs-hierarchical runtime gap emerges at scale (see figure2);\n\
         R1 has no ground truth (W.Acc = '-')."
    );
}
