//! `server_report` — the serving-layer smoke and counter emitter.
//!
//! Boots an in-process `mrmc-server` daemon on an ephemeral loopback
//! port and drives it over real TCP through the full request
//! lifecycle: seed → submit → query → stats → shutdown. Every
//! assignment is checked against the sequential
//! [`IncrementalClusterer`] oracle, the ledger is checked to contain
//! only `serve`-category spans (the request path must never re-run
//! the batch pipeline), and a second daemon with hostile limits
//! exercises both admission refusals (`Busy`, `QuotaExceeded`).
//!
//! The JSON report carries per-session admission counters and
//! micro-batch latency percentiles (p50 / p95 / p99 / max) pulled
//! from the daemon's own metrics registry over `Request::ServerStats`,
//! cross-checked against the client-side stopwatch. A third daemon
//! runs the same traffic with `metrics: false` and must produce
//! byte-identical labels, and a registry micro-benchmark prices the
//! per-request metric recording as a percentage of the p50 submit
//! latency (gated by `--max-metrics-overhead-pct`). Any oracle
//! deviation, counter mismatch or hung drain exits non-zero — the CI
//! `server-smoke` step checks exactly that, under a watchdog so a
//! wedged drain fails instead of hanging the job.
//!
//! Artifacts land under `results/`: the report as
//! `results/BENCH_server.json` and the raw daemon snapshot as
//! `results/STATS_snapshot.json`.
//!
//! ```sh
//! cargo run -p mrmc-bench --release --bin server_report -- --seed 7
//! ```

use std::process::exit;
use std::sync::Arc;
use std::time::{Duration, Instant};

use mrmc::{IncrementalClusterer, MrMcMinH};
use mrmc_bench::json::Json;
use mrmc_bench::HarnessArgs;
use mrmc_obs::{Category, MetricsRegistry, Tracer};
use mrmc_seqio::SeqRecord;
use mrmc_server::{
    AdmissionLimits, Client, SeedConfig, Server, ServerConfig, SessionStats, SubmitOutcome,
};
use mrmc_simulate::{CommunitySpec, ErrorModel, ReadSimulator, SpeciesSpec, TaxRank};

/// Hard ceiling on the whole smoke; a hung drain must fail, not hang.
const WATCHDOG: Duration = Duration::from_secs(120);

fn corpus(n: usize, seed: u64) -> Vec<SeqRecord> {
    let spec = CommunitySpec {
        species: vec![
            SpeciesSpec {
                name: "a".into(),
                gc: 0.40,
                abundance: 1.0,
            },
            SpeciesSpec {
                name: "b".into(),
                gc: 0.60,
                abundance: 1.0,
            },
        ],
        rank: TaxRank::Phylum,
        genome_len: 20_000,
    };
    let sim = ReadSimulator::new(400, ErrorModel::with_total_rate(0.002));
    spec.generate("smoke", n, &sim, seed).reads
}

fn seed_cfg(seed: u64) -> SeedConfig {
    SeedConfig {
        kmer: 5,
        num_hashes: 64,
        theta: 0.55,
        greedy: true,
        seed,
        canonical: false,
    }
}

fn check(ok: bool, what: &str, failures: &mut u32) {
    if ok {
        eprintln!("server_report: ok   {what}");
    } else {
        eprintln!("server_report: FAIL {what}");
        *failures += 1;
    }
}

fn stats_json(s: &SessionStats) -> Json {
    Json::obj([
        ("tenant", Json::Str(s.tenant.clone())),
        ("clusters", Json::UInt(s.clusters)),
        ("seeded_clusters", Json::UInt(s.seeded_clusters)),
        ("reads_admitted", Json::UInt(s.reads_admitted)),
        ("batches_admitted", Json::UInt(s.batches_admitted)),
        ("bytes_admitted", Json::UInt(s.bytes_admitted)),
        ("reads_rejected", Json::UInt(s.reads_rejected)),
        ("busy_rejections", Json::UInt(s.busy_rejections)),
        ("quota_rejections", Json::UInt(s.quota_rejections)),
        ("queue_depth", Json::UInt(s.queue_depth)),
        ("max_queue_depth", Json::UInt(s.max_queue_depth)),
    ])
}

fn main() {
    let args = HarnessArgs::parse(1.0);
    // The watchdog turns a wedged drain into a loud nonzero exit.
    std::thread::spawn(|| {
        std::thread::sleep(WATCHDOG);
        eprintln!("server_report: watchdog expired after {WATCHDOG:?} — daemon hung");
        exit(3);
    });

    let mut failures = 0u32;
    let n = ((120.0 * args.scale).round() as usize).max(20);
    let reads = corpus(n, args.seed);
    let (batch, streamed) = reads.split_at(n * 2 / 3);
    let cfg = seed_cfg(args.seed);

    // The oracle the daemon must agree with, computed up front.
    let mrmc_cfg = cfg.to_mrmc();
    let run = MrMcMinH::new(mrmc_cfg)
        .run(batch)
        .expect("oracle batch run");
    let mut oracle = IncrementalClusterer::from_run(mrmc_cfg, batch, &run).expect("oracle seed");
    let expected: Vec<u64> = streamed
        .iter()
        .map(|r| oracle.push(r).expect("oracle push") as u64)
        .collect();

    // Daemon one: the well-behaved roundtrip.
    let handle = Server::spawn(&ServerConfig::default(), Arc::new(Tracer::new()))
        .expect("bind loopback daemon");
    let tracer = handle.tracer();
    let mut client = Client::connect(handle.addr(), "smoke").expect("connect");
    let clusters = client.seed_from_batch(&cfg, batch).expect("seed");
    check(clusters >= 1, "seeded at least one cluster", &mut failures);

    let mut latencies_us: Vec<u64> = Vec::new();
    let mut got: Vec<u64> = Vec::new();
    for chunk in streamed.chunks(8) {
        let t0 = Instant::now();
        got.extend(client.submit_labels(chunk).expect("submit"));
        latencies_us.push(t0.elapsed().as_micros() as u64);
    }
    check(
        got == expected,
        "assignments match the oracle",
        &mut failures,
    );
    let last = streamed.last().expect("streamed reads");
    check(
        client.query(&last.id).expect("query") == expected.last().copied(),
        "query returns the streamed read's label",
        &mut failures,
    );
    let stats = client.stats().expect("stats");
    check(
        stats.reads_admitted == streamed.len() as u64 && stats.reads_rejected == 0,
        "admission counters account every read",
        &mut failures,
    );
    let ledger = tracer.ledger();
    check(
        !ledger.spans.is_empty() && ledger.spans.iter().all(|s| s.category == Category::Serve),
        "ledger holds serve spans only (no MR jobs on the request path)",
        &mut failures,
    );
    // The daemon's own metrics plane, pulled over the wire. The
    // latency histogram must carry one sample per submitted batch
    // with ordered percentiles, and the admission counters must agree
    // with the counters the session-stats response already reports.
    let snap = client.server_stats().expect("server stats snapshot");
    let batches = latencies_us.len() as u64;
    let lat = snap
        .histogram("serve.tenant.smoke.latency_us")
        .cloned()
        .unwrap_or_default();
    check(
        lat.count() == batches,
        "latency histogram carries one sample per batch",
        &mut failures,
    );
    let (h50, h95, h99) = (
        lat.percentile(50.0),
        lat.percentile(95.0),
        lat.percentile(99.0),
    );
    let hmax = lat.max().unwrap_or(0);
    check(
        h50 <= h95 && h95 <= h99 && h99 <= hmax,
        "registry percentiles ordered p50 <= p95 <= p99 <= max",
        &mut failures,
    );
    check(
        snap.counter("serve.tenant.smoke.reads_admitted") == Some(stats.reads_admitted)
            && snap.counter("serve.tenant.smoke.batches_admitted") == Some(stats.batches_admitted),
        "registry admission counters match session stats",
        &mut failures,
    );
    let drained = client.shutdown().expect("shutdown ack");
    handle.join();
    check(drained == 0, "drain found an empty backlog", &mut failures);

    // Same traffic against a metrics-off daemon: clustering output
    // must be byte-identical (the plane is passive) and the snapshot
    // must come back empty.
    let dark = Server::spawn(
        &ServerConfig {
            metrics: false,
            ..ServerConfig::default()
        },
        Arc::new(Tracer::new()),
    )
    .expect("bind metrics-off daemon");
    let mut unobserved = Client::connect(dark.addr(), "smoke").expect("connect");
    unobserved.seed_from_batch(&cfg, batch).expect("seed");
    let mut dark_got: Vec<u64> = Vec::new();
    for chunk in streamed.chunks(8) {
        dark_got.extend(unobserved.submit_labels(chunk).expect("submit"));
    }
    check(
        dark_got == got,
        "labels identical with metrics disabled",
        &mut failures,
    );
    check(
        unobserved
            .server_stats()
            .expect("metrics-off snapshot")
            .is_empty(),
        "metrics-off daemon answers an empty snapshot",
        &mut failures,
    );
    unobserved.shutdown().expect("shutdown metrics-off daemon");
    dark.join();

    // Price the metrics plane: one submit records one request counter,
    // three admission counters, and three observations into formatted
    // per-tenant keys. Replay that op mix against a fresh registry and
    // express the per-request cost as a percentage of the p50 submit
    // latency the daemon just measured.
    latencies_us.sort_unstable();
    let p50 = latencies_us
        .get(latencies_us.len() / 2)
        .copied()
        .unwrap_or(0);
    let max = latencies_us.last().copied().unwrap_or(0);
    let bench_registry = MetricsRegistry::new();
    let rounds: u64 = 10_000;
    let t0 = Instant::now();
    for i in 0..rounds {
        bench_registry.counter_add("serve.requests.submit", 1);
        bench_registry.counter_add("serve.tenant.smoke.batches_admitted", 1);
        bench_registry.counter_add("serve.tenant.smoke.reads_admitted", 8);
        bench_registry.counter_add("serve.tenant.smoke.bytes_admitted", 3_200);
        bench_registry.observe("serve.tenant.smoke.batch_reads", 8);
        bench_registry.observe("serve.tenant.smoke.queue_us", 40 + i % 13);
        bench_registry.observe("serve.tenant.smoke.latency_us", 900 + i % 97);
    }
    let per_request_ns = t0.elapsed().as_nanos() as f64 / rounds as f64;
    let overhead_pct = if p50 > 0 {
        per_request_ns / (p50 as f64 * 1_000.0) * 100.0
    } else {
        0.0
    };
    eprintln!(
        "server_report: metrics overhead {per_request_ns:.0} ns/request \
         = {overhead_pct:.4}% of p50 submit latency ({p50} us)"
    );
    if let Some(limit) = args.max_metrics_overhead_pct {
        check(
            overhead_pct <= limit,
            &format!("metrics overhead {overhead_pct:.4}% within gate {limit}%"),
            &mut failures,
        );
    }

    // Daemon two: hostile limits exercise both refusal paths. A tiny
    // byte quota rejects the big batch permanently; a zero-depth
    // queue answers Busy to the small one that fits the quota.
    let refusals = Server::spawn(
        &ServerConfig {
            limits: AdmissionLimits {
                max_queue_depth: 0,
                max_queued_bytes: 8 * 1024 * 1024,
                max_session_bytes: 600,
            },
            ..ServerConfig::default()
        },
        Arc::new(Tracer::new()),
    )
    .expect("bind refusal daemon");
    let mut hostile = Client::connect(refusals.addr(), "hostile").expect("connect");
    hostile.seed_from_batch(&cfg, batch).expect("seed");
    let quota = matches!(
        hostile.submit(&streamed[..2]).expect("submit big"),
        SubmitOutcome::QuotaExceeded { .. }
    );
    check(quota, "oversize batch answers QuotaExceeded", &mut failures);
    let tiny = SeqRecord::new("tiny", b"ACGTACGTAC".to_vec());
    let busy = matches!(
        hostile
            .submit(std::slice::from_ref(&tiny))
            .expect("submit tiny"),
        SubmitOutcome::Busy { .. }
    );
    check(busy, "zero-depth queue answers Busy", &mut failures);
    let hostile_stats = hostile.stats().expect("stats");
    check(
        hostile_stats.quota_rejections == 1
            && hostile_stats.busy_rejections == 1
            && hostile_stats.reads_admitted == 0,
        "refusals tallied, nothing admitted",
        &mut failures,
    );
    hostile.shutdown().expect("shutdown refusal daemon");
    refusals.join();

    let doc = Json::obj([
        ("seed", Json::UInt(args.seed)),
        ("reads_total", Json::UInt(reads.len() as u64)),
        ("reads_batch", Json::UInt(batch.len() as u64)),
        ("reads_streamed", Json::UInt(streamed.len() as u64)),
        ("clusters", Json::UInt(clusters)),
        (
            "latency_us",
            Json::obj([("p50", Json::UInt(p50)), ("max", Json::UInt(max))]),
        ),
        (
            "registry_latency_us",
            Json::obj([
                ("p50", Json::UInt(h50)),
                ("p95", Json::UInt(h95)),
                ("p99", Json::UInt(h99)),
                ("max", Json::UInt(hmax)),
                ("samples", Json::UInt(lat.count())),
            ]),
        ),
        (
            "metrics_overhead",
            Json::obj([
                ("ns_per_request", Json::F64(per_request_ns)),
                ("pct_of_p50", Json::F64(overhead_pct)),
                (
                    "gate_pct",
                    args.max_metrics_overhead_pct
                        .map(Json::F64)
                        .unwrap_or(Json::Null),
                ),
            ]),
        ),
        (
            "sessions",
            Json::arr([stats_json(&stats), stats_json(&hostile_stats)]),
        ),
        ("failures", Json::UInt(failures as u64)),
    ]);
    println!("{}", doc.pretty());
    std::fs::create_dir_all("results").expect("creating results/");
    std::fs::write("results/BENCH_server.json", doc.pretty())
        .expect("writing results/BENCH_server.json");
    std::fs::write("results/STATS_snapshot.json", snap.to_json().pretty())
        .expect("writing results/STATS_snapshot.json");
    eprintln!("server_report: wrote results/BENCH_server.json and results/STATS_snapshot.json");
    if let Some(path) = &args.json {
        std::fs::write(path, doc.pretty()).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        eprintln!("server_report: wrote {path}");
    }
    if failures > 0 {
        eprintln!("server_report: {failures} check(s) failed");
        exit(1);
    }
}
