//! `chaos_report` — the recovery matrix of the fault-injection runtime.
//!
//! Sweeps fault type × intensity over three subjects:
//!
//! * the full MrMC-MinH hierarchical pipeline (task panics, stragglers,
//!   node deaths — output must stay **bit-identical** to a clean run);
//! * a shuffle-bearing Map-Reduce job (fetch failures below and above
//!   the engine's retry limit);
//! * the DFS (scheduled replica corruption, detected by checksum and
//!   healed from a surviving replica).
//!
//! Each cell records: did the run complete, is its output identical to
//! the fault-free baseline, the wall-clock overhead ratio, and the
//! recovery ledger. A determinism probe re-runs a seeded random plan
//! and demands identical counters *and* a byte-identical metrics
//! snapshot (`Pipeline::export_metrics` rendered as text). The JSON
//! matrix — including the probe's full `engine.*` snapshot — goes to
//! stdout (and, with `--json <path>`, to a file); any unrecovered
//! cell or a non-deterministic ledger/snapshot makes the process exit
//! non-zero, which is what the CI `chaos-smoke` step checks.
//!
//! ```sh
//! cargo run -p mrmc-bench --release --bin chaos_report -- --seed 7
//! ```

use std::sync::Arc;
use std::time::Instant;

use mrmc::{Mode, MrMcConfig, MrMcMinH};
use mrmc_bench::json::Json;
use mrmc_bench::HarnessArgs;
use mrmc_mapreduce::chaos::{ChaosProfile, FaultPlan, Phase};
use mrmc_mapreduce::{
    run_job_with_faults, Dfs, DfsConfig, JobConfig, Mapper, NoFaults, RecoveryCounters, Reducer,
    ShuffleSized, TaskContext,
};
use mrmc_simulate::{CommunitySpec, ErrorModel, ReadSimulator, SpeciesSpec, TaxRank};

/// One entry of the recovery matrix.
struct Cell {
    subject: &'static str,
    fault: &'static str,
    intensity: String,
    completed: bool,
    identical: bool,
    /// Faulty wall-clock over clean wall-clock (≥ 1 in expectation;
    /// jittery for sub-millisecond subjects — informational only).
    overhead: f64,
    recovery: RecoveryCounters,
    /// Similarity evaluations the faulty run performed.
    pairs_computed: u64,
    /// Candidate pairs the banded stages emitted (0 off the banded path).
    candidates_emitted: u64,
    /// Shuffle volume of the faulty run, payload bytes.
    shuffle_bytes: u64,
    /// Sorted map-side runs the faulty run's reducers fetched.
    shuffle_runs: u64,
}

impl Cell {
    fn recovered(&self) -> bool {
        self.completed && self.identical
    }

    fn to_json(&self) -> Json {
        let r = &self.recovery;
        Json::obj([
            ("subject", Json::from(self.subject)),
            ("fault", self.fault.into()),
            ("intensity", self.intensity.as_str().into()),
            ("completed", self.completed.into()),
            ("identical", self.identical.into()),
            ("overhead", Json::fixed(self.overhead, 3)),
            (
                "recovery",
                Json::obj([
                    ("tasks_retried", Json::from(r.tasks_retried)),
                    (
                        "maps_reexecuted_node_loss",
                        r.maps_reexecuted_node_loss.into(),
                    ),
                    (
                        "maps_reexecuted_fetch_fail",
                        r.maps_reexecuted_fetch_fail.into(),
                    ),
                    ("speculative_wins", r.speculative_wins.into()),
                    ("shuffle_fetch_retries", r.shuffle_fetch_retries.into()),
                    ("blocks_rereplicated", r.blocks_rereplicated.into()),
                    (
                        "corrupt_replicas_detected",
                        r.corrupt_replicas_detected.into(),
                    ),
                ]),
            ),
            (
                "counters",
                Json::obj([
                    ("pairs_computed", Json::from(self.pairs_computed)),
                    ("candidates_emitted", self.candidates_emitted.into()),
                    ("shuffle_bytes", self.shuffle_bytes.into()),
                    ("shuffle_runs", self.shuffle_runs.into()),
                ]),
            ),
        ])
    }
}

fn two_species(n: usize, seed: u64) -> Vec<mrmc_seqio::SeqRecord> {
    let spec = CommunitySpec {
        species: vec![
            SpeciesSpec {
                name: "a".into(),
                gc: 0.40,
                abundance: 1.0,
            },
            SpeciesSpec {
                name: "b".into(),
                gc: 0.60,
                abundance: 1.0,
            },
        ],
        rank: TaxRank::Phylum,
        genome_len: 50_000,
    };
    let sim = ReadSimulator::new(800, ErrorModel::with_total_rate(0.002));
    spec.generate("chaos", n, &sim, seed).reads
}

fn mrmc_config() -> MrMcConfig {
    MrMcConfig {
        kmer: 5,
        num_hashes: 64,
        theta: 0.55,
        mode: Mode::Hierarchical,
        map_tasks: 4,
        ..Default::default()
    }
}

/// Run the full pipeline under `plan` and compare against the clean
/// baseline.
fn pipeline_cell(
    fault: &'static str,
    intensity: impl Into<String>,
    reads: &[mrmc_seqio::SeqRecord],
    clean: &mrmc::MrMcResult,
    clean_secs: f64,
    plan: FaultPlan,
) -> Cell {
    let runner = MrMcMinH::new(mrmc_config());
    let t = Instant::now();
    let run = runner.run_with_injector(reads, &plan.injector());
    let secs = t.elapsed().as_secs_f64();
    let (completed, identical, recovery, counters) = match &run {
        Ok(r) => (
            true,
            r.assignment == clean.assignment && r.dendrogram == clean.dendrogram,
            r.recovery(),
            (
                r.pipeline.counter_total("PAIRS_COMPUTED"),
                r.pipeline.counter_total("CANDIDATES_EMITTED"),
                r.pipeline.counter_total("SHUFFLE_BYTES"),
                r.pipeline.counter_total("SHUFFLE_RUNS"),
            ),
        ),
        Err(_) => (false, false, RecoveryCounters::new(), (0, 0, 0, 0)),
    };
    Cell {
        subject: "mrmc-pipeline",
        fault,
        intensity: intensity.into(),
        completed,
        identical,
        overhead: secs / clean_secs.max(1e-9),
        recovery,
        pairs_computed: counters.0,
        candidates_emitted: counters.1,
        shuffle_bytes: counters.2,
        shuffle_runs: counters.3,
    }
}

/// The banded pipeline under faults aimed at its *reducers* (the
/// dense MrMC stages are map-only, so this is the only subject with a
/// reduce-phase recovery surface). The run must match its own clean
/// banded baseline, which in greedy mode is itself bit-identical to
/// dense (the exactness contract).
fn banded_cell(
    fault: &'static str,
    intensity: impl Into<String>,
    reads: &[mrmc_seqio::SeqRecord],
    plan: FaultPlan,
) -> Cell {
    let cfg = mrmc_config().greedy().banded();
    let runner = MrMcMinH::new(cfg);
    let t = Instant::now();
    let clean = runner.run(reads).expect("clean banded run");
    let clean_secs = t.elapsed().as_secs_f64().max(1e-9);
    let dense = MrMcMinH::new(mrmc_config().greedy())
        .run(reads)
        .expect("clean dense run");
    assert_eq!(
        clean.assignment, dense.assignment,
        "banded greedy must match dense greedy bit-for-bit"
    );

    let t = Instant::now();
    let run = runner.run_with_injector(reads, &plan.injector());
    let secs = t.elapsed().as_secs_f64();
    let (completed, identical, recovery, counters) = match &run {
        Ok(r) => (
            true,
            r.assignment == clean.assignment,
            r.recovery(),
            (
                r.pipeline.counter_total("PAIRS_COMPUTED"),
                r.pipeline.counter_total("CANDIDATES_EMITTED"),
                r.pipeline.counter_total("SHUFFLE_BYTES"),
                r.pipeline.counter_total("SHUFFLE_RUNS"),
            ),
        ),
        Err(_) => (false, false, RecoveryCounters::new(), (0, 0, 0, 0)),
    };
    Cell {
        subject: "banded-pipeline",
        fault,
        intensity: intensity.into(),
        completed,
        identical,
        overhead: secs / clean_secs,
        recovery,
        pairs_computed: counters.0,
        candidates_emitted: counters.1,
        shuffle_bytes: counters.2,
        shuffle_runs: counters.3,
    }
}

// A shuffle-bearing job so fetch faults have a shuffle to disturb
// (the MrMC stages are map-only).
struct Tokenize;
impl Mapper for Tokenize {
    type InKey = usize;
    type InValue = String;
    type OutKey = String;
    type OutValue = u64;
    fn map(&self, _k: usize, v: String, ctx: &mut TaskContext<String, u64>) {
        for w in v.split_whitespace() {
            ctx.emit(w.to_string(), 1);
        }
    }

    // String keys are heap-backed: charge their real payload width.
    fn key_wire_size(&self, key: &String) -> usize {
        key.shuffle_size()
    }

    fn value_wire_size(&self, value: &u64) -> usize {
        value.shuffle_size()
    }
}

struct Sum;
impl Reducer for Sum {
    type InKey = String;
    type InValue = u64;
    type OutKey = String;
    type OutValue = u64;
    fn reduce(&self, k: String, vs: Vec<u64>, ctx: &mut TaskContext<String, u64>) {
        ctx.emit(k, vs.iter().sum());
    }
}

fn wordcount_input() -> Vec<(usize, String)> {
    (0..32)
        .map(|i| (i, format!("read{} maps to sketch{} twice twice", i, i % 7)))
        .collect()
}

fn wordcount_config() -> JobConfig {
    JobConfig::named("chaos-wc")
        .reducers(4)
        .attempts(4)
        .nodes(8)
}

fn shuffle_cell(fault: &'static str, intensity: impl Into<String>, plan: FaultPlan) -> Cell {
    let input = wordcount_input();
    let t = Instant::now();
    let clean = run_job_with_faults(
        input.clone(),
        8,
        &Tokenize,
        &Sum,
        &wordcount_config(),
        &NoFaults,
    )
    .expect("clean word count");
    let clean_secs = t.elapsed().as_secs_f64();
    let mut expect = clean.output;
    expect.sort();

    let t = Instant::now();
    let run = run_job_with_faults(
        input,
        8,
        &Tokenize,
        &Sum,
        &wordcount_config(),
        &plan.injector(),
    );
    let secs = t.elapsed().as_secs_f64();
    let (completed, identical, recovery, shuffle_bytes, shuffle_runs) = match run {
        Ok(r) => {
            let mut got = r.output;
            got.sort();
            (
                true,
                got == expect,
                r.recovery,
                r.shuffled_bytes,
                r.shuffle_runs,
            )
        }
        Err(_) => (false, false, RecoveryCounters::new(), 0, 0),
    };
    Cell {
        subject: "wordcount-job",
        fault,
        intensity: intensity.into(),
        completed,
        identical,
        overhead: secs / clean_secs.max(1e-9),
        recovery,
        pairs_computed: 0,
        candidates_emitted: 0,
        shuffle_bytes,
        shuffle_runs,
    }
}

fn dfs_cell(intensity: impl Into<String>, corruptions: &[(usize, usize)]) -> Cell {
    // 3 blocks of 16 bytes, replication 3 on 6 nodes.
    let payload: Vec<u8> = (0..48u8).collect();
    let mut plan = FaultPlan::new();
    for &(block, replica) in corruptions {
        plan = plan.corrupt_replica("/chaos/data", block, replica);
    }
    let dfs = Dfs::with_injector(
        DfsConfig {
            block_size: 16,
            replication: 3,
            nodes: 6,
        },
        Arc::new(plan.injector()),
    )
    .expect("dfs config");
    dfs.put("/chaos/data", payload.clone(), false)
        .expect("dfs put");
    let read = dfs.read("/chaos/data");
    let (completed, identical) = match &read {
        Ok(bytes) => (true, bytes.as_ref() == payload.as_slice()),
        Err(_) => (false, false),
    };
    Cell {
        subject: "dfs",
        fault: "replica_corruption",
        intensity: intensity.into(),
        completed,
        identical,
        overhead: 1.0,
        recovery: dfs.recovery(),
        pairs_computed: 0,
        candidates_emitted: 0,
        shuffle_bytes: 0,
        shuffle_runs: 0,
    }
}

fn main() {
    // Injected task panics are caught and retried by the engine; keep
    // their backtraces out of the report. Anything else still prints.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<String>()
            .map(|s| s.starts_with("chaos: injected panic"))
            .unwrap_or(false);
        if !injected {
            default_hook(info);
        }
    }));

    let args = HarnessArgs::parse(1.0);
    let num_reads = ((40.0 * args.scale).round() as usize).max(12);
    let reads = two_species(num_reads, args.seed);

    eprintln!("chaos_report: {num_reads} reads, seed {}", args.seed);
    let runner = MrMcMinH::new(mrmc_config());
    let t = Instant::now();
    let clean = runner.run(&reads).expect("clean pipeline run");
    let clean_secs = t.elapsed().as_secs_f64();
    assert!(
        clean.recovery().is_clean(),
        "fault-free baseline must report a clean ledger"
    );

    let mut cells: Vec<Cell> = vec![
        // Pipeline: task panics (job 0 = sketch, job 1 = similarity).
        pipeline_cell(
            "task_panic",
            "1 panic, 2 failed attempts",
            &reads,
            &clean,
            clean_secs,
            FaultPlan::new().task_panic(0, Phase::Map, 1, 2),
        ),
        pipeline_cell(
            "task_panic",
            "2 panics per stage",
            &reads,
            &clean,
            clean_secs,
            FaultPlan::new()
                .task_panic(0, Phase::Map, 0, 2)
                .task_panic(0, Phase::Map, 2, 1)
                .task_panic(1, Phase::Map, 1, 2)
                .task_panic(1, Phase::Map, 3, 1),
        ),
        // Pipeline: stragglers → speculative backups.
        pipeline_cell(
            "straggler",
            "1 × 20 ms",
            &reads,
            &clean,
            clean_secs,
            FaultPlan::new().task_slowdown(0, Phase::Map, 2, 20),
        ),
        pipeline_cell(
            "straggler",
            "1 per stage × 20 ms",
            &reads,
            &clean,
            clean_secs,
            FaultPlan::new()
                .task_slowdown(0, Phase::Map, 0, 20)
                .task_slowdown(1, Phase::Map, 1, 20),
        ),
        // Pipeline: node death at the map→reduce barrier.
        pipeline_cell(
            "node_death",
            "1 node of 8, sketch stage",
            &reads,
            &clean,
            clean_secs,
            FaultPlan::new().node_death_after_map(0, 3),
        ),
        pipeline_cell(
            "node_death",
            "1 node of 8, similarity stage",
            &reads,
            &clean,
            clean_secs,
            FaultPlan::new().node_death_after_map(1, 5),
        ),
        // Pipeline: everything at once.
        pipeline_cell(
            "combined",
            "panic + straggler + node death",
            &reads,
            &clean,
            clean_secs,
            FaultPlan::new()
                .task_panic(0, Phase::Map, 1, 2)
                .task_slowdown(1, Phase::Map, 0, 15)
                .node_death_after_map(0, 2),
        ),
        // Banded candidate pipeline: reduce-phase panics in the bucket
        // and dedup reducers (jobs: 0 sketch, 1 band-signatures,
        // 2 candidate-dedup, 3 verify).
        banded_cell(
            "task_panic",
            "bucket reducer, 2 failed attempts",
            &reads,
            FaultPlan::new().task_panic(1, Phase::Reduce, 0, 2),
        ),
        banded_cell(
            "task_panic",
            "bucket + dedup reducers + verify map",
            &reads,
            FaultPlan::new()
                .task_panic(1, Phase::Reduce, 1, 2)
                .task_panic(2, Phase::Reduce, 0, 1)
                .task_panic(3, Phase::Map, 0, 1),
        ),
        // Shuffle fetch failures (needs a reduce phase).
        shuffle_cell(
            "shuffle_fetch",
            "2 failures (≤ retry limit)",
            FaultPlan::new().shuffle_fetch_fail(0, 1, 2, 2),
        ),
        shuffle_cell(
            "shuffle_fetch",
            "5 failures (forces map re-execution)",
            FaultPlan::new().shuffle_fetch_fail(0, 3, 0, 5),
        ),
        // DFS replica corruption.
        dfs_cell("1 replica of 1 block", &[(1, 0)]),
        dfs_cell("1 replica in each of 2 blocks", &[(0, 2), (2, 1)]),
    ];

    // -- Determinism probe: a seeded random plan, run twice. --
    let profile = ChaosProfile::default();
    let plan = FaultPlan::random(args.seed, &profile);
    let a = pipeline_cell(
        "random_plan",
        format!("seed {}", args.seed),
        &reads,
        &clean,
        clean_secs,
        plan.clone(),
    );
    let b = pipeline_cell(
        "random_plan",
        format!("seed {} (replay)", args.seed),
        &reads,
        &clean,
        clean_secs,
        plan.clone(),
    );
    let deterministic = a.recovery == b.recovery && a.recovered() && b.recovered();
    cells.push(a);
    cells.push(b);

    // The same probe through the metrics plane: exporting the seeded
    // plan's pipeline into a registry twice must render byte-identical
    // snapshots (engine keys carry no wall-clock, so a fixed plan
    // pins every counter and histogram bucket).
    let snapshot_of = |plan: FaultPlan| {
        let run = MrMcMinH::new(mrmc_config())
            .run_with_injector(&reads, &plan.injector())
            .expect("seeded chaos run for metrics snapshot");
        let registry = mrmc_obs::MetricsRegistry::new();
        run.pipeline.export_metrics(&registry);
        registry.snapshot()
    };
    let snapshot = snapshot_of(plan.clone());
    let snapshots_identical = snapshot.render_text() == snapshot_of(plan).render_text();

    // Human-readable matrix on stderr.
    eprintln!(
        "\n{:<14} {:<19} {:<38} {:>5} {:>5} {:>9} {:>7}",
        "subject", "fault", "intensity", "ok", "same", "overhead", "events"
    );
    for c in &cells {
        eprintln!(
            "{:<14} {:<19} {:<38} {:>5} {:>5} {:>8.2}x {:>7}",
            c.subject,
            c.fault,
            c.intensity,
            c.completed,
            c.identical,
            c.overhead,
            c.recovery.total_events()
        );
    }
    eprintln!(
        "\nledger determinism across identical plans: {}",
        if deterministic { "OK" } else { "VIOLATED" }
    );
    eprintln!(
        "metrics-snapshot determinism across identical plans: {}",
        if snapshots_identical {
            "OK"
        } else {
            "VIOLATED"
        }
    );

    // JSON matrix on stdout.
    let all_recovered = cells.iter().all(Cell::recovered);
    let doc = Json::obj([
        ("seed", Json::from(args.seed)),
        ("reads", num_reads.into()),
        ("deterministic", deterministic.into()),
        ("metrics_deterministic", snapshots_identical.into()),
        ("all_recovered", all_recovered.into()),
        ("cells", Json::arr(cells.iter().map(Cell::to_json))),
        ("metrics", snapshot.to_json()),
    ]);
    println!("{}", doc.pretty());
    if let Some(path) = &args.json {
        mrmc_bench::json::write_file(path, &doc);
        eprintln!("wrote recovery matrix to {path}");
    }

    // With `--trace`, replay the combined-fault cell with a tracer
    // attached and dump the span ledger as a Chrome trace: the
    // recovery actions the matrix counts, as a timeline.
    if let Some(path) = &args.trace {
        use mrmc_mapreduce::{chrome_trace, Tracer};
        let tracer = Arc::new(Tracer::new());
        let plan = FaultPlan::new()
            .task_panic(0, Phase::Map, 1, 2)
            .task_slowdown(1, Phase::Map, 0, 15)
            .node_death_after_map(0, 2);
        let traced = MrMcMinH::new(mrmc_config())
            .run_traced(&reads, &plan.injector(), tracer.clone())
            .expect("traced combined-fault run");
        assert_eq!(
            traced.assignment, clean.assignment,
            "tracing must not perturb recovery"
        );
        std::fs::write(path, chrome_trace(&tracer.ledger()))
            .unwrap_or_else(|e| panic!("writing {path}: {e}"));
        eprintln!("wrote Chrome trace of the combined-fault run to {path}");
    }

    if !all_recovered || !deterministic || !snapshots_identical {
        eprintln!(
            "chaos_report: FAILURE — faults not recovered bit-identically \
             or a seeded plan produced diverging ledgers/snapshots"
        );
        std::process::exit(1);
    }
    eprintln!("chaos_report: all injected faults recovered with identical output");
}
